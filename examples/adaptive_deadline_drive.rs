//! Adaptive deadlines in action: drive a risky route and print how the
//! sampled safety deadline δmax and the per-interval schedule react to the
//! perceived risk (the distance to the nearest obstacle).
//!
//! ```sh
//! cargo run -p seo-core --example adaptive_deadline_drive
//! ```

use seo_core::discretize::discretize_deadline;
use seo_core::model::ModelId;
use seo_core::prelude::*;
use seo_nn::policy::{PolicyFeatures, PotentialFieldController};
use seo_safety::filter::SafetyFilter;
use seo_safety::interval::SafeIntervalEvaluator;
use seo_safety::lookup::DeadlineTable;
use seo_sim::episode::{Episode, EpisodeConfig, EpisodeStatus};
use seo_sim::scenario::ScenarioConfig;
use seo_sim::sensing::RelativeObservation;

fn main() -> Result<(), SeoError> {
    let config = SeoConfig::paper_defaults();
    let evaluator = SafeIntervalEvaluator::default().with_horizon(config.delta_cap);
    let table = DeadlineTable::build_default(&evaluator);
    let filter = SafetyFilter::default();
    let controller = PotentialFieldController::default();
    let mut scheduler = SafeScheduler::new(vec![(ModelId(0), 1), (ModelId(1), 2)]);

    let world = ScenarioConfig::new(4).with_seed(7).generate();
    let road = world.road();
    println!("driving {world} with dynamic safety deadlines\n");
    println!(
        "{:>6} {:>8} {:>9} {:>6}  schedule (N0 | N1)",
        "t [s]", "x [m]", "dist [m]", "dmax"
    );

    let mut episode = Episode::new(world, EpisodeConfig::default().with_dt(config.tau));
    let mut last_delta = u32::MAX;
    while episode.status() == EpisodeStatus::Running {
        let state = episode.state();
        let observation = RelativeObservation::observe(episode.world(), &state);
        let ahead = RelativeObservation::observe_ahead(episode.world(), &state);
        let features = PolicyFeatures::from_observation(&state, &ahead, road.length, road.width);
        let (control, _) = filter.filter(episode.world(), &state, controller.act(&features));

        let plan = scheduler.plan_step(|| {
            discretize_deadline(table.query(&observation), config.tau).min(config.delta_max_cap())
        });
        if plan.interval_started && plan.delta_max != last_delta {
            last_delta = plan.delta_max;
            let slot = |id: usize| {
                plan.slots
                    .iter()
                    .find(|(m, _)| m.0 == id)
                    .map_or_else(|| "-".to_owned(), |(_, k)| k.to_string())
            };
            println!(
                "{:>6.2} {:>8.1} {:>9.1} {:>6}  {} | {}",
                episode.elapsed().as_secs(),
                state.x,
                observation.distance.min(999.0),
                plan.delta_max,
                slot(0),
                slot(1),
            );
        }
        episode.step(control);
    }
    println!(
        "\nepisode {} after {:.1} s",
        episode.status(),
        episode.elapsed().as_secs()
    );
    Ok(())
}
