//! Train a neural driving policy with the Cross-Entropy Method (the paper's
//! RL-agent role) and run it inside the SEO safety-aware optimization loop.
//!
//! ```sh
//! cargo run --release -p seo-core --example neural_controller
//! ```
//!
//! Training budget defaults to a few hundred episodes for a quick demo; the
//! paper trains for 2000 — pass a number to match it:
//!
//! ```sh
//! cargo run --release -p seo-core --example neural_controller -- 2000
//! ```

use seo_core::controller::Controller;
use seo_core::prelude::*;
use seo_nn::policy::train_driving_policy;
use seo_nn::train::CemConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let episodes: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(480);
    let cem = CemConfig {
        population: 16,
        elites: 4,
        ..CemConfig::default()
    };

    println!("training the neural controller with CEM ({episodes} episode budget)...");
    let (policy, report) = train_driving_policy(2, episodes, cem, 7)?;
    println!(
        "trained over {} generations / {} episodes; best reward {:.1}",
        report.generations.len(),
        report.episodes,
        report.best_reward
    );

    // Drive the SEO loop with the trained policy. The safety filter stays
    // in the loop, so even an imperfectly trained policy cannot crash —
    // exactly the controller-shielding story of the paper.
    let mut config = ExperimentConfig::paper_defaults()
        .with_optimizer(OptimizerKind::Offloading)
        .with_runs(5);
    config.controller = Controller::Neural(policy);
    match config.run() {
        Ok(result) => {
            println!(
                "\nneural controller under SEO: combined gain {:.1}%, mean dmax {:.2}, all safe: {}",
                result.summary.combined_gain * 100.0,
                result.mean_delta_max(),
                result.all_runs_safe()
            );
            println!(
                "({} unsuccessful episodes were excluded, as in the paper's protocol)",
                result.failures
            );
        }
        Err(e) => {
            // A small training budget may not produce a route-completing
            // policy; report instead of failing the example.
            println!("\nneural controller did not complete enough routes: {e}");
            println!("re-run with a larger budget, e.g. `-- 2000`.");
        }
    }
    Ok(())
}
