//! Drive a multi-axis sweep through the declarative `SweepPlan` API.
//!
//! One plan value describes the whole run — grid axes *and* execution — and
//! the same plan can be saved as JSON, handed to `sweep --plan`, or run
//! in-process as done here. The grid below sweeps gating level × optimizer
//! on top of the paper's obstacle × seed axes, then narrows one interesting
//! grid cell into the full successful-runs experiment protocol via
//! `ExperimentConfig::from_cell`.
//!
//! ```sh
//! cargo run --release -p seo-integration --example plan_driven_sweep
//! ```

use seo_core::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2 x 2 runtime grid (gating level x optimizer) over 2 obstacle
    // counts x 2 seeds = 16 grid points, executed on 4 threads.
    let plan = SweepPlan::paper(6, 2023)
        .with_obstacles(vec![0, 2])
        .with_seeds(2023, 2)
        .with_gating_levels(vec![0.25, 0.5])
        .with_optimizers(vec![OptimizerKind::Offloading, OptimizerKind::ModelGating])
        .with_mode(ExecMode::Threads(4));
    plan.validate()?;
    println!("plan: {plan}");
    println!("as a file:\n{}", plan.to_json().render_pretty());

    // Threaded execution is bit-identical to the serial reference — the
    // same invariant every distributed mode is held to.
    let reports = plan.run_threads(4)?;
    assert_eq!(reports, plan.run_serial()?);

    println!("grid results (mean combined gain per cell):");
    for (cell, range) in plan.cells() {
        let cell_reports = &reports[range.indices()];
        let gains: Vec<f64> = cell_reports
            .iter()
            .filter_map(|r| r.combined_gain().ok())
            .collect();
        let mean = gains.iter().sum::<f64>() / gains.len().max(1) as f64;
        println!("  {cell}: {:.1}%", mean * 100.0);
    }

    // Zoom one grid cell into the paper's successful-runs protocol.
    let (cell, _) = plan.cells()[1]; // gating 0.25, model-gating
    let experiment = ExperimentConfig::from_cell(&cell)?.with_runs(3);
    let result = experiment.run_auto()?;
    println!(
        "cell [{cell}] under the experiment protocol: {} over {} successful runs",
        seo_bench_free_pct(result.summary.combined_gain),
        result.summary.runs
    );
    Ok(())
}

/// Tiny percent formatter (the bench crate's `pct` lives outside this
/// crate's dependency set).
fn seo_bench_free_pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}
