//! Side-by-side comparison of the two Ω instantiations (task offloading vs
//! model gating) across risk levels — a miniature of the paper's Table II.
//!
//! ```sh
//! cargo run -p seo-core --example offload_vs_gating
//! ```

use seo_core::prelude::*;

fn main() -> Result<(), SeoError> {
    let runs = 5;
    println!("offloading vs gating over {runs} successful runs per cell (filtered control)\n");
    println!(
        "{:>10} {:>18} {:>18} {:>10}",
        "#obstacles", "offloading gain", "gating gain", "mean dmax"
    );
    for n_obstacles in [0usize, 2, 4] {
        let offload = ExperimentConfig::paper_defaults()
            .with_optimizer(OptimizerKind::Offloading)
            .with_obstacles(n_obstacles)
            .with_runs(runs)
            .run()?;
        let gating = ExperimentConfig::paper_defaults()
            .with_optimizer(OptimizerKind::ModelGating)
            .with_obstacles(n_obstacles)
            .with_runs(runs)
            .run()?;
        println!(
            "{:>10} {:>17.1}% {:>17.1}% {:>10.2}",
            n_obstacles,
            offload.summary.combined_gain * 100.0,
            gating.summary.combined_gain * 100.0,
            offload.mean_delta_max(),
        );
    }
    println!(
        "\nboth methods preserve safety: deadlines shrink with risk, so gains shrink too;\n\
         offloading wins because a successful offload skips local compute entirely,\n\
         while 50% gating still pays half the inference energy."
    );
    Ok(())
}
