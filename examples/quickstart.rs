//! Quickstart: run one safety-aware optimized driving episode and print the
//! energy/safety outcome.
//!
//! ```sh
//! cargo run -p seo-core --example quickstart
//! ```

use seo_core::prelude::*;
use seo_core::runtime::RuntimeLoop;
use seo_sim::scenario::ScenarioConfig;

fn main() -> Result<(), SeoError> {
    // 1. The paper's framework defaults: tau = 20 ms base period, deadlines
    //    capped at 4 tau, safety filter in the loop.
    let config = SeoConfig::paper_defaults();
    println!("SEO config: {config}");

    // 2. The paper's model partition: a critical VAE pipeline (Λ'') plus
    //    two ResNet-152 detectors at p = tau and p = 2 tau (Λ').
    let models = ModelSet::paper_setup(config.tau)?;
    println!("model set:  {models}");

    // 3. Assemble the runtime with task offloading as the optimization
    //    method (this builds the Δmax lookup table offline).
    let runtime = RuntimeLoop::new(config, models, OptimizerKind::Offloading)?;

    // 4. A 100 m route with 2 obstacles in the final third.
    let world = ScenarioConfig::new(2).with_seed(42).generate();
    println!("scenario:   {world}");

    // 5. Drive it.
    let report = runtime.run_episode(&world, 42);
    println!("\nepisode:    {report}");
    for model in &report.models {
        println!(
            "  {:28} gain {:5.1}%  ({} full, {} optimized, {} offloads, {} fallbacks)",
            model.name,
            model.gain()? * 100.0,
            model.full_invocations,
            model.optimized_slots,
            model.offloads_issued,
            model.offload_fallbacks,
        );
    }
    println!(
        "\ncombined energy gain: {:.1}% | unsafe steps: {} | min barrier: {:.2} m",
        report.combined_gain()? * 100.0,
        report.unsafe_steps,
        report.min_barrier
    );
    Ok(())
}
