//! Moving-obstacle extension: SEO under dynamic risk.
//!
//! The paper evaluates static obstacles; φ(x, x′, u) itself, however, takes
//! the obstacle state x′. This example drives the crossing-traffic scenario
//! (a pedestrian-like mover entering the road, an oncoming vehicle) where
//! deadlines are sampled from the full dynamic φ instead of the static
//! lookup table.
//!
//! ```sh
//! cargo run --release -p seo-core --example dynamic_traffic
//! ```

use seo_core::prelude::*;
use seo_core::runtime::RuntimeLoop;
use seo_sim::dynamics::DynamicWorld;

fn main() -> Result<(), SeoError> {
    let config = SeoConfig::paper_defaults();
    let models = ModelSet::paper_setup(config.tau)?;
    let runtime = RuntimeLoop::new(config, models, OptimizerKind::Offloading)?;

    let world = DynamicWorld::crossing_traffic_scenario();
    println!("driving the crossing-traffic scenario ({world})\n");
    for m in world.movers() {
        println!("  {m}");
    }

    let report = runtime.run_dynamic_episode(&world, 11);
    println!("\nepisode {report}");
    println!(
        "combined gain {:.1}% | unsafe steps {} | min distance {:.2} m",
        report.combined_gain()? * 100.0,
        report.unsafe_steps,
        report.min_distance
    );

    // Compare against the same obstacles parked at their t = 0 poses: the
    // moving versions force shorter deadlines and smaller gains.
    let parked = DynamicWorld::from_static(&world.snapshot(seo_platform::units::Seconds::ZERO));
    let static_report = runtime.run_dynamic_episode(&parked, 11);
    println!(
        "\nsame obstacles parked: gain {:.1}%, mean dmax {:.2} (moving: {:.2})",
        static_report.combined_gain()? * 100.0,
        static_report.histogram.mean(),
        report.histogram.mean()
    );
    Ok(())
}
