//! Sensor-gating energy audit across an industry sensor fleet (ZED stereo
//! camera, Navtech CTS350-X radar, Velodyne HDL-32e LiDAR) — a miniature of
//! the paper's Table III, including the P_meas/P_mech split that makes
//! rotating sensors worse gating citizens.
//!
//! ```sh
//! cargo run -p seo-core --example sensor_gating_fleet
//! ```

use seo_core::config::EnergyAccounting;
use seo_core::model::{Criticality, PipelineModel};
use seo_core::prelude::*;
use seo_platform::compute::ComputeProfile;
use seo_platform::sensor::SensorSpec;
use seo_platform::units::{Seconds, Watts};

fn fleet_model_set(sensor: &SensorSpec, tau: Seconds) -> Result<ModelSet, SeoError> {
    let vae = PipelineModel::new(
        "shieldnn-vae",
        tau,
        ComputeProfile::new("vae-encoder", Seconds::from_millis(3.0), Watts::new(2.0))?,
        SensorSpec::zero_power("vae-camera"),
        Criticality::Critical,
    )?;
    Ok(ModelSet::new(vec![
        vae,
        PipelineModel::paper_detector(1, tau)?.with_sensor(sensor.clone()),
        PipelineModel::paper_detector(2, tau)?.with_sensor(sensor.clone()),
    ]))
}

fn main() -> Result<(), SeoError> {
    let runs = 5;
    println!("sensor gating audit, filtered control, {runs} successful runs per sensor\n");
    println!(
        "{:<26} {:>7} {:>7} {:>14} {:>14}",
        "sensor", "P_meas", "P_mech", "p=tau gain", "p=2tau gain"
    );
    for sensor in [
        SensorSpec::zed_camera(),
        SensorSpec::navtech_cts350x(),
        SensorSpec::velodyne_hdl32e(),
    ] {
        let base = ExperimentConfig::paper_defaults()
            .with_optimizer(OptimizerKind::SensorGating)
            .with_accounting(EnergyAccounting::WithSensor)
            .with_runs(runs);
        let tau = base.seo.tau;
        let result = base.with_models(fleet_model_set(&sensor, tau)?).run()?;
        println!(
            "{:<26} {:>6.1}W {:>6.1}W {:>13.1}% {:>13.1}%",
            sensor.name(),
            sensor.measurement_power().as_watts(),
            sensor.mechanical_power().as_watts(),
            result.gain_for_model(0)? * 100.0,
            result.gain_for_model(1)? * 100.0,
        );
    }
    println!(
        "\nthe camera gates best: it has no mechanical component, so a gated window\n\
         draws nothing; the radar beats the LiDAR because its higher P_meas gives\n\
         gating more energy to reclaim relative to the shared 2.4 W motor."
    );
    Ok(())
}
