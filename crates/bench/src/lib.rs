//! # seo-bench
//!
//! Experiment-cell runners that regenerate **every table and figure** of the
//! SEO paper (DAC 2023, arXiv:2302.12493), shared between the printable
//! harness binaries (`fig1`, `fig5`, `fig6`, `table1`, `table2`, `table3`,
//! `all_experiments`) and the Criterion benches.
//!
//! Run counts default to the paper's 25 successful runs per cell; set
//! `SEO_RUNS` to trade fidelity for speed (the binaries honor it).
//!
//! The distributed sweep surface lives next door: the `sweep` binary runs
//! declarative `seo_core::plan::SweepPlan` files (`--plan plan.json`; the
//! legacy `--workers` / `--hosts` flags desugar into plans), and the
//! `seo-sweepd` worker daemon serves plan-bearing jobs over
//! `seo_core::transport` (see `ARCHITECTURE.md` at the repository root,
//! `docs/plans.md` for the plan schema, and `docs/benchmarks.md` for the
//! `BENCH_sweep.json` schema and CI perf gate). Sweeps whose plan carries
//! a `report` section additionally fold per-cell sketches and upsert a
//! named-run row into the committed results book via [`book`] (see
//! `docs/reporting.md`).
//!
//! # Example
//!
//! ```
//! use seo_bench::report::{pct, Table};
//!
//! // The aligned-column table every harness binary prints.
//! let mut table = Table::new(vec!["cell", "gain"]);
//! table.push_row(vec!["offloading".to_owned(), pct(0.31)]);
//! assert!(table.render().contains("31.0%"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod book;
pub mod cells;
pub mod json;
pub mod report;
pub mod timing;

pub use cells::{
    fig1_rows, fig5_rows, fig6_rows, table1_rows, table2_rows, table3_rows, Fig1Row, Fig5Row,
    Fig6Row, Table1Row, Table2Row, Table3Row,
};
pub use report::{runs_from_env, Table};
