//! Runs every paper experiment in sequence and emits both the printable
//! tables and a machine-readable JSON dump (`seo_experiments.json` in the
//! current directory) for downstream analysis.

use seo_bench::json::Json;
use seo_bench::report::runs_from_env;
use seo_bench::{
    fig1_rows, fig5_rows, fig6_rows, table1_rows, table2_rows, table3_rows, Fig1Row, Fig5Row,
    Fig6Row, Table1Row, Table2Row, Table3Row,
};

fn fig1_json(rows: &[Fig1Row]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj(vec![
                    ("n_obstacles", r.n_obstacles.into()),
                    ("normalized_50hz", r.normalized_50hz.into()),
                    ("normalized_25hz", r.normalized_25hz.into()),
                ])
            })
            .collect(),
    )
}

fn fig5_json(rows: &[Fig5Row]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj(vec![
                    ("optimizer", r.optimizer.to_string().into()),
                    ("control", r.control.to_string().into()),
                    ("gain_p1", r.gain_p1.into()),
                    ("gain_p2", r.gain_p2.into()),
                ])
            })
            .collect(),
    )
}

fn fig6_json(rows: &[Fig6Row]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj(vec![
                    ("optimizer", r.optimizer.to_string().into()),
                    ("n_obstacles", r.n_obstacles.into()),
                    (
                        "frequencies",
                        Json::Arr(
                            r.frequencies
                                .iter()
                                .map(|&(v, f)| Json::Arr(vec![v.into(), f.into()]))
                                .collect(),
                        ),
                    ),
                    ("mean_delta_max", r.mean_delta_max.into()),
                    ("avg_gain", r.avg_gain.into()),
                ])
            })
            .collect(),
    )
}

fn table1_json(rows: &[Table1Row]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj(vec![
                    ("optimizer", r.optimizer.to_string().into()),
                    ("control", r.control.to_string().into()),
                    ("gain_p1", r.gain_p1.into()),
                    ("gain_p2", r.gain_p2.into()),
                    ("average", r.average.into()),
                ])
            })
            .collect(),
    )
}

fn table2_json(rows: &[Table2Row]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj(vec![
                    ("control", r.control.to_string().into()),
                    ("n_obstacles", r.n_obstacles.into()),
                    ("offloading_gain", r.offloading_gain.into()),
                    ("gating_gain", r.gating_gain.into()),
                    ("mean_delta_max", r.mean_delta_max.into()),
                ])
            })
            .collect(),
    )
}

fn table3_json(rows: &[Table3Row]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj(vec![
                    ("sensor", r.sensor.as_str().into()),
                    ("p_meas", r.p_meas.into()),
                    ("p_mech", r.p_mech.into()),
                    ("p_multiple", r.p_multiple.into()),
                    ("avg_gain", r.avg_gain.into()),
                    ("four_tau_gain", r.four_tau_gain.into()),
                ])
            })
            .collect(),
    )
}

fn main() {
    let runs = runs_from_env();
    println!("Running all SEO experiments with {runs} successful runs per cell...\n");
    let result = (|| -> Result<Json, Box<dyn std::error::Error>> {
        println!("[1/6] Figure 1 (motivational gating example)");
        let fig1 = fig1_rows(runs)?;
        println!("[2/6] Figure 5 (detector gains, tau = 20 ms)");
        let fig5 = fig5_rows(runs)?;
        println!("[3/6] Table I (tau = 25 ms)");
        let table1 = table1_rows(runs)?;
        println!("[4/6] Figure 6 (delta_max histograms)");
        let fig6 = fig6_rows(runs)?;
        println!("[5/6] Table II (obstacle sweep)");
        let table2 = table2_rows(runs)?;
        println!("[6/6] Table III (sensor gating)");
        let table3 = table3_rows(runs)?;
        Ok(Json::obj(vec![
            ("runs", runs.into()),
            ("fig1", fig1_json(&fig1)),
            ("fig5", fig5_json(&fig5)),
            ("fig6", fig6_json(&fig6)),
            ("table1", table1_json(&table1)),
            ("table2", table2_json(&table2)),
            ("table3", table3_json(&table3)),
        ]))
    })();
    match result {
        Ok(dump) => {
            let json = dump.render_pretty();
            std::fs::write("seo_experiments.json", &json).expect("write results file");
            println!(
                "\nall experiments complete -> seo_experiments.json ({} bytes)",
                json.len()
            );
        }
        Err(e) => {
            eprintln!("experiment suite failed: {e}");
            std::process::exit(1);
        }
    }
}
