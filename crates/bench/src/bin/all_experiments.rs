//! Runs every paper experiment in sequence and emits both the printable
//! tables and a machine-readable JSON dump (`seo_experiments.json` in the
//! current directory) for downstream analysis.

use seo_bench::report::runs_from_env;
use seo_bench::{fig1_rows, fig5_rows, fig6_rows, table1_rows, table2_rows, table3_rows};
use serde::Serialize;

#[derive(Serialize)]
struct Dump {
    runs: usize,
    fig1: Vec<seo_bench::Fig1Row>,
    fig5: Vec<seo_bench::Fig5Row>,
    fig6: Vec<seo_bench::Fig6Row>,
    table1: Vec<seo_bench::Table1Row>,
    table2: Vec<seo_bench::Table2Row>,
    table3: Vec<seo_bench::Table3Row>,
}

fn main() {
    let runs = runs_from_env();
    println!("Running all SEO experiments with {runs} successful runs per cell...\n");
    let result = (|| -> Result<Dump, Box<dyn std::error::Error>> {
        println!("[1/6] Figure 1 (motivational gating example)");
        let fig1 = fig1_rows(runs)?;
        println!("[2/6] Figure 5 (detector gains, tau = 20 ms)");
        let fig5 = fig5_rows(runs)?;
        println!("[3/6] Table I (tau = 25 ms)");
        let table1 = table1_rows(runs)?;
        println!("[4/6] Figure 6 (delta_max histograms)");
        let fig6 = fig6_rows(runs)?;
        println!("[5/6] Table II (obstacle sweep)");
        let table2 = table2_rows(runs)?;
        println!("[6/6] Table III (sensor gating)");
        let table3 = table3_rows(runs)?;
        Ok(Dump { runs, fig1, fig5, fig6, table1, table2, table3 })
    })();
    match result {
        Ok(dump) => {
            let json = serde_json::to_string_pretty(&dump).expect("rows serialize");
            std::fs::write("seo_experiments.json", &json).expect("write results file");
            println!("\nall experiments complete -> seo_experiments.json ({} bytes)", json.len());
        }
        Err(e) => {
            eprintln!("experiment suite failed: {e}");
            std::process::exit(1);
        }
    }
}
