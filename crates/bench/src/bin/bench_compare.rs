//! Perf-regression gate over `BENCH_sweep.json` dumps.
//!
//! Compares a freshly generated sweep-throughput dump against the committed
//! baseline and exits non-zero when `ns_per_step` regressed by more than the
//! threshold (default 35% — deliberately tolerant of noisy shared CI
//! runners, per the schema's `seo-bench-sweep/v1` contract). Run by CI after
//! the sweep smoke step:
//!
//! ```sh
//! bench_compare <baseline.json> <fresh.json> [--threshold-pct 35]
//! ```
//!
//! The serial `ns_per_step` is always gated; the parallel one only when the
//! two dumps used the same thread count (otherwise it is informational —
//! comparing a 1-thread baseline to a 4-thread run measures the machine,
//! not the code). Speedups (fresh faster than baseline) always pass; the
//! gate is one-sided. Unknown top-level keys in a dump (provenance blocks
//! from newer sweeps, e.g. `report_stats`) are skipped with a warning —
//! never a failure — so the gate stays forward-compatible.

use seo_bench::json::Json;
use seo_bench::report::Table;

struct Throughput {
    threads: i64,
    serial_ns_per_step: f64,
    parallel_ns_per_step: f64,
}

/// Top-level `BENCH_sweep.json` keys this gate understands. Provenance
/// blocks later sweeps patch in (`remote_stats`, `falsify_stats`,
/// `report_stats`, …) ride along in the dump; an unknown key is a newer
/// producer, not a broken one — warn and keep gating on what we know.
const KNOWN_KEYS: [&str; 5] = [
    "schema",
    "throughput",
    "remote_stats",
    "falsify_stats",
    "report_stats",
];

fn load(path: &str) -> Result<Throughput, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let schema = json
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{path}: missing schema"))?;
    if schema != "seo-bench-sweep/v1" {
        return Err(format!("{path}: unexpected schema '{schema}'"));
    }
    if let Json::Obj(pairs) = &json {
        for (key, _) in pairs {
            if !KNOWN_KEYS.contains(&key.as_str()) {
                eprintln!(
                    "note: {path}: skipping unknown top-level key '{key}' \
                     (newer producer; the gate only reads: {})",
                    KNOWN_KEYS.join(", ")
                );
            }
        }
    }
    let throughput = json
        .get("throughput")
        .ok_or_else(|| format!("{path}: missing throughput"))?;
    let ns = |mode: &str| -> Result<f64, String> {
        throughput
            .get(mode)
            .and_then(|m| m.get("ns_per_step"))
            .and_then(Json::as_f64)
            .filter(|v| v.is_finite() && *v > 0.0)
            .ok_or_else(|| format!("{path}: missing or invalid {mode}.ns_per_step"))
    };
    Ok(Throughput {
        threads: throughput
            .get("threads")
            .and_then(Json::as_i64)
            .unwrap_or(0),
        serial_ns_per_step: ns("serial")?,
        parallel_ns_per_step: ns("parallel")?,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut paths: Vec<String> = Vec::new();
    let mut threshold_pct = 35.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threshold-pct" {
            threshold_pct = args
                .next()
                .ok_or("--threshold-pct requires a value")?
                .parse::<f64>()?;
        } else {
            paths.push(arg);
        }
    }
    let [baseline_path, fresh_path] = paths.as_slice() else {
        return Err("usage: bench_compare <baseline.json> <fresh.json> [--threshold-pct P]".into());
    };
    if !threshold_pct.is_finite() || threshold_pct <= 0.0 {
        return Err("--threshold-pct must be a positive number".into());
    }

    let baseline = load(baseline_path).map_err(|e| format!("baseline: {e}"))?;
    let fresh = load(fresh_path).map_err(|e| format!("fresh: {e}"))?;
    if baseline.threads != fresh.threads {
        eprintln!(
            "note: thread counts differ (baseline {}, fresh {}) — the serial row is the \
             machine-comparable one",
            baseline.threads, fresh.threads
        );
    }

    // The serial row is always gated; the parallel row only when the two
    // dumps agree on thread count (a 1-thread baseline vs a 4-thread fresh
    // run measures the machine, not the code) — otherwise it is printed for
    // information only.
    let gate_parallel = baseline.threads == fresh.threads;
    let mut table = Table::new(vec!["mode", "baseline ns/step", "fresh ns/step", "delta"]);
    let mut regressions = Vec::new();
    for (mode, base, now, gated) in [
        (
            "serial",
            baseline.serial_ns_per_step,
            fresh.serial_ns_per_step,
            true,
        ),
        (
            "parallel",
            baseline.parallel_ns_per_step,
            fresh.parallel_ns_per_step,
            gate_parallel,
        ),
    ] {
        let delta_pct = (now / base - 1.0) * 100.0;
        table.push_row(vec![
            if gated {
                mode.to_owned()
            } else {
                format!("{mode} (info)")
            },
            format!("{base:.0}"),
            format!("{now:.0}"),
            format!("{delta_pct:+.1}%"),
        ]);
        if gated && delta_pct > threshold_pct {
            regressions.push(format!(
                "{mode} ns/step regressed {delta_pct:+.1}% (> {threshold_pct:.0}% threshold)"
            ));
        }
    }
    println!("{table}");

    if regressions.is_empty() {
        println!("perf gate: OK (threshold {threshold_pct:.0}%)");
        Ok(())
    } else {
        Err(format!("perf gate FAILED: {}", regressions.join("; ")).into())
    }
}
