//! Regenerates **Table II**: average energy gains and δmax at τ = 20 ms
//! under obstacle variation for the two combined detectors.
//!
//! Paper reference (offloading / gating / δmax): unfiltered 88.58/42.92/3.67
//! → 24.6/17.47/2.29 → 16.82/11.89/1.92 for 0/2/4 obstacles; filtered
//! 89.89/43.82/3.7 → 39.49/24.26/2.61 → 43.1/22.57/2.53. The headline
//! 89.9 % maximum gain lives in the filtered 0-obstacle offloading cell.

use seo_bench::report::{pct, runs_from_env, Table};
use seo_bench::table2_rows;

fn main() {
    let runs = runs_from_env();
    println!("Table II — gains + delta_max under obstacle variation ({runs} runs/cell)\n");
    match table2_rows(runs) {
        Ok(rows) => {
            let mut table = Table::new(vec![
                "control",
                "#obst.",
                "offloading gains",
                "gating gains",
                "delta_max",
            ]);
            for r in &rows {
                table.push_row(vec![
                    r.control.to_string(),
                    r.n_obstacles.to_string(),
                    pct(r.offloading_gain),
                    pct(r.gating_gain),
                    format!("{:.2}", r.mean_delta_max),
                ]);
            }
            println!("{table}");
            let headline = rows
                .iter()
                .map(|r| r.offloading_gain)
                .fold(f64::NEG_INFINITY, f64::max);
            println!(
                "max offloading gain: {} (paper headline: 89.9%)",
                pct(headline)
            );
        }
        Err(e) => {
            eprintln!("table2 failed: {e}");
            std::process::exit(1);
        }
    }
}
