//! Regenerates **Figure 6**: histogram of the sampled δmax values in the
//! unfiltered control case when varying the number of obstacles, for
//! offloading (left) and model gating (right), annotated with the average
//! efficiency gain.
//!
//! Paper shapes: lower δmax values sampled more frequently as obstacles
//! increase (δmax = 4 frequency drops 33.3 % → 6.48 % → 2.3 % for gating);
//! average efficiency falls (88.6 % → 24.6 % → 16.8 % offloading,
//! 42.9 % → 17.5 % → 11.9 % gating).

use seo_bench::fig6_rows;
use seo_bench::report::{pct, runs_from_env, Table};

fn main() {
    let runs = runs_from_env();
    println!("Figure 6 — delta_max histograms, unfiltered ({runs} successful runs/cell)\n");
    match fig6_rows(runs) {
        Ok(rows) => {
            let mut table = Table::new(vec![
                "optimizer",
                "#obstacles",
                "freq d=0",
                "freq d=1",
                "freq d=2",
                "freq d=3",
                "freq d=4",
                "mean dmax",
                "avg gain",
            ]);
            for r in &rows {
                let freq = |d: u32| {
                    r.frequencies
                        .iter()
                        .find(|(v, _)| *v == d)
                        .map_or_else(|| "0.0%".to_owned(), |(_, f)| pct(*f))
                };
                table.push_row(vec![
                    r.optimizer.to_string(),
                    r.n_obstacles.to_string(),
                    freq(0),
                    freq(1),
                    freq(2),
                    freq(3),
                    freq(4),
                    format!("{:.2}", r.mean_delta_max),
                    pct(r.avg_gain),
                ]);
            }
            println!("{table}");
            println!(
                "paper avg gains: offload 88.6/24.6/16.8, gating 42.9/17.5/11.9 (0/2/4 obstacles)"
            );
        }
        Err(e) => {
            eprintln!("fig6 failed: {e}");
            std::process::exit(1);
        }
    }
}
