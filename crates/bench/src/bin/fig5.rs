//! Regenerates **Figure 5**: energy gains relative to local execution for
//! the two ResNet-152 detectors (p = τ, p = 2τ) under offloading and model
//! gating, filtered and unfiltered, at τ = 20 ms.
//!
//! Paper reference values: offloading filtered 65.9 % / 20.3 %, unfiltered
//! 24.1 % / 9.5 %; gating filtered 37.2 % / 8 %, unfiltered 22.7 % / ~0 %.
//! The shapes to check: p = τ > p = 2τ, filtered > unfiltered, offloading >
//! gating.

use seo_bench::fig5_rows;
use seo_bench::report::{pct, runs_from_env, Table};

fn main() {
    let runs = runs_from_env();
    println!("Figure 5 — detector energy gains at tau = 20 ms ({runs} successful runs/cell)\n");
    match fig5_rows(runs) {
        Ok(rows) => {
            let mut table = Table::new(vec!["optimizer", "control", "p=tau gain", "p=2tau gain"]);
            for r in &rows {
                table.push_row(vec![
                    r.optimizer.to_string(),
                    r.control.to_string(),
                    pct(r.gain_p1),
                    pct(r.gain_p2),
                ]);
            }
            println!("{table}");
            println!("paper: offload 24.1/9.5 (unf) 65.9/20.3 (filt); gating 22.7/~0 (unf) 37.2/8.0 (filt)");
        }
        Err(e) => {
            eprintln!("fig5 failed: {e}");
            std::process::exit(1);
        }
    }
}
