//! Regenerates **Figure 1** (motivational example): normalized energy of the
//! 50 Hz and 25 Hz detector models under safety-aware gating as risk
//! (obstacle count) increases.
//!
//! Paper shape: both series rise from well below "Full Operation" toward it
//! as risk increases; the 50 Hz model sits below the 25 Hz model.

use seo_bench::fig1_rows;
use seo_bench::report::{pct, runs_from_env, Table};

fn main() {
    let runs = runs_from_env();
    println!("Figure 1 — safety-aware gating energy vs risk ({runs} successful runs/point)\n");
    match fig1_rows(runs) {
        Ok(rows) => {
            let mut table = Table::new(vec![
                "#obstacles",
                "50 Hz (p=tau) normalized E",
                "25 Hz (p=2tau) normalized E",
            ]);
            for r in &rows {
                table.push_row(vec![
                    r.n_obstacles.to_string(),
                    format!("{:.3}", r.normalized_50hz),
                    format!("{:.3}", r.normalized_25hz),
                ]);
            }
            println!("{table}");
            println!(
                "gating saves {} (50 Hz) / {} (25 Hz) on the empty road, shrinking with risk",
                pct(1.0 - rows[0].normalized_50hz),
                pct(1.0 - rows[0].normalized_25hz)
            );
        }
        Err(e) => {
            eprintln!("fig1 failed: {e}");
            std::process::exit(1);
        }
    }
}
