//! Regenerates **Table III**: sensor gating at τ = 20 ms for the filtered
//! control case across three industry sensors.
//!
//! Paper reference (avg gains / 4τ gains): ZED camera 37.5 %/75 % (p=τ) and
//! 8.2 %/50 % (p=2τ); Navtech radar 34.84 %/68.93 % and 7.57 %/45.53 %;
//! Velodyne LiDAR 32.72 %/64.82 % and 6.9 %/41.91 %. Shape: camera > radar
//! > LiDAR per-period, because P_mech is dead weight under gating.

use seo_bench::report::{pct, runs_from_env, Table};
use seo_bench::table3_rows;

fn main() {
    let runs = runs_from_env();
    println!("Table III — sensor gating, filtered, tau = 20 ms ({runs} runs/sensor)\n");
    match table3_rows(runs) {
        Ok(rows) => {
            let mut table = Table::new(vec![
                "sensor",
                "P_meas",
                "P_mech",
                "period",
                "avg gains",
                "4tau gains",
            ]);
            for r in &rows {
                table.push_row(vec![
                    r.sensor.clone(),
                    format!("{:.1} W", r.p_meas),
                    format!("{:.1} W", r.p_mech),
                    format!("p={}tau", r.p_multiple),
                    pct(r.avg_gain),
                    pct(r.four_tau_gain),
                ]);
            }
            println!("{table}");
            println!("paper 4tau gains: ZED 75/50, Navtech 68.93/45.53, Velodyne 64.82/41.91");
        }
        Err(e) => {
            eprintln!("table3 failed: {e}");
            std::process::exit(1);
        }
    }
}
