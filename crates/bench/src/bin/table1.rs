//! Regenerates **Table I**: offloading and gating energy gains over local
//! execution at τ = 25 ms (a more limited hardware setting).
//!
//! Paper reference: offload unfiltered 15.3/7.5 (avg 11.8), filtered
//! 27.1/14.1 (avg 21.1); gating unfiltered 13.4/0 (avg 6.6), filtered
//! 23.8/4.3 (avg 14.5). Shape: gains shrink relative to τ = 20 ms but stay
//! positive; orderings are preserved.

use seo_bench::report::{pct, runs_from_env, Table};
use seo_bench::table1_rows;

fn main() {
    let runs = runs_from_env();
    println!("Table I — gains at tau = 25 ms ({runs} successful runs/cell)\n");
    match table1_rows(runs) {
        Ok(rows) => {
            let mut table = Table::new(vec![
                "mode",
                "control",
                "(p=tau) gains",
                "(p=2tau) gains",
                "average gains",
            ]);
            for r in &rows {
                table.push_row(vec![
                    r.optimizer.to_string(),
                    r.control.to_string(),
                    pct(r.gain_p1),
                    pct(r.gain_p2),
                    pct(r.average),
                ]);
            }
            println!("{table}");
            println!("paper: offload 15.3/7.5|27.1/14.1; gating 13.4/0|23.8/4.3 (unf|filt)");
        }
        Err(e) => {
            eprintln!("table1 failed: {e}");
            std::process::exit(1);
        }
    }
}
