//! `seo-sweepd` — the long-lived multi-host sweep worker daemon.
//!
//! Listens on a TCP address and serves [`seo_core::transport`] traffic as
//! a **persistent service**: any number of consecutive jobs (each
//! connection carries one length-delimited `job` frame naming a spec range
//! of the shared sweep grid), `health` probes, and a graceful drain on a
//! `shutdown` frame or SIGTERM. Episodes run through the same serial
//! scratch loop every other sweep mode uses and stream back one report
//! frame per episode, in ascending index order, ending with a `done`
//! frame. The `sweep --hosts hosts.json` coordinator on any machine can
//! then merge several daemons' streams into output bit-identical to a
//! serial sweep. The service book is `docs/sweepd.md`.
//!
//! ```sh
//! # On each worker host:
//! seo-sweepd --listen 0.0.0.0:7641 --jobs 4
//! # On the coordinator (hosts.json lists the workers):
//! sweep --hosts hosts.json --verify --scenarios 60 > merged.ndjson
//! # Operations:
//! seo-sweepd --health 10.0.0.1:7641     # liveness + cumulative stats
//! seo-sweepd --shutdown 10.0.0.1:7641   # drain: finish jobs, exit 0
//! ```
//!
//! `--listen 127.0.0.1:0` lets the OS pick a free port; the daemon prints
//! the actual address as its first stdout line
//! (`seo-sweepd listening on ADDR`) so scripts and tests can scrape it.
//!
//! `--kernel NAME` (default `SEO_KERNEL`, then `scalar`) selects the
//! inference kernel backend the daemon runs episodes with. Backends are
//! bit-identical by the `seo_nn::kernel` contract, so hosts in one pool may
//! run different backends without breaking the merge (see `docs/kernels.md`).
//!
//! `--fault SPEC` arms deterministic fault injection (the
//! [`FaultPlan`] grammar: `refuse=N,drop-after=K,stall-ms=T,garble=K,seed=S`)
//! for exercising coordinator recovery; `--fail-after K` is the legacy
//! sugar for `drop-after=K`. Never use either in production pools.

use seo_core::prelude::*;
use seo_core::transport::{health_request_frame, read_frame, shutdown_request_frame, write_frame};
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// `%KERNELS%` is filled from [`KernelBackend::valid_names`] so the usage
/// text can never go stale against the enum. Printed with exit code 0 on
/// `--help` and exit code 2 on any argument error.
const USAGE_TEMPLATE: &str = "usage: sweepd [--listen HOST:PORT] [--kernel NAME] [--jobs N] \
    [--timeout-secs T]\n              [--fault SPEC] [--fail-after K] [--health ADDR] \
    [--shutdown ADDR]\n  \
    --listen       address to accept coordinator connections on (default 127.0.0.1:7641)\n  \
    --kernel       inference kernel backend: %KERNELS% (default scalar, or\n                 \
    SEO_KERNEL; bit-identical output, see docs/kernels.md)\n  \
    --jobs         max concurrently running jobs; extra jobs get a busy frame (default 4)\n  \
    --timeout-secs per-connection read/write timeout in seconds (default 30)\n  \
    --fault        deterministic fault injection, e.g. refuse=2,drop-after=5,seed=7\n                 \
    (keys: refuse, drop-after, stall-ms, stall-at, garble, seed; testing only)\n  \
    --fail-after   legacy sugar for --fault drop-after=K (testing only)\n  \
    --health       client mode: print ADDR's health frame to stdout and exit\n  \
    --shutdown     client mode: ask ADDR to drain (finish jobs, refuse new ones, exit 0)\n  \
    --help, -h     print this usage and exit 0";

struct Cli {
    listen: String,
    jobs: usize,
    timeout: Duration,
    faults: Option<FaultPlan>,
    kernel: KernelBackend,
}

/// Everything `parse_cli` can ask `main` to do besides serving.
enum CliOutcome {
    Run(Cli),
    Help,
    /// Client mode: send one control frame to a daemon and print the reply.
    Probe {
        addr: String,
        verb: ProbeVerb,
        timeout: Duration,
    },
}

enum ProbeVerb {
    Health,
    Shutdown,
}

fn parse_cli() -> Result<CliOutcome, String> {
    let mut listen = "127.0.0.1:7641".to_owned();
    let mut jobs = 4usize;
    let mut timeout = seo_core::transport::DEFAULT_TIMEOUT;
    let mut faults: Option<FaultPlan> = None;
    let mut probe: Option<(String, ProbeVerb)> = None;
    // An unknown SEO_KERNEL value is an argument error, same as --kernel.
    let mut kernel =
        KernelBackend::from_env().map_err(|e| format!("{}: {e}", KernelBackend::ENV_VAR))?;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(CliOutcome::Help),
            "--listen" => listen = value("--listen")?,
            "--kernel" => {
                kernel = value("--kernel")?
                    .parse::<KernelBackend>()
                    .map_err(|e| format!("--kernel: {e}"))?;
            }
            "--jobs" => {
                jobs = value("--jobs")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or("--jobs: expected a positive integer")?;
            }
            "--timeout-secs" => {
                timeout = value("--timeout-secs")?
                    .parse::<f64>()
                    .ok()
                    .filter(|&t| t > 0.0)
                    .and_then(|t| Duration::try_from_secs_f64(t).ok())
                    .ok_or("--timeout-secs: expected a positive number of seconds")?;
            }
            "--fault" => {
                let spec = value("--fault")?;
                faults = Some(
                    spec.parse::<FaultPlan>()
                        .map_err(|e| format!("--fault: {e}"))?,
                );
            }
            "--fail-after" => {
                let k = value("--fail-after")?
                    .parse::<usize>()
                    .map_err(|e| format!("--fail-after: {e}"))?;
                faults = Some(FaultPlan::fail_after(k));
            }
            "--health" => probe = Some((value("--health")?, ProbeVerb::Health)),
            "--shutdown" => probe = Some((value("--shutdown")?, ProbeVerb::Shutdown)),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if let Some((addr, verb)) = probe {
        return Ok(CliOutcome::Probe {
            addr,
            verb,
            timeout,
        });
    }
    Ok(CliOutcome::Run(Cli {
        listen,
        jobs,
        timeout,
        faults,
        kernel,
    }))
}

/// Installs a SIGTERM handler that flips the process-wide drain flag (an
/// atomic store — async-signal-safe). `seo-core` forbids unsafe code, so
/// the raw `signal(2)` shim lives here in the binary.
#[cfg(unix)]
fn install_drain_on_sigterm() {
    const SIGTERM: i32 = 15;
    extern "C" fn on_sigterm(_signum: i32) {
        seo_core::daemon::request_drain();
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    let handler: extern "C" fn(i32) = on_sigterm;
    unsafe {
        signal(SIGTERM, handler as usize);
    }
}

#[cfg(not(unix))]
fn install_drain_on_sigterm() {}

/// Client mode: one control round-trip against a running daemon. Prints
/// the reply frame (JSON) to stdout.
fn run_probe(addr: &str, verb: &ProbeVerb, timeout: Duration) -> Result<(), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .and_then(|()| stream.set_write_timeout(Some(timeout)))
        .map_err(|e| format!("socket setup for {addr}: {e}"))?;
    let request = match verb {
        ProbeVerb::Health => health_request_frame(),
        ProbeVerb::Shutdown => shutdown_request_frame(),
    };
    write_frame(&mut stream, &request).map_err(|e| e.to_string())?;
    let reply = read_frame(&mut stream)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| format!("{addr} closed the connection without a reply"))?;
    let text = String::from_utf8(reply).map_err(|e| format!("reply from {addr}: {e}"))?;
    println!("{text}");
    Ok(())
}

fn main() {
    let cli = match parse_cli() {
        Ok(CliOutcome::Run(cli)) => cli,
        Ok(CliOutcome::Help) => {
            println!(
                "{}",
                USAGE_TEMPLATE.replace("%KERNELS%", &KernelBackend::valid_names())
            );
            return;
        }
        Ok(CliOutcome::Probe {
            addr,
            verb,
            timeout,
        }) => {
            if let Err(e) = run_probe(&addr, &verb, timeout) {
                eprintln!("sweepd: {e}");
                std::process::exit(1);
            }
            return;
        }
        Err(e) => {
            eprintln!("sweepd: {e}");
            eprintln!(
                "{}",
                USAGE_TEMPLATE.replace("%KERNELS%", &KernelBackend::valid_names())
            );
            std::process::exit(2);
        }
    };
    let run = || -> Result<(), Box<dyn std::error::Error>> {
        let config = SeoConfig::paper_defaults();
        let models = ModelSet::paper_setup(config.tau)?;
        let runtime =
            RuntimeLoop::new(config, models, OptimizerKind::Offloading)?.with_kernel(cli.kernel);
        let server = Arc::new(DaemonServer::bind(
            &cli.listen,
            DaemonConfig {
                jobs: cli.jobs,
                timeout: cli.timeout,
                faults: cli.faults.clone(),
            },
        )?);
        install_drain_on_sigterm();
        // Backends are bit-identical by contract, so a mixed fleet is fine;
        // the note is purely informational.
        eprintln!("seo-sweepd: kernel backend '{}'", cli.kernel);
        // First stdout line is machine-readable: scripts scrape the actual
        // address (essential with `--listen 127.0.0.1:0`).
        println!("seo-sweepd listening on {}", server.local_addr()?);
        std::io::stdout().flush()?;
        if let Some(plan) = &cli.faults {
            eprintln!("seo-sweepd: fault injection armed: {plan}");
        }
        server.serve(Arc::new(runtime))?;
        let stats = server.stats();
        eprintln!(
            "seo-sweepd: drained: {} job(s) served, {} episode(s) emitted, \
             {} fault(s) injected over {} tick(s)",
            stats.jobs_served(),
            stats.episodes_emitted(),
            stats.faults_injected(),
            stats.uptime_ticks()
        );
        Ok(())
    };
    if let Err(e) = run() {
        eprintln!("sweepd: {e}");
        std::process::exit(1);
    }
}
