//! `seo-sweepd` — the multi-host sweep worker daemon.
//!
//! Listens on a TCP address and serves [`seo_core::transport`] jobs: each
//! incoming connection carries one length-delimited `job` frame naming a
//! spec range of the shared sweep grid; the daemon runs those episodes
//! through the same serial scratch loop every other sweep mode uses and
//! streams one report frame per episode back, in ascending index order,
//! ending with a `done` frame. The `sweep --hosts hosts.json` coordinator
//! on any machine can then merge several daemons' streams into output
//! bit-identical to a serial sweep.
//!
//! ```sh
//! # On each worker host:
//! seo-sweepd --listen 0.0.0.0:7641
//! # On the coordinator (hosts.json lists the workers):
//! sweep --hosts hosts.json --verify --scenarios 60 > merged.ndjson
//! ```
//!
//! `--listen 127.0.0.1:0` lets the OS pick a free port; the daemon prints
//! the actual address as its first stdout line
//! (`seo-sweepd listening on ADDR`) so scripts and tests can scrape it.
//!
//! `--fail-after K` is a fault-injection knob for testing the
//! coordinator's re-sharding: every connection is dropped without a `done`
//! frame after emitting K reports, exactly like a host dying mid-stream.
//! Never use it in production pools.

use seo_core::prelude::*;
use seo_core::transport::WorkerServer;
use std::io::Write as _;
use std::sync::Arc;

const USAGE: &str = "usage: sweepd [--listen HOST:PORT] [--fail-after K]\n  \
    --listen     address to accept coordinator connections on (default 127.0.0.1:7641)\n  \
    --fail-after drop every connection after K reports, without a done frame \
    (fault-injection testing only)";

struct Cli {
    listen: String,
    fail_after: Option<usize>,
}

fn parse_cli() -> Result<Cli, String> {
    let mut listen = "127.0.0.1:7641".to_owned();
    let mut fail_after = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--listen" => listen = value("--listen")?,
            "--fail-after" => {
                fail_after = Some(
                    value("--fail-after")?
                        .parse::<usize>()
                        .map_err(|e| format!("--fail-after: {e}"))?,
                );
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(Cli { listen, fail_after })
}

fn main() {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("sweepd: {e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    let run = || -> Result<(), Box<dyn std::error::Error>> {
        let config = SeoConfig::paper_defaults();
        let models = ModelSet::paper_setup(config.tau)?;
        let runtime = RuntimeLoop::new(config, models, OptimizerKind::Offloading)?;
        let server = WorkerServer::bind(&cli.listen)?;
        // First stdout line is machine-readable: scripts scrape the actual
        // address (essential with `--listen 127.0.0.1:0`).
        println!("seo-sweepd listening on {}", server.local_addr()?);
        std::io::stdout().flush()?;
        if let Some(k) = cli.fail_after {
            eprintln!(
                "seo-sweepd: fault injection armed: dropping every connection after {k} report(s)"
            );
        }
        server.serve(Arc::new(runtime), cli.fail_after)?;
        Ok(())
    };
    if let Err(e) = run() {
        eprintln!("sweepd: {e}");
        std::process::exit(1);
    }
}
