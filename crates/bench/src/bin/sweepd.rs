//! `seo-sweepd` — the multi-host sweep worker daemon.
//!
//! Listens on a TCP address and serves [`seo_core::transport`] jobs: each
//! incoming connection carries one length-delimited `job` frame naming a
//! spec range of the shared sweep grid; the daemon runs those episodes
//! through the same serial scratch loop every other sweep mode uses and
//! streams one report frame per episode back, in ascending index order,
//! ending with a `done` frame. The `sweep --hosts hosts.json` coordinator
//! on any machine can then merge several daemons' streams into output
//! bit-identical to a serial sweep.
//!
//! ```sh
//! # On each worker host:
//! seo-sweepd --listen 0.0.0.0:7641
//! # On the coordinator (hosts.json lists the workers):
//! sweep --hosts hosts.json --verify --scenarios 60 > merged.ndjson
//! ```
//!
//! `--listen 127.0.0.1:0` lets the OS pick a free port; the daemon prints
//! the actual address as its first stdout line
//! (`seo-sweepd listening on ADDR`) so scripts and tests can scrape it.
//!
//! `--kernel NAME` (default `SEO_KERNEL`, then `scalar`) selects the
//! inference kernel backend the daemon runs episodes with. Backends are
//! bit-identical by the `seo_nn::kernel` contract, so hosts in one pool may
//! run different backends without breaking the merge (see `docs/kernels.md`).
//!
//! `--fail-after K` is a fault-injection knob for testing the
//! coordinator's re-sharding: every connection is dropped without a `done`
//! frame after emitting K reports, exactly like a host dying mid-stream.
//! Never use it in production pools.

use seo_core::prelude::*;
use seo_core::transport::WorkerServer;
use std::io::Write as _;
use std::sync::Arc;

/// `%KERNELS%` is filled from [`KernelBackend::valid_names`] so the usage
/// text can never go stale against the enum. Printed with exit code 0 on
/// `--help` and exit code 2 on any argument error.
const USAGE_TEMPLATE: &str =
    "usage: sweepd [--listen HOST:PORT] [--kernel NAME] [--fail-after K]\n  \
    --listen     address to accept coordinator connections on (default 127.0.0.1:7641)\n  \
    --kernel     inference kernel backend: %KERNELS% (default scalar, or\n               \
    SEO_KERNEL; bit-identical output, see docs/kernels.md)\n  \
    --fail-after drop every connection after K reports, without a done frame \
    (fault-injection testing only)\n  \
    --help, -h   print this usage and exit 0";

struct Cli {
    listen: String,
    fail_after: Option<usize>,
    kernel: KernelBackend,
}

/// Everything `parse_cli` can ask `main` to do besides serving.
enum CliOutcome {
    Run(Cli),
    Help,
}

fn parse_cli() -> Result<CliOutcome, String> {
    let mut listen = "127.0.0.1:7641".to_owned();
    let mut fail_after = None;
    // An unknown SEO_KERNEL value is an argument error, same as --kernel.
    let mut kernel =
        KernelBackend::from_env().map_err(|e| format!("{}: {e}", KernelBackend::ENV_VAR))?;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(CliOutcome::Help),
            "--listen" => listen = value("--listen")?,
            "--kernel" => {
                kernel = value("--kernel")?
                    .parse::<KernelBackend>()
                    .map_err(|e| format!("--kernel: {e}"))?;
            }
            "--fail-after" => {
                fail_after = Some(
                    value("--fail-after")?
                        .parse::<usize>()
                        .map_err(|e| format!("--fail-after: {e}"))?,
                );
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(CliOutcome::Run(Cli {
        listen,
        fail_after,
        kernel,
    }))
}

fn main() {
    let cli = match parse_cli() {
        Ok(CliOutcome::Run(cli)) => cli,
        Ok(CliOutcome::Help) => {
            println!(
                "{}",
                USAGE_TEMPLATE.replace("%KERNELS%", &KernelBackend::valid_names())
            );
            return;
        }
        Err(e) => {
            eprintln!("sweepd: {e}");
            eprintln!(
                "{}",
                USAGE_TEMPLATE.replace("%KERNELS%", &KernelBackend::valid_names())
            );
            std::process::exit(2);
        }
    };
    let run = || -> Result<(), Box<dyn std::error::Error>> {
        let config = SeoConfig::paper_defaults();
        let models = ModelSet::paper_setup(config.tau)?;
        let runtime =
            RuntimeLoop::new(config, models, OptimizerKind::Offloading)?.with_kernel(cli.kernel);
        let server = WorkerServer::bind(&cli.listen)?;
        // Backends are bit-identical by contract, so a mixed fleet is fine;
        // the note is purely informational.
        eprintln!("seo-sweepd: kernel backend '{}'", cli.kernel);
        // First stdout line is machine-readable: scripts scrape the actual
        // address (essential with `--listen 127.0.0.1:0`).
        println!("seo-sweepd listening on {}", server.local_addr()?);
        std::io::stdout().flush()?;
        if let Some(k) = cli.fail_after {
            eprintln!(
                "seo-sweepd: fault injection armed: dropping every connection after {k} report(s)"
            );
        }
        server.serve(Arc::new(runtime), cli.fail_after)?;
        Ok(())
    };
    if let Err(e) = run() {
        eprintln!("sweepd: {e}");
        std::process::exit(1);
    }
}
