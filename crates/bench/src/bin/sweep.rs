//! The scenario-sweep throughput harness plus parameter sweeps beyond the
//! paper's reported cells.
//!
//! Phase 1 — **throughput**: fans a scenario × seed grid through
//! [`BatchRunner`] serially and on all cores, verifies the parallel output
//! is bit-identical to the serial loop, and writes `BENCH_sweep.json`
//! (scenarios/sec, ns/step, speedup, allocation audit) so later PRs have a
//! perf trajectory to compare against.
//!
//! Phase 2 — **sensitivity**: channel quality, offload payload size, and
//! gating level, each printed as one series.
//!
//! ```sh
//! SEO_RUNS=5 cargo run --release -p seo-bench --bin sweep
//! ```

use seo_bench::json::Json;
use seo_bench::report::{pct, runs_from_env, Table};
use seo_core::batch::{BatchRunner, ScenarioSpec};
use seo_core::prelude::*;
use seo_core::runtime::RuntimeLoop;
use seo_platform::units::Bits;
use seo_platform::units::BitsPerSecond;
use seo_sim::scenario::ScenarioConfig;
use seo_wireless::channel::RayleighChannel;
use seo_wireless::link::WirelessLink;
use std::time::Instant;

fn paper_runtime(optimizer: OptimizerKind) -> Result<RuntimeLoop, SeoError> {
    let config = SeoConfig::paper_defaults();
    let models = ModelSet::paper_setup(config.tau)?;
    RuntimeLoop::new(config, models, optimizer)
}

struct SweepTiming {
    label: String,
    scenarios: usize,
    steps: usize,
    elapsed_secs: f64,
}

impl SweepTiming {
    fn scenarios_per_sec(&self) -> f64 {
        self.scenarios as f64 / self.elapsed_secs.max(1e-12)
    }

    fn ns_per_step(&self) -> f64 {
        self.elapsed_secs * 1e9 / self.steps.max(1) as f64
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("label", self.label.as_str().into()),
            ("scenarios", self.scenarios.into()),
            ("steps", self.steps.into()),
            ("elapsed_secs", self.elapsed_secs.into()),
            ("scenarios_per_sec", self.scenarios_per_sec().into()),
            ("ns_per_step", self.ns_per_step().into()),
        ])
    }
}

fn timed_sweep(
    label: &str,
    runner: &BatchRunner,
    specs: &[ScenarioSpec],
    serial: bool,
) -> (SweepTiming, Vec<EpisodeReport>) {
    let start = Instant::now();
    let reports = if serial {
        runner.run_serial(specs)
    } else {
        runner.run(specs)
    };
    let elapsed_secs = start.elapsed().as_secs_f64();
    let steps: usize = reports.iter().map(|r| r.steps).sum();
    (
        SweepTiming {
            label: label.to_owned(),
            scenarios: specs.len(),
            steps,
            elapsed_secs,
        },
        reports,
    )
}

fn throughput_phase(scenarios: usize) -> Result<Json, SeoError> {
    let runner = BatchRunner::new(paper_runtime(OptimizerKind::Offloading)?);
    let per_count = scenarios.div_ceil(3);
    let specs = ScenarioSpec::grid(&[0, 2, 4], per_count, 2023);
    println!(
        "sweep throughput: {} scenarios ({} per obstacle count) on {} worker(s)\n",
        specs.len(),
        per_count,
        runner.threads()
    );

    let (serial, serial_reports) = timed_sweep("serial", &runner, &specs, true);
    let (parallel, parallel_reports) = timed_sweep("parallel", &runner, &specs, false);
    let identical = serial_reports == parallel_reports;
    assert!(
        identical,
        "parallel sweep must be bit-identical to the serial loop"
    );

    let mut table = Table::new(vec!["mode", "scenarios/s", "ns/step", "elapsed"]);
    for t in [&serial, &parallel] {
        table.push_row(vec![
            t.label.clone(),
            format!("{:.1}", t.scenarios_per_sec()),
            format!("{:.0}", t.ns_per_step()),
            format!("{:.2} s", t.elapsed_secs),
        ]);
    }
    println!("{table}");
    let speedup = serial.elapsed_secs / parallel.elapsed_secs.max(1e-12);
    println!("parallel speedup: {speedup:.2}x, bit-identical: {identical}\n");

    Ok(Json::obj(vec![
        ("threads", runner.threads().into()),
        ("serial", serial.to_json()),
        ("parallel", parallel.to_json()),
        ("speedup", speedup.into()),
        ("bit_identical", identical.into()),
        (
            // A static design claim, not a runtime measurement (no counting
            // allocator in this offline build): the per-step heap
            // allocations the scratch rework removed from the episode loop —
            // the scheduler's StepPlan slot list, the neural controller's
            // feature vector + one Vec per MLP layer, and the per-run world
            // clone (amortized across the episode). Re-verified by the
            // hot_path bench; update alongside any hot-loop change.
            "allocs_eliminated_per_step_design",
            Json::obj(vec![
                ("step_plan", 1u32.into()),
                ("neural_policy_forward", 4u32.into()),
                ("world_clone_per_run", 1u32.into()),
            ]),
        ),
    ]))
}

fn gains_with_link(link: WirelessLink, runs: usize) -> Result<f64, SeoError> {
    let runtime = paper_runtime(OptimizerKind::Offloading)?.with_link(link);
    let mut optimized = seo_platform::energy::EnergyLedger::new();
    let mut baseline = seo_platform::energy::EnergyLedger::new();
    let mut scratch = EpisodeScratch::new();
    let mut collected = 0usize;
    let mut seed = 0u64;
    while collected < runs && seed < 200 {
        let world = ScenarioConfig::new(2).with_seed(seed).generate();
        let report = runtime.run_with(WorldSource::Static(&world), seed, &mut scratch);
        if report.is_success() {
            for m in &report.models {
                optimized.merge(&m.optimized);
                baseline.merge(&m.baseline);
            }
            collected += 1;
        }
        seed += 1;
    }
    Ok(optimized.gain_over(&baseline)?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let runs = runs_from_env().min(10);

    // Phase 1: sweep throughput + BENCH_sweep.json.
    let sweep_scenarios = std::env::var("SEO_SWEEP_SCENARIOS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(60)
        .max(3);
    let throughput = throughput_phase(sweep_scenarios)?;
    let dump = Json::obj(vec![
        ("schema", "seo-bench-sweep/v1".into()),
        ("throughput", throughput),
    ]);
    std::fs::write("BENCH_sweep.json", dump.render_pretty())?;
    println!("wrote BENCH_sweep.json\n");

    println!("sensitivity sweeps ({runs} successful runs per point)\n");

    // 2. Channel-scale sweep: how gracefully do offloading gains degrade as
    //    the Rayleigh scale shrinks below the paper's 20 Mbps?
    let mut table = Table::new(vec!["rayleigh scale", "offloading gain"]);
    for mbps in [5.0, 10.0, 20.0, 40.0] {
        let link = WirelessLink::new(
            RayleighChannel::new(BitsPerSecond::from_mbps(mbps))?,
            Bits::from_kilobytes(25.0),
            seo_platform::units::Watts::new(1.3),
            seo_platform::units::Seconds::from_millis(1.0),
        )?;
        table.push_row(vec![
            format!("{mbps:.0} Mbps"),
            pct(gains_with_link(link, runs)?),
        ]);
    }
    println!("{table}");

    // 3. Payload sweep: bigger offload payloads eat the radio budget and
    //    miss more deadlines.
    let mut table = Table::new(vec!["payload", "offloading gain"]);
    for kb in [10.0, 25.0, 50.0, 100.0] {
        let link = WirelessLink::paper_default()?.with_payload(Bits::from_kilobytes(kb))?;
        table.push_row(vec![
            format!("{kb:.0} kB"),
            pct(gains_with_link(link, runs)?),
        ]);
    }
    println!("{table}");

    // 4. Gating-level sweep (the Fig. 1 knob).
    let mut table = Table::new(vec!["gating level", "gating gain"]);
    for level in [0.0, 0.25, 0.5, 0.75] {
        let result = ExperimentConfig::paper_defaults()
            .with_optimizer(OptimizerKind::ModelGating)
            .with_gating_level(level)
            .with_runs(runs)
            .run_auto()?;
        table.push_row(vec![
            format!("{:.0}%", level * 100.0),
            pct(result.summary.combined_gain),
        ]);
    }
    println!("{table}");
    Ok(())
}
