//! Parameter sweeps beyond the paper's reported cells: channel quality,
//! offload payload size, and deadline conservatism. Each sweep prints one
//! series suitable for sensitivity analysis.
//!
//! ```sh
//! SEO_RUNS=5 cargo run --release -p seo-bench --bin sweep
//! ```

use seo_bench::report::{pct, runs_from_env, Table};
use seo_core::prelude::*;
use seo_platform::units::Bits;
use seo_wireless::channel::RayleighChannel;
use seo_wireless::link::WirelessLink;
use seo_platform::units::BitsPerSecond;
use seo_core::runtime::RuntimeLoop;
use seo_sim::scenario::ScenarioConfig;

fn gains_with_link(link: WirelessLink, runs: usize) -> Result<f64, SeoError> {
    let config = SeoConfig::paper_defaults();
    let models = ModelSet::paper_setup(config.tau)?;
    let runtime =
        RuntimeLoop::new(config, models, OptimizerKind::Offloading)?.with_link(link);
    let mut optimized = seo_platform::energy::EnergyLedger::new();
    let mut baseline = seo_platform::energy::EnergyLedger::new();
    let mut collected = 0usize;
    let mut seed = 0u64;
    while collected < runs && seed < 200 {
        let world = ScenarioConfig::new(2).with_seed(seed).generate();
        let report = runtime.run_episode(world, seed);
        if report.is_success() {
            for m in &report.models {
                optimized.merge(&m.optimized);
                baseline.merge(&m.baseline);
            }
            collected += 1;
        }
        seed += 1;
    }
    Ok(optimized.gain_over(&baseline)?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let runs = runs_from_env().min(10);
    println!("sensitivity sweeps ({runs} successful runs per point)\n");

    // 1. Channel-scale sweep: how gracefully do offloading gains degrade as
    //    the Rayleigh scale shrinks below the paper's 20 Mbps?
    let mut table = Table::new(vec!["rayleigh scale", "offloading gain"]);
    for mbps in [5.0, 10.0, 20.0, 40.0] {
        let link = WirelessLink::new(
            RayleighChannel::new(BitsPerSecond::from_mbps(mbps))?,
            Bits::from_kilobytes(25.0),
            seo_platform::units::Watts::new(1.3),
            seo_platform::units::Seconds::from_millis(1.0),
        )?;
        table.push_row(vec![format!("{mbps:.0} Mbps"), pct(gains_with_link(link, runs)?)]);
    }
    println!("{table}");

    // 2. Payload sweep: bigger offload payloads eat the radio budget and
    //    miss more deadlines.
    let mut table = Table::new(vec!["payload", "offloading gain"]);
    for kb in [10.0, 25.0, 50.0, 100.0] {
        let link = WirelessLink::paper_default()?.with_payload(Bits::from_kilobytes(kb))?;
        table.push_row(vec![format!("{kb:.0} kB"), pct(gains_with_link(link, runs)?)]);
    }
    println!("{table}");

    // 3. Gating-level sweep (the Fig. 1 knob).
    let mut table = Table::new(vec!["gating level", "gating gain"]);
    for level in [0.0, 0.25, 0.5, 0.75] {
        let result = ExperimentConfig::paper_defaults()
            .with_optimizer(OptimizerKind::ModelGating)
            .with_gating_level(level)
            .with_runs(runs)
            .run()?;
        table.push_row(vec![
            format!("{:.0}%", level * 100.0),
            pct(result.summary.combined_gain),
        ]);
    }
    println!("{table}");
    Ok(())
}
