//! The scenario-sweep harness: every run mode is sugar over one declarative
//! [`SweepPlan`] (see `seo_core::plan` and `docs/plans.md`).
//!
//! **Plan mode** (the primary entry point): `--plan plan.json` loads a
//! versioned, validated plan file describing the multi-axis grid
//! (obstacles × τ × gating × control mode × optimizer × controller × seeds)
//! and the execution machinery (serial / threads / worker processes / TCP
//! hosts), runs it, and streams the merged NDJSON report lines to stdout.
//! A plan with a `report` section additionally folds exactly-associative
//! per-cell sketches (`seo_core::agg`): mode `summary` replaces the
//! episode stream with per-cell summary NDJSON (byte-identical across all
//! four engines — no per-episode line crosses a process or host
//! boundary), `both` appends it after the episode stream, and
//! `report.book` upserts a named-run row into the committed results book
//! (see `docs/reporting.md`). `--check` validates and summarizes a plan
//! without running anything. Committed presets live in `examples/plans/`.
//!
//! **Legacy flags desugar into plans**: `--workers N` / `--hosts FILE` /
//! `--worker START..END` with `--scenarios`/`--seed` build the paper-preset
//! plan (`SweepPlan::paper`) and run it through the same engines, so their
//! output is byte-identical to what they produced before plans existed.
//!
//! **Harness mode** (no mode flag) keeps the original two phases:
//!
//! Phase 1 — **throughput**: fans the paper-preset grid through
//! [`BatchRunner`] serially and on all cores, verifies the parallel output
//! is bit-identical to the serial loop, and writes `BENCH_sweep.json`
//! (scenarios/sec, ns/step, speedup, grid-point provenance) so later PRs
//! have a perf trajectory to compare against.
//!
//! Phase 2 — **sensitivity**: channel quality, offload payload size, and
//! gating level, each printed as one series.
//!
//! ```sh
//! sweep --plan examples/plans/paper.json --verify > merged.ndjson
//! sweep --workers 4 --verify --scenarios 60 > merged.ndjson
//! sweep --hosts hosts.json --verify --scenarios 60 > merged.ndjson
//! SEO_RUNS=5 cargo run --release -p seo-bench --bin sweep
//! ```
//!
//! `--verify` (or `"verify": true` in the plan) reruns the grid serially
//! in-process and exits non-zero unless the merged output is bit-identical.
//! `--kernel NAME` selects the inference kernel backend (default: the
//! plan's `exec.kernel` in plan mode, else `SEO_KERNEL`, then `scalar`);
//! backends are bit-identical by the `seo_nn::kernel` contract, so this is
//! a pure speed knob (see `docs/kernels.md`).

use seo_bench::json::Json;
use seo_bench::report::{pct, runs_from_env, Table};
use seo_core::batch::{BatchRunner, ScenarioSpec};
use seo_core::falsify;
use seo_core::plan::{ExecMode, SweepPlan};
use seo_core::prelude::*;
use seo_core::runtime::RuntimeLoop;
use seo_core::shard::{self, Coordinator, ShardPlanner};
use seo_core::transport::RemoteCoordinator;
use seo_platform::units::Bits;
use seo_platform::units::BitsPerSecond;
use seo_sim::scenario::ScenarioConfig;
use seo_wireless::channel::RayleighChannel;
use seo_wireless::link::WirelessLink;
use std::io::Write as _;
use std::time::Instant;

fn paper_runtime(optimizer: OptimizerKind, kernel: KernelBackend) -> Result<RuntimeLoop, SeoError> {
    let config = SeoConfig::paper_defaults();
    let models = ModelSet::paper_setup(config.tau)?;
    Ok(RuntimeLoop::new(config, models, optimizer)?.with_kernel(kernel))
}

struct SweepTiming {
    label: String,
    scenarios: usize,
    steps: usize,
    elapsed_secs: f64,
}

impl SweepTiming {
    fn scenarios_per_sec(&self) -> f64 {
        self.scenarios as f64 / self.elapsed_secs.max(1e-12)
    }

    fn ns_per_step(&self) -> f64 {
        self.elapsed_secs * 1e9 / self.steps.max(1) as f64
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("label", self.label.as_str().into()),
            ("scenarios", self.scenarios.into()),
            ("steps", self.steps.into()),
            ("elapsed_secs", self.elapsed_secs.into()),
            ("scenarios_per_sec", self.scenarios_per_sec().into()),
            ("ns_per_step", self.ns_per_step().into()),
        ])
    }
}

fn timed_sweep(
    label: &str,
    runner: &BatchRunner,
    specs: &[ScenarioSpec],
    serial: bool,
) -> (SweepTiming, Vec<EpisodeReport>) {
    let start = Instant::now();
    let reports = if serial {
        runner.run_serial(specs)
    } else {
        runner.run(specs)
    };
    let elapsed_secs = start.elapsed().as_secs_f64();
    let steps: usize = reports.iter().map(|r| r.steps).sum();
    (
        SweepTiming {
            label: label.to_owned(),
            scenarios: specs.len(),
            steps,
            elapsed_secs,
        },
        reports,
    )
}

fn throughput_phase(
    scenarios: usize,
    base_seed: u64,
    kernel: KernelBackend,
) -> Result<Json, SeoError> {
    // The throughput grid is the paper-preset plan; its JSON rides along in
    // BENCH_sweep.json as grid-point provenance for every row below.
    let plan = SweepPlan::paper(scenarios, base_seed).with_kernel(kernel);
    let runner = BatchRunner::new(paper_runtime(OptimizerKind::Offloading, kernel)?);
    let specs = ScenarioSpec::paper_grid(scenarios, base_seed);
    let per_count = specs.len() / 3;
    println!(
        "sweep throughput: {} scenarios ({} per obstacle count) on {} worker(s), \
         kernel backend '{kernel}'\n",
        specs.len(),
        per_count,
        runner.threads()
    );

    let (serial, serial_reports) = timed_sweep("serial", &runner, &specs, true);
    let (parallel, parallel_reports) = timed_sweep("parallel", &runner, &specs, false);
    let identical = serial_reports == parallel_reports;
    assert!(
        identical,
        "parallel sweep must be bit-identical to the serial loop"
    );

    let mut table = Table::new(vec!["mode", "scenarios/s", "ns/step", "elapsed"]);
    for t in [&serial, &parallel] {
        table.push_row(vec![
            t.label.clone(),
            format!("{:.1}", t.scenarios_per_sec()),
            format!("{:.0}", t.ns_per_step()),
            format!("{:.2} s", t.elapsed_secs),
        ]);
    }
    println!("{table}");
    let speedup = serial.elapsed_secs / parallel.elapsed_secs.max(1e-12);
    println!("parallel speedup: {speedup:.2}x, bit-identical: {identical}\n");

    // Per-backend cells: the harness default is the potential-field
    // controller, which contains no dense kernels — so these cells rerun
    // the same grid serially under a fixed-seed *neural* controller, once
    // per kernel backend, putting the backend genuinely in the per-step
    // loop. Policy seed 0 is an initialization known to complete routes
    // untrained, so the cells time full-length episodes rather than
    // fail-fast crashes. The first backend (scalar) is the bit-exactness
    // reference; the gated serial/parallel rows above keep the chosen
    // backend. Each cell records the grid cell it ran as provenance.
    let neural_cell = seo_core::plan::CellConfig {
        controller: ControllerKind::SeededNeural(0),
        ..plan.cells()[0].0
    };
    let mut backend_cells = Vec::new();
    let mut backend_table = Table::new(vec!["kernel", "scenarios/s", "ns/step", "elapsed"]);
    let mut reference: Option<Vec<EpisodeReport>> = None;
    for backend in KernelBackend::ALL {
        let backend_runner = BatchRunner::new(neural_cell.runtime(backend)?);
        let label = format!("neural/{}", backend.name());
        let (timing, reports) = timed_sweep(&label, &backend_runner, &specs, true);
        match &reference {
            None => reference = Some(reports),
            Some(expected) => assert!(
                *expected == reports,
                "kernel backend '{backend}' must be bit-identical to '{}'",
                KernelBackend::ALL[0]
            ),
        }
        backend_table.push_row(vec![
            backend.name().to_owned(),
            format!("{:.1}", timing.scenarios_per_sec()),
            format!("{:.0}", timing.ns_per_step()),
            format!("{:.2} s", timing.elapsed_secs),
        ]);
        let Json::Obj(mut cell) = timing.to_json() else {
            unreachable!("to_json returns an object")
        };
        cell.push(("kernel".to_owned(), backend.name().into()));
        cell.push(("grid".to_owned(), neural_cell.to_json()));
        backend_cells.push(Json::Obj(cell));
    }
    println!("per-backend serial sweeps, neural controller (all bit-identical)\n{backend_table}");

    let async_cell = async_overlap_cell(base_seed, kernel)?;

    let Json::Obj(mut serial_row) = serial.to_json() else {
        unreachable!("to_json returns an object")
    };
    serial_row.push(("grid".to_owned(), plan.cells()[0].0.to_json()));
    let Json::Obj(mut parallel_row) = parallel.to_json() else {
        unreachable!("to_json returns an object")
    };
    parallel_row.push(("grid".to_owned(), plan.cells()[0].0.to_json()));

    Ok(Json::obj(vec![
        ("threads", runner.threads().into()),
        ("kernel", kernel.name().into()),
        // The plan whose expanded grid produced every row in this dump —
        // grid-point provenance for the perf trajectory.
        ("plan", plan.to_json()),
        ("serial", Json::Obj(serial_row)),
        ("parallel", Json::Obj(parallel_row)),
        ("speedup", speedup.into()),
        ("bit_identical", identical.into()),
        ("kernels", Json::Arr(backend_cells)),
        // The overlapped-offload win on the bursty channel (see
        // docs/async.md): one reactor, window 1 (= the blocking cost
        // model) vs a deep in-flight window, offload waits scaled down to
        // wall-clock by WallClockPacer so the I/O overlap is measurable in
        // an offline build.
        ("async", async_cell),
        (
            // A static design claim, not a runtime measurement (no counting
            // allocator in this offline build): the per-step heap
            // allocations the scratch rework removed from the episode loop —
            // the scheduler's StepPlan slot list, the neural controller's
            // feature vector + one Vec per MLP layer, and the per-run world
            // clone (amortized across the episode). Re-verified by the
            // hot_path bench; update alongside any hot-loop change.
            "allocs_eliminated_per_step_design",
            Json::obj(vec![
                ("step_plan", 1u32.into()),
                ("neural_policy_forward", 4u32.into()),
                ("world_clone_per_run", 1u32.into()),
            ]),
        ),
    ]))
}

/// The `throughput.async` BENCH cell: the same bursty-channel grid run
/// through one reactor at window 1 (pacing every offload wait serially —
/// the blocking cost model) and at a deep window (waits overlap across the
/// episodes in flight). Offload waits are virtual time; `WallClockPacer`
/// converts them to real sleeps at a fixed scale so the overlap win shows
/// up on the wall clock without inflating the offline bench. Both runs
/// must stay bit-identical — pacing never touches the completion order.
fn async_overlap_cell(base_seed: u64, kernel: KernelBackend) -> Result<Json, SeoError> {
    const SCENARIOS: usize = 12;
    const IN_FLIGHT: usize = 16;
    const PACE_SCALE: f64 = 0.01; // 11 ms of simulated offload -> 110 us of wall
    let plan = SweepPlan::paper(SCENARIOS, base_seed)
        .with_channels(vec![ChannelKind::Bursty])
        .with_kernel(kernel)
        .with_offload(OffloadExec::Async {
            in_flight: IN_FLIGHT,
        });
    let (cell, _) = plan.cells().remove(0);
    let runtime = cell.runtime(kernel)?;
    let paced_run = |window: usize| {
        let reactor = Reactor::new(window);
        let mut pacer = WallClockPacer::new(PACE_SCALE);
        let mut reports = Vec::with_capacity(plan.n_specs());
        let start = Instant::now();
        let finished = reactor.run_paced(
            0..plan.n_specs(),
            |i| cell.spawn_task(&runtime, plan.point_at(i).expect("in grid").spec),
            &mut pacer,
            |_, report| {
                reports.push(report);
                true
            },
        );
        assert!(finished, "paced reactor run must drain the grid");
        (start.elapsed().as_secs_f64(), reports)
    };
    let (blocking_secs, blocking_reports) = paced_run(1);
    let (async_secs, async_reports) = paced_run(IN_FLIGHT);
    let identical = blocking_reports == async_reports;
    assert!(
        identical,
        "async offload must be bit-identical to the blocking run"
    );
    let overlap_speedup = blocking_secs / async_secs.max(1e-12);
    let per_sec = |secs: f64| plan.n_specs() as f64 / secs.max(1e-12);
    println!(
        "async offload overlap (bursty channel, paced {PACE_SCALE}x): \
         window 1 {:.1}/s, window {IN_FLIGHT} {:.1}/s -> {overlap_speedup:.2}x, \
         bit-identical: {identical}\n",
        per_sec(blocking_secs),
        per_sec(async_secs),
    );
    Ok(Json::obj(vec![
        ("scenarios", plan.n_specs().into()),
        ("in_flight", IN_FLIGHT.into()),
        ("pace_scale", PACE_SCALE.into()),
        ("blocking_secs", blocking_secs.into()),
        ("async_secs", async_secs.into()),
        ("blocking_scenarios_per_sec", per_sec(blocking_secs).into()),
        ("async_scenarios_per_sec", per_sec(async_secs).into()),
        ("overlap_speedup", overlap_speedup.into()),
        ("bit_identical", identical.into()),
        ("grid", cell.to_json()),
    ]))
}

fn gains_with_link(
    link: WirelessLink,
    runs: usize,
    kernel: KernelBackend,
) -> Result<f64, SeoError> {
    let runtime = paper_runtime(OptimizerKind::Offloading, kernel)?.with_link(link);
    let mut optimized = seo_platform::energy::EnergyLedger::new();
    let mut baseline = seo_platform::energy::EnergyLedger::new();
    let mut scratch = EpisodeScratch::new();
    let mut collected = 0usize;
    let mut seed = 0u64;
    while collected < runs && seed < 200 {
        let world = ScenarioConfig::new(2).with_seed(seed).generate();
        let report = runtime.run_with(WorldSource::Static(&world), seed, &mut scratch);
        if report.is_success() {
            for m in &report.models {
                optimized.merge(&m.optimized);
                baseline.merge(&m.baseline);
            }
            collected += 1;
        }
        seed += 1;
    }
    Ok(optimized.gain_over(&baseline)?)
}

/// Which of the binary's entry points to run. Every variant except
/// `Harness` executes through the effective [`SweepPlan`].
enum Mode {
    /// The original throughput + sensitivity harness.
    Harness,
    /// One shard of the effective plan's grid, streaming wire lines to
    /// stdout.
    Worker(Shard),
    /// Run the effective plan (loaded from `--plan`, or desugared from
    /// `--workers` / `--hosts`).
    Plan,
    /// Falsification: search the plan's grid for violating episodes per its
    /// `falsify` section, streaming counterexamples as NDJSON.
    Falsify,
}

struct Cli {
    mode: Mode,
    /// The effective plan every mode executes (or validates).
    plan: SweepPlan,
    /// Where the plan file lives when loaded via `--plan` (worker processes
    /// reload it from here).
    plan_path: Option<String>,
    /// Validate and summarize the plan, run nothing.
    check: bool,
    verify: bool,
    kernel: KernelBackend,
    scenarios: usize,
    base_seed: u64,
    /// Where `--falsify` writes counterexample replay plans.
    falsify_dir: String,
}

/// The CLI grammar template, printed with exit code 0 on `--help` and exit
/// code 2 on any argument error; `%KERNELS%` is filled from
/// [`KernelBackend::valid_names`] so the usage text can never go stale
/// against the enum.
const USAGE_TEMPLATE: &str = "usage: sweep [MODE] [OPTIONS]\n\
    modes:\n  \
    (none)                  throughput + sensitivity harness, writes BENCH_sweep.json\n  \
    --plan FILE             run the sweep plan in FILE (serial / threads / processes /\n                          \
    hosts per its exec section); a report section switches\n                          \
    stdout to per-cell summary NDJSON and can name a results\n                          \
    book (docs/reporting.md); see docs/plans.md and\n                          \
    examples/plans/\n  \
    --workers N [--verify]  multi-process coordinator over N local worker processes\n  \
    --hosts FILE [--verify] multi-host coordinator over the seo-sweepd pool in FILE\n                          \
    (JSON: {\"v\":1,\"hosts\":[{\"addr\":\"host:port\",\"capacity\":N},...]})\n  \
    --worker START..END     run one shard; the range is half-open, decimal,\n                          \
    START < END (e.g. --worker 0..15)\n\
    --plan FILE --falsify   adversarial search for violating episodes per the\n                          \
    plan's falsify section; counterexamples stream as NDJSON\n                          \
    and replay plans land in --falsify-dir (see\n                          \
    docs/falsification.md)\n\
    options:\n  \
    --check                 validate and summarize the plan, run nothing (exit 0\n                          \
    when valid, 2 with every problem named otherwise)\n  \
    --falsify-dir DIR       where --falsify writes cx-N.json replay plans and\n                          \
    cx-N.expected.ndjson wire lines (default: counterexamples)\n  \
    --scenarios N           paper-grid size for flag modes (default 60, or\n                          \
    SEO_SWEEP_SCENARIOS; ignored with --plan)\n  \
    --seed S                paper-grid base seed for flag modes (default 2023)\n  \
    --kernel NAME           inference kernel backend: %KERNELS%\n                          \
    (default: the plan's exec.kernel with --plan, else SEO_KERNEL,\n                          \
    then scalar; bit-identical output, see docs/kernels.md)\n  \
    --timeout-secs T        multi-host connect/read timeout (default 30, or the\n                          \
    plan's exec.timeout_secs)\n  \
    --verify                rerun the grid serially in-process and fail unless\n                          \
    the merged output is bit-identical\n  \
    --help, -h              print this usage and exit 0";

fn usage() -> String {
    USAGE_TEMPLATE.replace("%KERNELS%", &KernelBackend::valid_names())
}

/// Everything `parse_cli` can ask `main` to do besides running a mode.
enum CliOutcome {
    Run(Box<Cli>),
    Help,
}

#[allow(clippy::too_many_lines)]
fn parse_cli() -> Result<CliOutcome, String> {
    enum ModeFlag {
        None,
        Worker(Shard),
        Workers(usize),
        Hosts(String),
    }
    let mut mode_flag = ModeFlag::None;
    let mut verify = false;
    let mut check = false;
    let mut falsify_flag = false;
    let mut falsify_dir = "counterexamples".to_owned();
    let mut plan_path: Option<String> = None;
    let mut timeout_flag: Option<f64> = None;
    let mut kernel_flag: Option<KernelBackend> = None;
    // `--scenarios` defaults to the env knob the CI smoke already uses.
    let mut scenarios = std::env::var("SEO_SWEEP_SCENARIOS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(60);
    let mut base_seed = 2023u64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(CliOutcome::Help),
            "--plan" => plan_path = Some(value("--plan")?),
            "--check" => check = true,
            "--falsify" => falsify_flag = true,
            "--falsify-dir" => falsify_dir = value("--falsify-dir")?,
            "--workers" => {
                let n = value("--workers")?
                    .parse::<usize>()
                    .map_err(|e| format!("--workers: {e}"))?;
                mode_flag = ModeFlag::Workers(n);
            }
            "--worker" => {
                let shard = value("--worker")?.parse::<Shard>().map_err(|e| {
                    format!("--worker: {e} (expected a half-open decimal range START..END with START < END)")
                })?;
                mode_flag = ModeFlag::Worker(shard);
            }
            "--hosts" => mode_flag = ModeFlag::Hosts(value("--hosts")?),
            "--timeout-secs" => {
                // try_from_secs_f64 also rules out values Duration cannot
                // represent, which would otherwise panic at use.
                timeout_flag = Some(
                    value("--timeout-secs")?
                        .parse::<f64>()
                        .ok()
                        .filter(|t| *t > 0.0 && std::time::Duration::try_from_secs_f64(*t).is_ok())
                        .ok_or("--timeout-secs: expected a positive number of seconds")?,
                );
            }
            "--verify" => verify = true,
            "--scenarios" => {
                scenarios = value("--scenarios")?
                    .parse::<usize>()
                    .map_err(|e| format!("--scenarios: {e}"))?;
            }
            "--seed" => {
                base_seed = value("--seed")?
                    .parse::<u64>()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--kernel" => {
                kernel_flag = Some(
                    value("--kernel")?
                        .parse::<KernelBackend>()
                        .map_err(|e| format!("--kernel: {e}"))?,
                );
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    scenarios = scenarios.max(3);
    // An unknown SEO_KERNEL value is as much an argument error as an
    // unknown flag value — never silently fall back. Plans are
    // self-contained, so with --plan the env default is not consulted
    // (the explicit --kernel flag still overrides either source).
    let env_kernel =
        || KernelBackend::from_env().map_err(|e| format!("{}: {e}", KernelBackend::ENV_VAR));

    // Build the effective plan: loaded from --plan, or the paper preset the
    // legacy flags have always described.
    let (mut plan, mode) = if let Some(path) = &plan_path {
        if matches!(mode_flag, ModeFlag::Workers(_) | ModeFlag::Hosts(_)) {
            return Err(
                "--plan carries its own execution mode; drop --workers / --hosts".to_owned(),
            );
        }
        let text = std::fs::read_to_string(path).map_err(|e| format!("--plan {path}: {e}"))?;
        let plan = SweepPlan::parse(&text).map_err(|e| format!("--plan {path}: {e}"))?;
        let mode = match mode_flag {
            ModeFlag::Worker(_) if falsify_flag => {
                return Err("--falsify runs the search in-process; drop --worker".to_owned());
            }
            ModeFlag::Worker(shard) => Mode::Worker(shard),
            _ if falsify_flag => {
                if plan.falsify.is_none() {
                    return Err(format!(
                        "--falsify: plan {path} has no falsify section (see docs/falsification.md)"
                    ));
                }
                Mode::Falsify
            }
            _ => Mode::Plan,
        };
        (plan, mode)
    } else if falsify_flag {
        return Err(
            "--falsify requires --plan FILE (the falsify section lives in the plan)".to_owned(),
        );
    } else {
        let paper = SweepPlan::paper(scenarios, base_seed).with_kernel(env_kernel()?);
        match mode_flag {
            ModeFlag::None if check => (paper, Mode::Plan),
            ModeFlag::None => (paper, Mode::Harness),
            ModeFlag::Worker(shard) => (paper, Mode::Worker(shard)),
            ModeFlag::Workers(n) => (paper.with_mode(ExecMode::Processes(n)), Mode::Plan),
            ModeFlag::Hosts(path) => {
                let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
                let pool = HostPool::parse(&text).map_err(|e| format!("{path}: {e}"))?;
                (paper.with_mode(ExecMode::Hosts(pool)), Mode::Plan)
            }
        }
    };
    // Explicit flags override the plan's execution section.
    if let Some(kernel) = kernel_flag {
        plan = plan.with_kernel(kernel);
    }
    if let Some(timeout) = timeout_flag {
        plan = plan.with_timeout_secs(timeout);
    }
    if verify {
        plan = plan.with_verify(true);
    }
    if matches!(mode, Mode::Harness | Mode::Worker(_)) && verify {
        return Err("--verify only applies to plan / --workers / --hosts modes".to_owned());
    }
    plan.validate().map_err(|e| e.to_string())?;
    let kernel = plan.kernel;
    let verify = plan.verify;
    Ok(CliOutcome::Run(Box::new(Cli {
        mode,
        plan,
        plan_path,
        check,
        verify,
        kernel,
        scenarios,
        base_seed,
        falsify_dir,
    })))
}

/// `--worker START..END`: run one shard of the effective plan's grid
/// through the same serial scratch loop every mode uses, streaming one wire
/// line per episode. Stdout carries **only** protocol lines; anything human
/// goes to stderr.
///
/// When the plan's report mode is pure `summary`, the shard folds locally
/// and stdout carries exactly **one** [`shard::summary_line`] — per-episode
/// NDJSON never crosses the process boundary (the coordinator rejects a
/// summary-mode worker that prints more than one line).
fn worker_mode(cli: &Cli, shard: Shard) -> Result<(), Box<dyn std::error::Error>> {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if !cli.plan.emits_episodes() {
        let mut summary = cli.plan.run_summary();
        cli.plan.run_range(shard, cli.kernel, |i, report| {
            summary.record(i, &report);
            true
        })?;
        writeln!(out, "{}", shard::summary_line(shard, &summary.fragment()))?;
        out.flush()?;
        return Ok(());
    }
    let mut write_error: Option<std::io::Error> = None;
    // A failed write (e.g. the coordinator died and the pipe broke) stops
    // the shard immediately — no point computing episodes nobody reads.
    cli.plan.run_range(shard, cli.kernel, |i, report| {
        let result = writeln!(out, "{}", shard::report_line(i, &report)).and_then(|()| out.flush());
        match result {
            Ok(()) => true,
            Err(e) => {
                write_error = Some(e);
                false
            }
        }
    })?;
    if let Some(e) = write_error {
        return Err(Box::new(e));
    }
    Ok(())
}

/// `--check`: validate (already done at parse time) and summarize the plan.
fn check_mode(cli: &Cli) {
    let plan = &cli.plan;
    println!("plan OK: {plan}");
    println!(
        "  grid: {} spec(s) in {} cell(s)",
        plan.n_specs(),
        plan.cells().len()
    );
    // Per-axis cardinalities, so a grid blow-up is visible at a glance
    // before the resolved schedule scrolls past.
    let cardinalities: Vec<String> = plan
        .axes
        .cardinalities()
        .iter()
        .map(|(name, n)| format!("{name} x{n}"))
        .collect();
    println!("  axes: {}", cardinalities.join(", "));
    for (cell, range) in plan.cells() {
        println!("    [{}..{}) {cell}", range.start, range.end);
    }
    if let Some(falsify) = &plan.falsify {
        println!("  falsify: {falsify}");
    }
    if let Some(report) = &plan.report {
        println!("  report: {report}");
    }
    println!(
        "  exec: {}, kernel '{}', timeout {} s, verify {}",
        plan.mode, plan.kernel, plan.timeout_secs, plan.verify
    );
    // The resolved offload window: how many episodes each worker keeps in
    // flight ("1" = blocking, the default).
    println!(
        "  offload: {} -> window {}",
        plan.offload,
        plan.offload.window()
    );
    // Hosts mode: resolve the lease schedule so plan authors can
    // sanity-check chunking before committing to a run.
    if let ExecMode::Hosts(pool) = &plan.mode {
        let n_specs = plan.n_specs();
        let n_hosts = pool.hosts().len();
        let chunk = pool.chunk().resolve(n_specs, n_hosts);
        println!(
            "  schedule: chunk {chunk} -> {} lease(s) over {n_hosts} host(s)",
            n_specs.div_ceil(chunk)
        );
    }
}

/// The argv that re-invokes this binary as a worker process for the
/// effective plan: a file-loaded plan travels by path (workers reload the
/// identical grid — and with it the report section), the desugared paper
/// plan as the legacy grid flags it came from. Either way the effective
/// kernel is forwarded so workers run the backend the operator chose.
fn worker_invocation(cli: &Cli) -> std::io::Result<(std::path::PathBuf, Vec<String>)> {
    let program = std::env::current_exe()?;
    let mut args: Vec<String> = match &cli.plan_path {
        Some(path) => vec!["--plan".to_owned(), path.clone()],
        None => vec![
            "--scenarios".to_owned(),
            cli.scenarios.to_string(),
            "--seed".to_owned(),
            cli.base_seed.to_string(),
        ],
    };
    args.extend(["--kernel".to_owned(), cli.plan.kernel.name().to_owned()]);
    Ok((program, args))
}

/// Prints the fleet's loss record and structured stats to stderr, records
/// them in `BENCH_sweep.json` when a harness run left one behind, and
/// returns the human label for the closing summary line.
fn report_fleet(pool: &HostPool, stats: &RemoteRunStats) -> String {
    for loss in &stats.hosts_lost {
        eprintln!(
            "sweep: host {} lost to a {} fault ({}); {} spec(s) re-queued for re-issue",
            loss.addr, loss.class, loss.message, loss.reassigned
        );
    }
    // Structured fleet summary: one machine-readable stderr line, and —
    // when a harness run left BENCH_sweep.json behind — the same object
    // recorded there as provenance.
    let stats_json = stats.to_json();
    eprintln!("sweep: remote stats {}", stats_json.render());
    if let Err(e) = record_bench_field("remote_stats", &stats_json) {
        eprintln!("sweep: could not record remote stats in BENCH_sweep.json: {e}");
    }
    format!(
        "over {} host(s) (chunk {}, {} lease(s), {} re-issue(s), \
         {} steal(s), {} retry(ies), {} quarantine(s), {} readmission(s))",
        pool.hosts().len(),
        stats.chunk,
        stats.leases,
        stats.reissues,
        stats.steals,
        stats.retries,
        stats.quarantines,
        stats.readmissions
    )
}

/// The engine leg of a book row's run id.
fn engine_name(mode: &ExecMode) -> &'static str {
    match mode {
        ExecMode::Serial => "serial",
        ExecMode::Threads(_) => "threads",
        ExecMode::Processes(_) => "processes",
        ExecMode::Hosts(_) => "hosts",
    }
}

/// Runs the effective plan per its execution mode, streaming merged wire
/// lines to stdout, then verifies against the in-process serial rerun when
/// asked. One function, four engines — the tentpole of the plan API.
///
/// Report routing: pure `summary` mode diverts to
/// [`run_summary_plan_mode`] (no episode line is ever written, and the
/// distributed engines ship sketches instead of episodes); `both` keeps
/// the episode stream and folds a [`RunSummary`] from it locally, emitting
/// the per-cell summary lines after the episode stream ends.
fn run_plan_mode(cli: &Cli) -> Result<(), Box<dyn std::error::Error>> {
    let plan = &cli.plan;
    if !plan.emits_episodes() {
        return run_summary_plan_mode(cli);
    }
    let start = Instant::now();
    let stdout = std::io::stdout();
    let mut fold = plan.emits_summary().then(|| plan.run_summary());
    let mut merged: Vec<EpisodeReport> =
        Vec::with_capacity(if cli.verify { plan.n_specs() } else { 0 });
    let mut streamed = 0usize;
    let mut write_error: Option<std::io::Error> = None;
    // Returns the keep-going flag `run_range` understands: the serial path
    // stops computing as soon as stdout breaks (`sweep --plan … | head`
    // must not run the whole grid); the distributed paths drain their
    // merges but stop writing.
    let mut sink = |i: usize, report: EpisodeReport| -> bool {
        if write_error.is_none() {
            let result = writeln!(&stdout, "{}", shard::report_line(i, &report))
                .and_then(|()| (&stdout).flush());
            if let Err(e) = result {
                write_error = Some(e);
            }
        }
        streamed += 1;
        if let Some(summary) = fold.as_mut() {
            summary.record(i, &report);
        }
        if cli.verify {
            merged.push(report);
        }
        write_error.is_none()
    };

    let label: String = match &plan.mode {
        ExecMode::Serial => {
            plan.run_range(Shard::new(0, plan.n_specs()), plan.kernel, &mut sink)?;
            "serially".to_owned()
        }
        ExecMode::Threads(threads) => {
            for (i, report) in plan.run_threads(*threads)?.into_iter().enumerate() {
                if !sink(i, report) {
                    break;
                }
            }
            format!("over {threads} thread(s)")
        }
        ExecMode::Processes(workers) => {
            // Re-invoke this binary as worker processes.
            let shard_plan = ShardPlanner::new(*workers).plan(plan.n_specs())?;
            let (program, args) = worker_invocation(cli)?;
            let coordinator = Coordinator::new(program).with_args(args);
            coordinator.run_streaming(&shard_plan, |i, report| {
                sink(i, report);
            })?;
            format!("over {} worker process(es)", shard_plan.shards().len())
        }
        ExecMode::Hosts(pool) => {
            let coordinator = RemoteCoordinator::new(pool.clone())
                .with_timeout(std::time::Duration::from_secs_f64(plan.timeout_secs));
            let stats = coordinator.run_plan_streaming(plan, |i, report| {
                sink(i, report);
            })?;
            report_fleet(pool, &stats)
        }
    };
    if let Some(e) = write_error {
        return Err(Box::new(e));
    }
    let elapsed = start.elapsed().as_secs_f64();
    eprintln!(
        "plan sweep: {streamed} scenario(s) {label} in {elapsed:.2} s ({:.1}/s)",
        streamed as f64 / elapsed.max(1e-12),
    );

    if cli.verify {
        verify_against_plan_serial(plan, &merged)?;
    }
    if let Some(summary) = &fold {
        emit_summary(cli, summary, elapsed)?;
    }
    Ok(())
}

/// Pure `summary` report mode: no per-episode NDJSON leaves any engine.
/// Serial and threads fold in-process; worker processes each print exactly
/// one [`shard::summary_line`] for their shard
/// ([`Coordinator::run_summaries`] rejects anything more); hosts ship one
/// all-or-nothing summary wire frame per lease
/// ([`RemoteCoordinator::run_plan_summary`]). Stdout carries only the
/// folded per-cell summary lines — byte-identical across all four engines
/// because every sketch operation is exactly associative and fragments
/// fold in spec-index order (see `docs/reporting.md`).
fn run_summary_plan_mode(cli: &Cli) -> Result<(), Box<dyn std::error::Error>> {
    let plan = &cli.plan;
    let start = Instant::now();
    let mut summary = plan.run_summary();
    let label: String = match &plan.mode {
        ExecMode::Serial => {
            plan.run_range(Shard::new(0, plan.n_specs()), plan.kernel, |i, report| {
                summary.record(i, &report);
                true
            })?;
            "serially".to_owned()
        }
        ExecMode::Threads(threads) => {
            for (i, report) in plan.run_threads(*threads)?.into_iter().enumerate() {
                summary.record(i, &report);
            }
            format!("over {threads} thread(s)")
        }
        ExecMode::Processes(workers) => {
            let shard_plan = ShardPlanner::new(*workers).plan(plan.n_specs())?;
            let (program, args) = worker_invocation(cli)?;
            let coordinator = Coordinator::new(program).with_args(args);
            summary.fold_fragments(coordinator.run_summaries(&shard_plan)?)?;
            format!("over {} worker process(es)", shard_plan.shards().len())
        }
        ExecMode::Hosts(pool) => {
            let coordinator = RemoteCoordinator::new(pool.clone())
                .with_timeout(std::time::Duration::from_secs_f64(plan.timeout_secs));
            let (folded, stats) = coordinator.run_plan_summary(plan)?;
            summary = folded;
            report_fleet(pool, &stats)
        }
    };
    let elapsed = start.elapsed().as_secs_f64();
    let episodes = summary.episodes();
    eprintln!(
        "plan sweep: {episodes} scenario(s) {label} in {elapsed:.2} s ({:.1}/s), \
         summary mode ({} cell line(s), no episode stream)",
        episodes as f64 / elapsed.max(1e-12),
        summary.cells().len(),
    );
    if cli.verify {
        verify_against_serial_summary(plan, &summary)?;
    }
    emit_summary(cli, &summary, elapsed)
}

/// Writes the folded per-cell summary NDJSON to stdout, upserts the
/// results-book row when the report section names a book, and records
/// `report_stats` provenance in `BENCH_sweep.json` when a harness dump is
/// present. Timing feeds only the book and provenance — never the
/// byte-compared summary stream.
fn emit_summary(
    cli: &Cli,
    summary: &RunSummary,
    elapsed_secs: f64,
) -> Result<(), Box<dyn std::error::Error>> {
    let report = cli
        .plan
        .report
        .as_ref()
        .expect("summary emission requires a report section");
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in summary.lines(&report.quantiles) {
        writeln!(out, "{line}")?;
    }
    out.flush()?;
    drop(out);
    let engine = engine_name(&cli.plan.mode);
    let scenarios_per_sec = summary.episodes() as f64 / elapsed_secs.max(1e-12);
    if let Some(book) = &report.book {
        let overall = summary.overall();
        let stem = cli.plan_path.as_deref().map_or("paper", |p| {
            std::path::Path::new(p)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("plan")
        });
        let row = seo_bench::book::BookRow {
            run_id: format!("{stem}/{engine}/{}", cli.plan.kernel.name()),
            timestamp_secs: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            grid: format!(
                "{} specs / {} cells",
                cli.plan.n_specs(),
                cli.plan.cells().len()
            ),
            scenarios_per_sec,
            energy_gain_mean: overall.energy_gain.mean(),
            delta_max_p50: overall.delta_max.quantile(0.5),
            delta_max_p99: overall.delta_max.quantile(0.99),
        };
        seo_bench::book::upsert(book, &row).map_err(|e| format!("report.book {book}: {e}"))?;
        eprintln!("sweep: book row '{}' upserted in {book}", row.run_id);
    }
    let stats = Json::obj(vec![
        ("mode", report.mode.name().into()),
        (
            "quantiles",
            Json::Arr(report.quantiles.iter().map(|q| (*q).into()).collect()),
        ),
        ("engine", engine.into()),
        ("cells", summary.cells().len().into()),
        ("episodes", summary.episodes().into()),
        ("scenarios_per_sec", scenarios_per_sec.into()),
        (
            "book",
            report.book.as_deref().map_or(Json::Null, Json::from),
        ),
    ]);
    if let Err(e) = record_bench_field("report_stats", &stats) {
        eprintln!("sweep: could not record report stats in BENCH_sweep.json: {e}");
    }
    Ok(())
}

/// Reruns the grid serially in-process, folds it, and fails unless the
/// rendered summary lines are **byte-identical** to the merged fold.
fn verify_against_serial_summary(
    plan: &SweepPlan,
    merged: &RunSummary,
) -> Result<(), Box<dyn std::error::Error>> {
    let report = plan
        .report
        .as_ref()
        .expect("summary mode requires a report section");
    let mut serial = plan.run_summary();
    for (i, r) in plan.run_serial()?.into_iter().enumerate() {
        serial.record(i, &r);
    }
    if serial.lines(&report.quantiles) != merged.lines(&report.quantiles) {
        return Err("merged summary is NOT bit-identical to the serial fold".into());
    }
    eprintln!("verify: merged summary is bit-identical to the serial fold");
    Ok(())
}

/// `--falsify`: run the deterministic search over the plan's grid,
/// streaming one NDJSON counterexample line to stdout per (deduplicated)
/// violation, and writing each shrunk replay plan plus its expected wire
/// line into `--falsify-dir` (`cx-N.json` / `cx-N.expected.ndjson`).
/// `--verify` replays every emitted plan in-process and fails unless the
/// replay is bit-identical to the recorded episode. Search provenance is
/// patched into `BENCH_sweep.json` when a harness run left one behind.
fn run_falsify_mode(cli: &Cli) -> Result<(), Box<dyn std::error::Error>> {
    let plan = &cli.plan;
    let start = Instant::now();
    let outcome = falsify::falsify(plan)?;
    let stdout = std::io::stdout();
    std::fs::create_dir_all(&cli.falsify_dir)
        .map_err(|e| format!("--falsify-dir {}: {e}", cli.falsify_dir))?;
    for (i, cx) in outcome.counterexamples.iter().enumerate() {
        writeln!(&stdout, "{}", cx.line(i))?;
        let plan_path = format!("{}/cx-{i}.json", cli.falsify_dir);
        let expected_path = format!("{}/cx-{i}.expected.ndjson", cli.falsify_dir);
        std::fs::write(&plan_path, cx.plan.to_json().render_pretty())?;
        std::fs::write(&expected_path, format!("{}\n", cx.expected_line()))?;
        if cli.verify {
            let replay = cx.plan.run_serial()?;
            if replay.len() != 1 || shard::report_line(0, &replay[0]) != cx.expected_line() {
                return Err(format!(
                    "counterexample {i}: replay of {plan_path} is NOT bit-identical \
                     to the recorded episode"
                )
                .into());
            }
        }
    }
    if cli.verify {
        eprintln!(
            "verify: {} counterexample replay(s) bit-identical",
            outcome.counterexamples.len()
        );
    }
    let spec = plan.falsify.expect("falsify mode requires the section");
    let elapsed = start.elapsed().as_secs_f64();
    eprintln!(
        "falsify: {} counterexample(s) from {} evaluation(s) \
         ({} restart(s), {} shrink step(s)) in {elapsed:.2} s — {spec}",
        outcome.counterexamples.len(),
        outcome.stats.evaluations,
        outcome.stats.restarts,
        outcome.stats.shrink_steps,
    );
    if let Err(e) = record_bench_field("falsify_stats", &outcome.stats.to_json()) {
        eprintln!("sweep: could not record falsify stats in BENCH_sweep.json: {e}");
    }
    Ok(())
}

/// Patches provenance JSON (the fleet's [`RemoteRunStats`], a falsification
/// run's search stats) into `BENCH_sweep.json` under `field` — upserting,
/// so reruns replace rather than accumulate. No dump in the working
/// directory, no patch: runs outside a bench workflow stay side-effect
/// free.
fn record_bench_field(field: &str, stats: &Json) -> Result<(), Box<dyn std::error::Error>> {
    const PATH: &str = "BENCH_sweep.json";
    let text = match std::fs::read_to_string(PATH) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(Box::new(e)),
    };
    let json = Json::parse(&text).map_err(|e| format!("{PATH}: {e}"))?;
    let Json::Obj(mut pairs) = json else {
        return Err(format!("{PATH}: expected a JSON object").into());
    };
    pairs.retain(|(key, _)| key != field);
    pairs.push((field.to_owned(), stats.clone()));
    std::fs::write(PATH, Json::Obj(pairs).render_pretty())?;
    eprintln!("sweep: {field} recorded in {PATH}");
    Ok(())
}

/// Reruns the plan's grid serially in-process and fails unless `merged`
/// matches it field-for-field **and** byte-for-byte on the wire. The rerun
/// uses this process's effective kernel backend, so a fleet on a different
/// backend (or a mixed fleet) is held to cross-backend bit-identity too.
fn verify_against_plan_serial(
    plan: &SweepPlan,
    merged: &[EpisodeReport],
) -> Result<(), Box<dyn std::error::Error>> {
    let serial = plan.run_serial()?;
    if serial != merged {
        return Err("merged output is NOT bit-identical to the serial sweep".into());
    }
    // Belt and braces: the serialized wire bytes must match too.
    for (i, (m, s)) in merged.iter().zip(&serial).enumerate() {
        if shard::report_line(i, m) != shard::report_line(i, s) {
            return Err(format!("wire line {i} differs between merge and serial run").into());
        }
    }
    eprintln!("verify: merged output is bit-identical to the serial sweep");
    Ok(())
}

fn run_harness(
    scenarios: usize,
    base_seed: u64,
    kernel: KernelBackend,
) -> Result<(), Box<dyn std::error::Error>> {
    let runs = runs_from_env().min(10);

    // Phase 1: sweep throughput + BENCH_sweep.json.
    let throughput = throughput_phase(scenarios, base_seed, kernel)?;
    let dump = Json::obj(vec![
        ("schema", "seo-bench-sweep/v1".into()),
        ("throughput", throughput),
    ]);
    std::fs::write("BENCH_sweep.json", dump.render_pretty())?;
    println!("wrote BENCH_sweep.json\n");

    println!("sensitivity sweeps ({runs} successful runs per point)\n");

    // 2. Channel-scale sweep: how gracefully do offloading gains degrade as
    //    the Rayleigh scale shrinks below the paper's 20 Mbps?
    let mut table = Table::new(vec!["rayleigh scale", "offloading gain"]);
    for mbps in [5.0, 10.0, 20.0, 40.0] {
        let link = WirelessLink::new(
            RayleighChannel::new(BitsPerSecond::from_mbps(mbps))?,
            Bits::from_kilobytes(25.0),
            seo_platform::units::Watts::new(1.3),
            seo_platform::units::Seconds::from_millis(1.0),
        )?;
        table.push_row(vec![
            format!("{mbps:.0} Mbps"),
            pct(gains_with_link(link, runs, kernel)?),
        ]);
    }
    println!("{table}");

    // 3. Payload sweep: bigger offload payloads eat the radio budget and
    //    miss more deadlines.
    let mut table = Table::new(vec!["payload", "offloading gain"]);
    for kb in [10.0, 25.0, 50.0, 100.0] {
        let link = WirelessLink::paper_default()?.with_payload(Bits::from_kilobytes(kb))?;
        table.push_row(vec![
            format!("{kb:.0} kB"),
            pct(gains_with_link(link, runs, kernel)?),
        ]);
    }
    println!("{table}");

    // 4. Gating-level sweep (the Fig. 1 knob).
    let mut table = Table::new(vec!["gating level", "gating gain"]);
    for level in [0.0, 0.25, 0.5, 0.75] {
        let result = ExperimentConfig::paper_defaults()
            .with_optimizer(OptimizerKind::ModelGating)
            .with_gating_level(level)
            .with_runs(runs)
            .run_auto()?;
        table.push_row(vec![
            format!("{:.0}%", level * 100.0),
            pct(result.summary.combined_gain),
        ]);
    }
    println!("{table}");
    Ok(())
}

fn main() {
    // Argument/plan errors exit 2 with the grammar; --help exits 0; runtime
    // failures exit 1.
    let cli = match parse_cli() {
        Ok(CliOutcome::Run(cli)) => cli,
        Ok(CliOutcome::Help) => {
            println!("{}", usage());
            return;
        }
        Err(e) => {
            eprintln!("sweep: {e}");
            eprintln!("{}", usage());
            std::process::exit(2);
        }
    };
    if cli.check {
        check_mode(&cli);
        return;
    }
    let result = match cli.mode {
        Mode::Harness => run_harness(cli.scenarios, cli.base_seed, cli.kernel),
        Mode::Worker(shard) => worker_mode(&cli, shard),
        Mode::Plan => run_plan_mode(&cli),
        Mode::Falsify => run_falsify_mode(&cli),
    };
    if let Err(e) = result {
        eprintln!("sweep: {e}");
        std::process::exit(1);
    }
}
