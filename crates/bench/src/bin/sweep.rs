//! The scenario-sweep throughput harness plus parameter sweeps beyond the
//! paper's reported cells.
//!
//! Phase 1 — **throughput**: fans a scenario × seed grid through
//! [`BatchRunner`] serially and on all cores, verifies the parallel output
//! is bit-identical to the serial loop, and writes `BENCH_sweep.json`
//! (scenarios/sec, ns/step, speedup, allocation audit) so later PRs have a
//! perf trajectory to compare against.
//!
//! Phase 2 — **sensitivity**: channel quality, offload payload size, and
//! gating level, each printed as one series.
//!
//! ```sh
//! SEO_RUNS=5 cargo run --release -p seo-bench --bin sweep
//! ```
//!
//! **Distributed modes** (see `seo_core::shard` and `seo_core::transport`):
//! `--workers N` runs the same grid as a coordinator over N worker
//! *processes* (this binary re-invoked with `--worker`); `--hosts FILE`
//! runs it as a coordinator over the TCP worker *hosts* (`seo-sweepd`
//! daemons) listed in the JSON host pool, re-sharding around host losses.
//! Both stream line-delimited JSON reports into a deterministic merge and
//! print the merged lines to stdout; `--verify` additionally reruns the
//! grid serially in-process and exits non-zero unless the merged output is
//! bit-identical. `--worker START..END` runs one shard. `--scenarios` /
//! `--seed` fix the grid on every side. `--kernel NAME` (default
//! `SEO_KERNEL`, then `scalar`) selects the inference kernel backend in
//! every mode — backends are bit-identical by the `seo_nn::kernel`
//! contract, so this is a pure speed knob (see `docs/kernels.md`).
//!
//! ```sh
//! sweep --workers 4 --verify --scenarios 60 > merged.ndjson
//! sweep --hosts hosts.json --verify --scenarios 60 > merged.ndjson
//! ```

use seo_bench::json::Json;
use seo_bench::report::{pct, runs_from_env, Table};
use seo_core::batch::{BatchRunner, ScenarioSpec};
use seo_core::prelude::*;
use seo_core::runtime::RuntimeLoop;
use seo_core::shard::{self, Coordinator, ShardPlanner};
use seo_core::transport::{HostPool, RemoteCoordinator};
use seo_platform::units::Bits;
use seo_platform::units::BitsPerSecond;
use seo_sim::scenario::ScenarioConfig;
use seo_wireless::channel::RayleighChannel;
use seo_wireless::link::WirelessLink;
use std::io::Write as _;
use std::time::Instant;

fn paper_runtime(optimizer: OptimizerKind, kernel: KernelBackend) -> Result<RuntimeLoop, SeoError> {
    let config = SeoConfig::paper_defaults();
    let models = ModelSet::paper_setup(config.tau)?;
    Ok(RuntimeLoop::new(config, models, optimizer)?.with_kernel(kernel))
}

struct SweepTiming {
    label: String,
    scenarios: usize,
    steps: usize,
    elapsed_secs: f64,
}

impl SweepTiming {
    fn scenarios_per_sec(&self) -> f64 {
        self.scenarios as f64 / self.elapsed_secs.max(1e-12)
    }

    fn ns_per_step(&self) -> f64 {
        self.elapsed_secs * 1e9 / self.steps.max(1) as f64
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("label", self.label.as_str().into()),
            ("scenarios", self.scenarios.into()),
            ("steps", self.steps.into()),
            ("elapsed_secs", self.elapsed_secs.into()),
            ("scenarios_per_sec", self.scenarios_per_sec().into()),
            ("ns_per_step", self.ns_per_step().into()),
        ])
    }
}

fn timed_sweep(
    label: &str,
    runner: &BatchRunner,
    specs: &[ScenarioSpec],
    serial: bool,
) -> (SweepTiming, Vec<EpisodeReport>) {
    let start = Instant::now();
    let reports = if serial {
        runner.run_serial(specs)
    } else {
        runner.run(specs)
    };
    let elapsed_secs = start.elapsed().as_secs_f64();
    let steps: usize = reports.iter().map(|r| r.steps).sum();
    (
        SweepTiming {
            label: label.to_owned(),
            scenarios: specs.len(),
            steps,
            elapsed_secs,
        },
        reports,
    )
}

/// The sweep grid shared by the throughput phase and the distributed modes:
/// `scenarios` cells spread over the paper's {0, 2, 4} obstacle counts.
/// Coordinator and workers (process- and host-level — `seo-sweepd` builds
/// the same grid) must use identical arguments, which is why the
/// coordinator forwards `--scenarios` / `--seed` verbatim.
fn grid(scenarios: usize, base_seed: u64) -> Vec<ScenarioSpec> {
    ScenarioSpec::paper_grid(scenarios, base_seed)
}

fn throughput_phase(
    scenarios: usize,
    base_seed: u64,
    kernel: KernelBackend,
) -> Result<Json, SeoError> {
    let runner = BatchRunner::new(paper_runtime(OptimizerKind::Offloading, kernel)?);
    let specs = grid(scenarios, base_seed);
    let per_count = specs.len() / 3;
    println!(
        "sweep throughput: {} scenarios ({} per obstacle count) on {} worker(s), \
         kernel backend '{kernel}'\n",
        specs.len(),
        per_count,
        runner.threads()
    );

    let (serial, serial_reports) = timed_sweep("serial", &runner, &specs, true);
    let (parallel, parallel_reports) = timed_sweep("parallel", &runner, &specs, false);
    let identical = serial_reports == parallel_reports;
    assert!(
        identical,
        "parallel sweep must be bit-identical to the serial loop"
    );

    let mut table = Table::new(vec!["mode", "scenarios/s", "ns/step", "elapsed"]);
    for t in [&serial, &parallel] {
        table.push_row(vec![
            t.label.clone(),
            format!("{:.1}", t.scenarios_per_sec()),
            format!("{:.0}", t.ns_per_step()),
            format!("{:.2} s", t.elapsed_secs),
        ]);
    }
    println!("{table}");
    let speedup = serial.elapsed_secs / parallel.elapsed_secs.max(1e-12);
    println!("parallel speedup: {speedup:.2}x, bit-identical: {identical}\n");

    // Per-backend cells: the harness default is the potential-field
    // controller, which contains no dense kernels — so these cells rerun
    // the same grid serially under a fixed-seed *neural* controller, once
    // per kernel backend, putting the backend genuinely in the per-step
    // loop. Policy seed 0 is an initialization known to complete routes
    // untrained, so the cells time full-length episodes rather than
    // fail-fast crashes. The first backend (scalar) is the bit-exactness
    // reference; the gated serial/parallel rows above keep the chosen
    // backend.
    let mut backend_cells = Vec::new();
    let mut backend_table = Table::new(vec!["kernel", "scenarios/s", "ns/step", "elapsed"]);
    let mut reference: Option<Vec<EpisodeReport>> = None;
    for backend in KernelBackend::ALL {
        let backend_runner = BatchRunner::new(
            paper_runtime(OptimizerKind::Offloading, backend)?
                .with_controller(Controller::seeded_neural(0)),
        );
        let label = format!("neural/{}", backend.name());
        let (timing, reports) = timed_sweep(&label, &backend_runner, &specs, true);
        match &reference {
            None => reference = Some(reports),
            Some(expected) => assert!(
                *expected == reports,
                "kernel backend '{backend}' must be bit-identical to '{}'",
                KernelBackend::ALL[0]
            ),
        }
        backend_table.push_row(vec![
            backend.name().to_owned(),
            format!("{:.1}", timing.scenarios_per_sec()),
            format!("{:.0}", timing.ns_per_step()),
            format!("{:.2} s", timing.elapsed_secs),
        ]);
        let Json::Obj(mut cell) = timing.to_json() else {
            unreachable!("to_json returns an object")
        };
        cell.push(("kernel".to_owned(), backend.name().into()));
        backend_cells.push(Json::Obj(cell));
    }
    println!("per-backend serial sweeps, neural controller (all bit-identical)\n{backend_table}");

    Ok(Json::obj(vec![
        ("threads", runner.threads().into()),
        ("kernel", kernel.name().into()),
        ("serial", serial.to_json()),
        ("parallel", parallel.to_json()),
        ("speedup", speedup.into()),
        ("bit_identical", identical.into()),
        ("kernels", Json::Arr(backend_cells)),
        (
            // A static design claim, not a runtime measurement (no counting
            // allocator in this offline build): the per-step heap
            // allocations the scratch rework removed from the episode loop —
            // the scheduler's StepPlan slot list, the neural controller's
            // feature vector + one Vec per MLP layer, and the per-run world
            // clone (amortized across the episode). Re-verified by the
            // hot_path bench; update alongside any hot-loop change.
            "allocs_eliminated_per_step_design",
            Json::obj(vec![
                ("step_plan", 1u32.into()),
                ("neural_policy_forward", 4u32.into()),
                ("world_clone_per_run", 1u32.into()),
            ]),
        ),
    ]))
}

fn gains_with_link(
    link: WirelessLink,
    runs: usize,
    kernel: KernelBackend,
) -> Result<f64, SeoError> {
    let runtime = paper_runtime(OptimizerKind::Offloading, kernel)?.with_link(link);
    let mut optimized = seo_platform::energy::EnergyLedger::new();
    let mut baseline = seo_platform::energy::EnergyLedger::new();
    let mut scratch = EpisodeScratch::new();
    let mut collected = 0usize;
    let mut seed = 0u64;
    while collected < runs && seed < 200 {
        let world = ScenarioConfig::new(2).with_seed(seed).generate();
        let report = runtime.run_with(WorldSource::Static(&world), seed, &mut scratch);
        if report.is_success() {
            for m in &report.models {
                optimized.merge(&m.optimized);
                baseline.merge(&m.baseline);
            }
            collected += 1;
        }
        seed += 1;
    }
    Ok(optimized.gain_over(&baseline)?)
}

/// Which of the binary's entry points to run.
enum Mode {
    /// The original throughput + sensitivity harness.
    Harness,
    /// One shard of the grid, streaming wire lines to stdout.
    Worker(Shard),
    /// Multi-process coordinator over `workers` shards.
    Coordinator { workers: usize, verify: bool },
    /// Multi-host coordinator over the `seo-sweepd` pool in a hosts file.
    Remote { hosts_path: String, verify: bool },
}

struct Cli {
    mode: Mode,
    scenarios: usize,
    base_seed: u64,
    timeout_secs: f64,
    kernel: KernelBackend,
}

/// The CLI grammar template, printed with exit code 2 on any argument
/// error; `%KERNELS%` is filled from [`KernelBackend::valid_names`] so the
/// usage text can never go stale against the enum.
const USAGE_TEMPLATE: &str = "usage: sweep [MODE] [--scenarios N] [--seed S]\n\
    modes:\n  \
    (none)                  throughput + sensitivity harness, writes BENCH_sweep.json\n  \
    --workers N [--verify]  multi-process coordinator over N local worker processes\n  \
    --hosts FILE [--verify] multi-host coordinator over the seo-sweepd pool in FILE\n                          \
    (JSON: {\"v\":1,\"hosts\":[{\"addr\":\"host:port\",\"capacity\":N},...]})\n  \
    --worker START..END     run one shard; the range is half-open, decimal,\n                          \
    START < END (e.g. --worker 0..15)\n\
    options:\n  \
    --scenarios N           grid size (default 60, or SEO_SWEEP_SCENARIOS)\n  \
    --seed S                grid base seed (default 2023)\n  \
    --kernel NAME           inference kernel backend: %KERNELS%\n                          \
    (default scalar, or SEO_KERNEL; bit-identical output,\n                          \
    see docs/kernels.md)\n  \
    --timeout-secs T        multi-host connect/read timeout (default 30)\n  \
    --verify                rerun the grid serially in-process and fail unless\n                          \
    the merged output is bit-identical";

fn parse_cli() -> Result<Cli, String> {
    let mut mode = Mode::Harness;
    let mut verify = false;
    let mut timeout_secs = 30.0f64;
    // `--scenarios` defaults to the env knob the CI smoke already uses.
    let mut scenarios = std::env::var("SEO_SWEEP_SCENARIOS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(60);
    let mut base_seed = 2023u64;
    // `--kernel` defaults to the SEO_KERNEL environment variable; an unknown
    // env value is as much an argument error as an unknown flag value.
    let mut kernel =
        KernelBackend::from_env().map_err(|e| format!("{}: {e}", KernelBackend::ENV_VAR))?;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--workers" => {
                let n = value("--workers")?
                    .parse::<usize>()
                    .map_err(|e| format!("--workers: {e}"))?;
                mode = Mode::Coordinator { workers: n, verify };
            }
            "--worker" => {
                let shard = value("--worker")?.parse::<Shard>().map_err(|e| {
                    format!("--worker: {e} (expected a half-open decimal range START..END with START < END)")
                })?;
                mode = Mode::Worker(shard);
            }
            "--hosts" => {
                mode = Mode::Remote {
                    hosts_path: value("--hosts")?,
                    verify,
                };
            }
            "--timeout-secs" => {
                // try_from_secs_f64 also rules out values Duration cannot
                // represent, which would otherwise panic at use.
                timeout_secs = value("--timeout-secs")?
                    .parse::<f64>()
                    .ok()
                    .filter(|t| *t > 0.0 && std::time::Duration::try_from_secs_f64(*t).is_ok())
                    .ok_or("--timeout-secs: expected a positive number of seconds")?;
            }
            "--verify" => verify = true,
            "--scenarios" => {
                scenarios = value("--scenarios")?
                    .parse::<usize>()
                    .map_err(|e| format!("--scenarios: {e}"))?;
            }
            "--seed" => {
                base_seed = value("--seed")?
                    .parse::<u64>()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--kernel" => {
                kernel = value("--kernel")?
                    .parse::<KernelBackend>()
                    .map_err(|e| format!("--kernel: {e}"))?;
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    // `--verify` may appear before or after the mode flag; re-apply it.
    match mode {
        Mode::Coordinator { workers, .. } => mode = Mode::Coordinator { workers, verify },
        Mode::Remote { hosts_path, .. } => mode = Mode::Remote { hosts_path, verify },
        Mode::Harness | Mode::Worker(_) => {
            if verify {
                return Err("--verify only applies to --workers / --hosts modes".to_owned());
            }
        }
    }
    Ok(Cli {
        mode,
        scenarios: scenarios.max(3),
        base_seed,
        timeout_secs,
        kernel,
    })
}

/// `--worker START..END`: run one shard of the grid through the same serial
/// scratch loop `run_serial` uses, streaming one wire line per episode.
/// Stdout carries **only** protocol lines; anything human goes to stderr.
fn worker_mode(
    shard: Shard,
    scenarios: usize,
    base_seed: u64,
    kernel: KernelBackend,
) -> Result<(), Box<dyn std::error::Error>> {
    let runtime = paper_runtime(OptimizerKind::Offloading, kernel)?;
    let specs = grid(scenarios, base_seed);
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    shard::run_worker_shard(&runtime, &specs, shard, &mut out)?;
    Ok(())
}

/// `--workers N`: plan shards, spawn N copies of this binary as worker
/// processes, stream-merge their reports deterministically, and emit each
/// merged wire line to stdout **as soon as its spec-index prefix is
/// complete** (not after the slowest worker). With `--verify`, rerun the
/// grid serially in-process and fail (non-zero exit) unless the merge is
/// bit-identical.
fn coordinator_mode(
    workers: usize,
    verify: bool,
    scenarios: usize,
    base_seed: u64,
    kernel: KernelBackend,
) -> Result<(), Box<dyn std::error::Error>> {
    let specs = grid(scenarios, base_seed);
    // Validates worker count vs grid, shard coverage, and emptiness before
    // any process spawns.
    let plan = ShardPlanner::new(workers).plan(specs.len())?;
    let program = std::env::current_exe()?;
    // `--kernel` is forwarded like the grid parameters: backends are
    // bit-identical so it cannot change the merge, but the worker processes
    // should run the backend the operator asked for.
    let coordinator = Coordinator::new(program).with_args([
        "--scenarios".to_owned(),
        scenarios.to_string(),
        "--seed".to_owned(),
        base_seed.to_string(),
        "--kernel".to_owned(),
        kernel.name().to_owned(),
    ]);

    let start = Instant::now();
    // `&Stdout` is Write and Sync, unlike StdoutLock which cannot cross the
    // Send bound the streaming sink carries. Reports are only retained when
    // --verify needs them; otherwise the sweep stays O(1) in grid size.
    let stdout = std::io::stdout();
    let mut merged: Vec<EpisodeReport> = Vec::with_capacity(if verify { specs.len() } else { 0 });
    let mut streamed = 0usize;
    let mut write_error: Option<std::io::Error> = None;
    coordinator.run_streaming(&plan, |i, report| {
        if write_error.is_none() {
            let result = writeln!(&stdout, "{}", shard::report_line(i, &report))
                .and_then(|()| (&stdout).flush());
            if let Err(e) = result {
                write_error = Some(e);
            }
        }
        streamed += 1;
        if verify {
            merged.push(report);
        }
    })?;
    if let Some(e) = write_error {
        return Err(Box::new(e));
    }
    let elapsed = start.elapsed().as_secs_f64();
    eprintln!(
        "sharded sweep: {streamed} scenarios over {} worker process(es) in {elapsed:.2} s ({:.1}/s)",
        plan.shards().len(),
        streamed as f64 / elapsed.max(1e-12),
    );

    if verify {
        verify_against_serial(&specs, &merged, kernel)?;
    }
    Ok(())
}

/// Reruns the grid serially in-process and fails unless `merged` matches it
/// field-for-field **and** byte-for-byte on the wire. The rerun uses this
/// process's own kernel backend, so a fleet on a different backend (or a
/// mixed fleet) is held to cross-backend bit-identity too.
fn verify_against_serial(
    specs: &[ScenarioSpec],
    merged: &[EpisodeReport],
    kernel: KernelBackend,
) -> Result<(), Box<dyn std::error::Error>> {
    let runner = BatchRunner::new(paper_runtime(OptimizerKind::Offloading, kernel)?);
    let serial = runner.run_serial(specs);
    if serial != merged {
        return Err("distributed merge is NOT bit-identical to the serial sweep".into());
    }
    // Belt and braces: the serialized wire bytes must match too.
    for (i, (m, s)) in merged.iter().zip(&serial).enumerate() {
        if shard::report_line(i, m) != shard::report_line(i, s) {
            return Err(format!("wire line {i} differs between merge and serial run").into());
        }
    }
    eprintln!("verify: merged output is bit-identical to the serial sweep");
    Ok(())
}

/// `--hosts FILE`: parse and validate the host pool, fan the grid out over
/// the `seo-sweepd` daemons it lists (shards weighted by capacity), merge
/// their TCP report streams deterministically, and emit each merged wire
/// line to stdout as soon as its spec-index prefix is complete. Host losses
/// are re-sharded across survivors and reported on stderr; the run only
/// fails when **every** host is lost with work outstanding. With
/// `--verify`, rerun the grid serially in-process and fail (non-zero exit)
/// unless the merge is bit-identical.
fn remote_mode(
    hosts_path: &str,
    verify: bool,
    scenarios: usize,
    base_seed: u64,
    timeout_secs: f64,
    kernel: KernelBackend,
) -> Result<(), Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(hosts_path).map_err(|e| format!("{hosts_path}: {e}"))?;
    let pool = HostPool::parse(&text).map_err(|e| format!("{hosts_path}: {e}"))?;
    let n_hosts = pool.hosts().len();
    let coordinator =
        RemoteCoordinator::new(pool).with_timeout(std::time::Duration::from_secs_f64(timeout_secs));
    let specs = grid(scenarios, base_seed);

    let start = Instant::now();
    let stdout = std::io::stdout();
    let mut merged: Vec<EpisodeReport> = Vec::with_capacity(if verify { specs.len() } else { 0 });
    let mut streamed = 0usize;
    let mut write_error: Option<std::io::Error> = None;
    let stats = coordinator.run_streaming(scenarios, base_seed, |i, report| {
        if write_error.is_none() {
            let result = writeln!(&stdout, "{}", shard::report_line(i, &report))
                .and_then(|()| (&stdout).flush());
            if let Err(e) = result {
                write_error = Some(e);
            }
        }
        streamed += 1;
        if verify {
            merged.push(report);
        }
    })?;
    if let Some(e) = write_error {
        return Err(Box::new(e));
    }
    let elapsed = start.elapsed().as_secs_f64();
    eprintln!(
        "multi-host sweep: {streamed} scenarios over {n_hosts} host(s) in {elapsed:.2} s \
         ({:.1}/s; {} job(s), {} wave(s))",
        streamed as f64 / elapsed.max(1e-12),
        stats.jobs,
        stats.waves,
    );
    for loss in &stats.hosts_lost {
        eprintln!(
            "multi-host sweep: host {} lost ({}); {} spec(s) re-sharded to survivors",
            loss.addr, loss.message, loss.reassigned
        );
    }

    if verify {
        verify_against_serial(&specs, &merged, kernel)?;
    }
    Ok(())
}

fn run_harness(
    scenarios: usize,
    base_seed: u64,
    kernel: KernelBackend,
) -> Result<(), Box<dyn std::error::Error>> {
    let runs = runs_from_env().min(10);

    // Phase 1: sweep throughput + BENCH_sweep.json.
    let throughput = throughput_phase(scenarios, base_seed, kernel)?;
    let dump = Json::obj(vec![
        ("schema", "seo-bench-sweep/v1".into()),
        ("throughput", throughput),
    ]);
    std::fs::write("BENCH_sweep.json", dump.render_pretty())?;
    println!("wrote BENCH_sweep.json\n");

    println!("sensitivity sweeps ({runs} successful runs per point)\n");

    // 2. Channel-scale sweep: how gracefully do offloading gains degrade as
    //    the Rayleigh scale shrinks below the paper's 20 Mbps?
    let mut table = Table::new(vec!["rayleigh scale", "offloading gain"]);
    for mbps in [5.0, 10.0, 20.0, 40.0] {
        let link = WirelessLink::new(
            RayleighChannel::new(BitsPerSecond::from_mbps(mbps))?,
            Bits::from_kilobytes(25.0),
            seo_platform::units::Watts::new(1.3),
            seo_platform::units::Seconds::from_millis(1.0),
        )?;
        table.push_row(vec![
            format!("{mbps:.0} Mbps"),
            pct(gains_with_link(link, runs, kernel)?),
        ]);
    }
    println!("{table}");

    // 3. Payload sweep: bigger offload payloads eat the radio budget and
    //    miss more deadlines.
    let mut table = Table::new(vec!["payload", "offloading gain"]);
    for kb in [10.0, 25.0, 50.0, 100.0] {
        let link = WirelessLink::paper_default()?.with_payload(Bits::from_kilobytes(kb))?;
        table.push_row(vec![
            format!("{kb:.0} kB"),
            pct(gains_with_link(link, runs, kernel)?),
        ]);
    }
    println!("{table}");

    // 4. Gating-level sweep (the Fig. 1 knob).
    let mut table = Table::new(vec!["gating level", "gating gain"]);
    for level in [0.0, 0.25, 0.5, 0.75] {
        let result = ExperimentConfig::paper_defaults()
            .with_optimizer(OptimizerKind::ModelGating)
            .with_gating_level(level)
            .with_runs(runs)
            .run_auto()?;
        table.push_row(vec![
            format!("{:.0}%", level * 100.0),
            pct(result.summary.combined_gain),
        ]);
    }
    println!("{table}");
    Ok(())
}

fn main() {
    // Argument errors exit 2 with the grammar; runtime failures exit 1.
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("sweep: {e}");
            eprintln!(
                "{}",
                USAGE_TEMPLATE.replace("%KERNELS%", &KernelBackend::valid_names())
            );
            std::process::exit(2);
        }
    };
    let result = match cli.mode {
        Mode::Harness => run_harness(cli.scenarios, cli.base_seed, cli.kernel),
        Mode::Worker(shard) => worker_mode(shard, cli.scenarios, cli.base_seed, cli.kernel),
        Mode::Coordinator { workers, verify } => {
            coordinator_mode(workers, verify, cli.scenarios, cli.base_seed, cli.kernel)
        }
        Mode::Remote { hosts_path, verify } => remote_mode(
            &hosts_path,
            verify,
            cli.scenarios,
            cli.base_seed,
            cli.timeout_secs,
            cli.kernel,
        ),
    };
    if let Err(e) = result {
        eprintln!("sweep: {e}");
        std::process::exit(1);
    }
}
