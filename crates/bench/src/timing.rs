//! Self-calibrating micro-bench harness for the `harness = false` bench
//! binaries.
//!
//! The build environment has no crates.io access, so instead of Criterion
//! the benches measure with `std::time::Instant`: warm up, calibrate an
//! iteration count that fills a target window, measure, and report the
//! per-iteration latency. Deliberately simple — the goal is pinning
//! regressions (ns/step drifting by multiples), not microsecond-perfect
//! statistics.

use std::hint::black_box;
use std::time::Instant;

/// Outcome of one measured benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark label, `group/name`.
    pub name: String,
    /// Iterations measured (after calibration).
    pub iters: u64,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
}

impl BenchResult {
    /// Iterations per second implied by the measurement.
    #[must_use]
    pub fn per_second(&self) -> f64 {
        if self.ns_per_iter > 0.0 {
            1.0e9 / self.ns_per_iter
        } else {
            f64::INFINITY
        }
    }
}

/// Measurement window per benchmark, milliseconds (`SEO_BENCH_MS`,
/// default 200).
#[must_use]
pub fn target_ms() -> u64 {
    std::env::var("SEO_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
        .max(1)
}

/// Runs `f` repeatedly: warms up, calibrates the iteration count to the
/// target window, measures, prints one `name  ns/iter` line, and returns
/// the result. The closure's return value is passed through [`black_box`]
/// so the work is not optimized away.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> BenchResult {
    // Warm-up and calibration: time a single iteration, then scale.
    let once = {
        let start = Instant::now();
        black_box(f());
        start.elapsed().as_nanos().max(1) as u64
    };
    let budget = target_ms() * 1_000_000;
    let iters = (budget / once).clamp(10, 10_000_000);
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let elapsed = start.elapsed();
    let ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
    let result = BenchResult {
        name: name.to_owned(),
        iters,
        ns_per_iter,
    };
    println!(
        "{:<52} {:>14.1} ns/iter  ({:>9.0} /s, {} iters)",
        result.name,
        result.ns_per_iter,
        result.per_second(),
        result.iters
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_and_labels() {
        let mut count = 0u64;
        let r = bench("test/increment", || {
            count += 1;
            count
        });
        assert_eq!(r.name, "test/increment");
        assert!(r.iters >= 10);
        assert!(r.ns_per_iter > 0.0);
        assert!(r.per_second() > 0.0);
        assert!(
            count >= r.iters,
            "closure ran at least the measured iterations"
        );
    }
}
