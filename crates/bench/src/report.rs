//! Plain-text table rendering for the harness binaries.

use std::fmt::Write as _;

/// Reads the per-cell successful-run budget from `SEO_RUNS` (default 25,
/// the paper's protocol; clamped to at least 1).
#[must_use]
pub fn runs_from_env() -> usize {
    std::env::var("SEO_RUNS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(25)
        .max(1)
}

/// A fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let mut cells: Vec<String> = row.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<w$}", w = *w);
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a fractional gain as a percentage string.
#[must_use]
pub fn pct(gain: f64) -> String {
    format!("{:.1}%", gain * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "gain"]);
        t.push_row(vec!["p=tau", "65.9%"]);
        t.push_row(vec!["p=2tau-long-name", "20.3%"]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.contains("p=2tau-long-name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.push_row(vec!["1"]);
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.659), "65.9%");
        assert_eq!(pct(0.0), "0.0%");
    }

    #[test]
    fn runs_from_env_default() {
        // Do not set the variable here (tests run in parallel); just check
        // the default path when unset or the parse fallback.
        let runs = runs_from_env();
        assert!(runs >= 1);
    }
}
