//! Minimal JSON emission for the harness binaries.
//!
//! The workspace is built without network access to crates.io, so instead
//! of `serde_json` the binaries emit their machine-readable dumps through
//! this small value tree. Emission-only: the analysis side of the pipeline
//! (plots, dashboards) consumes the files, nothing in the workspace parses
//! JSON back.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// An integer, kept separate so counts render without a decimal point.
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Self {
        Self::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Renders compactly (no whitespace).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with two-space indentation.
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let pad = |out: &mut String, d: usize| {
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * d));
            }
        };
        match self {
            Self::Null => out.push_str("null"),
            Self::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Self::Num(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            Self::Num(_) => out.push_str("null"),
            Self::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Self::Str(s) => write_escaped(out, s),
            Self::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    pad(out, depth);
                }
                out.push(']');
            }
            Self::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !pairs.is_empty() {
                    pad(out, depth);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Self::Num(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Self::Int(v as i64)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Self::Int(i64::from(v))
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Self::Int(v as i64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Self::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Self::Str(v.to_owned())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Self::Str(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Self::Arr(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::from(true).render(), "true");
        assert_eq!(Json::from(1.5).render(), "1.5");
        assert_eq!(Json::from(42u32).render(), "42");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(Json::from("a\"b\\c\n").render(), r#""a\"b\\c\n""#);
        assert_eq!(Json::from("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn containers_render_compact_and_pretty() {
        let v = Json::obj(vec![
            ("name", Json::from("sweep")),
            ("xs", Json::from(vec![1.0, 2.0])),
            ("empty", Json::Arr(vec![])),
        ]);
        assert_eq!(v.render(), r#"{"name":"sweep","xs":[1,2],"empty":[]}"#);
        let pretty = v.render_pretty();
        assert!(pretty.contains("\n  \"name\": \"sweep\""), "{pretty}");
        assert!(pretty.ends_with("}\n"));
    }
}
