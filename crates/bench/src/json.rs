//! Re-export of the workspace JSON value tree.
//!
//! The emitter originally lived here; the sharded sweep protocol promoted it
//! into [`seo_core::json`] (adding a parser) so core can speak the
//! coordinator/worker wire format. This module remains so the harness
//! binaries keep their `seo_bench::json::Json` imports.

pub use seo_core::json::{Json, JsonParseError};
