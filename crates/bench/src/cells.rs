//! Experiment cells: one function per paper figure/table, returning
//! structured rows that the binaries print and the benches execute.

use seo_core::config::{ControlMode, EnergyAccounting, SeoConfig};
use seo_core::error::SeoError;
use seo_core::experiment::ExperimentConfig;
use seo_core::model::{Criticality, ModelSet, PipelineModel};
use seo_core::optimizer::{full_slot_cost, optimized_slot_cost, OptimizerKind};
use seo_platform::compute::ComputeProfile;
use seo_platform::sensor::SensorSpec;
use seo_platform::units::{Seconds, Watts};

/// Base seed for all experiment cells (runs use `seed + attempt`).
const BASE_SEED: u64 = 2023;

fn cell(
    optimizer: OptimizerKind,
    control: ControlMode,
    n_obstacles: usize,
    runs: usize,
) -> ExperimentConfig {
    ExperimentConfig::paper_defaults()
        .with_optimizer(optimizer)
        .with_control_mode(control)
        .with_obstacles(n_obstacles)
        .with_runs(runs)
        .with_seed(BASE_SEED)
}

/// One series point of Fig. 1: normalized gating energy per detector at a
/// given obstacle count (unfiltered control, 50 % gating).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Row {
    /// Obstacles on the route.
    pub n_obstacles: usize,
    /// Normalized energy of the 50 Hz detector (p = τ), 1 = full operation.
    pub normalized_50hz: f64,
    /// Normalized energy of the 25 Hz detector (p = 2τ).
    pub normalized_25hz: f64,
}

/// Fig. 1 — the motivational example: normalized energy vs risk for the
/// 50 Hz and 25 Hz detectors under safety-aware gating.
///
/// # Errors
///
/// Propagates [`SeoError`] from the experiment harness.
pub fn fig1_rows(runs: usize) -> Result<Vec<Fig1Row>, SeoError> {
    let mut rows = Vec::new();
    for n_obstacles in 0..=4 {
        let result = cell(
            OptimizerKind::ModelGating,
            ControlMode::Unfiltered,
            n_obstacles,
            runs,
        )
        .run_auto()?;
        rows.push(Fig1Row {
            n_obstacles,
            normalized_50hz: 1.0 - result.gain_for_model(0)?,
            normalized_25hz: 1.0 - result.gain_for_model(1)?,
        });
    }
    Ok(rows)
}

/// One bar group of Fig. 5: per-detector gains for one (optimizer, control)
/// combination at τ = 20 ms.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Row {
    /// Offloading or model gating.
    pub optimizer: OptimizerKind,
    /// Filtered or unfiltered control.
    pub control: ControlMode,
    /// Energy gain of the p = τ detector over always-local.
    pub gain_p1: f64,
    /// Energy gain of the p = 2τ detector.
    pub gain_p2: f64,
}

/// Fig. 5 — energy gains relative to local execution for the two ResNet-152
/// detectors, offloading (left) and model gating (right), filtered and
/// unfiltered, τ = 20 ms, 2 obstacles.
///
/// # Errors
///
/// Propagates [`SeoError`] from the experiment harness.
pub fn fig5_rows(runs: usize) -> Result<Vec<Fig5Row>, SeoError> {
    let mut rows = Vec::new();
    for optimizer in [OptimizerKind::Offloading, OptimizerKind::ModelGating] {
        for control in [ControlMode::Unfiltered, ControlMode::Filtered] {
            let result = cell(optimizer, control, 2, runs).run_auto()?;
            rows.push(Fig5Row {
                optimizer,
                control,
                gain_p1: result.gain_for_model(0)?,
                gain_p2: result.gain_for_model(1)?,
            });
        }
    }
    Ok(rows)
}

/// One row of Table I: gains at τ = 25 ms.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Offloading or model gating.
    pub optimizer: OptimizerKind,
    /// Filtered or unfiltered control.
    pub control: ControlMode,
    /// Gain of the p = 20 ms detector (δᵢ = 1 at τ = 25 ms via eq. 4).
    pub gain_p1: f64,
    /// Gain of the p = 40 ms detector (δᵢ = 2).
    pub gain_p2: f64,
    /// Unweighted average of the two (the paper's "Average gains").
    pub average: f64,
}

/// Table I — offloading and gating gains over local at τ = 25 ms (a more
/// limited hardware setting), 2 obstacles.
///
/// # Errors
///
/// Propagates [`SeoError`] from the experiment harness.
pub fn table1_rows(runs: usize) -> Result<Vec<Table1Row>, SeoError> {
    let mut rows = Vec::new();
    for optimizer in [OptimizerKind::Offloading, OptimizerKind::ModelGating] {
        for control in [ControlMode::Unfiltered, ControlMode::Filtered] {
            let config = cell(optimizer, control, 2, runs).with_tau(Seconds::from_millis(25.0));
            let result = config.run_auto()?;
            let gain_p1 = result.gain_for_model(0)?;
            let gain_p2 = result.gain_for_model(1)?;
            rows.push(Table1Row {
                optimizer,
                control,
                gain_p1,
                gain_p2,
                average: (gain_p1 + gain_p2) / 2.0,
            });
        }
    }
    Ok(rows)
}

/// One histogram panel of Fig. 6.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Row {
    /// Offloading or model gating.
    pub optimizer: OptimizerKind,
    /// Obstacles on the route.
    pub n_obstacles: usize,
    /// `(δmax value, occurrence frequency)` pairs, ascending.
    pub frequencies: Vec<(u32, f64)>,
    /// Mean sampled δmax.
    pub mean_delta_max: f64,
    /// Average combined energy-efficiency gain over the two detectors.
    pub avg_gain: f64,
}

/// Fig. 6 — histogram of sampled δmax in the unfiltered case under obstacle
/// variation, for offloading (left) and model gating (right), with the
/// average efficiency annotation.
///
/// # Errors
///
/// Propagates [`SeoError`] from the experiment harness.
pub fn fig6_rows(runs: usize) -> Result<Vec<Fig6Row>, SeoError> {
    let mut rows = Vec::new();
    for optimizer in [OptimizerKind::Offloading, OptimizerKind::ModelGating] {
        for n_obstacles in [0usize, 2, 4] {
            let result = cell(optimizer, ControlMode::Unfiltered, n_obstacles, runs).run_auto()?;
            rows.push(Fig6Row {
                optimizer,
                n_obstacles,
                frequencies: result
                    .summary
                    .histogram
                    .iter()
                    .map(|(v, _)| (v, result.summary.histogram.frequency(v)))
                    .collect(),
                mean_delta_max: result.mean_delta_max(),
                avg_gain: result.summary.combined_gain,
            });
        }
    }
    Ok(rows)
}

/// One row of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Filtered or unfiltered control.
    pub control: ControlMode,
    /// Obstacles on the route.
    pub n_obstacles: usize,
    /// Combined offloading gain over the two detectors.
    pub offloading_gain: f64,
    /// Combined model-gating gain.
    pub gating_gain: f64,
    /// Mean sampled δmax (from the offloading runs, as a representative).
    pub mean_delta_max: f64,
}

/// Table II — average energy gains and δmax at τ = 20 ms under obstacle
/// variation for the two combined detectors, filtered and unfiltered.
///
/// # Errors
///
/// Propagates [`SeoError`] from the experiment harness.
pub fn table2_rows(runs: usize) -> Result<Vec<Table2Row>, SeoError> {
    let mut rows = Vec::new();
    for control in [ControlMode::Unfiltered, ControlMode::Filtered] {
        for n_obstacles in [0usize, 2, 4] {
            let offload = cell(OptimizerKind::Offloading, control, n_obstacles, runs).run_auto()?;
            let gating = cell(OptimizerKind::ModelGating, control, n_obstacles, runs).run_auto()?;
            rows.push(Table2Row {
                control,
                n_obstacles,
                offloading_gain: offload.summary.combined_gain,
                gating_gain: gating.summary.combined_gain,
                mean_delta_max: offload.mean_delta_max(),
            });
        }
    }
    Ok(rows)
}

/// One row of Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Sensor name.
    pub sensor: String,
    /// Measurement power, watts.
    pub p_meas: f64,
    /// Mechanical power, watts.
    pub p_mech: f64,
    /// Sensor period as a multiple of τ (1 or 2).
    pub p_multiple: u32,
    /// Average measured gain over the filtered run.
    pub avg_gain: f64,
    /// Closed-form gain of one full δmax = 4 interval (the paper's "4τ
    /// Gains" column).
    pub four_tau_gain: f64,
}

/// Builds the Table III model set: the critical VAE plus two detectors
/// (p = τ, p = 2τ) both bound to the given physical sensor.
///
/// # Errors
///
/// Propagates [`SeoError`] from model construction.
pub fn sensor_model_set(sensor: &SensorSpec, tau: Seconds) -> Result<ModelSet, SeoError> {
    let vae = PipelineModel::new(
        "shieldnn-vae",
        tau,
        ComputeProfile::new("vae-encoder", Seconds::from_millis(3.0), Watts::new(2.0))?,
        SensorSpec::zero_power("vae-camera"),
        Criticality::Critical,
    )?;
    let d1 = PipelineModel::paper_detector(1, tau)?.with_sensor(sensor.clone());
    let d2 = PipelineModel::paper_detector(2, tau)?.with_sensor(sensor.clone());
    Ok(ModelSet::new(vec![vae, d1, d2]))
}

/// Closed-form sensor-gating gain of one δmax = 4 interval for a detector
/// with period multiple `m` (validated against the paper's Table III to
/// <1 % absolute): `m = 1` has 3 gated + 1 full slot, `m = 2` has 1 gated +
/// 1 full slot.
#[must_use]
pub fn four_tau_sensor_gain(sensor: &SensorSpec, p_multiple: u32, config: &SeoConfig) -> f64 {
    let model = PipelineModel::paper_detector(p_multiple, config.tau)
        .expect("static multiple is valid")
        .with_sensor(sensor.clone());
    let full = full_slot_cost(&model, config).total().as_joules();
    let gated = optimized_slot_cost(OptimizerKind::SensorGating, &model, config)
        .total()
        .as_joules();
    match p_multiple {
        1 => 1.0 - (3.0 * gated + full) / (4.0 * full),
        _ => 1.0 - (gated + full) / (2.0 * full),
    }
}

/// Table III — sensor gating at τ = 20 ms in the filtered case for the ZED
/// camera, Navtech radar, and Velodyne LiDAR.
///
/// # Errors
///
/// Propagates [`SeoError`] from the experiment harness.
pub fn table3_rows(runs: usize) -> Result<Vec<Table3Row>, SeoError> {
    let sensors = [
        SensorSpec::zed_camera(),
        SensorSpec::navtech_cts350x(),
        SensorSpec::velodyne_hdl32e(),
    ];
    let mut rows = Vec::new();
    for sensor in sensors {
        let config = cell(OptimizerKind::SensorGating, ControlMode::Filtered, 2, runs)
            .with_accounting(EnergyAccounting::WithSensor);
        let seo = config.seo;
        let config = config.with_models(sensor_model_set(&sensor, seo.tau)?);
        let result = config.run_auto()?;
        for (index, p_multiple) in [(0usize, 1u32), (1, 2)] {
            rows.push(Table3Row {
                sensor: sensor.name().to_owned(),
                p_meas: sensor.measurement_power().as_watts(),
                p_mech: sensor.mechanical_power().as_watts(),
                p_multiple,
                avg_gain: result.gain_for_model(index)?,
                four_tau_gain: four_tau_sensor_gain(&sensor, p_multiple, &seo),
            });
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUICK: usize = 2;

    #[test]
    fn fig1_normalized_energy_rises_with_risk() {
        let rows = fig1_rows(QUICK).expect("cells run");
        assert_eq!(rows.len(), 5);
        // More obstacles -> higher normalized energy (less gating headroom).
        assert!(rows[4].normalized_50hz > rows[0].normalized_50hz);
        for r in &rows {
            assert!((0.0..=1.01).contains(&r.normalized_50hz), "{r:?}");
            assert!((0.0..=1.01).contains(&r.normalized_25hz), "{r:?}");
        }
    }

    #[test]
    fn fig5_offloading_beats_gating() {
        let rows = fig5_rows(QUICK).expect("cells run");
        assert_eq!(rows.len(), 4);
        let offload_filtered = rows
            .iter()
            .find(|r| {
                r.optimizer == OptimizerKind::Offloading && r.control == ControlMode::Filtered
            })
            .expect("cell exists");
        let gating_filtered = rows
            .iter()
            .find(|r| {
                r.optimizer == OptimizerKind::ModelGating && r.control == ControlMode::Filtered
            })
            .expect("cell exists");
        assert!(offload_filtered.gain_p1 > gating_filtered.gain_p1);
    }

    #[test]
    fn table2_gains_fall_with_obstacles() {
        let rows = table2_rows(QUICK).expect("cells run");
        assert_eq!(rows.len(), 6);
        let unfiltered: Vec<&Table2Row> = rows
            .iter()
            .filter(|r| r.control == ControlMode::Unfiltered)
            .collect();
        assert!(unfiltered[0].offloading_gain > unfiltered[2].offloading_gain);
        assert!(unfiltered[0].mean_delta_max > unfiltered[2].mean_delta_max);
    }

    #[test]
    fn table3_four_tau_matches_paper() {
        let config = SeoConfig::paper_defaults().with_accounting(EnergyAccounting::WithSensor);
        let cases = [
            (SensorSpec::zed_camera(), 1, 0.75),
            (SensorSpec::zed_camera(), 2, 0.50),
            (SensorSpec::navtech_cts350x(), 1, 0.6893),
            (SensorSpec::navtech_cts350x(), 2, 0.4553),
            (SensorSpec::velodyne_hdl32e(), 1, 0.6482),
            (SensorSpec::velodyne_hdl32e(), 2, 0.4191),
        ];
        for (sensor, m, expected) in cases {
            let gain = four_tau_sensor_gain(&sensor, m, &config);
            assert!(
                (gain - expected).abs() < 0.05,
                "{} p={m}tau: {gain:.4} vs paper {expected}",
                sensor.name()
            );
        }
    }

    #[test]
    fn sensor_model_set_shape() {
        let set = sensor_model_set(&SensorSpec::velodyne_hdl32e(), Seconds::from_millis(20.0))
            .expect("valid");
        assert_eq!(set.normal().count(), 2);
        for (_, m) in set.normal() {
            assert_eq!(m.sensor().name(), "velodyne-hdl32e-lidar");
        }
    }
}
