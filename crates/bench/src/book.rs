//! The append-only results book: one timestamped, named-run row per sweep
//! in a committed markdown table (`results/results.md` by default —
//! `report.book` in the plan names the file).
//!
//! A row is keyed by its **run id** — `plan-stem/engine/kernel` — and
//! upserted: re-running an unchanged plan replaces its row in place
//! instead of duplicating it, so the book accumulates one line per named
//! configuration while staying stable under CI re-runs. Everything else
//! in the file (preamble, other rows, hand-written notes below the table)
//! is preserved byte-for-byte.
//!
//! Timing lives **only** here: the summary NDJSON the sweep emits on
//! stdout is byte-compared across engines and runs, so wall-clock numbers
//! must never leak into it. The book is where they go instead.

use std::io::ErrorKind;
use std::path::Path;

/// The book's table header; [`upsert`] appends it (plus a preamble) to a
/// fresh or table-less file before inserting the first row.
pub const HEADER: &str = "| run | utc | grid | scenarios/s | energy gain | δmax p50 | δmax p99 |";
const SEPARATOR: &str = "|---|---|---|---|---|---|---|";
const PREAMBLE: &str = "# Results book\n\n\
    Named sweep runs, one row per `plan-stem/engine/kernel` run id, appended\n\
    by `sweep --plan` when the plan's `report.book` names this file and\n\
    upserted in place on re-runs (see `docs/reporting.md`). Derived stats\n\
    come from the merged per-cell sketches; timing is wall-clock and *not*\n\
    part of the byte-compared summary stream.\n";

/// One named-run row, ready to format into the book's markdown table.
#[derive(Debug, Clone, PartialEq)]
pub struct BookRow {
    /// The upsert key: `plan-stem/engine/kernel`.
    pub run_id: String,
    /// Unix seconds (UTC) the run finished; rendered as a civil timestamp.
    pub timestamp_secs: u64,
    /// Grid provenance, e.g. `60 specs / 12 cells`.
    pub grid: String,
    /// Wall-clock throughput of the run that produced the row.
    pub scenarios_per_sec: f64,
    /// Mean energy gain across all episodes (`None` when no finite
    /// episode gain was recorded).
    pub energy_gain_mean: Option<f64>,
    /// The overall δmax distribution's median, in base periods.
    pub delta_max_p50: Option<u32>,
    /// The overall δmax distribution's 99th percentile, in base periods.
    pub delta_max_p99: Option<u32>,
}

impl BookRow {
    /// The markdown table line for this row.
    #[must_use]
    pub fn line(&self) -> String {
        let gain = self
            .energy_gain_mean
            .map_or_else(|| "-".to_owned(), |g| format!("{:.2}%", g * 100.0));
        let p50 = self
            .delta_max_p50
            .map_or_else(|| "-".to_owned(), |q| q.to_string());
        let p99 = self
            .delta_max_p99
            .map_or_else(|| "-".to_owned(), |q| q.to_string());
        format!(
            "| {} | {} | {} | {:.1} | {gain} | {p50} | {p99} |",
            self.run_id,
            civil_utc(self.timestamp_secs),
            self.grid,
            self.scenarios_per_sec,
        )
    }
}

/// Renders unix seconds as a civil UTC timestamp (`YYYY-MM-DD HH:MM:SSZ`)
/// without any date dependency (Gregorian era arithmetic).
#[must_use]
pub fn civil_utc(secs: u64) -> String {
    #[allow(clippy::cast_possible_wrap)]
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    let tod = secs % 86_400;
    format!(
        "{y:04}-{m:02}-{d:02} {:02}:{:02}:{:02}Z",
        tod / 3600,
        (tod / 60) % 60,
        tod % 60
    )
}

/// Days-since-epoch to (year, month, day), proleptic Gregorian.
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32;
    let y = yoe + era * 400 + i64::from(m <= 2);
    (y, m, d)
}

/// Upserts `row` into the book at `path`: a fresh (or table-less) file
/// gets the preamble and header first; an existing row with the same run
/// id is replaced in place; otherwise the row is appended at the end of
/// the file. Every other byte of the file is preserved.
///
/// # Errors
///
/// Propagates filesystem errors; anything already in the file is treated
/// as opaque text, so a hand-edited book never fails to parse.
pub fn upsert(path: &str, row: &BookRow) -> std::io::Result<()> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == ErrorKind::NotFound => {
            if let Some(parent) = Path::new(path)
                .parent()
                .filter(|p| !p.as_os_str().is_empty())
            {
                std::fs::create_dir_all(parent)?;
            }
            String::new()
        }
        Err(e) => return Err(e),
    };
    let mut text = if text.contains(HEADER) {
        text
    } else {
        let mut seeded = text;
        if !seeded.is_empty() && !seeded.ends_with('\n') {
            seeded.push('\n');
        }
        if seeded.is_empty() {
            seeded.push_str(PREAMBLE);
        }
        seeded.push('\n');
        seeded.push_str(HEADER);
        seeded.push('\n');
        seeded.push_str(SEPARATOR);
        seeded.push('\n');
        seeded
    };
    let key = format!("| {} |", row.run_id);
    let mut out = String::with_capacity(text.len() + 128);
    let mut replaced = false;
    for line in text.lines() {
        if !replaced && line.starts_with(&key) {
            out.push_str(&row.line());
            replaced = true;
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    if replaced {
        text = out;
    } else {
        text = out;
        text.push_str(&row.line());
        text.push('\n');
    }
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> BookRow {
        BookRow {
            run_id: "report/serial/scalar".to_owned(),
            timestamp_secs: 1_754_611_200, // 2025-08-08 00:00:00Z
            grid: "12 specs / 4 cells".to_owned(),
            scenarios_per_sec: 123.456,
            energy_gain_mean: Some(0.3125),
            delta_max_p50: Some(3),
            delta_max_p99: Some(5),
        }
    }

    fn temp_book(tag: &str) -> String {
        let dir = std::env::temp_dir().join(format!("seo-book-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.join("results.md").to_string_lossy().into_owned()
    }

    #[test]
    fn civil_dates_match_known_values() {
        assert_eq!(civil_utc(0), "1970-01-01 00:00:00Z");
        // Leap-year day boundary.
        assert_eq!(civil_utc(951_782_400), "2000-02-29 00:00:00Z");
        assert_eq!(civil_utc(1_754_611_200), "2025-08-08 00:00:00Z");
        assert_eq!(civil_utc(1_754_611_200 + 3_661), "2025-08-08 01:01:01Z");
    }

    #[test]
    fn row_renders_every_column() {
        let line = sample_row().line();
        assert_eq!(
            line,
            "| report/serial/scalar | 2025-08-08 00:00:00Z | 12 specs / 4 cells \
             | 123.5 | 31.25% | 3 | 5 |"
        );
        let empty = BookRow {
            energy_gain_mean: None,
            delta_max_p50: None,
            delta_max_p99: None,
            ..sample_row()
        };
        assert!(empty.line().ends_with("| 123.5 | - | - | - |"));
    }

    #[test]
    fn upsert_creates_then_replaces_then_appends() {
        let path = temp_book("upsert");
        let row = sample_row();
        upsert(&path, &row).expect("create");
        let text = std::fs::read_to_string(&path).expect("book exists");
        assert!(text.starts_with("# Results book"));
        assert!(text.contains(HEADER));
        assert_eq!(text.matches("| report/serial/scalar |").count(), 1);

        // Same run id again: replaced in place, not duplicated.
        let rerun = BookRow {
            scenarios_per_sec: 999.0,
            ..row.clone()
        };
        upsert(&path, &rerun).expect("replace");
        let text = std::fs::read_to_string(&path).expect("book exists");
        assert_eq!(text.matches("| report/serial/scalar |").count(), 1);
        assert!(text.contains("| 999.0 |"));
        assert!(!text.contains("| 123.5 |"));

        // A different run id appends a second row and leaves the first.
        let other = BookRow {
            run_id: "report/hosts/scalar".to_owned(),
            ..row
        };
        upsert(&path, &other).expect("append");
        let text = std::fs::read_to_string(&path).expect("book exists");
        assert_eq!(text.matches("| report/serial/scalar |").count(), 1);
        assert_eq!(text.matches("| report/hosts/scalar |").count(), 1);
    }

    #[test]
    fn upsert_preserves_foreign_text() {
        let path = temp_book("foreign");
        std::fs::create_dir_all(Path::new(&path).parent().expect("parent")).expect("mkdir");
        std::fs::write(&path, "hand-written notes\n").expect("seed");
        upsert(&path, &sample_row()).expect("upsert");
        let text = std::fs::read_to_string(&path).expect("book exists");
        assert!(text.starts_with("hand-written notes\n"));
        assert!(text.contains(HEADER));
        assert!(text.contains("| report/serial/scalar |"));
    }
}
