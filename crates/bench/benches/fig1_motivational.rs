//! Bench for the Figure 1 cell: one full closed-loop gating episode per
//! risk level (the unit of work behind each Fig. 1 point).

use seo_bench::timing::bench;
use seo_core::config::{ControlMode, SeoConfig};
use seo_core::model::ModelSet;
use seo_core::optimizer::OptimizerKind;
use seo_core::runtime::{EpisodeScratch, RuntimeLoop, WorldSource};
use seo_sim::scenario::ScenarioConfig;
use std::hint::black_box;

fn main() {
    let config = SeoConfig::paper_defaults().with_control_mode(ControlMode::Unfiltered);
    let models = ModelSet::paper_setup(config.tau).expect("paper setup");
    let runtime =
        RuntimeLoop::new(config, models, OptimizerKind::ModelGating).expect("valid runtime");
    let mut scratch = EpisodeScratch::new();
    for n_obstacles in [0usize, 2, 4] {
        let world = ScenarioConfig::new(n_obstacles).with_seed(1).generate();
        bench(
            &format!("fig1_motivational/gating_episode_{n_obstacles}"),
            || black_box(runtime.run_with(WorldSource::Static(&world), 1, &mut scratch)),
        );
    }
}
