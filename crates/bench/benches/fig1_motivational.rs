//! Criterion bench for the Figure 1 cell: one full closed-loop gating
//! episode per risk level (the unit of work behind each Fig. 1 point).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seo_core::config::{ControlMode, SeoConfig};
use seo_core::model::ModelSet;
use seo_core::optimizer::OptimizerKind;
use seo_core::runtime::RuntimeLoop;
use seo_sim::scenario::ScenarioConfig;
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    let config = SeoConfig::paper_defaults().with_control_mode(ControlMode::Unfiltered);
    let models = ModelSet::paper_setup(config.tau).expect("paper setup");
    let runtime =
        RuntimeLoop::new(config, models, OptimizerKind::ModelGating).expect("valid runtime");
    let mut group = c.benchmark_group("fig1_motivational");
    group.sample_size(10);
    for n_obstacles in [0usize, 2, 4] {
        let world = ScenarioConfig::new(n_obstacles).with_seed(1).generate();
        group.bench_with_input(
            BenchmarkId::new("gating_episode", n_obstacles),
            &world,
            |b, world| {
                b.iter(|| black_box(runtime.run_episode(world.clone(), 1)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
