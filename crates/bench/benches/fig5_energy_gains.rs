//! Criterion bench for the Figure 5 cells: closed-loop episodes under
//! offloading and model gating, filtered and unfiltered.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seo_core::config::{ControlMode, SeoConfig};
use seo_core::model::ModelSet;
use seo_core::optimizer::OptimizerKind;
use seo_core::runtime::RuntimeLoop;
use seo_sim::scenario::ScenarioConfig;
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_energy_gains");
    group.sample_size(10);
    let world = ScenarioConfig::new(2).with_seed(1).generate();
    for optimizer in [OptimizerKind::Offloading, OptimizerKind::ModelGating] {
        for control in [ControlMode::Unfiltered, ControlMode::Filtered] {
            let config = SeoConfig::paper_defaults().with_control_mode(control);
            let models = ModelSet::paper_setup(config.tau).expect("paper setup");
            let runtime = RuntimeLoop::new(config, models, optimizer).expect("valid runtime");
            group.bench_with_input(
                BenchmarkId::new(optimizer.to_string(), control.to_string()),
                &world,
                |b, world| {
                    b.iter(|| black_box(runtime.run_episode(world.clone(), 7)));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
