//! Bench for the Figure 5 cells: offloading vs gating episodes, filtered
//! and unfiltered control, at τ = 20 ms.

use seo_bench::timing::bench;
use seo_core::config::{ControlMode, SeoConfig};
use seo_core::model::ModelSet;
use seo_core::optimizer::OptimizerKind;
use seo_core::runtime::{EpisodeScratch, RuntimeLoop, WorldSource};
use seo_sim::scenario::ScenarioConfig;
use std::hint::black_box;

fn main() {
    let world = ScenarioConfig::new(2).with_seed(1).generate();
    for optimizer in [OptimizerKind::Offloading, OptimizerKind::ModelGating] {
        for control in [ControlMode::Unfiltered, ControlMode::Filtered] {
            let config = SeoConfig::paper_defaults().with_control_mode(control);
            let models = ModelSet::paper_setup(config.tau).expect("paper setup");
            let runtime = RuntimeLoop::new(config, models, optimizer).expect("valid runtime");
            let mut scratch = EpisodeScratch::new();
            bench(
                &format!("fig5_energy_gains/{optimizer}_{control}_episode"),
                || black_box(runtime.run_with(WorldSource::Static(&world), 7, &mut scratch)),
            );
        }
    }
}
