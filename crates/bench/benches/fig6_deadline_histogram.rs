//! Criterion bench for the Figure 6 machinery: δmax sampling — the lookup
//! table probe plus discretization that Algorithm 1 performs at every
//! interval start — and the episode that produces one histogram.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seo_core::config::{ControlMode, SeoConfig};
use seo_core::discretize::discretize_deadline;
use seo_core::model::ModelSet;
use seo_core::optimizer::OptimizerKind;
use seo_core::runtime::RuntimeLoop;
use seo_safety::interval::SafeIntervalEvaluator;
use seo_safety::lookup::DeadlineTable;
use seo_sim::scenario::ScenarioConfig;
use seo_sim::sensing::RelativeObservation;
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_deadline_histogram");
    group.sample_size(10);

    // The runtime lookup probe T(x, u) + eq. (5) — this happens once per
    // optimization interval and must be real-time cheap.
    let config = SeoConfig::paper_defaults();
    let evaluator = SafeIntervalEvaluator::default().with_horizon(config.delta_cap);
    let table = DeadlineTable::build_default(&evaluator);
    let observation = RelativeObservation { distance: 14.0, bearing: 0.2, speed: 9.0 };
    group.bench_function("deadline_probe", |b| {
        b.iter(|| {
            let delta = table.query(black_box(&observation));
            black_box(discretize_deadline(delta, config.tau))
        });
    });

    // One full unfiltered episode per obstacle count (one histogram).
    let cfg = SeoConfig::paper_defaults().with_control_mode(ControlMode::Unfiltered);
    let models = ModelSet::paper_setup(cfg.tau).expect("paper setup");
    let runtime = RuntimeLoop::new(cfg, models, OptimizerKind::Offloading).expect("valid");
    for n in [0usize, 4] {
        let world = ScenarioConfig::new(n).with_seed(3).generate();
        group.bench_with_input(BenchmarkId::new("histogram_episode", n), &world, |b, world| {
            b.iter(|| black_box(runtime.run_episode(world.clone(), 3).histogram));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
