//! Bench for the Figure 6 machinery: δmax sampling — the lookup table probe
//! plus discretization that Algorithm 1 performs at every interval start —
//! and the episode that produces one histogram.

use seo_bench::timing::bench;
use seo_core::config::{ControlMode, SeoConfig};
use seo_core::discretize::discretize_deadline;
use seo_core::model::ModelSet;
use seo_core::optimizer::OptimizerKind;
use seo_core::runtime::{EpisodeScratch, RuntimeLoop, WorldSource};
use seo_safety::interval::SafeIntervalEvaluator;
use seo_safety::lookup::DeadlineTable;
use seo_sim::scenario::ScenarioConfig;
use seo_sim::sensing::RelativeObservation;
use std::hint::black_box;

fn main() {
    // The runtime lookup probe T(x, u) + eq. (5) — this happens once per
    // optimization interval and must be real-time cheap.
    let config = SeoConfig::paper_defaults();
    let evaluator = SafeIntervalEvaluator::default().with_horizon(config.delta_cap);
    let table = DeadlineTable::build_default(&evaluator);
    let observation = RelativeObservation {
        distance: 14.0,
        bearing: 0.2,
        speed: 9.0,
    };
    bench("fig6_deadline_histogram/deadline_probe", || {
        let delta = table.query(black_box(&observation));
        black_box(discretize_deadline(delta, config.tau))
    });

    // One full unfiltered episode per obstacle count (one histogram).
    let cfg = SeoConfig::paper_defaults().with_control_mode(ControlMode::Unfiltered);
    let models = ModelSet::paper_setup(cfg.tau).expect("paper setup");
    let runtime = RuntimeLoop::new(cfg, models, OptimizerKind::Offloading).expect("valid");
    let mut scratch = EpisodeScratch::new();
    for n in [0usize, 4] {
        let world = ScenarioConfig::new(n).with_seed(3).generate();
        bench(
            &format!("fig6_deadline_histogram/histogram_episode_{n}"),
            || black_box(runtime.run_with(WorldSource::Static(&world), 3, &mut scratch)),
        );
    }
}
