//! Bench for the Table III cells: sensor-gating episodes for each industry
//! sensor preset, plus the closed-form 4τ gain kernel.

use seo_bench::cells::{four_tau_sensor_gain, sensor_model_set};
use seo_bench::timing::bench;
use seo_core::config::{EnergyAccounting, SeoConfig};
use seo_core::optimizer::OptimizerKind;
use seo_core::runtime::{EpisodeScratch, RuntimeLoop, WorldSource};
use seo_platform::sensor::SensorSpec;
use seo_sim::scenario::ScenarioConfig;
use std::hint::black_box;

fn main() {
    let config = SeoConfig::paper_defaults().with_accounting(EnergyAccounting::WithSensor);
    let sensors = [
        SensorSpec::zed_camera(),
        SensorSpec::navtech_cts350x(),
        SensorSpec::velodyne_hdl32e(),
    ];
    let world = ScenarioConfig::new(2).with_seed(1).generate();
    for sensor in &sensors {
        let models = sensor_model_set(sensor, config.tau).expect("valid models");
        let runtime =
            RuntimeLoop::new(config, models, OptimizerKind::SensorGating).expect("valid runtime");
        let mut scratch = EpisodeScratch::new();
        bench(
            &format!(
                "table3_sensor_gating/sensor_gating_episode_{}",
                sensor.name()
            ),
            || black_box(runtime.run_with(WorldSource::Static(&world), 9, &mut scratch)),
        );
    }
    bench("table3_sensor_gating/four_tau_closed_form", || {
        for sensor in &sensors {
            for m in [1u32, 2] {
                black_box(four_tau_sensor_gain(black_box(sensor), m, &config));
            }
        }
    });
}
