//! Criterion bench for the Table III cells: sensor-gating episodes for each
//! industry sensor preset, plus the closed-form 4τ gain kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seo_bench::cells::{four_tau_sensor_gain, sensor_model_set};
use seo_core::config::{EnergyAccounting, SeoConfig};
use seo_core::optimizer::OptimizerKind;
use seo_core::runtime::RuntimeLoop;
use seo_platform::sensor::SensorSpec;
use seo_sim::scenario::ScenarioConfig;
use std::hint::black_box;

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_sensor_gating");
    group.sample_size(10);
    let config = SeoConfig::paper_defaults().with_accounting(EnergyAccounting::WithSensor);
    let sensors =
        [SensorSpec::zed_camera(), SensorSpec::navtech_cts350x(), SensorSpec::velodyne_hdl32e()];
    let world = ScenarioConfig::new(2).with_seed(1).generate();
    for sensor in &sensors {
        let models = sensor_model_set(sensor, config.tau).expect("valid models");
        let runtime =
            RuntimeLoop::new(config, models, OptimizerKind::SensorGating).expect("valid runtime");
        group.bench_with_input(
            BenchmarkId::new("sensor_gating_episode", sensor.name()),
            &world,
            |b, world| {
                b.iter(|| black_box(runtime.run_episode(world.clone(), 9)));
            },
        );
    }
    group.bench_function("four_tau_closed_form", |b| {
        b.iter(|| {
            for sensor in &sensors {
                for m in [1u32, 2] {
                    black_box(four_tau_sensor_gain(black_box(sensor), m, &config));
                }
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
