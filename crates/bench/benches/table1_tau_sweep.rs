//! Bench for the Table I cells: episodes on the τ = 25 ms base period (the
//! "more limited hardware" configuration), compared against τ = 20 ms to
//! expose the discretization overhead trade.

use seo_bench::timing::bench;
use seo_core::config::SeoConfig;
use seo_core::model::ModelSet;
use seo_core::optimizer::OptimizerKind;
use seo_core::runtime::{EpisodeScratch, RuntimeLoop, WorldSource};
use seo_platform::units::Seconds;
use seo_sim::scenario::ScenarioConfig;
use std::hint::black_box;

fn main() {
    let world = ScenarioConfig::new(2).with_seed(1).generate();
    for tau_ms in [20.0f64, 25.0] {
        let config = SeoConfig::paper_defaults().with_tau(Seconds::from_millis(tau_ms));
        let models = ModelSet::paper_setup(config.tau).expect("paper setup");
        let runtime =
            RuntimeLoop::new(config, models, OptimizerKind::Offloading).expect("valid runtime");
        let mut scratch = EpisodeScratch::new();
        bench(
            &format!(
                "table1_tau_sweep/offloading_episode_tau_ms_{}",
                tau_ms as u64
            ),
            || black_box(runtime.run_with(WorldSource::Static(&world), 11, &mut scratch)),
        );
    }
}
