//! Criterion bench for the Table I cells: episodes on the τ = 25 ms base
//! period (the "more limited hardware" configuration), compared against
//! τ = 20 ms to expose the discretization overhead trade.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seo_core::config::SeoConfig;
use seo_core::model::ModelSet;
use seo_core::optimizer::OptimizerKind;
use seo_core::runtime::RuntimeLoop;
use seo_platform::units::Seconds;
use seo_sim::scenario::ScenarioConfig;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_tau_sweep");
    group.sample_size(10);
    let world = ScenarioConfig::new(2).with_seed(1).generate();
    for tau_ms in [20.0f64, 25.0] {
        let config = SeoConfig::paper_defaults().with_tau(Seconds::from_millis(tau_ms));
        let models = ModelSet::paper_setup(config.tau).expect("paper setup");
        let runtime =
            RuntimeLoop::new(config, models, OptimizerKind::Offloading).expect("valid runtime");
        group.bench_with_input(
            BenchmarkId::new("offloading_episode_tau_ms", tau_ms as u64),
            &world,
            |b, world| {
                b.iter(|| black_box(runtime.run_episode(world.clone(), 11)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
