//! The hot-path micro-bench: pins ns/step for the inference primitives the
//! SEO runtime executes every control period, so future regressions in the
//! zero-allocation path are visible as multiples rather than vibes.
//!
//! Pairs each scratch-based fast path against its allocating twin — the gap
//! is the heap traffic the `InferenceScratch` rework eliminated.

use rand::rngs::StdRng;
use rand::SeedableRng;
use seo_bench::timing::bench;
use seo_core::prelude::*;
use seo_nn::mlp::InferenceScratch;
use seo_nn::policy::{DrivingPolicy, PolicyFeatures};
use seo_sim::scenario::ScenarioConfig;
use std::hint::black_box;

fn main() {
    let mut rng = StdRng::seed_from_u64(2023);
    let policy = DrivingPolicy::new(&mut rng).expect("fixed topology");
    let features = PolicyFeatures {
        lateral: 0.2,
        heading: 0.1,
        speed: 0.6,
        obstacle_proximity: 0.5,
        obstacle_bearing: -0.3,
        obstacle_lateral: -0.4,
        progress: 0.5,
    };

    // Policy forward inference: allocating vs scratch.
    let alloc = bench("hot_path/policy_forward_alloc", || {
        policy.act(black_box(&features))
    });
    let mut scratch = InferenceScratch::new();
    let fast = bench("hot_path/policy_forward_scratch", || {
        policy.act_scratch(black_box(&features), &mut scratch)
    });
    println!(
        "  -> scratch path saves {:.1} ns/step ({:.2}x)",
        alloc.ns_per_iter - fast.ns_per_iter,
        alloc.ns_per_iter / fast.ns_per_iter.max(1e-9)
    );

    // Scheduler planning: allocating vs reusable StepPlan.
    let mut scheduler = SafeScheduler::new(vec![(ModelId(0), 1), (ModelId(1), 2)]);
    bench("hot_path/scheduler_plan_step_alloc", || {
        black_box(scheduler.plan_step(|| 4))
    });
    let mut plan = StepPlan::default();
    bench("hot_path/scheduler_plan_step_into", || {
        scheduler.plan_step_into(&mut plan, || 4);
        black_box(plan.delta_max)
    });

    // One full closed-loop episode step stream via the scratch entry point.
    let config = SeoConfig::paper_defaults();
    let models = ModelSet::paper_setup(config.tau).expect("paper setup");
    let runtime = RuntimeLoop::new(config, models, OptimizerKind::Offloading).expect("valid");
    let world = ScenarioConfig::new(2).with_seed(1).generate();
    let mut episode_scratch = EpisodeScratch::new();
    let steps = runtime
        .run_with(WorldSource::Static(&world), 1, &mut episode_scratch)
        .steps;
    let episode = bench("hot_path/offloading_episode_scratch", || {
        black_box(runtime.run_with(WorldSource::Static(&world), 1, &mut episode_scratch))
    });
    println!(
        "  -> {} steps/episode, {:.0} ns per control step end-to-end",
        steps,
        episode.ns_per_iter / steps.max(1) as f64
    );
}
