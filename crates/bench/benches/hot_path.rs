//! The hot-path micro-bench: pins ns/step for the inference primitives the
//! SEO runtime executes every control period, so future regressions in the
//! zero-allocation path are visible as multiples rather than vibes.
//!
//! Pairs each scratch-based fast path against its allocating twin — the gap
//! is the heap traffic the `InferenceScratch` rework eliminated.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seo_bench::timing::bench;
use seo_core::prelude::*;
use seo_nn::kernel::{BlockedKernel, ScalarKernel};
use seo_nn::mlp::InferenceScratch;
use seo_nn::policy::{DrivingPolicy, PolicyFeatures};
use seo_nn::tensor::Matrix;
use seo_sim::scenario::ScenarioConfig;
use std::hint::black_box;

/// Times one matvec shape on both kernel backends, asserts they are
/// bit-identical, and prints the blocked-over-scalar speedup.
fn bench_matvec_backends(rows: usize, cols: usize, rng: &mut StdRng) {
    let data: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let x: Vec<f64> = (0..cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let m = Matrix::from_flat(rows, cols, data);
    let mut out = vec![0.0; rows];
    let scalar = bench(&format!("hot_path/matvec_{rows}x{cols}_scalar"), || {
        m.matvec_into_with::<ScalarKernel>(black_box(&x), &mut out);
        out[rows - 1]
    });
    let scalar_out = out.clone();
    let blocked = bench(&format!("hot_path/matvec_{rows}x{cols}_blocked"), || {
        m.matvec_into_with::<BlockedKernel>(black_box(&x), &mut out);
        out[rows - 1]
    });
    assert_eq!(scalar_out, out, "backends must be bit-identical");
    println!(
        "  -> blocked kernel {:.2}x vs scalar at {rows}x{cols}",
        scalar.ns_per_iter / blocked.ns_per_iter.max(1e-9)
    );
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2023);
    let policy = DrivingPolicy::new(&mut rng).expect("fixed topology");
    let features = PolicyFeatures {
        lateral: 0.2,
        heading: 0.1,
        speed: 0.6,
        obstacle_proximity: 0.5,
        obstacle_bearing: -0.3,
        obstacle_lateral: -0.4,
        progress: 0.5,
    };

    // Policy forward inference: allocating vs scratch.
    let alloc = bench("hot_path/policy_forward_alloc", || {
        policy.act(black_box(&features))
    });
    let mut scratch = InferenceScratch::new();
    let fast = bench("hot_path/policy_forward_scratch", || {
        policy.act_scratch(black_box(&features), &mut scratch)
    });
    println!(
        "  -> scratch path saves {:.1} ns/step ({:.2}x)",
        alloc.ns_per_iter - fast.ns_per_iter,
        alloc.ns_per_iter / fast.ns_per_iter.max(1e-9)
    );

    // Kernel backends head to head: the three dense shapes of the paper's
    // policy topology (7 -> 16 -> 16 -> 2), one cell per backend, plus the
    // full policy forward pass on each backend. Outputs are asserted
    // bit-identical — the backend contract the property tests enforce —
    // so the deltas here are pure speed.
    for (rows, cols) in [(16, PolicyFeatures::DIM), (16, 16), (2, 16)] {
        bench_matvec_backends(rows, cols, &mut rng);
    }
    let scalar_policy = bench("hot_path/policy_forward_scratch_scalar", || {
        policy.act_scratch_with::<ScalarKernel>(black_box(&features), &mut scratch)
    });
    let blocked_policy = bench("hot_path/policy_forward_scratch_blocked", || {
        policy.act_scratch_with::<BlockedKernel>(black_box(&features), &mut scratch)
    });
    assert_eq!(
        policy.act_scratch_with::<ScalarKernel>(&features, &mut scratch),
        policy.act_scratch_with::<BlockedKernel>(&features, &mut scratch),
        "backends must be bit-identical"
    );
    println!(
        "  -> blocked kernel {:.2}x vs scalar on the full policy forward",
        scalar_policy.ns_per_iter / blocked_policy.ns_per_iter.max(1e-9)
    );

    // Scheduler planning: allocating vs reusable StepPlan.
    let mut scheduler = SafeScheduler::new(vec![(ModelId(0), 1), (ModelId(1), 2)]);
    bench("hot_path/scheduler_plan_step_alloc", || {
        black_box(scheduler.plan_step(|| 4))
    });
    let mut plan = StepPlan::default();
    bench("hot_path/scheduler_plan_step_into", || {
        scheduler.plan_step_into(&mut plan, || 4);
        black_box(plan.delta_max)
    });

    // One full closed-loop episode step stream via the scratch entry point.
    let config = SeoConfig::paper_defaults();
    let models = ModelSet::paper_setup(config.tau).expect("paper setup");
    let runtime = RuntimeLoop::new(config, models, OptimizerKind::Offloading).expect("valid");
    let world = ScenarioConfig::new(2).with_seed(1).generate();
    let mut episode_scratch = EpisodeScratch::new();
    let steps = runtime
        .run_with(WorldSource::Static(&world), 1, &mut episode_scratch)
        .steps;
    let episode = bench("hot_path/offloading_episode_scratch", || {
        black_box(runtime.run_with(WorldSource::Static(&world), 1, &mut episode_scratch))
    });
    println!(
        "  -> {} steps/episode, {:.0} ns per control step end-to-end",
        steps,
        episode.ns_per_iter / steps.max(1) as f64
    );
}
