//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * lookup-table resolution vs direct φ integration;
//! * deadline-table build cost at several grid resolutions;
//! * gating-level sweep (the Fig. 1 "50 % gating" knob);
//! * safety-filter step cost (pass-through vs corrective search);
//! * scheduler step throughput (the pure Algorithm 1 state machine);
//! * eq. (7) strict vs Fig. 3 offload-fallback semantics.

use seo_bench::timing::bench;
use seo_core::config::{OffloadFallback, SeoConfig};
use seo_core::model::{ModelId, ModelSet};
use seo_core::optimizer::OptimizerKind;
use seo_core::runtime::{EpisodeScratch, RuntimeLoop, WorldSource};
use seo_core::scheduler::SafeScheduler;
use seo_safety::filter::SafetyFilter;
use seo_safety::interval::SafeIntervalEvaluator;
use seo_safety::lookup::{Axis, DeadlineTable};
use seo_safety::ttc::TtcEstimator;
use seo_sim::scenario::ScenarioConfig;
use seo_sim::sensing::RelativeObservation;
use seo_sim::vehicle::{Control, VehicleState};
use seo_sim::world::{Obstacle, Road, World};
use std::hint::black_box;

fn main() {
    let evaluator = SafeIntervalEvaluator::default();
    let table = DeadlineTable::build_default(&evaluator);
    let observation = RelativeObservation {
        distance: 18.0,
        bearing: 0.3,
        speed: 10.0,
    };
    bench("ablation_lookup_vs_direct/table_query", || {
        table.query(black_box(&observation))
    });
    bench("ablation_lookup_vs_direct/direct_phi_integration", || {
        evaluator.safe_interval_relative(black_box(&observation), Control::new(0.0, 0.5))
    });

    for points in [9usize, 17, 25] {
        bench(
            &format!("ablation_table_build/distance_points_{points}"),
            || {
                let distance = Axis::new(0.0, 60.0, points).expect("valid");
                let bearing = Axis::new(-3.2, 3.2, 9).expect("valid");
                let speed = Axis::new(0.0, 15.0, 6).expect("valid");
                DeadlineTable::build(&evaluator, distance, bearing, speed, Control::new(0.0, 0.5))
            },
        );
    }

    let world = ScenarioConfig::new(2).with_seed(1).generate();
    for level in [0.0f64, 0.25, 0.5, 0.75] {
        let config = SeoConfig::paper_defaults().with_gating_level(level);
        let models = ModelSet::paper_setup(config.tau).expect("paper setup");
        let runtime =
            RuntimeLoop::new(config, models, OptimizerKind::ModelGating).expect("valid runtime");
        let mut scratch = EpisodeScratch::new();
        bench(
            &format!(
                "ablation_gating_level/gating_episode_level_pct_{}",
                (level * 100.0) as u64
            ),
            || black_box(runtime.run_with(WorldSource::Static(&world), 13, &mut scratch)),
        );
    }

    let filter = SafetyFilter::default();
    let filter_world = World::new(Road::default(), vec![Obstacle::new(40.0, 0.0, 1.0)]);
    let far = VehicleState::new(0.0, 0.0, 0.0, 10.0);
    let near = VehicleState::new(32.0, 0.0, 0.0, 12.0);
    bench("ablation_filter_step/pass_through", || {
        filter.filter(&filter_world, black_box(&far), Control::new(0.0, 0.5))
    });
    bench("ablation_filter_step/corrective_search", || {
        filter.filter(&filter_world, black_box(&near), Control::new(0.0, 1.0))
    });

    let mut scheduler = SafeScheduler::new(vec![(ModelId(0), 1), (ModelId(1), 2)]);
    bench("ablation_scheduler_step/plan_step_two_models", || {
        black_box(scheduler.plan_step(|| 4))
    });
    let models8: Vec<(ModelId, u32)> = (0..8).map(|i| (ModelId(i), (i as u32 % 4) + 1)).collect();
    let mut scheduler8 = SafeScheduler::new(models8);
    bench("ablation_scheduler_step/plan_step_eight_models", || {
        black_box(scheduler8.plan_step(|| 4))
    });

    // Eq. (7) strict vs Fig. 3 semantics (see DESIGN.md §Divergences).
    for fallback in [
        OffloadFallback::LocalOnTimeout,
        OffloadFallback::AlwaysLocal,
    ] {
        let config = SeoConfig::paper_defaults().with_offload_fallback(fallback);
        let models = ModelSet::paper_setup(config.tau).expect("paper setup");
        let runtime =
            RuntimeLoop::new(config, models, OptimizerKind::Offloading).expect("valid runtime");
        let mut scratch = EpisodeScratch::new();
        bench(
            &format!("ablation_offload_fallback/offload_episode_{fallback}"),
            || black_box(runtime.run_with(WorldSource::Static(&world), 21, &mut scratch)),
        );
    }

    let ttc = TtcEstimator::default();
    let obs2 = RelativeObservation {
        distance: 18.0,
        bearing: 0.2,
        speed: 10.0,
    };
    bench("ablation_ttc_vs_phi/ttc_closed_form", || {
        ttc.deadline(black_box(&obs2))
    });
    bench("ablation_ttc_vs_phi/phi_rollout", || {
        evaluator.safe_interval_relative(black_box(&obs2), Control::new(0.0, 0.5))
    });
}
