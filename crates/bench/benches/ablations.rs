//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * lookup-table resolution vs direct φ integration (the table is the
//!   paper's "low-cost proxy" — quantify the cost gap it closes);
//! * deadline-table build cost at several grid resolutions;
//! * gating-level sweep (the Fig. 1 "50 % gating" knob);
//! * safety-filter step cost (pass-through vs corrective search);
//! * scheduler step throughput (the pure Algorithm 1 state machine).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seo_core::config::{OffloadFallback, SeoConfig};
use seo_core::model::{ModelId, ModelSet};
use seo_core::optimizer::OptimizerKind;
use seo_core::runtime::RuntimeLoop;
use seo_core::scheduler::SafeScheduler;
use seo_safety::filter::SafetyFilter;
use seo_safety::interval::SafeIntervalEvaluator;
use seo_safety::lookup::{Axis, DeadlineTable};
use seo_sim::scenario::ScenarioConfig;
use seo_sim::sensing::RelativeObservation;
use seo_sim::vehicle::{Control, VehicleState};
use seo_sim::world::{Obstacle, Road, World};
use std::hint::black_box;

fn bench_lookup_vs_direct(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_lookup_vs_direct");
    let evaluator = SafeIntervalEvaluator::default();
    let table = DeadlineTable::build_default(&evaluator);
    let observation = RelativeObservation { distance: 18.0, bearing: 0.3, speed: 10.0 };
    group.bench_function("table_query", |b| {
        b.iter(|| black_box(table.query(black_box(&observation))));
    });
    group.bench_function("direct_phi_integration", |b| {
        b.iter(|| {
            black_box(
                evaluator.safe_interval_relative(black_box(&observation), Control::new(0.0, 0.5)),
            )
        });
    });
    group.finish();
}

fn bench_table_build_resolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_table_build");
    group.sample_size(10);
    let evaluator = SafeIntervalEvaluator::default();
    for points in [9usize, 17, 25] {
        group.bench_with_input(
            BenchmarkId::new("distance_points", points),
            &points,
            |b, &points| {
                b.iter(|| {
                    let distance = Axis::new(0.0, 60.0, points).expect("valid");
                    let bearing = Axis::new(-3.2, 3.2, 9).expect("valid");
                    let speed = Axis::new(0.0, 15.0, 6).expect("valid");
                    black_box(DeadlineTable::build(
                        &evaluator,
                        distance,
                        bearing,
                        speed,
                        Control::new(0.0, 0.5),
                    ))
                });
            },
        );
    }
    group.finish();
}

fn bench_gating_level_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_gating_level");
    group.sample_size(10);
    let world = ScenarioConfig::new(2).with_seed(1).generate();
    for level in [0.0f64, 0.25, 0.5, 0.75] {
        let config = SeoConfig::paper_defaults().with_gating_level(level);
        let models = ModelSet::paper_setup(config.tau).expect("paper setup");
        let runtime =
            RuntimeLoop::new(config, models, OptimizerKind::ModelGating).expect("valid runtime");
        group.bench_with_input(
            BenchmarkId::new("gating_episode_level_pct", (level * 100.0) as u64),
            &world,
            |b, world| {
                b.iter(|| black_box(runtime.run_episode(world.clone(), 13)));
            },
        );
    }
    group.finish();
}

fn bench_filter_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_filter_step");
    let filter = SafetyFilter::default();
    let world = World::new(Road::default(), vec![Obstacle::new(40.0, 0.0, 1.0)]);
    let far = VehicleState::new(0.0, 0.0, 0.0, 10.0);
    let near = VehicleState::new(32.0, 0.0, 0.0, 12.0);
    group.bench_function("pass_through", |b| {
        b.iter(|| black_box(filter.filter(&world, black_box(&far), Control::new(0.0, 0.5))));
    });
    group.bench_function("corrective_search", |b| {
        b.iter(|| black_box(filter.filter(&world, black_box(&near), Control::new(0.0, 1.0))));
    });
    group.finish();
}

fn bench_scheduler_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_scheduler_step");
    group.bench_function("plan_step_two_models", |b| {
        let mut scheduler = SafeScheduler::new(vec![(ModelId(0), 1), (ModelId(1), 2)]);
        b.iter(|| black_box(scheduler.plan_step(|| 4)));
    });
    group.bench_function("plan_step_eight_models", |b| {
        let models: Vec<(ModelId, u32)> =
            (0..8).map(|i| (ModelId(i), (i as u32 % 4) + 1)).collect();
        let mut scheduler = SafeScheduler::new(models);
        b.iter(|| black_box(scheduler.plan_step(|| 4)));
    });
    group.finish();
}

fn bench_fallback_policy(c: &mut Criterion) {
    // Eq. (7) strict vs Fig. 3 semantics (see DESIGN.md §Divergences):
    // identical world, identical seeds; the episodes differ only in whether
    // a timely response replaces the deadline-slot local inference.
    let mut group = c.benchmark_group("ablation_offload_fallback");
    group.sample_size(10);
    let world = ScenarioConfig::new(2).with_seed(1).generate();
    for fallback in [OffloadFallback::LocalOnTimeout, OffloadFallback::AlwaysLocal] {
        let config = SeoConfig::paper_defaults().with_offload_fallback(fallback);
        let models = ModelSet::paper_setup(config.tau).expect("paper setup");
        let runtime =
            RuntimeLoop::new(config, models, OptimizerKind::Offloading).expect("valid runtime");
        group.bench_with_input(
            BenchmarkId::new("offload_episode", fallback.to_string()),
            &world,
            |b, world| {
                b.iter(|| black_box(runtime.run_episode(world.clone(), 21)));
            },
        );
    }
    group.finish();
}

fn bench_ttc_vs_phi(c: &mut Criterion) {
    use seo_safety::ttc::TtcEstimator;
    let mut group = c.benchmark_group("ablation_ttc_vs_phi");
    let evaluator = SafeIntervalEvaluator::default();
    let ttc = TtcEstimator::default();
    let observation = RelativeObservation { distance: 18.0, bearing: 0.2, speed: 10.0 };
    group.bench_function("ttc_closed_form", |b| {
        b.iter(|| black_box(ttc.deadline(black_box(&observation))));
    });
    group.bench_function("phi_rollout", |b| {
        b.iter(|| {
            black_box(
                evaluator.safe_interval_relative(black_box(&observation), Control::new(0.0, 0.5)),
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lookup_vs_direct,
    bench_table_build_resolution,
    bench_gating_level_sweep,
    bench_filter_step,
    bench_scheduler_throughput,
    bench_fallback_policy,
    bench_ttc_vs_phi
);
criterion_main!(benches);
