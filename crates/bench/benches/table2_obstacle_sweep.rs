//! Criterion bench for the Table II cells: filtered and unfiltered episodes
//! across the paper's obstacle sweep {0, 2, 4}.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seo_core::config::{ControlMode, SeoConfig};
use seo_core::model::ModelSet;
use seo_core::optimizer::OptimizerKind;
use seo_core::runtime::RuntimeLoop;
use seo_sim::scenario::ScenarioConfig;
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_obstacle_sweep");
    group.sample_size(10);
    for control in [ControlMode::Unfiltered, ControlMode::Filtered] {
        let config = SeoConfig::paper_defaults().with_control_mode(control);
        let models = ModelSet::paper_setup(config.tau).expect("paper setup");
        let runtime =
            RuntimeLoop::new(config, models, OptimizerKind::Offloading).expect("valid runtime");
        for n in [0usize, 2, 4] {
            let world = ScenarioConfig::new(n).with_seed(5).generate();
            group.bench_with_input(
                BenchmarkId::new(control.to_string(), n),
                &world,
                |b, world| {
                    b.iter(|| black_box(runtime.run_episode(world.clone(), 5)));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
