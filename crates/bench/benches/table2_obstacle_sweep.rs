//! Bench for the Table II cells: filtered offloading episodes under
//! obstacle variation (the obstacle count is the risk knob).

use seo_bench::timing::bench;
use seo_core::config::SeoConfig;
use seo_core::model::ModelSet;
use seo_core::optimizer::OptimizerKind;
use seo_core::runtime::{EpisodeScratch, RuntimeLoop, WorldSource};
use seo_sim::scenario::ScenarioConfig;
use std::hint::black_box;

fn main() {
    let config = SeoConfig::paper_defaults();
    let models = ModelSet::paper_setup(config.tau).expect("paper setup");
    let runtime =
        RuntimeLoop::new(config, models, OptimizerKind::Offloading).expect("valid runtime");
    let mut scratch = EpisodeScratch::new();
    for n_obstacles in [0usize, 2, 4] {
        let world = ScenarioConfig::new(n_obstacles).with_seed(5).generate();
        bench(
            &format!("table2_obstacle_sweep/offloading_episode_{n_obstacles}"),
            || black_box(runtime.run_with(WorldSource::Static(&world), 5, &mut scratch)),
        );
    }
}
