//! Multi-process determinism tests for the sharded sweep engine.
//!
//! These spawn the real `sweep` binary (via `CARGO_BIN_EXE_sweep`) as
//! coordinator and workers — actual OS processes talking the line-delimited
//! JSON wire format — and assert the merged output is **bit-identical** to
//! an in-process [`BatchRunner::run_serial`] over the same grid.

use seo_core::batch::{BatchRunner, ScenarioSpec};
use seo_core::prelude::*;
use seo_core::runtime::RuntimeLoop;
use seo_core::shard::{parse_report_line, report_line, Coordinator, ShardError, ShardPlanner};
use std::process::Command;

const SWEEP_BIN: &str = env!("CARGO_BIN_EXE_sweep");
const SCENARIOS: usize = 6;
const SEED: u64 = 2023;

/// The grid the sweep binary builds for `--scenarios 6 --seed 2023`.
fn grid() -> Vec<ScenarioSpec> {
    ScenarioSpec::grid(&[0, 2, 4], SCENARIOS.div_ceil(3), SEED)
}

fn serial_reports() -> Vec<EpisodeReport> {
    let config = SeoConfig::paper_defaults();
    let models = ModelSet::paper_setup(config.tau).expect("paper models");
    let runtime =
        RuntimeLoop::new(config, models, OptimizerKind::Offloading).expect("valid runtime");
    BatchRunner::new(runtime).run_serial(&grid())
}

fn common_args() -> [String; 4] {
    [
        "--scenarios".to_owned(),
        SCENARIOS.to_string(),
        "--seed".to_owned(),
        SEED.to_string(),
    ]
}

#[test]
fn multiprocess_merge_is_bit_identical_to_serial() {
    let serial = serial_reports();
    // 4 workers over 6 specs forces uneven shard sizes ([2, 2, 1, 1]).
    for workers in [1usize, 2, 4] {
        let coordinator = Coordinator::new(SWEEP_BIN).with_args(common_args());
        let plan = ShardPlanner::new(workers).plan(grid().len()).expect("plan");
        let merged = coordinator.run(&plan).expect("coordinator succeeds");
        assert_eq!(
            merged, serial,
            "{workers} worker processes must reproduce the serial sweep"
        );
        // Byte-level check on the wire encoding as well.
        for (i, (m, s)) in merged.iter().zip(&serial).enumerate() {
            assert_eq!(report_line(i, m), report_line(i, s), "line {i} differs");
        }
    }
}

#[test]
fn run_streaming_delivers_in_spec_order() {
    let serial = serial_reports();
    let coordinator = Coordinator::new(SWEEP_BIN).with_args(common_args());
    let plan = ShardPlanner::new(2).plan(grid().len()).expect("plan");
    let mut seen = Vec::new();
    coordinator
        .run_streaming(&plan, |i, report| seen.push((i, report)))
        .expect("streams");
    assert_eq!(seen.len(), serial.len());
    for (k, (i, report)) in seen.iter().enumerate() {
        assert_eq!(*i, k, "sink called strictly in spec order");
        assert_eq!(*report, serial[k]);
    }
}

#[test]
fn coordinator_cli_verify_mode_passes_and_streams_lines() {
    let output = Command::new(SWEEP_BIN)
        .args(common_args())
        .args(["--workers", "2", "--verify"])
        .output()
        .expect("sweep --workers runs");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "coordinator CLI failed: {stderr}");
    assert!(
        stderr.contains("bit-identical"),
        "verify note missing: {stderr}"
    );

    let stdout = String::from_utf8(output.stdout).expect("utf8");
    let serial = serial_reports();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), serial.len(), "one wire line per scenario");
    for (i, line) in lines.iter().enumerate() {
        let (index, report) = parse_report_line(line).expect("valid wire line");
        assert_eq!(index, i, "merged lines come out in spec order");
        assert_eq!(report, serial[i]);
    }
}

#[test]
fn worker_cli_emits_exactly_its_shard() {
    let output = Command::new(SWEEP_BIN)
        .args(common_args())
        .args(["--worker", "2..5"])
        .output()
        .expect("sweep --worker runs");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).expect("utf8");
    let serial = serial_reports();
    let parsed: Vec<(usize, EpisodeReport)> = stdout
        .lines()
        .map(|l| parse_report_line(l).expect("valid wire line"))
        .collect();
    assert_eq!(parsed.len(), 3);
    for (offset, (index, report)) in parsed.iter().enumerate() {
        assert_eq!(*index, 2 + offset);
        assert_eq!(*report, serial[*index]);
    }
}

#[test]
fn coordinator_reports_failing_worker_shard() {
    // "--seed x" makes every worker exit non-zero while parsing its CLI.
    let coordinator = Coordinator::new(SWEEP_BIN).with_args(["--scenarios", "6", "--seed", "x"]);
    let plan = ShardPlanner::new(2).plan(6).expect("plan");
    match coordinator.run(&plan) {
        Err(ShardError::WorkerFailed { shard, message, .. }) => {
            assert!(!shard.is_empty());
            assert!(
                message.contains("exited with") || message.contains("reported"),
                "unexpected failure message: {message}"
            );
        }
        other => panic!("expected WorkerFailed, got {other:?}"),
    }
}

#[test]
fn worker_cli_malformed_range_exits_2_with_usage() {
    // Reversed, empty, and non-numeric ranges are argument errors: exit
    // code 2 (not a generic failure), the offending spec named, and the
    // expected grammar shown.
    for bad in ["7..3", "3..3", "3-7", "a..b", ".."] {
        let output = Command::new(SWEEP_BIN)
            .args(common_args())
            .args(["--worker", bad])
            .output()
            .expect("sweep runs");
        assert_eq!(
            output.status.code(),
            Some(2),
            "malformed range '{bad}' must exit 2"
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("START..END"),
            "'{bad}': expected grammar missing from: {stderr}"
        );
        assert!(
            stderr.contains("usage:"),
            "'{bad}': usage hint missing from: {stderr}"
        );
        assert!(
            stderr.contains(bad),
            "'{bad}': offending spec not echoed in: {stderr}"
        );
    }
}

#[test]
fn unknown_kernel_flag_exits_2_with_valid_names() {
    // Same error grammar as the malformed `--worker` ranges: exit code 2,
    // the offending value echoed, the valid names listed, and the usage
    // shown.
    for bad in ["simd", "SCALAR", "avx512", ""] {
        let output = Command::new(SWEEP_BIN)
            .args(common_args())
            .args(["--kernel", bad])
            .output()
            .expect("sweep runs");
        assert_eq!(
            output.status.code(),
            Some(2),
            "unknown kernel '{bad}' must exit 2"
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains(&format!("'{bad}'")),
            "'{bad}': offending value not echoed in: {stderr}"
        );
        assert!(
            stderr.contains("scalar, blocked"),
            "'{bad}': valid names missing from: {stderr}"
        );
        assert!(
            stderr.contains("usage:"),
            "'{bad}': usage hint missing from: {stderr}"
        );
    }
}

#[test]
fn unknown_kernel_env_exits_2_and_names_the_variable() {
    // An unparsable SEO_KERNEL must be rejected as loudly as the flag —
    // never silently fall back to a default backend.
    let output = Command::new(SWEEP_BIN)
        .env("SEO_KERNEL", "warp9")
        .args(common_args())
        .args(["--worker", "0..2"])
        .output()
        .expect("sweep runs");
    assert_eq!(output.status.code(), Some(2), "bad SEO_KERNEL must exit 2");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("SEO_KERNEL") && stderr.contains("'warp9'"),
        "variable and value must be named: {stderr}"
    );
    assert!(
        stderr.contains("scalar, blocked"),
        "valid names missing from: {stderr}"
    );

    // The flag still wins over a valid env value, and a valid env value
    // works on its own.
    let output = Command::new(SWEEP_BIN)
        .env("SEO_KERNEL", "blocked")
        .args(common_args())
        .args(["--worker", "0..2"])
        .output()
        .expect("sweep runs");
    assert!(output.status.success(), "valid SEO_KERNEL must run");
}

#[test]
fn blocked_kernel_worker_output_is_bit_identical_on_the_wire() {
    // A worker on the blocked backend must stream byte-for-byte the same
    // lines as the (scalar) in-process serial reference — the cross-backend
    // half of the determinism invariant, at the process level.
    let serial = serial_reports();
    let output = Command::new(SWEEP_BIN)
        .args(common_args())
        .args(["--worker", "0..6", "--kernel", "blocked"])
        .output()
        .expect("sweep --worker runs");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).expect("utf8");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), serial.len());
    for (i, line) in lines.iter().enumerate() {
        assert_eq!(
            *line,
            report_line(i, &serial[i]),
            "blocked-kernel wire line {i} differs from the scalar serial run"
        );
    }
}

#[test]
fn coordinator_cli_rejects_too_many_workers() {
    let output = Command::new(SWEEP_BIN)
        .args(common_args())
        .args(["--workers", "99"])
        .output()
        .expect("sweep runs");
    assert!(
        !output.status.success(),
        "99 workers over 6 specs must fail validation before spawning"
    );
}
