//! CLI-level properties of the unified plan surface: `--help` exits 0 on
//! both binaries, `--plan --check` validates with field-named errors,
//! legacy flags desugar into plans with byte-identical output, and the
//! paper-preset plan reproduces the legacy grid across run modes (the
//! multi-host mode is covered against real daemons in
//! `multihost_sweep.rs` / `tests/transport.rs`).

use seo_core::plan::{ExecMode, SweepPlan};
use seo_core::prelude::*;
use std::path::PathBuf;
use std::process::Command;

const SWEEP_BIN: &str = env!("CARGO_BIN_EXE_sweep");
const SWEEPD_BIN: &str = env!("CARGO_BIN_EXE_sweepd");

/// Writes a plan to a unique temp file and returns its path.
fn write_plan(name: &str, plan: &SweepPlan) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("seo-plan-cli-{}-{name}.json", std::process::id()));
    std::fs::write(&path, plan.to_json().render_pretty()).expect("plan written");
    path
}

#[test]
fn help_prints_usage_and_exits_zero_on_both_binaries() {
    for (bin, needle) in [(SWEEP_BIN, "usage: sweep"), (SWEEPD_BIN, "usage: sweepd")] {
        for flag in ["--help", "-h"] {
            let output = Command::new(bin).arg(flag).output().expect("binary runs");
            assert_eq!(
                output.status.code(),
                Some(0),
                "{bin} {flag} must exit 0 (stderr: {})",
                String::from_utf8_lossy(&output.stderr)
            );
            let stdout = String::from_utf8_lossy(&output.stdout);
            assert!(stdout.contains(needle), "{bin} {flag}: {stdout}");
            assert!(
                stdout.contains("scalar, blocked"),
                "{bin} {flag} must list kernels: {stdout}"
            );
        }
    }
}

#[test]
fn plan_check_validates_and_summarizes() {
    let path = write_plan("check-ok", &SweepPlan::paper(6, 2023));
    let output = Command::new(SWEEP_BIN)
        .args(["--plan", path.to_str().expect("utf8 path"), "--check"])
        .output()
        .expect("sweep runs");
    assert_eq!(output.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("plan OK"), "{stdout}");
    assert!(stdout.contains("6 spec(s)"), "{stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn invalid_plan_exits_2_naming_every_offending_field() {
    let path = std::env::temp_dir().join(format!("seo-plan-cli-{}-bad.json", std::process::id()));
    std::fs::write(
        &path,
        r#"{"v":1,"axes":{"gating_levels":[1.5],"obstacles":[]},"exec":{"kernel":"warp9"}}"#,
    )
    .expect("plan written");
    let output = Command::new(SWEEP_BIN)
        .args(["--plan", path.to_str().expect("utf8 path"), "--check"])
        .output()
        .expect("sweep runs");
    assert_eq!(output.status.code(), Some(2), "invalid plan must exit 2");
    let stderr = String::from_utf8_lossy(&output.stderr);
    for field in ["axes.gating_levels", "axes.obstacles", "exec.kernel"] {
        assert!(stderr.contains(field), "'{field}' missing from: {stderr}");
    }
    assert!(stderr.contains("usage:"), "{stderr}");
    let _ = std::fs::remove_file(path);
}

/// The desugaring equivalence: `--workers 2 --kernel blocked` produces
/// byte-for-byte the stdout of running the corresponding plan file, and
/// both match the serial plan run.
#[test]
fn legacy_flags_are_equivalent_to_the_corresponding_plan_file() {
    let flags = Command::new(SWEEP_BIN)
        .args(["--scenarios", "6", "--seed", "2023"])
        .args(["--workers", "2", "--kernel", "blocked", "--verify"])
        .output()
        .expect("sweep runs");
    assert!(
        flags.status.success(),
        "flags run failed: {}",
        String::from_utf8_lossy(&flags.stderr)
    );

    let plan = SweepPlan::paper(6, 2023)
        .with_mode(ExecMode::Processes(2))
        .with_kernel(KernelBackend::Blocked)
        .with_verify(true);
    let path = write_plan("desugar", &plan);
    let from_plan = Command::new(SWEEP_BIN)
        .args(["--plan", path.to_str().expect("utf8 path")])
        .output()
        .expect("sweep runs");
    assert!(
        from_plan.status.success(),
        "plan run failed: {}",
        String::from_utf8_lossy(&from_plan.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&flags.stdout),
        String::from_utf8_lossy(&from_plan.stdout),
        "flag and plan runs must stream identical merged lines"
    );

    let serial = write_plan(
        "desugar-serial",
        &SweepPlan::paper(6, 2023).with_verify(true),
    );
    let serial_out = Command::new(SWEEP_BIN)
        .args(["--plan", serial.to_str().expect("utf8 path")])
        .output()
        .expect("sweep runs");
    assert!(serial_out.status.success());
    assert_eq!(
        from_plan.stdout, serial_out.stdout,
        "process mode must be byte-identical to the serial plan run"
    );
    for p in [path, serial] {
        let _ = std::fs::remove_file(p);
    }
}

/// A multi-axis plan runs end to end through the CLI in threads mode, with
/// `--verify` holding the pool to the serial reference, and streams one
/// line per grid point in index order.
#[test]
fn multi_axis_plan_runs_and_verifies_in_threads_mode() {
    let plan = SweepPlan::paper(3, 2023)
        .with_optimizers(vec![OptimizerKind::Offloading, OptimizerKind::ModelGating])
        .with_mode(ExecMode::Threads(2))
        .with_verify(true);
    let path = write_plan("threads", &plan);
    let output = Command::new(SWEEP_BIN)
        .args(["--plan", path.to_str().expect("utf8 path")])
        .output()
        .expect("sweep runs");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "{stderr}");
    assert!(stderr.contains("bit-identical"), "{stderr}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 6, "one wire line per grid point");
    for (i, line) in lines.iter().enumerate() {
        let (index, _) = seo_core::shard::parse_report_line(line).expect("valid wire line");
        assert_eq!(index, i, "merged lines come out in spec order");
    }
    let _ = std::fs::remove_file(path);
}

/// `--plan` with `--worker START..END` runs one shard of the plan's grid —
/// what the process-mode coordinator spawns under the hood.
#[test]
fn plan_worker_mode_emits_exactly_its_shard() {
    let plan = SweepPlan::paper(6, 2023);
    let serial = plan.run_serial().expect("plan runs");
    let path = write_plan("worker", &plan);
    let output = Command::new(SWEEP_BIN)
        .args([
            "--plan",
            path.to_str().expect("utf8 path"),
            "--worker",
            "2..5",
        ])
        .output()
        .expect("sweep runs");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).expect("utf8");
    let parsed: Vec<(usize, EpisodeReport)> = stdout
        .lines()
        .map(|l| seo_core::shard::parse_report_line(l).expect("valid wire line"))
        .collect();
    assert_eq!(parsed.len(), 3);
    for (offset, (index, report)) in parsed.iter().enumerate() {
        assert_eq!(*index, 2 + offset);
        assert_eq!(*report, serial[*index]);
    }
    let _ = std::fs::remove_file(path);
}

/// The committed example plans validate through the real CLI (`--check`),
/// so schema drift in either direction fails loudly here and in CI.
#[test]
fn committed_example_plans_pass_cli_check() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/plans");
    let mut seen = 0usize;
    for entry in std::fs::read_dir(dir).expect("examples/plans exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let output = Command::new(SWEEP_BIN)
            .args(["--plan", path.to_str().expect("utf8 path"), "--check"])
            .output()
            .expect("sweep runs");
        assert_eq!(
            output.status.code(),
            Some(0),
            "{}: {}",
            path.display(),
            String::from_utf8_lossy(&output.stderr)
        );
        seen += 1;
    }
    assert!(
        seen >= 3,
        "expected the committed preset plans, found {seen}"
    );
}
