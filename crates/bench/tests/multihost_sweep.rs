//! Multi-host determinism tests against the real binaries: `seo-sweepd`
//! daemons on loopback TCP ports plus the `sweep --hosts` coordinator CLI —
//! actual OS processes speaking the length-delimited frame protocol — with
//! the merged output asserted **bit-identical** to an in-process
//! `BatchRunner::run_serial`, clean runs and injected mid-stream host kills
//! alike. This is the same shape the CI loopback smoke runs.

use seo_core::batch::{BatchRunner, ScenarioSpec};
use seo_core::prelude::*;
use seo_core::runtime::RuntimeLoop;
use seo_core::shard::parse_report_line;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

const SWEEP_BIN: &str = env!("CARGO_BIN_EXE_sweep");
const SWEEPD_BIN: &str = env!("CARGO_BIN_EXE_sweepd");
const SCENARIOS: usize = 6;
const SEED: u64 = 2023;

fn serial_reports() -> Vec<EpisodeReport> {
    let config = SeoConfig::paper_defaults();
    let models = ModelSet::paper_setup(config.tau).expect("paper models");
    let runtime =
        RuntimeLoop::new(config, models, OptimizerKind::Offloading).expect("valid runtime");
    BatchRunner::new(runtime).run_serial(&ScenarioSpec::paper_grid(SCENARIOS, SEED))
}

/// A running `seo-sweepd` child, killed on drop so failed assertions never
/// leak daemons.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Spawns `sweepd --listen 127.0.0.1:0 [extra args…]` and scrapes the
    /// OS-assigned address from its first stdout line.
    fn spawn(extra_args: &[&str]) -> Self {
        let mut child = Command::new(SWEEPD_BIN)
            .args(["--listen", "127.0.0.1:0"])
            .args(extra_args)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("sweepd spawns");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("sweepd announces its address");
        let addr = line
            .trim()
            .rsplit(' ')
            .next()
            .expect("address on the announce line")
            .to_owned();
        assert!(addr.contains(':'), "unexpected announce line: {line:?}");
        Self { child, addr }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn write_hosts_file(hosts: &[(&str, u64)]) -> std::path::PathBuf {
    let entries: Vec<String> = hosts
        .iter()
        .map(|(addr, capacity)| format!(r#"{{"addr":"{addr}","capacity":{capacity}}}"#))
        .collect();
    static NEXT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let path = std::env::temp_dir().join(format!(
        "seo-hosts-{}-{}.json",
        std::process::id(),
        NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    std::fs::write(
        &path,
        format!(r#"{{"v":1,"hosts":[{}]}}"#, entries.join(",")),
    )
    .expect("hosts file written");
    path
}

/// Runs `sweep --hosts <file> --verify` and returns (stdout, stderr).
fn run_sweep_hosts(hosts_path: &std::path::Path) -> (String, String) {
    let output = Command::new(SWEEP_BIN)
        .args([
            "--scenarios",
            &SCENARIOS.to_string(),
            "--seed",
            &SEED.to_string(),
        ])
        .args(["--hosts".as_ref(), hosts_path.as_os_str()])
        .args(["--verify", "--timeout-secs", "60"])
        .output()
        .expect("sweep --hosts runs");
    let stderr = String::from_utf8_lossy(&output.stderr).into_owned();
    assert!(output.status.success(), "sweep --hosts failed: {stderr}");
    (
        String::from_utf8(output.stdout).expect("utf8 stdout"),
        stderr,
    )
}

fn assert_stdout_matches_serial(stdout: &str) {
    let serial = serial_reports();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), serial.len(), "one wire line per scenario");
    for (i, line) in lines.iter().enumerate() {
        let (index, report) = parse_report_line(line).expect("valid wire line");
        assert_eq!(index, i, "merged lines come out in spec order");
        assert_eq!(report, serial[i]);
    }
}

#[test]
fn two_daemon_hosts_merge_bit_identical_to_serial() {
    let a = Daemon::spawn(&[]);
    let b = Daemon::spawn(&[]);
    let hosts = write_hosts_file(&[(&a.addr, 2), (&b.addr, 1)]);
    let (stdout, stderr) = run_sweep_hosts(&hosts);
    let _ = std::fs::remove_file(&hosts);
    assert!(
        stderr.contains("bit-identical"),
        "verify note missing: {stderr}"
    );
    assert_stdout_matches_serial(&stdout);
}

#[test]
fn killed_daemon_mid_stream_is_resharded_and_output_stays_identical() {
    let healthy = Daemon::spawn(&[]);
    // This daemon drops every connection after 1 report, without a done
    // frame — a real process dying mid-stream from the coordinator's view.
    let doomed = Daemon::spawn(&["--fail-after", "1"]);
    let hosts = write_hosts_file(&[(&healthy.addr, 1), (&doomed.addr, 2)]);
    let (stdout, stderr) = run_sweep_hosts(&hosts);
    let _ = std::fs::remove_file(&hosts);
    assert!(
        stderr.contains("lost") && stderr.contains("re-sharded"),
        "host loss must be reported on stderr: {stderr}"
    );
    assert!(
        stderr.contains("bit-identical"),
        "verify must still pass after the re-shard: {stderr}"
    );
    assert_stdout_matches_serial(&stdout);
}

#[test]
fn multi_host_verify_sweep_is_kernel_backend_invariant() {
    // One daemon per backend — a deliberately *mixed* fleet — while the
    // coordinator's --verify rerun uses its own default (scalar) backend.
    // The run only passes if every backend produces byte-identical wire
    // lines, so this is the full multi-host backend-invariance check.
    let scalar_host = Daemon::spawn(&["--kernel", "scalar"]);
    let blocked_host = Daemon::spawn(&["--kernel", "blocked"]);
    let hosts = write_hosts_file(&[(&scalar_host.addr, 1), (&blocked_host.addr, 1)]);
    let (stdout, stderr) = run_sweep_hosts(&hosts);
    let _ = std::fs::remove_file(&hosts);
    assert!(
        stderr.contains("bit-identical"),
        "verify note missing: {stderr}"
    );
    assert_stdout_matches_serial(&stdout);
}

#[test]
fn hosts_plan_file_matches_the_legacy_hosts_flags_byte_for_byte() {
    // The hosts run mode described *inside a plan file* must reproduce the
    // legacy `--hosts` flag run exactly — the plan is the description, the
    // engines are shared. The daemons here receive the plan inline over
    // the wire (no plan file on the "remote" side).
    let a = Daemon::spawn(&[]);
    let b = Daemon::spawn(&["--kernel", "blocked"]); // mixed fleet stays legal
    let hosts = write_hosts_file(&[(&a.addr, 2), (&b.addr, 1)]);
    let (legacy_stdout, _) = run_sweep_hosts(&hosts);
    let _ = std::fs::remove_file(&hosts);

    let plan = seo_core::plan::SweepPlan::paper(SCENARIOS, SEED)
        .with_mode(seo_core::plan::ExecMode::Hosts(
            seo_core::transport::HostPool::new(vec![
                HostSpec {
                    addr: a.addr.clone(),
                    capacity: 2,
                },
                HostSpec {
                    addr: b.addr.clone(),
                    capacity: 1,
                },
            ])
            .expect("valid pool"),
        ))
        .with_timeout_secs(60.0)
        .with_verify(true);
    let path = std::env::temp_dir().join(format!("seo-hosts-plan-{}.json", std::process::id()));
    std::fs::write(&path, plan.to_json().render_pretty()).expect("plan written");
    let output = Command::new(SWEEP_BIN)
        .args(["--plan".as_ref(), path.as_os_str()])
        .output()
        .expect("sweep --plan runs");
    let _ = std::fs::remove_file(&path);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "plan hosts run failed: {stderr}");
    assert!(
        stderr.contains("bit-identical"),
        "verify note missing: {stderr}"
    );
    let stdout = String::from_utf8(output.stdout).expect("utf8 stdout");
    assert_eq!(
        stdout, legacy_stdout,
        "plan-file hosts mode must stream byte-identical merged lines"
    );
    assert_stdout_matches_serial(&stdout);
}

#[test]
fn sweepd_rejects_unknown_kernel_with_exit_2() {
    // Flag and environment variable use the same error grammar as sweep:
    // exit 2, offending value echoed, valid names listed, usage shown.
    let output = Command::new(SWEEPD_BIN)
        .args(["--kernel", "quantum"])
        .output()
        .expect("sweepd runs");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("'quantum'") && stderr.contains("scalar, blocked"),
        "value and valid names must be shown: {stderr}"
    );
    assert!(stderr.contains("usage:"), "usage missing: {stderr}");

    let output = Command::new(SWEEPD_BIN)
        .env("SEO_KERNEL", "quantum")
        .output()
        .expect("sweepd runs");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("SEO_KERNEL") && stderr.contains("'quantum'"),
        "variable must be named: {stderr}"
    );
}

#[test]
fn unrepresentable_timeout_is_an_argument_error_not_a_panic() {
    // 1e30 s parses as f64 but exceeds what Duration can hold; it must be
    // rejected at the CLI (exit 2 + usage) instead of panicking at use.
    for bad in ["1e30", "0", "-5", "inf", "nan"] {
        let output = Command::new(SWEEP_BIN)
            .args(["--hosts", "unused.json", "--timeout-secs", bad])
            .output()
            .expect("sweep runs");
        assert_eq!(
            output.status.code(),
            Some(2),
            "timeout '{bad}' must be an argument error"
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("--timeout-secs") && stderr.contains("usage:"),
            "'{bad}': {stderr}"
        );
    }
}

#[test]
fn invalid_hosts_file_fails_before_any_connection() {
    let hosts = write_hosts_file(&[("127.0.0.1:1", 0)]); // zero capacity
    let output = Command::new(SWEEP_BIN)
        .args(["--hosts".as_ref(), hosts.as_os_str()])
        .output()
        .expect("sweep runs");
    let _ = std::fs::remove_file(&hosts);
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("capacity"),
        "validation error should name the problem: {stderr}"
    );
}
