//! Multi-host determinism tests against the real binaries: `seo-sweepd`
//! daemons on loopback TCP ports plus the `sweep --hosts` coordinator CLI —
//! actual OS processes speaking the length-delimited frame protocol — with
//! the merged output asserted **bit-identical** to an in-process
//! `BatchRunner::run_serial`, clean runs and injected mid-stream host kills
//! alike. This is the same shape the CI loopback smoke runs.

use seo_core::batch::{BatchRunner, ScenarioSpec};
use seo_core::prelude::*;
use seo_core::runtime::RuntimeLoop;
use seo_core::shard::parse_report_line;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

const SWEEP_BIN: &str = env!("CARGO_BIN_EXE_sweep");
const SWEEPD_BIN: &str = env!("CARGO_BIN_EXE_sweepd");
const SCENARIOS: usize = 6;
const SEED: u64 = 2023;

fn serial_reports() -> Vec<EpisodeReport> {
    let config = SeoConfig::paper_defaults();
    let models = ModelSet::paper_setup(config.tau).expect("paper models");
    let runtime =
        RuntimeLoop::new(config, models, OptimizerKind::Offloading).expect("valid runtime");
    BatchRunner::new(runtime).run_serial(&ScenarioSpec::paper_grid(SCENARIOS, SEED))
}

/// A running `seo-sweepd` child, killed on drop so failed assertions never
/// leak daemons.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Spawns `sweepd --listen 127.0.0.1:0 [extra args…]` and scrapes the
    /// OS-assigned address from its first stdout line.
    fn spawn(extra_args: &[&str]) -> Self {
        let mut child = Command::new(SWEEPD_BIN)
            .args(["--listen", "127.0.0.1:0"])
            .args(extra_args)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("sweepd spawns");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("sweepd announces its address");
        let addr = line
            .trim()
            .rsplit(' ')
            .next()
            .expect("address on the announce line")
            .to_owned();
        assert!(addr.contains(':'), "unexpected announce line: {line:?}");
        Self { child, addr }
    }
}

impl Daemon {
    /// Polls the child for up to 10 s and returns its exit status; panics
    /// if the daemon is still running (a drain that never finished).
    fn wait_for_exit(&mut self) -> std::process::ExitStatus {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while std::time::Instant::now() < deadline {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                return status;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        panic!("sweepd did not exit within 10 s of the drain request");
    }

    /// Runs `sweepd --health ADDR` / `--shutdown ADDR` (client mode)
    /// against this daemon and returns the probe's stdout; asserts exit 0.
    fn probe(&self, verb: &str) -> String {
        let output = Command::new(SWEEPD_BIN)
            .args([verb, &self.addr])
            .output()
            .expect("sweepd probe runs");
        assert!(
            output.status.success(),
            "sweepd {verb} failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        String::from_utf8(output.stdout).expect("utf8 probe reply")
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn write_hosts_file(hosts: &[(&str, u64)]) -> std::path::PathBuf {
    let entries: Vec<String> = hosts
        .iter()
        .map(|(addr, capacity)| format!(r#"{{"addr":"{addr}","capacity":{capacity}}}"#))
        .collect();
    static NEXT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let path = std::env::temp_dir().join(format!(
        "seo-hosts-{}-{}.json",
        std::process::id(),
        NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    std::fs::write(
        &path,
        format!(r#"{{"v":1,"hosts":[{}]}}"#, entries.join(",")),
    )
    .expect("hosts file written");
    path
}

/// Runs `sweep --hosts <file> --verify` and returns (stdout, stderr).
fn run_sweep_hosts(hosts_path: &std::path::Path) -> (String, String) {
    let output = Command::new(SWEEP_BIN)
        .args([
            "--scenarios",
            &SCENARIOS.to_string(),
            "--seed",
            &SEED.to_string(),
        ])
        .args(["--hosts".as_ref(), hosts_path.as_os_str()])
        .args(["--verify", "--timeout-secs", "60"])
        .output()
        .expect("sweep --hosts runs");
    let stderr = String::from_utf8_lossy(&output.stderr).into_owned();
    assert!(output.status.success(), "sweep --hosts failed: {stderr}");
    (
        String::from_utf8(output.stdout).expect("utf8 stdout"),
        stderr,
    )
}

fn assert_stdout_matches_serial(stdout: &str) {
    let serial = serial_reports();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), serial.len(), "one wire line per scenario");
    for (i, line) in lines.iter().enumerate() {
        let (index, report) = parse_report_line(line).expect("valid wire line");
        assert_eq!(index, i, "merged lines come out in spec order");
        assert_eq!(report, serial[i]);
    }
}

#[test]
fn two_daemon_hosts_merge_bit_identical_to_serial() {
    let a = Daemon::spawn(&[]);
    let b = Daemon::spawn(&[]);
    let hosts = write_hosts_file(&[(&a.addr, 2), (&b.addr, 1)]);
    let (stdout, stderr) = run_sweep_hosts(&hosts);
    let _ = std::fs::remove_file(&hosts);
    assert!(
        stderr.contains("bit-identical"),
        "verify note missing: {stderr}"
    );
    assert!(
        stderr.contains("remote stats"),
        "the structured run-stats summary must be on stderr: {stderr}"
    );
    assert_stdout_matches_serial(&stdout);
}

/// The daemon service contract end to end with real processes: one
/// `seo-sweepd` serves three consecutive `sweep --hosts` runs (with a raw
/// client disconnecting mid-job in between), answers a `--health` probe
/// with cumulative stats, and exits 0 after a `--shutdown` drain.
#[test]
fn one_sweepd_serves_consecutive_sweeps_and_drains_on_shutdown() {
    let mut daemon = Daemon::spawn(&["--jobs", "2"]);
    let hosts = write_hosts_file(&[(&daemon.addr, 1)]);
    for _ in 0..2 {
        let (stdout, _) = run_sweep_hosts(&hosts);
        assert_stdout_matches_serial(&stdout);
    }
    // A raw client that sends a job, reads one frame, and vanishes: the
    // daemon must shrug it off and keep serving.
    {
        use seo_core::transport::{read_frame, write_frame, JobRequest};
        let mut stream = std::net::TcpStream::connect(&daemon.addr).expect("connect");
        let job = JobRequest {
            scenarios: SCENARIOS,
            seed: SEED,
            plan: None,
            shard: Shard::new(0, SCENARIOS),
        };
        write_frame(&mut stream, &job.to_frame()).expect("send job");
        read_frame(&mut stream)
            .expect("read frame")
            .expect("first report");
    }
    let (stdout, _) = run_sweep_hosts(&hosts);
    let _ = std::fs::remove_file(&hosts);
    assert_stdout_matches_serial(&stdout);
    // Health: the cumulative counters cover the three completed jobs.
    let health = daemon.probe("--health");
    assert!(
        health.contains("jobs_served"),
        "health must carry counters: {health}"
    );
    assert!(
        health.contains(r#""status":"ok""#),
        "not draining: {health}"
    );
    // Shutdown: acked, then the process drains and exits 0.
    let ack = daemon.probe("--shutdown");
    assert!(ack.contains("jobs_active"), "unexpected ack: {ack}");
    let status = daemon.wait_for_exit();
    assert_eq!(status.code(), Some(0), "a drain is a clean exit");
}

/// A daemon that refuses its first connection but recovers is absorbed by
/// the coordinator's retry budget (carried in the hosts file): no loss, no
/// lease re-issue, and the retry shows up in the structured stats summary.
#[test]
fn refuse_then_recover_daemon_is_absorbed_by_the_retry_budget() {
    let flaky = Daemon::spawn(&["--fault", "refuse=1"]);
    let healthy = Daemon::spawn(&[]);
    static NEXT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let hosts = std::env::temp_dir().join(format!(
        "seo-hosts-retry-{}-{}.json",
        std::process::id(),
        NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    std::fs::write(
        &hosts,
        format!(
            r#"{{"v":1,"hosts":[{{"addr":"{}","capacity":1}},{{"addr":"{}","capacity":1}}],
               "retry":{{"attempts":3,"base_delay_ms":50}}}}"#,
            flaky.addr, healthy.addr
        ),
    )
    .expect("hosts file written");
    let (stdout, stderr) = run_sweep_hosts(&hosts);
    let _ = std::fs::remove_file(&hosts);
    assert_stdout_matches_serial(&stdout);
    assert!(
        stderr.contains(r#""hosts_lost":[]"#),
        "recovery within the budget must not lose the host: {stderr}"
    );
    assert!(
        !stderr.contains("lost to a"),
        "no loss line should be printed: {stderr}"
    );
    assert!(
        stderr.contains(r#""retries":1"#),
        "the retry must be visible in the stats summary: {stderr}"
    );
}

#[test]
fn killed_daemon_mid_stream_is_reissued_and_output_stays_identical() {
    let healthy = Daemon::spawn(&[]);
    // This daemon drops every connection after 1 report, without a done
    // frame — a real process dying mid-stream from the coordinator's view.
    let doomed = Daemon::spawn(&["--fail-after", "1"]);
    let hosts = write_hosts_file(&[(&healthy.addr, 1), (&doomed.addr, 2)]);
    let (stdout, stderr) = run_sweep_hosts(&hosts);
    let _ = std::fs::remove_file(&hosts);
    assert!(
        stderr.contains("lost") && stderr.contains("re-queued"),
        "host loss must be reported on stderr: {stderr}"
    );
    assert!(
        stderr.contains("bit-identical"),
        "verify must still pass after the re-issue: {stderr}"
    );
    assert_stdout_matches_serial(&stdout);
}

/// A chunked hosts file end to end with real processes: `"chunk":3` carves
/// the 6-spec grid into two leases; the doomed daemon burns its 2-attempt
/// retry budget one report at a time and strands one spec, which the
/// healthy daemon steals off the queue. The stats summary on stderr must
/// carry the resolved chunk and the re-issue/steal tallies, and the merge
/// must stay bit-identical. (The 400 ms retry delay doubles as the
/// readmission backoff, so the healthy host always wins the remnant.)
#[test]
fn chunked_hosts_file_reissues_and_steals_a_stranded_lease() {
    let doomed = Daemon::spawn(&["--fail-after", "1"]);
    let healthy = Daemon::spawn(&[]);
    static NEXT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let hosts = std::env::temp_dir().join(format!(
        "seo-hosts-chunk-{}-{}.json",
        std::process::id(),
        NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    std::fs::write(
        &hosts,
        format!(
            r#"{{"v":1,"hosts":[{{"addr":"{}","capacity":1}},{{"addr":"{}","capacity":1}}],
               "retry":{{"attempts":2,"base_delay_ms":400}},"chunk":3}}"#,
            doomed.addr, healthy.addr
        ),
    )
    .expect("hosts file written");
    let (stdout, stderr) = run_sweep_hosts(&hosts);
    let _ = std::fs::remove_file(&hosts);
    assert_stdout_matches_serial(&stdout);
    assert!(
        stderr.contains(r#""chunk":3"#),
        "the resolved chunk must be in the stats summary: {stderr}"
    );
    assert!(
        stderr.contains(r#""reissues":1"#),
        "the stranded lease must be counted as a re-issue: {stderr}"
    );
    assert!(
        stderr.contains(r#""steals":1"#),
        "the healthy host must steal the remnant: {stderr}"
    );
    assert!(
        stderr.contains("re-queued"),
        "the loss line must describe the re-queue: {stderr}"
    );
}

#[test]
fn multi_host_verify_sweep_is_kernel_backend_invariant() {
    // One daemon per backend — a deliberately *mixed* fleet — while the
    // coordinator's --verify rerun uses its own default (scalar) backend.
    // The run only passes if every backend produces byte-identical wire
    // lines, so this is the full multi-host backend-invariance check.
    let scalar_host = Daemon::spawn(&["--kernel", "scalar"]);
    let blocked_host = Daemon::spawn(&["--kernel", "blocked"]);
    let hosts = write_hosts_file(&[(&scalar_host.addr, 1), (&blocked_host.addr, 1)]);
    let (stdout, stderr) = run_sweep_hosts(&hosts);
    let _ = std::fs::remove_file(&hosts);
    assert!(
        stderr.contains("bit-identical"),
        "verify note missing: {stderr}"
    );
    assert_stdout_matches_serial(&stdout);
}

#[test]
fn hosts_plan_file_matches_the_legacy_hosts_flags_byte_for_byte() {
    // The hosts run mode described *inside a plan file* must reproduce the
    // legacy `--hosts` flag run exactly — the plan is the description, the
    // engines are shared. The daemons here receive the plan inline over
    // the wire (no plan file on the "remote" side).
    let a = Daemon::spawn(&[]);
    let b = Daemon::spawn(&["--kernel", "blocked"]); // mixed fleet stays legal
    let hosts = write_hosts_file(&[(&a.addr, 2), (&b.addr, 1)]);
    let (legacy_stdout, _) = run_sweep_hosts(&hosts);
    let _ = std::fs::remove_file(&hosts);

    let plan = seo_core::plan::SweepPlan::paper(SCENARIOS, SEED)
        .with_mode(seo_core::plan::ExecMode::Hosts(
            seo_core::transport::HostPool::new(vec![
                HostSpec {
                    addr: a.addr.clone(),
                    capacity: 2,
                },
                HostSpec {
                    addr: b.addr.clone(),
                    capacity: 1,
                },
            ])
            .expect("valid pool"),
        ))
        .with_timeout_secs(60.0)
        .with_verify(true);
    let path = std::env::temp_dir().join(format!("seo-hosts-plan-{}.json", std::process::id()));
    std::fs::write(&path, plan.to_json().render_pretty()).expect("plan written");
    let output = Command::new(SWEEP_BIN)
        .args(["--plan".as_ref(), path.as_os_str()])
        .output()
        .expect("sweep --plan runs");
    let _ = std::fs::remove_file(&path);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "plan hosts run failed: {stderr}");
    assert!(
        stderr.contains("bit-identical"),
        "verify note missing: {stderr}"
    );
    let stdout = String::from_utf8(output.stdout).expect("utf8 stdout");
    assert_eq!(
        stdout, legacy_stdout,
        "plan-file hosts mode must stream byte-identical merged lines"
    );
    assert_stdout_matches_serial(&stdout);
}

#[test]
fn sweepd_rejects_unknown_kernel_with_exit_2() {
    // Flag and environment variable use the same error grammar as sweep:
    // exit 2, offending value echoed, valid names listed, usage shown.
    let output = Command::new(SWEEPD_BIN)
        .args(["--kernel", "quantum"])
        .output()
        .expect("sweepd runs");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("'quantum'") && stderr.contains("scalar, blocked"),
        "value and valid names must be shown: {stderr}"
    );
    assert!(stderr.contains("usage:"), "usage missing: {stderr}");

    let output = Command::new(SWEEPD_BIN)
        .env("SEO_KERNEL", "quantum")
        .output()
        .expect("sweepd runs");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("SEO_KERNEL") && stderr.contains("'quantum'"),
        "variable must be named: {stderr}"
    );
}

#[test]
fn sweepd_rejects_bad_flags_with_exit_2_and_usage() {
    // Unknown flags and invalid values for the daemon knobs are argument
    // errors: exit 2, the flag named, usage shown.
    for args in [
        ["--bogus", "1"],
        ["--jobs", "0"],
        ["--jobs", "many"],
        ["--timeout-secs", "0"],
        ["--timeout-secs", "1e30"],
        ["--fault", "refuse"],
        ["--fault", "warp=1"],
    ] {
        let output = Command::new(SWEEPD_BIN)
            .args(args)
            .output()
            .expect("sweepd runs");
        assert_eq!(
            output.status.code(),
            Some(2),
            "{args:?} must be an argument error"
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("usage:"),
            "{args:?}: usage missing: {stderr}"
        );
        assert!(
            stderr.contains(args[0].trim_start_matches('-')),
            "{args:?}: the offending flag must be named: {stderr}"
        );
    }
}

#[test]
fn unrepresentable_timeout_is_an_argument_error_not_a_panic() {
    // 1e30 s parses as f64 but exceeds what Duration can hold; it must be
    // rejected at the CLI (exit 2 + usage) instead of panicking at use.
    for bad in ["1e30", "0", "-5", "inf", "nan"] {
        let output = Command::new(SWEEP_BIN)
            .args(["--hosts", "unused.json", "--timeout-secs", bad])
            .output()
            .expect("sweep runs");
        assert_eq!(
            output.status.code(),
            Some(2),
            "timeout '{bad}' must be an argument error"
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("--timeout-secs") && stderr.contains("usage:"),
            "'{bad}': {stderr}"
        );
    }
}

#[test]
fn invalid_hosts_file_fails_before_any_connection() {
    let hosts = write_hosts_file(&[("127.0.0.1:1", 0)]); // zero capacity
    let output = Command::new(SWEEP_BIN)
        .args(["--hosts".as_ref(), hosts.as_os_str()])
        .output()
        .expect("sweep runs");
    let _ = std::fs::remove_file(&hosts);
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("capacity"),
        "validation error should name the problem: {stderr}"
    );
}
