//! Property-based tests for the wireless-layer invariants, driven by a
//! seeded generator loop.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seo_platform::units::{Bits, BitsPerSecond, Seconds, Watts};
use seo_wireless::bursty::GilbertElliottChannel;
use seo_wireless::channel::RayleighChannel;
use seo_wireless::link::WirelessLink;
use seo_wireless::offload::{OffloadTransaction, ResponseEstimator};
use seo_wireless::server::EdgeServer;

const CASES: usize = 100;

#[test]
fn rayleigh_samples_positive_for_any_scale() {
    let mut case_rng = StdRng::seed_from_u64(40);
    for _ in 0..CASES {
        let scale = case_rng.gen_range(0.1..1000.0);
        let seed = case_rng.gen_range(0u64..200);
        let channel = RayleighChannel::new(BitsPerSecond::from_mbps(scale)).expect("valid scale");
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            assert!(channel.sample_rate(&mut rng).as_bits_per_second() > 0.0);
        }
    }
}

#[test]
fn transmission_latency_scales_with_payload() {
    let mut case_rng = StdRng::seed_from_u64(41);
    for _ in 0..CASES {
        let kb = case_rng.gen_range(1.0..500.0);
        let factor = case_rng.gen_range(1.1..5.0);
        let seed = case_rng.gen_range(0u64..100);
        let small = WirelessLink::paper_default()
            .expect("valid")
            .with_payload(Bits::from_kilobytes(kb))
            .expect("valid payload");
        let large = small
            .with_payload(Bits::from_kilobytes(kb * factor))
            .expect("valid");
        // Same channel draw order: compare with identical seeds.
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed);
        let a = small.transmit(&mut rng_a);
        let b = large.transmit(&mut rng_b);
        assert!(b.latency >= a.latency, "{} < {}", b.latency, a.latency);
        assert!(b.energy >= a.energy);
    }
}

#[test]
fn transaction_completion_is_monotone_in_time() {
    let mut case_rng = StdRng::seed_from_u64(42);
    let link = WirelessLink::paper_default().expect("valid");
    let server = EdgeServer::paper_default().expect("valid");
    for _ in 0..CASES {
        let seed = case_rng.gen_range(0u64..200);
        let issue_at = case_rng.gen_range(0.0..100.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let tx = OffloadTransaction::issue(&link, &server, Seconds::new(issue_at), &mut rng);
        assert!(!tx.is_complete(tx.issued_at()));
        assert!(tx.is_complete(tx.completes_at()));
        assert!(tx.is_complete(tx.completes_at() + Seconds::new(1.0)));
        assert!(tx.response_duration().as_secs() > 0.0);
        assert!(tx.radio_energy().as_joules() > 0.0);
    }
}

#[test]
fn estimator_stays_within_observation_hull() {
    let mut rng = StdRng::seed_from_u64(43);
    for _ in 0..CASES {
        let prior_ms = rng.gen_range(1.0..100.0);
        let alpha = rng.gen_range(0.01..1.0);
        let n_obs = rng.gen_range(1usize..30);
        let obs_ms: Vec<f64> = (0..n_obs).map(|_| rng.gen_range(1.0..100.0)).collect();
        let mut est = ResponseEstimator::new(Seconds::from_millis(prior_ms), alpha);
        let mut lo = prior_ms;
        let mut hi = prior_ms;
        for &ms in &obs_ms {
            est.observe(Seconds::from_millis(ms));
            lo = lo.min(ms);
            hi = hi.max(ms);
        }
        let e = est.estimate().as_millis();
        assert!(
            e >= lo - 1e-9 && e <= hi + 1e-9,
            "estimate {e} outside [{lo}, {hi}]"
        );
        assert_eq!(est.observations(), obs_ms.len());
    }
}

#[test]
fn estimator_discretization_covers_estimate() {
    let mut rng = StdRng::seed_from_u64(44);
    for _ in 0..CASES {
        let est_ms = rng.gen_range(0.1..200.0);
        let tau_ms = rng.gen_range(1.0..50.0);
        let est = ResponseEstimator::new(Seconds::from_millis(est_ms), 0.2);
        let periods = est.estimate_in_periods(Seconds::from_millis(tau_ms));
        // Ceiling: periods * tau >= estimate, (periods - 1) * tau < estimate.
        assert!(f64::from(periods) * tau_ms >= est_ms - 1e-9);
        if periods > 0 {
            assert!(f64::from(periods - 1) * tau_ms < est_ms + 1e-9);
        }
    }
}

#[test]
fn bursty_channel_rates_positive_and_state_flips_eventually() {
    for seed in 0u64..30 {
        let mut channel = GilbertElliottChannel::vehicular_default().expect("valid");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut saw_bad = false;
        for _ in 0..5000 {
            assert!(channel.sample_rate(&mut rng).as_bits_per_second() > 0.0);
            if channel.state() == seo_wireless::bursty::ChannelState::Bad {
                saw_bad = true;
            }
        }
        assert!(
            saw_bad,
            "a 1% burst entry rate must fire within 5000 samples"
        );
    }
}

#[test]
fn tx_power_scales_energy_linearly() {
    let mut case_rng = StdRng::seed_from_u64(45);
    for _ in 0..CASES {
        let seed = case_rng.gen_range(0u64..100);
        let power = case_rng.gen_range(0.1..10.0);
        let channel = RayleighChannel::paper_default().expect("valid");
        let base = WirelessLink::new(
            channel,
            Bits::from_kilobytes(25.0),
            Watts::new(power),
            Seconds::from_millis(1.0),
        )
        .expect("valid");
        let double = WirelessLink::new(
            channel,
            Bits::from_kilobytes(25.0),
            Watts::new(power * 2.0),
            Seconds::from_millis(1.0),
        )
        .expect("valid");
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed);
        let a = base.transmit(&mut rng_a);
        let b = double.transmit(&mut rng_b);
        assert!((b.energy.as_joules() - 2.0 * a.energy.as_joules()).abs() < 1e-12);
    }
}
