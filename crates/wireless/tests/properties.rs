//! Property-based tests for the wireless-layer invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use seo_platform::units::{Bits, BitsPerSecond, Seconds, Watts};
use seo_wireless::bursty::GilbertElliottChannel;
use seo_wireless::channel::RayleighChannel;
use seo_wireless::link::WirelessLink;
use seo_wireless::offload::{OffloadTransaction, ResponseEstimator};
use seo_wireless::server::EdgeServer;

proptest! {
    #[test]
    fn rayleigh_samples_positive_for_any_scale(scale in 0.1..1000.0f64, seed in 0u64..200) {
        let channel = RayleighChannel::new(BitsPerSecond::from_mbps(scale)).expect("valid scale");
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(channel.sample_rate(&mut rng).as_bits_per_second() > 0.0);
        }
    }

    #[test]
    fn transmission_latency_scales_with_payload(
        kb in 1.0..500.0f64,
        factor in 1.1..5.0f64,
        seed in 0u64..100,
    ) {
        let small = WirelessLink::paper_default()
            .expect("valid")
            .with_payload(Bits::from_kilobytes(kb))
            .expect("valid payload");
        let large = small.with_payload(Bits::from_kilobytes(kb * factor)).expect("valid");
        // Same channel draw order: compare with identical seeds.
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed);
        let a = small.transmit(&mut rng_a);
        let b = large.transmit(&mut rng_b);
        prop_assert!(b.latency >= a.latency, "{} < {}", b.latency, a.latency);
        prop_assert!(b.energy >= a.energy);
    }

    #[test]
    fn transaction_completion_is_monotone_in_time(
        seed in 0u64..200,
        issue_at in 0.0..100.0f64,
    ) {
        let link = WirelessLink::paper_default().expect("valid");
        let server = EdgeServer::paper_default().expect("valid");
        let mut rng = StdRng::seed_from_u64(seed);
        let tx = OffloadTransaction::issue(&link, &server, Seconds::new(issue_at), &mut rng);
        prop_assert!(!tx.is_complete(tx.issued_at()));
        prop_assert!(tx.is_complete(tx.completes_at()));
        prop_assert!(tx.is_complete(tx.completes_at() + Seconds::new(1.0)));
        prop_assert!(tx.response_duration().as_secs() > 0.0);
        prop_assert!(tx.radio_energy().as_joules() > 0.0);
    }

    #[test]
    fn estimator_stays_within_observation_hull(
        prior_ms in 1.0..100.0f64,
        obs_ms in proptest::collection::vec(1.0..100.0f64, 1..30),
        alpha in 0.01..1.0f64,
    ) {
        let mut est = ResponseEstimator::new(Seconds::from_millis(prior_ms), alpha);
        let mut lo = prior_ms;
        let mut hi = prior_ms;
        for &ms in &obs_ms {
            est.observe(Seconds::from_millis(ms));
            lo = lo.min(ms);
            hi = hi.max(ms);
        }
        let e = est.estimate().as_millis();
        prop_assert!(e >= lo - 1e-9 && e <= hi + 1e-9, "estimate {e} outside [{lo}, {hi}]");
        prop_assert_eq!(est.observations(), obs_ms.len());
    }

    #[test]
    fn estimator_discretization_covers_estimate(
        est_ms in 0.1..200.0f64,
        tau_ms in 1.0..50.0f64,
    ) {
        let est = ResponseEstimator::new(Seconds::from_millis(est_ms), 0.2);
        let periods = est.estimate_in_periods(Seconds::from_millis(tau_ms));
        // Ceiling: periods * tau >= estimate, (periods - 1) * tau < estimate.
        prop_assert!(f64::from(periods) * tau_ms >= est_ms - 1e-9);
        if periods > 0 {
            prop_assert!(f64::from(periods - 1) * tau_ms < est_ms + 1e-9);
        }
    }

    #[test]
    fn bursty_channel_rates_positive_and_state_flips_eventually(seed in 0u64..100) {
        let mut channel = GilbertElliottChannel::vehicular_default().expect("valid");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut saw_bad = false;
        for _ in 0..5000 {
            prop_assert!(channel.sample_rate(&mut rng).as_bits_per_second() > 0.0);
            if channel.state() == seo_wireless::bursty::ChannelState::Bad {
                saw_bad = true;
            }
        }
        prop_assert!(saw_bad, "a 1% burst entry rate must fire within 5000 samples");
    }

    #[test]
    fn tx_power_scales_energy_linearly(seed in 0u64..100, power in 0.1..10.0f64) {
        let channel = RayleighChannel::paper_default().expect("valid");
        let base = WirelessLink::new(
            channel,
            Bits::from_kilobytes(25.0),
            Watts::new(power),
            Seconds::from_millis(1.0),
        )
        .expect("valid");
        let double = WirelessLink::new(
            channel,
            Bits::from_kilobytes(25.0),
            Watts::new(power * 2.0),
            Seconds::from_millis(1.0),
        )
        .expect("valid");
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed);
        let a = base.transmit(&mut rng_a);
        let b = double.transmit(&mut rng_b);
        prop_assert!((b.energy.as_joules() - 2.0 * a.energy.as_joules()).abs() < 1e-12);
    }
}
