//! Property-based tests for the wireless-layer invariants, driven by a
//! seeded generator loop.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seo_platform::units::{Bits, BitsPerSecond, Seconds, Watts};
use seo_wireless::bursty::GilbertElliottChannel;
use seo_wireless::channel::RayleighChannel;
use seo_wireless::link::WirelessLink;
use seo_wireless::offload::{OffloadTransaction, ResponseEstimator};
use seo_wireless::server::EdgeServer;

const CASES: usize = 100;

#[test]
fn rayleigh_samples_positive_for_any_scale() {
    let mut case_rng = StdRng::seed_from_u64(40);
    for _ in 0..CASES {
        let scale = case_rng.gen_range(0.1..1000.0);
        let seed = case_rng.gen_range(0u64..200);
        let channel = RayleighChannel::new(BitsPerSecond::from_mbps(scale)).expect("valid scale");
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            assert!(channel.sample_rate(&mut rng).as_bits_per_second() > 0.0);
        }
    }
}

#[test]
fn transmission_latency_scales_with_payload() {
    let mut case_rng = StdRng::seed_from_u64(41);
    for _ in 0..CASES {
        let kb = case_rng.gen_range(1.0..500.0);
        let factor = case_rng.gen_range(1.1..5.0);
        let seed = case_rng.gen_range(0u64..100);
        let mut small = WirelessLink::paper_default()
            .expect("valid")
            .with_payload(Bits::from_kilobytes(kb))
            .expect("valid payload");
        let mut large = small
            .with_payload(Bits::from_kilobytes(kb * factor))
            .expect("valid");
        // Same channel draw order: compare with identical seeds.
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed);
        let a = small.transmit(&mut rng_a);
        let b = large.transmit(&mut rng_b);
        assert!(b.latency >= a.latency, "{} < {}", b.latency, a.latency);
        assert!(b.energy >= a.energy);
    }
}

#[test]
fn transaction_completion_is_monotone_in_time() {
    let mut case_rng = StdRng::seed_from_u64(42);
    let mut link = WirelessLink::paper_default().expect("valid");
    let server = EdgeServer::paper_default().expect("valid");
    for _ in 0..CASES {
        let seed = case_rng.gen_range(0u64..200);
        let issue_at = case_rng.gen_range(0.0..100.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let tx = OffloadTransaction::issue(&mut link, &server, Seconds::new(issue_at), &mut rng);
        assert!(!tx.is_complete(tx.issued_at()));
        assert!(tx.is_complete(tx.completes_at()));
        assert!(tx.is_complete(tx.completes_at() + Seconds::new(1.0)));
        assert!(tx.response_duration().as_secs() > 0.0);
        assert!(tx.radio_energy().as_joules() > 0.0);
    }
}

#[test]
fn estimator_stays_within_observation_hull() {
    let mut rng = StdRng::seed_from_u64(43);
    for _ in 0..CASES {
        let prior_ms = rng.gen_range(1.0..100.0);
        let alpha = rng.gen_range(0.01..1.0);
        let n_obs = rng.gen_range(1usize..30);
        let obs_ms: Vec<f64> = (0..n_obs).map(|_| rng.gen_range(1.0..100.0)).collect();
        let mut est = ResponseEstimator::new(Seconds::from_millis(prior_ms), alpha);
        let mut lo = prior_ms;
        let mut hi = prior_ms;
        for &ms in &obs_ms {
            est.observe(Seconds::from_millis(ms));
            lo = lo.min(ms);
            hi = hi.max(ms);
        }
        let e = est.estimate().as_millis();
        assert!(
            e >= lo - 1e-9 && e <= hi + 1e-9,
            "estimate {e} outside [{lo}, {hi}]"
        );
        assert_eq!(est.observations(), obs_ms.len());
    }
}

#[test]
fn estimator_discretization_covers_estimate() {
    let mut rng = StdRng::seed_from_u64(44);
    for _ in 0..CASES {
        let est_ms = rng.gen_range(0.1..200.0);
        let tau_ms = rng.gen_range(1.0..50.0);
        let est = ResponseEstimator::new(Seconds::from_millis(est_ms), 0.2);
        let periods = est.estimate_in_periods(Seconds::from_millis(tau_ms));
        // Ceiling: periods * tau >= estimate, (periods - 1) * tau < estimate.
        assert!(f64::from(periods) * tau_ms >= est_ms - 1e-9);
        if periods > 0 {
            assert!(f64::from(periods - 1) * tau_ms < est_ms + 1e-9);
        }
    }
}

#[test]
fn bursty_channel_rates_positive_and_state_flips_eventually() {
    for seed in 0u64..30 {
        let mut channel = GilbertElliottChannel::vehicular_default().expect("valid");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut saw_bad = false;
        for _ in 0..5000 {
            assert!(channel.sample_rate(&mut rng).as_bits_per_second() > 0.0);
            if channel.state() == seo_wireless::bursty::ChannelState::Bad {
                saw_bad = true;
            }
        }
        assert!(
            saw_bad,
            "a 1% burst entry rate must fire within 5000 samples"
        );
    }
}

#[test]
fn tx_power_scales_energy_linearly() {
    let mut case_rng = StdRng::seed_from_u64(45);
    for _ in 0..CASES {
        let seed = case_rng.gen_range(0u64..100);
        let power = case_rng.gen_range(0.1..10.0);
        let channel = RayleighChannel::paper_default().expect("valid");
        let mut base = WirelessLink::new(
            channel,
            Bits::from_kilobytes(25.0),
            Watts::new(power),
            Seconds::from_millis(1.0),
        )
        .expect("valid");
        let mut double = WirelessLink::new(
            channel,
            Bits::from_kilobytes(25.0),
            Watts::new(power * 2.0),
            Seconds::from_millis(1.0),
        )
        .expect("valid");
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed);
        let a = base.transmit(&mut rng_a);
        let b = double.transmit(&mut rng_b);
        assert!((b.energy.as_joules() - 2.0 * a.energy.as_joules()).abs() < 1e-12);
    }
}

#[test]
fn gilbert_elliott_streams_are_deterministic_per_seed() {
    let mut case_rng = StdRng::seed_from_u64(46);
    for _ in 0..CASES {
        let seed = case_rng.gen_range(0u64..10_000);
        let mut a = GilbertElliottChannel::vehicular_default().expect("valid");
        let mut b = GilbertElliottChannel::vehicular_default().expect("valid");
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let ra = a.sample_rate(&mut rng_a);
            let rb = b.sample_rate(&mut rng_b);
            assert_eq!(ra.as_bits_per_second(), rb.as_bits_per_second());
            assert_eq!(a.state(), b.state());
        }
    }
}

#[test]
fn gilbert_elliott_copies_restart_from_the_same_state() {
    // The plan layer copies the link (and thus the channel) per episode;
    // purity of episode reports rests on a copy restarting the chain from
    // the original state rather than sharing it.
    let mut case_rng = StdRng::seed_from_u64(47);
    for _ in 0..CASES {
        let seed = case_rng.gen_range(0u64..10_000);
        let pristine = GilbertElliottChannel::vehicular_default().expect("valid");
        let mut advanced = pristine;
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..500 {
            advanced.sample_rate(&mut rng);
        }
        // A fresh copy of the pristine channel replays the original stream.
        let mut replay = pristine;
        let mut rng_replay = StdRng::seed_from_u64(seed);
        let mut original = pristine;
        let mut rng_original = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            assert_eq!(
                replay.sample_rate(&mut rng_replay).as_bits_per_second(),
                original.sample_rate(&mut rng_original).as_bits_per_second()
            );
        }
    }
}

#[test]
fn gilbert_elliott_burst_lengths_match_the_chain_geometry() {
    // Bad-state dwell times are geometric with mean 1/p_bg (10 for the
    // vehicular default); good-state dwells with mean 1/p_gb (100). A long
    // seeded walk must reproduce both within a loose statistical margin.
    let mut channel = GilbertElliottChannel::vehicular_default().expect("valid");
    let mut rng = StdRng::seed_from_u64(48);
    let mut bad_bursts: Vec<usize> = Vec::new();
    let mut good_bursts: Vec<usize> = Vec::new();
    let mut current = channel.state();
    let mut dwell = 0usize;
    for _ in 0..400_000 {
        channel.sample_rate(&mut rng);
        if channel.state() == current {
            dwell += 1;
        } else {
            match current {
                seo_wireless::bursty::ChannelState::Bad => bad_bursts.push(dwell),
                seo_wireless::bursty::ChannelState::Good => good_bursts.push(dwell),
            }
            current = channel.state();
            dwell = 1;
        }
    }
    assert!(
        bad_bursts.len() > 100 && good_bursts.len() > 100,
        "the walk must visit both states many times ({} bad, {} good bursts)",
        bad_bursts.len(),
        good_bursts.len()
    );
    let mean = |v: &[usize]| v.iter().sum::<usize>() as f64 / v.len() as f64;
    let mean_bad = mean(&bad_bursts);
    let mean_good = mean(&good_bursts);
    assert!(
        (mean_bad - 10.0).abs() < 1.5,
        "mean bad burst {mean_bad} (expected ~10)"
    );
    assert!(
        (mean_good - 100.0).abs() < 15.0,
        "mean good burst {mean_good} (expected ~100)"
    );
}
