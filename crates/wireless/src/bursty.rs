//! Gilbert–Elliott bursty channel — an extension beyond the paper's
//! memoryless Rayleigh model.
//!
//! Real vehicular Wi-Fi links fade in *bursts* (shadowing by trucks,
//! junction clutter). The Gilbert–Elliott model captures this with a
//! two-state Markov chain: a **good** state with the nominal Rayleigh
//! scale and a **bad** state with a degraded scale. SEO's fallback
//! machinery is stressed much harder under bursts than under i.i.d.
//! fading at the same average rate, which is exactly what the
//! `ablations` bench demonstrates.

use crate::channel::RayleighChannel;
use crate::error::WirelessError;
use rand::Rng;
use seo_platform::units::BitsPerSecond;

/// Channel state of the Gilbert–Elliott chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelState {
    /// Nominal propagation conditions.
    Good,
    /// Deep-fade burst.
    Bad,
}

/// A two-state Markov-modulated Rayleigh channel.
///
/// # Example
///
/// ```
/// use seo_wireless::bursty::GilbertElliottChannel;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut channel = GilbertElliottChannel::vehicular_default()?;
/// let mut rng = StdRng::seed_from_u64(5);
/// let rate = channel.sample_rate(&mut rng);
/// assert!(rate.as_mbps() > 0.0);
/// # Ok::<(), seo_wireless::WirelessError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliottChannel {
    good: RayleighChannel,
    bad: RayleighChannel,
    /// P(good -> bad) per sample.
    p_gb: f64,
    /// P(bad -> good) per sample.
    p_bg: f64,
    state: ChannelState,
}

impl GilbertElliottChannel {
    /// Creates a bursty channel.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::InvalidConfig`] when either transition
    /// probability lies outside `(0, 1]`.
    pub fn new(
        good: RayleighChannel,
        bad: RayleighChannel,
        p_gb: f64,
        p_bg: f64,
    ) -> Result<Self, WirelessError> {
        for (field, p) in [("p_gb", p_gb), ("p_bg", p_bg)] {
            if !(p.is_finite() && p > 0.0 && p <= 1.0) {
                return Err(WirelessError::InvalidConfig {
                    field,
                    constraint: "lie in (0, 1]",
                });
            }
        }
        Ok(Self {
            good,
            bad,
            p_gb,
            p_bg,
            state: ChannelState::Good,
        })
    }

    /// A vehicular-flavored default: the paper's 20 Mbps scale when good,
    /// a 2 Mbps deep fade when bad, mean burst length ~10 samples, bad
    /// duty cycle ~9 %.
    ///
    /// # Errors
    ///
    /// Never fails in practice; kept fallible for API uniformity.
    pub fn vehicular_default() -> Result<Self, WirelessError> {
        Self::new(
            RayleighChannel::new(BitsPerSecond::from_mbps(20.0))?,
            RayleighChannel::new(BitsPerSecond::from_mbps(2.0))?,
            0.01,
            0.10,
        )
    }

    /// The current Markov state.
    #[must_use]
    pub fn state(&self) -> ChannelState {
        self.state
    }

    /// Stationary probability of being in the bad state,
    /// `p_gb / (p_gb + p_bg)`.
    #[must_use]
    pub fn stationary_bad_fraction(&self) -> f64 {
        self.p_gb / (self.p_gb + self.p_bg)
    }

    /// Long-run mean data rate across both states.
    #[must_use]
    pub fn mean_rate(&self) -> BitsPerSecond {
        let bad = self.stationary_bad_fraction();
        self.good.mean_rate() * (1.0 - bad) + self.bad.mean_rate() * bad
    }

    /// Advances the Markov chain one step and samples an effective rate
    /// from the active state's Rayleigh distribution.
    pub fn sample_rate<R: Rng>(&mut self, rng: &mut R) -> BitsPerSecond {
        let flip: f64 = rng.gen_range(0.0..1.0);
        self.state = match self.state {
            ChannelState::Good if flip < self.p_gb => ChannelState::Bad,
            ChannelState::Bad if flip < self.p_bg => ChannelState::Good,
            s => s,
        };
        match self.state {
            ChannelState::Good => self.good.sample_rate(rng),
            ChannelState::Bad => self.bad.sample_rate(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn transition_probabilities_validated() {
        let ch = RayleighChannel::paper_default().expect("valid");
        assert!(GilbertElliottChannel::new(ch, ch, 0.0, 0.5).is_err());
        assert!(GilbertElliottChannel::new(ch, ch, 0.5, 1.5).is_err());
        assert!(GilbertElliottChannel::new(ch, ch, 0.5, 1.0).is_ok());
    }

    #[test]
    fn stationary_fraction_matches_theory() {
        let c = GilbertElliottChannel::vehicular_default().expect("valid");
        assert!((c.stationary_bad_fraction() - 0.01 / 0.11).abs() < 1e-12);
    }

    #[test]
    fn empirical_bad_fraction_approaches_stationary() {
        let mut c = GilbertElliottChannel::vehicular_default().expect("valid");
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let mut bad = 0usize;
        for _ in 0..n {
            c.sample_rate(&mut rng);
            if c.state() == ChannelState::Bad {
                bad += 1;
            }
        }
        let empirical = bad as f64 / n as f64;
        let stationary = c.stationary_bad_fraction();
        assert!(
            (empirical - stationary).abs() < 0.01,
            "empirical {empirical} vs stationary {stationary}"
        );
    }

    #[test]
    fn bursts_are_correlated() {
        // Consecutive bad states must be far more likely than the i.i.d.
        // square of the stationary probability.
        let mut c = GilbertElliottChannel::vehicular_default().expect("valid");
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let mut bad_pairs = 0usize;
        let mut prev_bad = false;
        for _ in 0..n {
            c.sample_rate(&mut rng);
            let is_bad = c.state() == ChannelState::Bad;
            if is_bad && prev_bad {
                bad_pairs += 1;
            }
            prev_bad = is_bad;
        }
        let pair_rate = bad_pairs as f64 / n as f64;
        let iid_rate = c.stationary_bad_fraction().powi(2);
        assert!(
            pair_rate > 5.0 * iid_rate,
            "bursts should correlate: {pair_rate} vs iid {iid_rate}"
        );
    }

    #[test]
    fn mean_rate_sits_between_states() {
        let c = GilbertElliottChannel::vehicular_default().expect("valid");
        let mean = c.mean_rate().as_mbps();
        assert!(mean > 2.0 && mean < 26.0, "mean {mean}");
    }

    #[test]
    fn rates_always_positive() {
        let mut c = GilbertElliottChannel::vehicular_default().expect("valid");
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..2000 {
            assert!(c.sample_rate(&mut rng).as_bits_per_second() > 0.0);
        }
    }

    #[test]
    fn clone_roundtrip() {
        let c = GilbertElliottChannel::vehicular_default().expect("valid");
        let back = c;
        assert_eq!(back, c);
    }
}
