//! Rayleigh-fading effective data rate.
//!
//! The effective data rate of the Wi-Fi link is modeled as a Rayleigh random
//! variable with scale σ = 20 Mbps (Section VI-A). Sampling uses the inverse
//! CDF `X = σ sqrt(-2 ln U)`, implemented directly over `rand` to stay
//! within the approved dependency list.

use crate::error::WirelessError;
use rand::Rng;
use seo_platform::units::BitsPerSecond;

/// A Rayleigh-distributed data-rate source.
///
/// # Example
///
/// ```
/// use seo_wireless::channel::RayleighChannel;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let channel = RayleighChannel::paper_default()?;
/// let mut rng = StdRng::seed_from_u64(7);
/// let rate = channel.sample_rate(&mut rng);
/// assert!(rate.as_mbps() > 0.0);
/// # Ok::<(), seo_wireless::WirelessError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RayleighChannel {
    scale: BitsPerSecond,
    /// Floor on sampled rates to avoid degenerate near-zero transmission
    /// stalls, bits/s.
    min_rate: BitsPerSecond,
}

impl RayleighChannel {
    /// Creates a channel with Rayleigh scale `scale`.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::InvalidConfig`] for a non-positive scale.
    pub fn new(scale: BitsPerSecond) -> Result<Self, WirelessError> {
        if !(scale.is_valid() && scale.as_bits_per_second() > 0.0) {
            return Err(WirelessError::InvalidConfig {
                field: "scale",
                constraint: "be finite and positive",
            });
        }
        Ok(Self {
            scale,
            min_rate: scale * 0.01,
        })
    }

    /// The paper's channel: scale 20 Mbps.
    ///
    /// # Errors
    ///
    /// Never fails in practice; kept fallible for API uniformity.
    pub fn paper_default() -> Result<Self, WirelessError> {
        Self::new(BitsPerSecond::from_mbps(20.0))
    }

    /// The Rayleigh scale σ.
    #[must_use]
    pub fn scale(&self) -> BitsPerSecond {
        self.scale
    }

    /// Mean of the distribution, `σ sqrt(π/2)`.
    #[must_use]
    pub fn mean_rate(&self) -> BitsPerSecond {
        self.scale * (std::f64::consts::PI / 2.0).sqrt()
    }

    /// Draws one effective data rate.
    pub fn sample_rate<R: Rng>(&self, rng: &mut R) -> BitsPerSecond {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let x = self.scale * (-2.0 * u.ln()).sqrt();
        x.max(self.min_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_scale() {
        assert!(RayleighChannel::new(BitsPerSecond::ZERO).is_err());
        assert!(RayleighChannel::new(BitsPerSecond::new(-1.0)).is_err());
        assert!(RayleighChannel::new(BitsPerSecond::new(f64::NAN)).is_err());
    }

    #[test]
    fn paper_default_scale_is_20_mbps() {
        let c = RayleighChannel::paper_default().expect("valid");
        assert_eq!(c.scale().as_mbps(), 20.0);
        assert!(
            (c.mean_rate().as_mbps() - 20.0 * (std::f64::consts::PI / 2.0).sqrt()).abs() < 1e-9
        );
    }

    #[test]
    fn samples_are_positive() {
        let c = RayleighChannel::paper_default().expect("valid");
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(c.sample_rate(&mut rng).as_bits_per_second() > 0.0);
        }
    }

    #[test]
    fn empirical_mean_approaches_analytic_mean() {
        let c = RayleighChannel::paper_default().expect("valid");
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| c.sample_rate(&mut rng).as_mbps())
            .sum::<f64>()
            / f64::from(n);
        let analytic = c.mean_rate().as_mbps();
        assert!(
            (mean - analytic).abs() / analytic < 0.03,
            "empirical {mean} vs analytic {analytic}"
        );
    }

    #[test]
    fn empirical_variance_matches_rayleigh() {
        // Var = (4 - pi)/2 * sigma^2.
        let c = RayleighChannel::paper_default().expect("valid");
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| c.sample_rate(&mut rng).as_mbps()).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        let analytic = (4.0 - std::f64::consts::PI) / 2.0 * 400.0;
        assert!(
            (var - analytic).abs() / analytic < 0.06,
            "empirical {var} vs analytic {analytic}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let c = RayleighChannel::paper_default().expect("valid");
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..10).map(|_| c.sample_rate(&mut rng).as_mbps()).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..10).map(|_| c.sample_rate(&mut rng).as_mbps()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn clone_roundtrip() {
        let c = RayleighChannel::paper_default().expect("valid");
        let back = c;
        assert_eq!(back, c);
    }
}
