//! Edge server inference model.
//!
//! The remote end of the offload: a compute-capable server at the network
//! edge that runs the offloaded inference faster than the local platform
//! and returns a compact result (whose downlink time is folded into the
//! jitter term).

use crate::error::WirelessError;
use rand::Rng;
use seo_platform::units::Seconds;

/// Server-side processing latency model: a base latency plus uniform jitter
/// (queueing, batching, downlink).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeServer {
    base_latency: Seconds,
    jitter: Seconds,
}

impl EdgeServer {
    /// Creates a server model.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::InvalidConfig`] for negative or non-finite
    /// latencies.
    pub fn new(base_latency: Seconds, jitter: Seconds) -> Result<Self, WirelessError> {
        if !base_latency.is_valid() {
            return Err(WirelessError::InvalidConfig {
                field: "base_latency",
                constraint: "be finite and non-negative",
            });
        }
        if !jitter.is_valid() {
            return Err(WirelessError::InvalidConfig {
                field: "jitter",
                constraint: "be finite and non-negative",
            });
        }
        Ok(Self {
            base_latency,
            jitter,
        })
    }

    /// A GPU-class edge server: 4 ms base inference latency with up to 3 ms
    /// of queueing/downlink jitter — comfortably faster than the 17 ms
    /// on-vehicle PX2 execution it replaces.
    ///
    /// # Errors
    ///
    /// Never fails in practice; kept fallible for API uniformity.
    pub fn paper_default() -> Result<Self, WirelessError> {
        Self::new(Seconds::from_millis(4.0), Seconds::from_millis(3.0))
    }

    /// Deterministic base latency.
    #[must_use]
    pub fn base_latency(&self) -> Seconds {
        self.base_latency
    }

    /// Expected processing latency (base + jitter/2).
    #[must_use]
    pub fn expected_latency(&self) -> Seconds {
        self.base_latency + self.jitter * 0.5
    }

    /// Samples one server-side processing latency.
    pub fn sample_latency<R: Rng>(&self, rng: &mut R) -> Seconds {
        if self.jitter.as_secs() == 0.0 {
            return self.base_latency;
        }
        self.base_latency + Seconds::new(rng.gen_range(0.0..self.jitter.as_secs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_within_bounds() {
        let s = EdgeServer::paper_default().expect("valid");
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let t = s.sample_latency(&mut rng);
            assert!(t >= s.base_latency());
            assert!(t.as_millis() < 7.0 + 1e-9);
        }
    }

    #[test]
    fn zero_jitter_is_deterministic() {
        let s = EdgeServer::new(Seconds::from_millis(5.0), Seconds::ZERO).expect("valid");
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(s.sample_latency(&mut rng), Seconds::from_millis(5.0));
        assert_eq!(s.expected_latency(), Seconds::from_millis(5.0));
    }

    #[test]
    fn expected_latency_is_midpoint() {
        let s = EdgeServer::paper_default().expect("valid");
        assert!((s.expected_latency().as_millis() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(EdgeServer::new(Seconds::new(-1.0), Seconds::ZERO).is_err());
        assert!(EdgeServer::new(Seconds::ZERO, Seconds::new(f64::NAN)).is_err());
    }

    #[test]
    fn clone_roundtrip() {
        let s = EdgeServer::paper_default().expect("valid");
        let back = s;
        assert_eq!(back, s);
    }
}
