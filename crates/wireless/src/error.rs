//! Error type for the wireless substrate.

use std::error::Error;
use std::fmt;

/// Errors raised while configuring the wireless models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WirelessError {
    /// A configuration field was out of range.
    InvalidConfig {
        /// Offending field.
        field: &'static str,
        /// Constraint description.
        constraint: &'static str,
    },
}

impl fmt::Display for WirelessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig { field, constraint } => {
                write!(f, "invalid wireless config: {field} must {constraint}")
            }
        }
    }
}

impl Error for WirelessError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_field() {
        let e = WirelessError::InvalidConfig {
            field: "scale",
            constraint: "be positive",
        };
        assert!(e.to_string().contains("scale"));
    }
}
