//! The wireless link: transmission latency and radio energy.
//!
//! Offload energy in eq. (7) is `E_Ω = T_tx * P_tx`. Transmission latency
//! follows from the payload size and the sampled effective data rate.

use crate::bursty::GilbertElliottChannel;
use crate::channel::RayleighChannel;
use crate::error::WirelessError;
use rand::Rng;
use seo_platform::units::{Bits, BitsPerSecond, Joules, Seconds, Watts};

/// The link's fading model: the paper's memoryless Rayleigh channel or the
/// Gilbert–Elliott **bursty** extension ([`crate::bursty`]).
///
/// Sampling is stateful in the bursty case (the Markov chain advances one
/// step per draw), which is why [`WirelessLink::transmit`] takes `&mut
/// self`. Episode engines copy the link at episode start (`WirelessLink` is
/// `Copy`), so every episode begins from the same channel state and reports
/// stay a pure function of `(world, seed)` — including under the async
/// executor, where each in-flight `EpisodeTask` owns its own link copy and
/// the latencies it prices become the virtual wake times of the reactor's
/// ready queue (`docs/async.md`). Bursty fades are exactly the case where
/// overlapping those waits pays: deep-fade latencies arrive in correlated
/// runs, idling a blocking worker for whole bursts at a time.
///
/// # Example
///
/// ```
/// use seo_wireless::link::FadingChannel;
/// use seo_wireless::channel::RayleighChannel;
///
/// let clean = FadingChannel::Rayleigh(RayleighChannel::paper_default()?);
/// assert!(clean.mean_rate().as_mbps() > 20.0); // sigma * sqrt(pi/2)
/// # Ok::<(), seo_wireless::WirelessError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FadingChannel {
    /// Memoryless Rayleigh fading (the paper's Section VI-A model).
    Rayleigh(RayleighChannel),
    /// Two-state Markov-modulated Rayleigh fading (deep-fade bursts).
    Bursty(GilbertElliottChannel),
}

impl FadingChannel {
    /// Long-run mean data rate (the bursty form weighs both states by the
    /// chain's stationary distribution).
    #[must_use]
    pub fn mean_rate(&self) -> BitsPerSecond {
        match self {
            Self::Rayleigh(c) => c.mean_rate(),
            Self::Bursty(c) => c.mean_rate(),
        }
    }

    /// Draws one effective data rate, advancing the Markov chain in the
    /// bursty case.
    pub fn sample_rate<R: Rng>(&mut self, rng: &mut R) -> BitsPerSecond {
        match self {
            Self::Rayleigh(c) => c.sample_rate(rng),
            Self::Bursty(c) => c.sample_rate(rng),
        }
    }
}

/// A Wi-Fi uplink with a fading channel and a fixed radio power draw.
///
/// # Example
///
/// ```
/// use seo_wireless::link::WirelessLink;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut link = WirelessLink::paper_default()?;
/// let mut rng = StdRng::seed_from_u64(3);
/// let tx = link.transmit(&mut rng);
/// assert!(tx.latency.as_secs() > 0.0);
/// assert!(tx.energy.as_joules() > 0.0);
/// # Ok::<(), seo_wireless::WirelessError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WirelessLink {
    channel: FadingChannel,
    /// Offload payload per inference (compressed frame / feature tensor).
    payload: Bits,
    /// Radio transmission power `P_tx`.
    tx_power: Watts,
    /// Fixed per-offload protocol overhead added to the transmission time
    /// (association, scheduling grants, propagation).
    protocol_overhead: Seconds,
}

/// One sampled transmission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transmission {
    /// Air time `T_tx` (payload / sampled rate + overhead).
    pub latency: Seconds,
    /// Radio energy `T_tx * P_tx`.
    pub energy: Joules,
}

impl WirelessLink {
    /// Creates a link.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::InvalidConfig`] for a non-positive payload
    /// or transmission power, or a negative overhead.
    pub fn new(
        channel: RayleighChannel,
        payload: Bits,
        tx_power: Watts,
        protocol_overhead: Seconds,
    ) -> Result<Self, WirelessError> {
        if !(payload.is_valid() && payload.as_bits() > 0.0) {
            return Err(WirelessError::InvalidConfig {
                field: "payload",
                constraint: "be finite and positive",
            });
        }
        if !(tx_power.is_valid() && tx_power.as_watts() > 0.0) {
            return Err(WirelessError::InvalidConfig {
                field: "tx_power",
                constraint: "be finite and positive",
            });
        }
        if !protocol_overhead.is_valid() {
            return Err(WirelessError::InvalidConfig {
                field: "protocol_overhead",
                constraint: "be finite and non-negative",
            });
        }
        Ok(Self {
            channel: FadingChannel::Rayleigh(channel),
            payload,
            tx_power,
            protocol_overhead,
        })
    }

    /// The paper-scale link: 20 Mbps Rayleigh channel, 25 kB compressed
    /// feature payload per inference, 1.3 W Wi-Fi radio, 1 ms protocol
    /// overhead. The payload follows the Testudo-style intermediate-feature
    /// offloading rather than raw frames, so the *mean* transmission time
    /// (~9–10 ms) fits inside one 20 ms base period.
    ///
    /// # Errors
    ///
    /// Never fails in practice; kept fallible for API uniformity.
    pub fn paper_default() -> Result<Self, WirelessError> {
        Self::new(
            RayleighChannel::paper_default()?,
            Bits::from_kilobytes(25.0),
            Watts::new(1.3),
            Seconds::from_millis(1.0),
        )
    }

    /// The paper-scale link over the **bursty** Gilbert–Elliott channel
    /// ([`GilbertElliottChannel::vehicular_default`]): same payload, radio
    /// power, and overhead as [`Self::paper_default`], but the effective
    /// rate now fades in correlated bursts. This is the link the plan
    /// layer's `channel: bursty` axis value builds.
    ///
    /// # Errors
    ///
    /// Never fails in practice; kept fallible for API uniformity.
    pub fn bursty_default() -> Result<Self, WirelessError> {
        Ok(Self::paper_default()?.with_channel(FadingChannel::Bursty(
            GilbertElliottChannel::vehicular_default()?,
        )))
    }

    /// Returns a copy with a different fading channel (builder style).
    #[must_use]
    pub fn with_channel(mut self, channel: FadingChannel) -> Self {
        self.channel = channel;
        self
    }

    /// The fading channel.
    #[must_use]
    pub fn channel(&self) -> &FadingChannel {
        &self.channel
    }

    /// Offload payload size.
    #[must_use]
    pub fn payload(&self) -> Bits {
        self.payload
    }

    /// Radio power `P_tx`.
    #[must_use]
    pub fn tx_power(&self) -> Watts {
        self.tx_power
    }

    /// Returns a copy with a different payload (builder style).
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::InvalidConfig`] for an invalid payload.
    pub fn with_payload(self, payload: Bits) -> Result<Self, WirelessError> {
        if !(payload.is_valid() && payload.as_bits() > 0.0) {
            return Err(WirelessError::InvalidConfig {
                field: "payload",
                constraint: "be finite and positive",
            });
        }
        Ok(Self { payload, ..self })
    }

    /// Expected transmission latency at the channel's mean rate.
    #[must_use]
    pub fn expected_latency(&self) -> Seconds {
        self.payload / self.channel.mean_rate() + self.protocol_overhead
    }

    /// Samples one transmission (latency and radio energy). `&mut self`
    /// because a bursty channel's Markov state advances per draw; callers
    /// that need episode purity copy the link first (`WirelessLink` is
    /// `Copy`).
    pub fn transmit<R: Rng>(&mut self, rng: &mut R) -> Transmission {
        let rate = self.channel.sample_rate(rng);
        let latency = self.payload / rate + self.protocol_overhead;
        Transmission {
            latency,
            energy: latency * self.tx_power,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_default_expected_latency_fits_base_period() {
        let link = WirelessLink::paper_default().expect("valid");
        let t = link.expected_latency();
        assert!(
            t.as_millis() > 5.0 && t.as_millis() < 15.0,
            "expected ~9-10 ms, got {t}"
        );
    }

    #[test]
    fn transmission_energy_is_latency_times_power() {
        let mut link = WirelessLink::paper_default().expect("valid");
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let tx = link.transmit(&mut rng);
            let expected = tx.latency * link.tx_power();
            assert!((tx.energy.as_joules() - expected.as_joules()).abs() < 1e-15);
        }
    }

    #[test]
    fn bigger_payload_takes_longer_in_expectation() {
        let small = WirelessLink::paper_default().expect("valid");
        let large = small
            .with_payload(Bits::from_kilobytes(100.0))
            .expect("valid");
        assert!(large.expected_latency() > small.expected_latency());
    }

    #[test]
    fn offload_energy_is_far_below_local_inference() {
        // The core premise of the offloading optimization: radio energy per
        // offload (~0.013 J at the mean rate) is roughly a tenth of the
        // local ResNet-152 inference energy (0.119 J).
        let mut link = WirelessLink::paper_default().expect("valid");
        let mut rng = StdRng::seed_from_u64(2);
        let n = 10_000;
        let mean_energy: f64 = (0..n)
            .map(|_| link.transmit(&mut rng).energy.as_joules())
            .sum::<f64>()
            / f64::from(n);
        let local = 0.119;
        assert!(
            mean_energy < 0.35 * local,
            "offload energy {mean_energy} not clearly below local {local}"
        );
        assert!(mean_energy > 0.02 * local, "offload energy implausibly low");
    }

    #[test]
    fn invalid_configs_rejected() {
        let ch = RayleighChannel::paper_default().expect("valid");
        assert!(WirelessLink::new(ch, Bits::ZERO, Watts::new(1.0), Seconds::ZERO).is_err());
        assert!(WirelessLink::new(ch, Bits::new(1.0), Watts::ZERO, Seconds::ZERO).is_err());
        assert!(
            WirelessLink::new(ch, Bits::new(1.0), Watts::new(1.0), Seconds::new(-1.0)).is_err()
        );
    }

    #[test]
    fn clone_roundtrip() {
        let link = WirelessLink::paper_default().expect("valid");
        let back = link;
        assert_eq!(back, link);
    }
}
