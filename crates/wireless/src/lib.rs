//! # seo-wireless
//!
//! Wireless offloading substrate for the SEO reproduction (DAC 2023,
//! arXiv:2302.12493).
//!
//! The paper's offloading experiments "assume a Wi-Fi link in which effective
//! data rate values are sampled from a Rayleigh channel distribution model
//! with scale 20 Mbps", following the Testudo \[13\] characterization scheme.
//! This crate provides that link end-to-end:
//!
//! * [`channel`] — the Rayleigh-distributed effective data rate.
//! * [`link`] — payload transmission times and radio energy
//!   (`E_Ω = T_tx * P_tx` of eq. 7).
//! * [`server`] — the edge server's inference latency.
//! * [`offload`] — in-flight offload transactions with completion tracking
//!   and the server-response estimator δ̂ (an EWMA over observed responses).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bursty;
pub mod channel;
pub mod error;
pub mod link;
pub mod offload;
pub mod server;

pub use bursty::GilbertElliottChannel;
pub use channel::RayleighChannel;
pub use error::WirelessError;
pub use link::{FadingChannel, WirelessLink};
pub use offload::{OffloadOutcome, OffloadTransaction, ResponseEstimator};
pub use server::EdgeServer;
