//! Offload transactions and the server-response estimator δ̂.
//!
//! Section V-A requires two things of safe offloading:
//!
//! 1. "Server response times (δ̂) should be estimated to avoid offloads that
//!    are not expected to meet processing deadlines" — [`ResponseEstimator`],
//!    an exponentially-weighted moving average over observed round trips.
//! 2. "a safety fall back mechanism to re-invoke the local model if server
//!    responses ... are projected to miss the critical deadline" — the SEO
//!    scheduler consults [`OffloadTransaction::is_complete`] at the fallback
//!    slot and re-invokes the local model when the response is still in
//!    flight (the `I[n == δmax − δ_i]` term of eq. 7).
//!
//! A transaction is also the episode engine's **await point**: issuing one
//! records its virtual completion time ([`OffloadTransaction::completes_at`]),
//! and the async executor (`seo_core::reactor`, `docs/async.md`) parks the
//! episode there, keying its deterministic ready queue on that time. The
//! wait is purely virtual — completion depends only on the episode clock —
//! so polling a parked episode always makes progress and blocking vs async
//! execution is a scheduling choice, never a semantic one.

use crate::link::WirelessLink;
use crate::server::EdgeServer;
use rand::Rng;
use seo_platform::units::{Joules, Seconds};
use std::fmt;

/// A single in-flight or completed offload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OffloadTransaction {
    issued_at: Seconds,
    completes_at: Seconds,
    radio_energy: Joules,
}

impl OffloadTransaction {
    /// Issues an offload at absolute time `now`: samples the uplink
    /// transmission and the server latency, and records when the response
    /// will arrive. The link is `&mut` because bursty channels advance
    /// their Markov state per transmission (see
    /// [`WirelessLink::transmit`]).
    pub fn issue<R: Rng>(
        link: &mut WirelessLink,
        server: &EdgeServer,
        now: Seconds,
        rng: &mut R,
    ) -> Self {
        let tx = link.transmit(rng);
        let server_latency = server.sample_latency(rng);
        Self {
            issued_at: now,
            completes_at: now + tx.latency + server_latency,
            radio_energy: tx.energy,
        }
    }

    /// When the offload was issued.
    #[must_use]
    pub fn issued_at(&self) -> Seconds {
        self.issued_at
    }

    /// When the response arrives.
    #[must_use]
    pub fn completes_at(&self) -> Seconds {
        self.completes_at
    }

    /// Radio energy spent on the uplink (`T_tx * P_tx`).
    #[must_use]
    pub fn radio_energy(&self) -> Joules {
        self.radio_energy
    }

    /// Total response duration (uplink + server + downlink jitter).
    #[must_use]
    pub fn response_duration(&self) -> Seconds {
        self.completes_at - self.issued_at
    }

    /// Whether the response has arrived by `now`.
    #[must_use]
    pub fn is_complete(&self, now: Seconds) -> bool {
        now >= self.completes_at
    }
}

impl fmt::Display for OffloadTransaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "offload @{:.3}s -> {:.3}s ({:.4} J)",
            self.issued_at.as_secs(),
            self.completes_at.as_secs(),
            self.radio_energy.as_joules()
        )
    }
}

/// Terminal outcome of one offload attempt, for metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OffloadOutcome {
    /// The response arrived before the deadline; local compute was avoided.
    Succeeded,
    /// The deadline expired first; the local model was re-invoked.
    FellBack,
}

impl fmt::Display for OffloadOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Succeeded => f.write_str("succeeded"),
            Self::FellBack => f.write_str("fell-back"),
        }
    }
}

/// EWMA estimator of server response times (the paper's δ̂).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponseEstimator {
    estimate: Seconds,
    alpha: f64,
    observations: usize,
}

impl ResponseEstimator {
    /// Creates an estimator seeded with a prior estimate; `alpha` is the
    /// EWMA weight on new observations (clamped into `(0, 1]`).
    #[must_use]
    pub fn new(prior: Seconds, alpha: f64) -> Self {
        Self {
            estimate: prior,
            alpha: alpha.clamp(1e-6, 1.0),
            observations: 0,
        }
    }

    /// A reasonable default: prior from the link/server expectations with
    /// weight 0.2 on new samples.
    #[must_use]
    pub fn from_models(link: &WirelessLink, server: &EdgeServer) -> Self {
        Self::new(link.expected_latency() + server.expected_latency(), 0.2)
    }

    /// Current δ̂.
    #[must_use]
    pub fn estimate(&self) -> Seconds {
        self.estimate
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// Folds one observed response duration into the estimate.
    pub fn observe(&mut self, duration: Seconds) {
        debug_assert!(duration.is_valid(), "observed duration must be valid");
        if !duration.is_valid() {
            return;
        }
        self.estimate = self.estimate * (1.0 - self.alpha) + duration * self.alpha;
        self.observations += 1;
    }

    /// δ̂ discretized to base periods of `tau` (ceiling: a response that
    /// takes 1.2 periods occupies 2 slots).
    ///
    /// # Panics
    ///
    /// Panics if `tau` is non-positive.
    #[must_use]
    pub fn estimate_in_periods(&self, tau: Seconds) -> u32 {
        assert!(tau.as_secs() > 0.0, "base period must be positive");
        (self.estimate.as_secs() / tau.as_secs()).ceil().max(0.0) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn models() -> (WirelessLink, EdgeServer) {
        (
            WirelessLink::paper_default().expect("valid"),
            EdgeServer::paper_default().expect("valid"),
        )
    }

    #[test]
    fn transaction_timeline_is_consistent() {
        let (mut link, server) = models();
        let mut rng = StdRng::seed_from_u64(1);
        let t = OffloadTransaction::issue(&mut link, &server, Seconds::new(1.0), &mut rng);
        assert!(t.completes_at() > t.issued_at());
        assert!(t.response_duration().as_secs() > 0.0);
        assert!(!t.is_complete(Seconds::new(1.0)));
        assert!(t.is_complete(t.completes_at()));
        assert!(t.is_complete(Seconds::new(100.0)));
        assert!(t.radio_energy().as_joules() > 0.0);
    }

    #[test]
    fn most_offloads_fit_one_interval_at_paper_settings() {
        // With mean uplink ~10 ms and server ~5.5 ms, a large majority of
        // responses should arrive within 60 ms (3 base periods).
        let (mut link, server) = models();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 5000;
        let on_time = (0..n)
            .filter(|_| {
                let t = OffloadTransaction::issue(&mut link, &server, Seconds::ZERO, &mut rng);
                t.response_duration().as_millis() <= 60.0
            })
            .count();
        let fraction = on_time as f64 / f64::from(n);
        assert!(fraction > 0.8, "only {fraction} complete within 60 ms");
    }

    #[test]
    fn estimator_converges_to_constant_observations() {
        let mut est = ResponseEstimator::new(Seconds::from_millis(50.0), 0.3);
        for _ in 0..100 {
            est.observe(Seconds::from_millis(10.0));
        }
        assert!((est.estimate().as_millis() - 10.0).abs() < 0.5);
        assert_eq!(est.observations(), 100);
    }

    #[test]
    fn estimator_from_models_uses_expectations() {
        let (link, server) = models();
        let est = ResponseEstimator::from_models(&link, &server);
        let expected = link.expected_latency() + server.expected_latency();
        assert_eq!(est.estimate(), expected);
        assert_eq!(est.observations(), 0);
    }

    #[test]
    fn discretized_estimate_uses_ceiling() {
        let est = ResponseEstimator::new(Seconds::from_millis(25.0), 0.2);
        assert_eq!(est.estimate_in_periods(Seconds::from_millis(20.0)), 2);
        let est = ResponseEstimator::new(Seconds::from_millis(20.0), 0.2);
        assert_eq!(est.estimate_in_periods(Seconds::from_millis(20.0)), 1);
        let est = ResponseEstimator::new(Seconds::ZERO, 0.2);
        assert_eq!(est.estimate_in_periods(Seconds::from_millis(20.0)), 0);
    }

    #[test]
    fn invalid_observation_ignored() {
        let result = std::panic::catch_unwind(|| {
            let mut est = ResponseEstimator::new(Seconds::from_millis(10.0), 0.5);
            est.observe(Seconds::new(f64::NAN));
            est
        });
        if let Ok(est) = result {
            assert_eq!(est.estimate(), Seconds::from_millis(10.0));
            assert_eq!(est.observations(), 0);
        }
    }

    #[test]
    fn alpha_is_clamped() {
        let mut est = ResponseEstimator::new(Seconds::from_millis(10.0), 5.0);
        est.observe(Seconds::from_millis(30.0));
        // alpha clamped to 1.0: estimate jumps straight to the observation.
        assert_eq!(est.estimate(), Seconds::from_millis(30.0));
    }

    #[test]
    fn outcome_display() {
        assert_eq!(OffloadOutcome::Succeeded.to_string(), "succeeded");
        assert_eq!(OffloadOutcome::FellBack.to_string(), "fell-back");
    }
}
