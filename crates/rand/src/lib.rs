//! Vendored stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`Rng::gen_range`] over `f64`/integer ranges, [`SeedableRng`]'s
//! `seed_from_u64`, and [`rngs::StdRng`].
//!
//! The build environment has no access to crates.io, so the workspace ships
//! its own deterministic generator instead: `StdRng` is xoshiro256++
//! seeded through SplitMix64. Determinism across runs, threads, and
//! platforms is load-bearing — the parallel sweep engine in `seo-core`
//! guarantees bit-identical results to the serial loop, which only holds
//! because every episode derives its stream from a fixed `u64` seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// A half-open or inclusive range that values can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end - self.start;
        let v = self.start + unit_f64(rng) * span;
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.end - span * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + unit_f64(rng) * (end - start)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift rejection-free mapping is fine here: the
                // workspace only draws small spans, far below 2^64.
                let v = (u128::from(rng.next_u64()) * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (u128::from(rng.next_u64()) * span) >> 64;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    ///
    /// Not the upstream `rand::rngs::StdRng` (ChaCha12) — streams differ —
    /// but the workspace only relies on determinism and statistical
    /// uniformity, not on a specific stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.5..1.5);
            assert!((-2.5..1.5).contains(&v), "{v}");
            let w = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&w), "{w}");
        }
    }

    #[test]
    fn int_ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..6);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1_000 {
            let v = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn unit_interval_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02, "{hits}");
    }
}
