//! Discretization onto the unified timing axis — eqs. (4) and (5).
//!
//! To unify the time scale across heterogeneous sensors, SEO defines a base
//! window τ and expresses every model period and every safety deadline as a
//! multiple of it:
//!
//! * eq. (4): `δᵢ = pᵢ/τ` when τ divides pᵢ, otherwise `⌊pᵢ/τ⌋ + 1` — a
//!   model can never be scheduled *more* often than its sensor samples, so
//!   non-divisible periods round **up**.
//! * eq. (5): `δmax = ⌊Δmax/τ⌋` — a deadline rounds **down**, because
//!   over-approximating the safe interval would be unsound.

use seo_platform::units::Seconds;

/// Relative tolerance used to decide "τ divides pᵢ" under floating point.
const DIVISIBILITY_EPS: f64 = 1e-9;

/// eq. (4): discretizes a model/sensor period `p` to base periods of `tau`.
///
/// # Panics
///
/// Panics if `tau` or `p` is non-positive or non-finite (configuration
/// bugs, validated at [`SeoConfig`](crate::config::SeoConfig) construction).
///
/// # Examples
///
/// ```
/// use seo_core::discretize::discretize_period;
/// use seo_platform::units::Seconds;
///
/// let tau = Seconds::from_millis(20.0);
/// // p = tau -> 1; p = 2 tau -> 2 (the paper's two detectors).
/// assert_eq!(discretize_period(Seconds::from_millis(20.0), tau), 1);
/// assert_eq!(discretize_period(Seconds::from_millis(40.0), tau), 2);
/// // Non-divisible periods round up: 25 ms at tau = 20 ms occupies 2 slots.
/// assert_eq!(discretize_period(Seconds::from_millis(25.0), tau), 2);
/// ```
#[must_use]
pub fn discretize_period(p: Seconds, tau: Seconds) -> u32 {
    assert!(
        tau.as_secs().is_finite() && tau.as_secs() > 0.0,
        "base period must be finite and positive"
    );
    assert!(
        p.as_secs().is_finite() && p.as_secs() > 0.0,
        "model period must be finite and positive"
    );
    let ratio = p.as_secs() / tau.as_secs();
    let rounded = ratio.round();
    if (ratio - rounded).abs() <= DIVISIBILITY_EPS * ratio.max(1.0) && rounded >= 1.0 {
        rounded as u32
    } else {
        (ratio.floor() as u32) + 1
    }
}

/// eq. (5): discretizes a safe interval `Δmax` to base periods of `tau`
/// (floor — never over-approximate safety).
///
/// Negative inputs clamp to 0; an infinite Δmax (no obstacle anywhere)
/// saturates to `u32::MAX` and should be capped by the caller's horizon.
///
/// # Panics
///
/// Panics if `tau` is non-positive or non-finite.
///
/// # Examples
///
/// ```
/// use seo_core::discretize::discretize_deadline;
/// use seo_platform::units::Seconds;
///
/// let tau = Seconds::from_millis(20.0);
/// assert_eq!(discretize_deadline(Seconds::from_millis(79.0), tau), 3);
/// assert_eq!(discretize_deadline(Seconds::from_millis(80.0), tau), 4);
/// assert_eq!(discretize_deadline(Seconds::from_millis(19.9), tau), 0);
/// ```
#[must_use]
pub fn discretize_deadline(delta_max: Seconds, tau: Seconds) -> u32 {
    assert!(
        tau.as_secs().is_finite() && tau.as_secs() > 0.0,
        "base period must be finite and positive"
    );
    let ratio = delta_max.as_secs() / tau.as_secs();
    if !ratio.is_finite() {
        return if ratio > 0.0 { u32::MAX } else { 0 };
    }
    if ratio <= 0.0 {
        return 0;
    }
    // Guard against floating-point sitting epsilon below an exact multiple
    // (e.g. 80 ms / 20 ms landing on 3.9999999999): such values are exact
    // multiples in intent.
    let nearest = ratio.round();
    if (ratio - nearest).abs() <= DIVISIBILITY_EPS * ratio.max(1.0) {
        nearest as u32
    } else {
        ratio.floor() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TAU: Seconds = Seconds::new(0.02);

    #[test]
    fn divisible_periods_map_exactly() {
        assert_eq!(discretize_period(Seconds::new(0.02), TAU), 1);
        assert_eq!(discretize_period(Seconds::new(0.04), TAU), 2);
        assert_eq!(discretize_period(Seconds::new(0.10), TAU), 5);
    }

    #[test]
    fn non_divisible_periods_round_up() {
        assert_eq!(discretize_period(Seconds::new(0.021), TAU), 2);
        assert_eq!(discretize_period(Seconds::new(0.039), TAU), 2);
        assert_eq!(discretize_period(Seconds::new(0.041), TAU), 3);
        // Sub-tau sensors still occupy one full base window.
        assert_eq!(discretize_period(Seconds::new(0.005), TAU), 1);
    }

    #[test]
    fn tau_25ms_case_from_table_i() {
        // Table I uses tau = 25 ms with the same 20/40 ms sensors:
        // p = 20 ms -> 1 slot, p = 40 ms -> 2 slots.
        let tau = Seconds::new(0.025);
        assert_eq!(discretize_period(Seconds::new(0.020), tau), 1);
        assert_eq!(discretize_period(Seconds::new(0.040), tau), 2);
    }

    #[test]
    fn float_noise_on_divisibility_is_tolerated() {
        // 0.06 / 0.02 is 2.9999999999999996 in f64; eq. (4) must yield 3.
        assert_eq!(discretize_period(Seconds::new(0.06), TAU), 3);
        let p = Seconds::new(0.02 * 7.0);
        assert_eq!(discretize_period(p, TAU), 7);
    }

    #[test]
    fn deadline_floors() {
        assert_eq!(discretize_deadline(Seconds::new(0.079), TAU), 3);
        assert_eq!(discretize_deadline(Seconds::new(0.080), TAU), 4);
        assert_eq!(discretize_deadline(Seconds::new(0.0), TAU), 0);
        assert_eq!(discretize_deadline(Seconds::new(0.019), TAU), 0);
    }

    #[test]
    fn deadline_clamps_and_saturates() {
        assert_eq!(discretize_deadline(Seconds::new(-1.0), TAU), 0);
        assert_eq!(
            discretize_deadline(Seconds::new(f64::INFINITY), TAU),
            u32::MAX
        );
    }

    #[test]
    fn deadline_handles_float_noise_at_multiples() {
        let almost_four = Seconds::new(0.02 * 4.0 - 1e-15);
        assert_eq!(discretize_deadline(almost_four, TAU), 4);
    }

    #[test]
    #[should_panic(expected = "base period")]
    fn zero_tau_panics() {
        let _ = discretize_period(Seconds::new(0.02), Seconds::ZERO);
    }

    #[test]
    #[should_panic(expected = "model period")]
    fn zero_model_period_panics() {
        let _ = discretize_period(Seconds::ZERO, TAU);
    }
}
