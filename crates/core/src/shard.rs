//! Multi-process sharded scenario sweeps.
//!
//! [`crate::batch::BatchRunner`] parallelizes a sweep within one process;
//! this module scales the same grid across **processes** (the stepping stone
//! to multi-host sharding) without changing a single output bit:
//!
//! 1. [`ShardPlanner`] partitions a [`ScenarioSpec`] grid into contiguous,
//!    near-even shards. The plan depends only on `(specs, workers)`, never
//!    on timing, and every spec carries its own seed — so shard boundaries
//!    cannot perturb results ("seed-stable").
//! 2. The **wire format** is line-delimited JSON: each worker writes one
//!    [`report_line`] per episode (`{"v":1,"index":…,"report":{…}}`) to
//!    stdout as soon as the episode finishes. Floats travel through the
//!    shortest-round-trip formatter ([`crate::json`]), so a parsed report is
//!    equal to the in-memory original field-for-field; the non-finite
//!    sentinels a report can legitimately contain (`min_distance = +inf` on
//!    an obstacle-free route) are encoded as the strings `"inf"`/`"-inf"`.
//! 3. [`StreamingMerge`] consumes reports **incrementally in arrival order**
//!    but releases them **in spec-index order**, so the coordinator's merged
//!    output is bit-identical to [`crate::batch::BatchRunner::run_serial`] over the whole
//!    grid no matter how workers interleave.
//! 4. [`Coordinator`] spawns one OS process per shard
//!    (`std::process::Command`), streams each child's stdout into the merge,
//!    and turns a crashed / non-zero-exit / protocol-violating worker into a
//!    [`ShardError`] naming the offending shard. Shard configs are validated
//!    (empty shards, overlaps, gaps, more workers than specs) **before**
//!    anything is spawned.
//!
//! The `sweep` binary in `seo-bench` wires this to a CLI: `--workers N`
//! runs the coordinator, `--worker START..END` runs one shard. The
//! multi-host layer ([`crate::transport`]) ships the same wire lines over
//! TCP instead of a child process's stdout.
//!
//! # Example
//!
//! Plan a grid, push each shard's lines through the wire format, and merge —
//! the composition every distributed mode is built from:
//!
//! ```
//! use seo_core::shard::{parse_spec_line, spec_line, Shard, ShardPlanner};
//! use seo_core::batch::ScenarioSpec;
//!
//! let specs = ScenarioSpec::grid(&[0, 2, 4], 2, 2023); // 6 specs
//! let plan = ShardPlanner::new(2).plan(specs.len())?;
//! assert_eq!(plan.shards(), [Shard::new(0, 3), Shard::new(3, 6)]);
//! // Every spec survives the line-delimited wire format exactly.
//! for spec in &specs {
//!     assert_eq!(parse_spec_line(&spec_line(spec))?, *spec);
//! }
//! # Ok::<(), seo_core::shard::ShardError>(())
//! ```

use crate::batch::ScenarioSpec;
use crate::json::Json;
use crate::metrics::{DeltaMaxHistogram, EpisodeReport, ModelEnergyReport};
use crate::runtime::{EpisodeScratch, RuntimeLoop, WorldSource};
use seo_platform::energy::{EnergyCategory, EnergyLedger};
use seo_platform::units::Joules;
use seo_sim::episode::EpisodeStatus;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::str::FromStr;
use std::sync::Mutex;

/// Wire protocol version stamped on every report line. Bumped whenever the
/// report encoding changes shape so a coordinator never silently merges
/// output from a worker built against a different schema.
pub const WIRE_VERSION: u64 = 1;

/// Errors raised while planning shards, speaking the wire format, or
/// coordinating worker processes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ShardError {
    /// A shard covers zero specs.
    EmptyShard {
        /// Position of the offending shard in the plan.
        index: usize,
    },
    /// A shard starts before the previous shard ended (overlap) or shards
    /// are out of order.
    ShardOverlap {
        /// Position of the offending shard in the plan.
        index: usize,
    },
    /// Shards leave part of the grid uncovered (or run past its end).
    ShardGap {
        /// Position where coverage broke (== plan length when the tail of
        /// the grid is uncovered).
        index: usize,
        /// Where the next shard was expected to start.
        expected_start: usize,
        /// Where it actually started (== grid length for a missing tail).
        found: usize,
    },
    /// More workers requested than there are specs to run.
    TooManyWorkers {
        /// Requested worker count.
        workers: usize,
        /// Specs in the grid.
        specs: usize,
    },
    /// A malformed wire line or an encoding that does not describe a valid
    /// report.
    Wire {
        /// What was wrong.
        message: String,
    },
    /// A report arrived for a spec index outside the grid.
    IndexOutOfRange {
        /// Offending spec index.
        index: usize,
        /// Grid size.
        total: usize,
    },
    /// Two reports arrived for the same spec index.
    DuplicateIndex {
        /// Offending spec index.
        index: usize,
    },
    /// The merge finished without a report for this spec index.
    MissingReport {
        /// Spec index never reported.
        index: usize,
    },
    /// A worker process failed: could not spawn, crashed, exited non-zero,
    /// or violated the wire protocol.
    WorkerFailed {
        /// Position of the worker's shard in the plan.
        shard_index: usize,
        /// The shard it was running.
        shard: Shard,
        /// Failure description (exit status, stderr tail, or protocol
        /// error).
        message: String,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyShard { index } => write!(f, "shard {index} is empty"),
            Self::ShardOverlap { index } => {
                write!(f, "shard {index} overlaps the preceding shard")
            }
            Self::ShardGap {
                index,
                expected_start,
                found,
            } => write!(
                f,
                "shard coverage gap at shard {index}: expected start {expected_start}, found {found}"
            ),
            Self::TooManyWorkers { workers, specs } => {
                write!(f, "{workers} workers requested for {specs} spec(s)")
            }
            Self::Wire { message } => write!(f, "wire format error: {message}"),
            Self::IndexOutOfRange { index, total } => {
                write!(f, "report index {index} outside grid of {total} spec(s)")
            }
            Self::DuplicateIndex { index } => {
                write!(f, "duplicate report for spec index {index}")
            }
            Self::MissingReport { index } => {
                write!(f, "no report received for spec index {index}")
            }
            Self::WorkerFailed {
                shard_index,
                shard,
                message,
            } => write!(f, "worker {shard_index} (shard {shard}) failed: {message}"),
        }
    }
}

impl std::error::Error for ShardError {}

fn wire_err(message: impl Into<String>) -> ShardError {
    ShardError::Wire {
        message: message.into(),
    }
}

/// One contiguous half-open slice `[start, end)` of a spec grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shard {
    /// First spec index covered (inclusive).
    pub start: usize,
    /// One past the last spec index covered.
    pub end: usize,
}

impl Shard {
    /// Creates a shard over `[start, end)`.
    #[must_use]
    pub fn new(start: usize, end: usize) -> Self {
        Self { start, end }
    }

    /// Specs covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Whether the shard covers no specs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// The covered spec indices.
    pub fn indices(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }

    /// Splits this shard into `weights.len()` contiguous sub-ranges whose
    /// lengths are proportional to the weights (cumulative rounding), in
    /// order and covering `[start, end)` exactly. Entries may come back
    /// empty when the range holds fewer specs than there are weights — or
    /// when a weight is zero. A zero weight **never** receives specs.
    ///
    /// This was the assignment primitive of the wave-era multi-host
    /// transport (host capacities as weights); the coordinator has since
    /// moved to pull-based lease scheduling ([`crate::lease`]), which
    /// balances load dynamically instead of by up-front proportional
    /// split. The primitive is kept for capacity-weighted partitioning in
    /// general. It is a pure function of `(self, weights)`, so every
    /// participant derives the same split.
    ///
    /// An all-zero (or empty) weight list yields no sub-ranges; callers
    /// validate capacities before planning ([`crate::transport::HostPool`]
    /// rejects zero-capacity hosts up front).
    ///
    /// # Example
    ///
    /// ```
    /// use seo_core::shard::Shard;
    ///
    /// let parts = Shard::new(0, 9).split_weighted(&[2, 1]);
    /// assert_eq!(parts, [Shard::new(0, 6), Shard::new(6, 9)]);
    /// ```
    #[must_use]
    pub fn split_weighted(&self, weights: &[u64]) -> Vec<Shard> {
        let total: u128 = weights.iter().map(|&w| u128::from(w)).sum();
        if total == 0 {
            return Vec::new();
        }
        let len = self.len() as u128;
        let mut parts = Vec::with_capacity(weights.len());
        let mut cumulative: u128 = 0;
        let mut prev_boundary = self.start;
        for &w in weights {
            cumulative += u128::from(w);
            // round(len * cumulative / total) with integer math; monotonic
            // in `cumulative`, and exactly `len` when cumulative == total.
            #[allow(clippy::cast_possible_truncation)]
            let boundary = self.start + ((len * cumulative * 2 + total) / (total * 2)) as usize;
            parts.push(Shard::new(prev_boundary, boundary));
            prev_boundary = boundary;
        }
        debug_assert_eq!(
            prev_boundary, self.end,
            "weighted split must cover the range"
        );
        parts
    }
}

impl fmt::Display for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

impl FromStr for Shard {
    type Err = ShardError;

    /// Parses the CLI shard spec `START..END` (half-open, decimal).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (start, end) = s
            .split_once("..")
            .ok_or_else(|| wire_err(format!("shard spec '{s}' is not START..END")))?;
        let parse = |part: &str, which: &str| {
            part.trim().parse::<usize>().map_err(|_| {
                wire_err(format!(
                    "shard spec '{s}': {which} '{part}' is not a non-negative integer"
                ))
            })
        };
        let shard = Self::new(parse(start, "start")?, parse(end, "end")?);
        if shard.is_empty() {
            return Err(wire_err(format!("shard spec '{s}' covers no specs")));
        }
        Ok(shard)
    }
}

/// A validated partition of a spec grid into contiguous shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    shards: Vec<Shard>,
    n_specs: usize,
}

impl ShardPlan {
    /// Validates an explicit shard list against a grid of `n_specs` specs:
    /// no empty shards, no overlaps, no gaps, exact coverage of
    /// `[0, n_specs)`. An empty grid must have an empty shard list.
    ///
    /// # Errors
    ///
    /// [`ShardError::EmptyShard`], [`ShardError::ShardOverlap`], or
    /// [`ShardError::ShardGap`] identifying the first offending shard.
    pub fn from_shards(shards: Vec<Shard>, n_specs: usize) -> Result<Self, ShardError> {
        let mut expected_start = 0usize;
        for (index, shard) in shards.iter().enumerate() {
            if shard.is_empty() {
                return Err(ShardError::EmptyShard { index });
            }
            if shard.start < expected_start {
                return Err(ShardError::ShardOverlap { index });
            }
            if shard.start > expected_start {
                return Err(ShardError::ShardGap {
                    index,
                    expected_start,
                    found: shard.start,
                });
            }
            expected_start = shard.end;
        }
        if expected_start != n_specs {
            return Err(ShardError::ShardGap {
                index: shards.len(),
                expected_start,
                found: n_specs,
            });
        }
        Ok(Self { shards, n_specs })
    }

    /// The shards, in grid order.
    #[must_use]
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Size of the grid this plan covers.
    #[must_use]
    pub fn n_specs(&self) -> usize {
        self.n_specs
    }
}

/// Partitions spec grids into contiguous, deterministic shards.
///
/// # Example
///
/// ```
/// use seo_core::shard::ShardPlanner;
///
/// let plan = ShardPlanner::new(3).plan(8)?;
/// let sizes: Vec<usize> = plan.shards().iter().map(|s| s.len()).collect();
/// assert_eq!(sizes, [3, 3, 2]); // near-even, remainder on the leading shards
/// # Ok::<(), seo_core::shard::ShardError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlanner {
    workers: usize,
}

impl ShardPlanner {
    /// A planner for `workers` worker processes (clamped to at least 1).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// The worker count shards are planned for.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Plans shards over a grid of `n_specs` specs: one non-empty contiguous
    /// shard per worker, sizes differing by at most one (the remainder goes
    /// to the leading shards). The plan is a pure function of
    /// `(workers, n_specs)`.
    ///
    /// An empty grid yields an empty plan. Requesting more workers than
    /// specs is a configuration error — a misconfigured fleet should fail
    /// loudly before any process is spawned, not silently idle workers (use
    /// [`Self::plan_clamped`] to shrink instead).
    ///
    /// # Errors
    ///
    /// [`ShardError::TooManyWorkers`] when `workers > n_specs > 0`.
    pub fn plan(&self, n_specs: usize) -> Result<ShardPlan, ShardError> {
        if n_specs == 0 {
            return ShardPlan::from_shards(Vec::new(), 0);
        }
        if self.workers > n_specs {
            return Err(ShardError::TooManyWorkers {
                workers: self.workers,
                specs: n_specs,
            });
        }
        let base = n_specs / self.workers;
        let remainder = n_specs % self.workers;
        let mut shards = Vec::with_capacity(self.workers);
        let mut start = 0usize;
        for i in 0..self.workers {
            let len = base + usize::from(i < remainder);
            shards.push(Shard::new(start, start + len));
            start += len;
        }
        ShardPlan::from_shards(shards, n_specs)
    }

    /// Like [`Self::plan`] but shrinks the worker count to the grid instead
    /// of erroring, so tiny grids still run (possibly on fewer processes).
    ///
    /// # Errors
    ///
    /// None in practice; kept fallible for symmetry with [`Self::plan`].
    pub fn plan_clamped(&self, n_specs: usize) -> Result<ShardPlan, ShardError> {
        Self::new(self.workers.min(n_specs.max(1))).plan(n_specs)
    }
}

// ---------------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------------

/// Encodes a float for the wire: finite values go through the exact
/// shortest-round-trip number path, the non-finite sentinels a report can
/// carry become strings.
pub(crate) fn f64_to_wire(v: f64) -> Json {
    if v.is_finite() {
        Json::Num(v)
    } else if v.is_nan() {
        Json::Str("nan".to_owned())
    } else if v > 0.0 {
        Json::Str("inf".to_owned())
    } else {
        Json::Str("-inf".to_owned())
    }
}

pub(crate) fn f64_from_wire(v: &Json, field: &str) -> Result<f64, ShardError> {
    match v {
        Json::Str(s) => match s.as_str() {
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            "nan" => Ok(f64::NAN),
            other => Err(wire_err(format!(
                "{field}: unknown float sentinel '{other}'"
            ))),
        },
        _ => v
            .as_f64()
            .ok_or_else(|| wire_err(format!("{field}: expected a number"))),
    }
}

fn get<'a>(obj: &'a Json, field: &str) -> Result<&'a Json, ShardError> {
    obj.get(field)
        .ok_or_else(|| wire_err(format!("missing field '{field}'")))
}

fn get_usize(obj: &Json, field: &str) -> Result<usize, ShardError> {
    let v = get(obj, field)?
        .as_i64()
        .ok_or_else(|| wire_err(format!("{field}: expected an integer")))?;
    usize::try_from(v).map_err(|_| wire_err(format!("{field}: expected a non-negative integer")))
}

fn get_f64(obj: &Json, field: &str) -> Result<f64, ShardError> {
    f64_from_wire(get(obj, field)?, field)
}

fn status_to_str(status: EpisodeStatus) -> &'static str {
    match status {
        EpisodeStatus::Running => "running",
        EpisodeStatus::Completed => "completed",
        EpisodeStatus::Collided => "collided",
        EpisodeStatus::OffRoad => "off-road",
        EpisodeStatus::TimedOut => "timed-out",
    }
}

fn status_from_str(s: &str) -> Result<EpisodeStatus, ShardError> {
    match s {
        "running" => Ok(EpisodeStatus::Running),
        "completed" => Ok(EpisodeStatus::Completed),
        "collided" => Ok(EpisodeStatus::Collided),
        "off-road" => Ok(EpisodeStatus::OffRoad),
        "timed-out" => Ok(EpisodeStatus::TimedOut),
        other => Err(wire_err(format!("unknown episode status '{other}'"))),
    }
}

/// Encodes a `u64` for the wire without sign-wrapping: values that fit an
/// `i64` ride the integer path, larger ones are carried as decimal strings
/// so a non-Rust consumer never sees a negative seed.
pub(crate) fn u64_to_wire(v: u64) -> Json {
    match i64::try_from(v) {
        Ok(small) => Json::Int(small),
        Err(_) => Json::Str(v.to_string()),
    }
}

pub(crate) fn u64_from_wire(v: &Json, field: &str) -> Result<u64, ShardError> {
    match v {
        Json::Int(i) => {
            u64::try_from(*i).map_err(|_| wire_err(format!("{field}: must be non-negative")))
        }
        Json::Str(s) => s
            .parse::<u64>()
            .map_err(|_| wire_err(format!("{field}: '{s}' is not a u64"))),
        _ => Err(wire_err(format!("{field}: expected a u64"))),
    }
}

/// Encodes a spec as a wire object.
#[must_use]
pub fn spec_to_json(spec: &ScenarioSpec) -> Json {
    Json::obj(vec![
        ("n_obstacles", spec.n_obstacles.into()),
        ("seed", u64_to_wire(spec.seed)),
    ])
}

/// Decodes a spec from its wire object.
///
/// # Errors
///
/// [`ShardError::Wire`] on missing or mistyped fields.
pub fn spec_from_json(json: &Json) -> Result<ScenarioSpec, ShardError> {
    Ok(ScenarioSpec::new(
        get_usize(json, "n_obstacles")?,
        u64_from_wire(get(json, "seed")?, "seed")?,
    ))
}

/// One spec as a wire line (line-delimited JSON).
#[must_use]
pub fn spec_line(spec: &ScenarioSpec) -> String {
    spec_to_json(spec).render()
}

/// Parses one spec wire line.
///
/// # Errors
///
/// [`ShardError::Wire`] on malformed JSON or fields.
pub fn parse_spec_line(line: &str) -> Result<ScenarioSpec, ShardError> {
    let json = Json::parse(line).map_err(|e| wire_err(e.to_string()))?;
    spec_from_json(&json)
}

fn ledger_to_json(ledger: &EnergyLedger) -> Json {
    Json::obj(vec![
        (
            "compute",
            ledger
                .by_category(EnergyCategory::Compute)
                .as_joules()
                .into(),
        ),
        (
            "transmission",
            ledger
                .by_category(EnergyCategory::Transmission)
                .as_joules()
                .into(),
        ),
        (
            "sensor_measurement",
            ledger
                .by_category(EnergyCategory::SensorMeasurement)
                .as_joules()
                .into(),
        ),
        (
            "sensor_mechanical",
            ledger
                .by_category(EnergyCategory::SensorMechanical)
                .as_joules()
                .into(),
        ),
    ])
}

fn ledger_from_json(json: &Json) -> Result<EnergyLedger, ShardError> {
    let mut ledger = EnergyLedger::new();
    for (field, category) in [
        ("compute", EnergyCategory::Compute),
        ("transmission", EnergyCategory::Transmission),
        ("sensor_measurement", EnergyCategory::SensorMeasurement),
        ("sensor_mechanical", EnergyCategory::SensorMechanical),
    ] {
        let joules = get_f64(json, field)?;
        if !joules.is_finite() || joules < 0.0 {
            return Err(wire_err(format!(
                "{field}: energy must be finite and non-negative, got {joules}"
            )));
        }
        ledger.record(category, Joules::new(joules));
    }
    Ok(ledger)
}

fn model_to_json(model: &ModelEnergyReport) -> Json {
    Json::obj(vec![
        ("name", model.name.as_str().into()),
        ("delta_i", model.delta_i.into()),
        ("optimized", ledger_to_json(&model.optimized)),
        ("baseline", ledger_to_json(&model.baseline)),
        ("full_invocations", model.full_invocations.into()),
        ("optimized_slots", model.optimized_slots.into()),
        ("offloads_issued", model.offloads_issued.into()),
        ("offload_successes", model.offload_successes.into()),
        ("offload_fallbacks", model.offload_fallbacks.into()),
    ])
}

fn model_from_json(json: &Json) -> Result<ModelEnergyReport, ShardError> {
    let delta_i = get(json, "delta_i")?
        .as_i64()
        .ok_or_else(|| wire_err("delta_i: expected an integer"))?;
    Ok(ModelEnergyReport {
        name: get(json, "name")?
            .as_str()
            .ok_or_else(|| wire_err("name: expected a string"))?
            .to_owned(),
        delta_i: u32::try_from(delta_i).map_err(|_| wire_err("delta_i: expected a u32"))?,
        optimized: ledger_from_json(get(json, "optimized")?)?,
        baseline: ledger_from_json(get(json, "baseline")?)?,
        full_invocations: get_usize(json, "full_invocations")?,
        optimized_slots: get_usize(json, "optimized_slots")?,
        offloads_issued: get_usize(json, "offloads_issued")?,
        offload_successes: get_usize(json, "offload_successes")?,
        offload_fallbacks: get_usize(json, "offload_fallbacks")?,
    })
}

pub(crate) fn histogram_to_json(histogram: &DeltaMaxHistogram) -> Json {
    Json::Arr(
        histogram
            .iter()
            .map(|(v, c)| Json::Arr(vec![v.into(), c.into()]))
            .collect(),
    )
}

pub(crate) fn histogram_from_json(json: &Json) -> Result<DeltaMaxHistogram, ShardError> {
    let pairs = json
        .as_arr()
        .ok_or_else(|| wire_err("histogram: expected an array"))?;
    let mut histogram = DeltaMaxHistogram::new();
    for pair in pairs {
        let pair = pair
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| wire_err("histogram: expected [delta_max, count] pairs"))?;
        let delta = pair[0]
            .as_i64()
            .and_then(|v| u32::try_from(v).ok())
            .ok_or_else(|| wire_err("histogram: delta_max must be a u32"))?;
        let count = pair[1]
            .as_i64()
            .and_then(|v| usize::try_from(v).ok())
            .ok_or_else(|| wire_err("histogram: count must be a non-negative integer"))?;
        histogram.record_n(delta, count);
    }
    Ok(histogram)
}

/// Encodes a report as a wire object.
#[must_use]
pub fn report_to_json(report: &EpisodeReport) -> Json {
    Json::obj(vec![
        ("status", status_to_str(report.status).into()),
        ("steps", report.steps.into()),
        (
            "models",
            Json::Arr(report.models.iter().map(model_to_json).collect()),
        ),
        ("histogram", histogram_to_json(&report.histogram)),
        ("unsafe_steps", report.unsafe_steps.into()),
        ("corrections", report.corrections.into()),
        ("min_barrier", f64_to_wire(report.min_barrier)),
        ("min_distance", f64_to_wire(report.min_distance)),
    ])
}

/// Decodes a report from its wire object.
///
/// # Errors
///
/// [`ShardError::Wire`] on missing or mistyped fields.
pub fn report_from_json(json: &Json) -> Result<EpisodeReport, ShardError> {
    let models = get(json, "models")?
        .as_arr()
        .ok_or_else(|| wire_err("models: expected an array"))?
        .iter()
        .map(model_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(EpisodeReport {
        status: status_from_str(
            get(json, "status")?
                .as_str()
                .ok_or_else(|| wire_err("status: expected a string"))?,
        )?,
        steps: get_usize(json, "steps")?,
        models,
        histogram: histogram_from_json(get(json, "histogram")?)?,
        unsafe_steps: get_usize(json, "unsafe_steps")?,
        corrections: get_usize(json, "corrections")?,
        min_barrier: get_f64(json, "min_barrier")?,
        min_distance: get_f64(json, "min_distance")?,
    })
}

/// One worker-output line: the report for global spec index `index`,
/// stamped with [`WIRE_VERSION`].
#[must_use]
pub fn report_line(index: usize, report: &EpisodeReport) -> String {
    Json::obj(vec![
        ("v", WIRE_VERSION.into()),
        ("index", index.into()),
        ("report", report_to_json(report)),
    ])
    .render()
}

/// Parses one worker-output line into `(spec index, report)`.
///
/// # Errors
///
/// [`ShardError::Wire`] on malformed JSON, a version mismatch, or invalid
/// report fields.
pub fn parse_report_line(line: &str) -> Result<(usize, EpisodeReport), ShardError> {
    let json = Json::parse(line).map_err(|e| wire_err(e.to_string()))?;
    let version = get(&json, "v")?
        .as_i64()
        .ok_or_else(|| wire_err("v: expected an integer"))?;
    if version != i64::try_from(WIRE_VERSION).unwrap_or(i64::MAX) {
        return Err(wire_err(format!(
            "wire version {version} (this build speaks {WIRE_VERSION})"
        )));
    }
    Ok((
        get_usize(&json, "index")?,
        report_from_json(get(&json, "report")?)?,
    ))
}

/// One summary-mode worker-output line: the sketch fragment a worker
/// folded its whole shard into, stamped with
/// [`crate::agg::SUMMARY_VERSION`]. In `report.mode = "summary"` this is
/// the **only** stdout a worker produces — no per-episode line crosses
/// the process boundary.
#[must_use]
pub fn summary_line(shard: Shard, cells: &[crate::agg::CellSketch]) -> String {
    Json::obj(vec![
        ("v", crate::agg::SUMMARY_VERSION.into()),
        ("shard", shard.to_string().into()),
        ("cells", crate::agg::cells_to_json(cells)),
    ])
    .render()
}

/// Parses one summary wire line into `(shard, fragment)`.
///
/// # Errors
///
/// [`ShardError::Wire`] on malformed JSON, a version mismatch, or invalid
/// sketch fields.
pub fn parse_summary_line(line: &str) -> Result<(Shard, Vec<crate::agg::CellSketch>), ShardError> {
    let json = Json::parse(line).map_err(|e| wire_err(e.to_string()))?;
    let version = get(&json, "v")?
        .as_i64()
        .ok_or_else(|| wire_err("v: expected an integer"))?;
    if version != i64::try_from(crate::agg::SUMMARY_VERSION).unwrap_or(i64::MAX) {
        return Err(wire_err(format!(
            "summary version {version} (this build speaks {})",
            crate::agg::SUMMARY_VERSION
        )));
    }
    let shard = get(&json, "shard")?
        .as_str()
        .ok_or_else(|| wire_err("shard: expected a string"))?
        .parse::<Shard>()?;
    Ok((shard, crate::agg::cells_from_json(get(&json, "cells")?)?))
}

// ---------------------------------------------------------------------------
// Streaming merge
// ---------------------------------------------------------------------------

/// Deterministic incremental merge: accepts `(spec index, report)` pairs in
/// **any** arrival order and releases reports in **spec-index** order, so the
/// merged stream is independent of worker scheduling.
///
/// # Example
///
/// ```
/// use seo_core::shard::StreamingMerge;
/// # use seo_core::prelude::*;
/// # let config = SeoConfig::paper_defaults();
/// # let models = ModelSet::paper_setup(config.tau)?;
/// # let runtime = RuntimeLoop::new(config, models, OptimizerKind::ModelGating)?;
/// # let report = runtime.run_episode(&ScenarioSpec::new(0, 1).world(), 1);
/// let mut merge = StreamingMerge::new(2);
/// merge.accept(1, report.clone())?;
/// assert!(merge.drain_ready().is_empty()); // index 0 still outstanding
/// merge.accept(0, report.clone())?;
/// assert_eq!(merge.drain_ready().len(), 2); // released in index order
/// assert!(merge.finish()?.is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct StreamingMerge {
    slots: Vec<Option<EpisodeReport>>,
    /// Next index to release.
    next: usize,
    received: usize,
}

impl StreamingMerge {
    /// A merge expecting one report per spec index in `[0, total)`.
    #[must_use]
    pub fn new(total: usize) -> Self {
        let mut slots = Vec::new();
        slots.resize_with(total, || None);
        Self {
            slots,
            next: 0,
            received: 0,
        }
    }

    /// Grid size this merge expects.
    #[must_use]
    pub fn total(&self) -> usize {
        self.slots.len()
    }

    /// Reports accepted so far.
    #[must_use]
    pub fn received(&self) -> usize {
        self.received
    }

    /// The lowest spec index not yet released by [`Self::drain_ready`].
    #[must_use]
    pub fn next_index(&self) -> usize {
        self.next
    }

    /// Whether every spec index has reported.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.received == self.slots.len()
    }

    /// Accepts one report.
    ///
    /// # Errors
    ///
    /// [`ShardError::IndexOutOfRange`] or [`ShardError::DuplicateIndex`]
    /// (including an index whose report was already drained).
    pub fn accept(&mut self, index: usize, report: EpisodeReport) -> Result<(), ShardError> {
        if index >= self.slots.len() {
            return Err(ShardError::IndexOutOfRange {
                index,
                total: self.slots.len(),
            });
        }
        if index < self.next || self.slots[index].is_some() {
            return Err(ShardError::DuplicateIndex { index });
        }
        self.slots[index] = Some(report);
        self.received += 1;
        Ok(())
    }

    /// Releases the contiguous run of reports starting at the lowest
    /// unreleased index — the streaming half of the determinism guarantee.
    /// Returns an empty vector while that index is still outstanding.
    pub fn drain_ready(&mut self) -> Vec<EpisodeReport> {
        let mut out = Vec::new();
        while self.next < self.slots.len() {
            match self.slots[self.next].take() {
                Some(report) => {
                    out.push(report);
                    self.next += 1;
                }
                None => break,
            }
        }
        out
    }

    /// Finishes the merge, returning any not-yet-drained reports in index
    /// order.
    ///
    /// # Errors
    ///
    /// [`ShardError::MissingReport`] naming the first index that never
    /// reported.
    pub fn finish(mut self) -> Result<Vec<EpisodeReport>, ShardError> {
        if let Some(missing) = self
            .slots
            .iter()
            .enumerate()
            .skip(self.next)
            .find_map(|(i, slot)| slot.is_none().then_some(i))
        {
            return Err(ShardError::MissingReport { index: missing });
        }
        Ok(self.drain_ready())
    }
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

/// Runs one shard of a spec grid and streams one [`report_line`] per episode
/// to `out` (flushed per line, so the coordinator sees progress
/// incrementally). Episodes run serially through the zero-allocation scratch
/// path — exactly the loop [`crate::batch::BatchRunner::run_serial`] uses — so the
/// concatenation of all shards' output is bit-identical to a serial sweep of
/// the whole grid.
///
/// # Errors
///
/// [`ShardError::IndexOutOfRange`] when the shard reaches outside the grid,
/// [`ShardError::Wire`] when `out` rejects a write (e.g. a closed pipe).
pub fn run_worker_shard(
    runtime: &RuntimeLoop,
    specs: &[ScenarioSpec],
    shard: Shard,
    out: &mut dyn Write,
) -> Result<(), ShardError> {
    if shard.end > specs.len() {
        return Err(ShardError::IndexOutOfRange {
            index: shard.end.saturating_sub(1),
            total: specs.len(),
        });
    }
    let mut scratch = EpisodeScratch::new();
    for i in shard.indices() {
        let spec = specs[i];
        let world = spec.world();
        let report = runtime.run_with(WorldSource::Static(&world), spec.seed, &mut scratch);
        writeln!(out, "{}", report_line(i, &report))
            .and_then(|()| out.flush())
            .map_err(|e| wire_err(format!("writing report {i}: {e}")))?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

/// Spawns one worker process per shard and merges their streamed reports
/// deterministically.
///
/// The worker command line is `<program> <common_args>… --worker START..END`;
/// workers must write [`report_line`]s for exactly their shard's spec
/// indices to stdout. Worker stderr is captured and attached to failures.
#[derive(Debug, Clone)]
pub struct Coordinator {
    program: PathBuf,
    common_args: Vec<String>,
}

/// Shared coordinator state: the merge plus the streaming sink it feeds.
/// One lock guards both so reports are sunk in exactly merge order.
struct MergeState<'a> {
    merge: StreamingMerge,
    sink: &'a mut (dyn FnMut(usize, EpisodeReport) + Send),
}

impl Coordinator {
    /// A coordinator launching `program` for each shard.
    #[must_use]
    pub fn new(program: impl Into<PathBuf>) -> Self {
        Self {
            program: program.into(),
            common_args: Vec::new(),
        }
    }

    /// Arguments passed to every worker before `--worker` (builder style) —
    /// the grid parameters, so every worker reconstructs the same spec list.
    #[must_use]
    pub fn with_args<I, S>(mut self, args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.common_args = args.into_iter().map(Into::into).collect();
        self
    }

    /// Runs the plan: spawns every worker, streams stdout lines into a
    /// [`StreamingMerge`], waits for all children, and returns the merged
    /// reports in spec order — bit-identical to a serial sweep of the grid.
    ///
    /// The plan is re-validated before anything is spawned. A worker that
    /// cannot be spawned, crashes, exits non-zero, emits a malformed line,
    /// or reports an index outside the grid fails the whole run with its
    /// shard identified; remaining workers are reaped before returning.
    ///
    /// # Errors
    ///
    /// [`ShardError::WorkerFailed`] naming the offending shard, or a
    /// validation/merge error ([`ShardError::MissingReport`] when a worker
    /// under-reports its shard).
    pub fn run(&self, plan: &ShardPlan) -> Result<Vec<EpisodeReport>, ShardError> {
        let mut merged = Vec::with_capacity(plan.n_specs());
        self.run_streaming(plan, |_, report| merged.push(report))?;
        Ok(merged)
    }

    /// Like [`Self::run`], but delivers each report to `sink` **while
    /// workers are still running**: `sink(spec_index, report)` is invoked
    /// strictly in spec order, as soon as the contiguous index prefix up to
    /// that report is complete. This is what lets a consumer pipe merged
    /// wire lines out of a long sweep instead of waiting for the slowest
    /// shard. On error the already-sunk prefix is still valid output.
    ///
    /// # Errors
    ///
    /// Same as [`Self::run`].
    pub fn run_streaming(
        &self,
        plan: &ShardPlan,
        mut sink: impl FnMut(usize, EpisodeReport) + Send,
    ) -> Result<(), ShardError> {
        // Defense in depth: `ShardPlan` construction already validated this,
        // but the plan may have been built by different code than is about
        // to fan out processes.
        ShardPlan::from_shards(plan.shards().to_vec(), plan.n_specs())?;
        let state = Mutex::new(MergeState {
            merge: StreamingMerge::new(plan.n_specs()),
            sink: &mut sink,
        });
        let mut failures: Vec<ShardError> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(plan.shards().len());
            for (shard_index, &shard) in plan.shards().iter().enumerate() {
                let state = &state;
                handles.push(scope.spawn(move || self.drive_worker(shard_index, shard, state)));
            }
            for handle in handles {
                if let Err(e) = handle.join().expect("coordinator worker thread panicked") {
                    failures.push(e);
                }
            }
        });
        if let Some(first) = failures.into_iter().next() {
            return Err(first);
        }
        // Every accepted report was streamed on arrival, so all that can
        // remain is a hole, which finish() names.
        let leftovers = state
            .into_inner()
            .expect("merge mutex poisoned")
            .merge
            .finish()?;
        debug_assert!(leftovers.is_empty(), "streamed merge cannot hold a tail");
        Ok(())
    }

    /// Summary-mode counterpart of [`Self::run_streaming`]: spawns every
    /// worker and collects the **one** summary wire line each must emit
    /// (its shard's sketch fragment), instead of per-episode report lines.
    /// No per-episode NDJSON crosses the process boundary — a worker that
    /// emits an episode line in this mode fails the run as a protocol
    /// violation. Fragments come back in shard order (spec-index order),
    /// ready for [`crate::agg::RunSummary::fold_fragments`].
    ///
    /// # Errors
    ///
    /// [`ShardError::WorkerFailed`] naming the offending shard when a
    /// worker cannot be spawned, crashes, emits malformed output, emits a
    /// summary for the wrong shard, or emits anything but exactly one
    /// summary line.
    pub fn run_summaries(
        &self,
        plan: &ShardPlan,
    ) -> Result<Vec<(Shard, Vec<crate::agg::CellSketch>)>, ShardError> {
        ShardPlan::from_shards(plan.shards().to_vec(), plan.n_specs())?;
        let mut failures: Vec<ShardError> = Vec::new();
        let mut fragments: Vec<Option<(Shard, Vec<crate::agg::CellSketch>)>> =
            (0..plan.shards().len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(plan.shards().len());
            for (shard_index, &shard) in plan.shards().iter().enumerate() {
                handles.push(scope.spawn(move || self.drive_summary_worker(shard_index, shard)));
            }
            for (slot, handle) in fragments.iter_mut().zip(handles) {
                match handle.join().expect("coordinator worker thread panicked") {
                    Ok(fragment) => *slot = Some(fragment),
                    Err(e) => failures.push(e),
                }
            }
        });
        if let Some(first) = failures.into_iter().next() {
            return Err(first);
        }
        Ok(fragments
            .into_iter()
            .map(|slot| slot.expect("no failure implies every slot is filled"))
            .collect())
    }

    /// Spawns one summary-mode worker and collects its single summary line.
    fn drive_summary_worker(
        &self,
        shard_index: usize,
        shard: Shard,
    ) -> Result<(Shard, Vec<crate::agg::CellSketch>), ShardError> {
        let fail = |message: String| ShardError::WorkerFailed {
            shard_index,
            shard,
            message,
        };
        let output = Command::new(&self.program)
            .args(&self.common_args)
            .arg("--worker")
            .arg(shard.to_string())
            .stdin(Stdio::null())
            .output()
            .map_err(|e| fail(format!("spawn failed: {e}")))?;
        let stderr_note = || {
            let tail = String::from_utf8_lossy(&output.stderr);
            let trimmed = tail.trim();
            if trimmed.is_empty() {
                String::new()
            } else {
                let tail_start = trimmed.char_indices().rev().nth(399).map_or(0, |(i, _)| i);
                format!("; stderr: {}", &trimmed[tail_start..])
            }
        };
        if !output.status.success() {
            return Err(fail(format!(
                "exited with {}{}",
                output.status,
                stderr_note()
            )));
        }
        let stdout = String::from_utf8_lossy(&output.stdout);
        let mut lines = stdout.lines().filter(|l| !l.trim().is_empty());
        let line = lines
            .next()
            .ok_or_else(|| fail(format!("emitted no summary line{}", stderr_note())))?;
        if lines.next().is_some() {
            return Err(fail(
                "emitted more than one line in summary mode (per-episode output must not \
                 cross the process boundary)"
                    .to_owned(),
            ));
        }
        let (reported_shard, cells) =
            parse_summary_line(line).map_err(|e| fail(format!("protocol violation: {e}")))?;
        if reported_shard != shard {
            return Err(fail(format!(
                "summary covers shard {reported_shard}, expected {shard}"
            )));
        }
        Ok((shard, cells))
    }

    /// Spawns and fully consumes one worker. Runs on its own coordinator
    /// thread so slow shards never block fast ones from merging.
    fn drive_worker(
        &self,
        shard_index: usize,
        shard: Shard,
        state: &Mutex<MergeState<'_>>,
    ) -> Result<(), ShardError> {
        let fail = |message: String| ShardError::WorkerFailed {
            shard_index,
            shard,
            message,
        };
        let mut child = Command::new(&self.program)
            .args(&self.common_args)
            .arg("--worker")
            .arg(shard.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .map_err(|e| fail(format!("spawn failed: {e}")))?;
        let stdout = child.stdout.take().expect("stdout was piped");
        let mut stderr = child.stderr.take().expect("stderr was piped");

        let consume = |stdout| -> Result<usize, ShardError> {
            let mut lines_seen = 0usize;
            for line in BufReader::new(stdout).lines() {
                let line = line.map_err(|e| fail(format!("reading stdout: {e}")))?;
                if line.trim().is_empty() {
                    continue;
                }
                let (index, report) = parse_report_line(&line)
                    .map_err(|e| fail(format!("protocol violation: {e}")))?;
                if !shard.indices().contains(&index) {
                    return Err(fail(format!(
                        "reported index {index} outside shard {shard}"
                    )));
                }
                let mut guard = state.lock().expect("merge mutex poisoned");
                let MergeState { merge, sink } = &mut *guard;
                merge
                    .accept(index, report)
                    .map_err(|e| fail(e.to_string()))?;
                // Stream out whatever prefix this report completed.
                let next = merge.next_index();
                for (offset, ready) in merge.drain_ready().into_iter().enumerate() {
                    sink(next + offset, ready);
                }
                lines_seen += 1;
            }
            Ok(lines_seen)
        };
        // Drain stderr concurrently with stdout: a worker that fills the OS
        // stderr pipe while we are still blocked on its stdout (or vice
        // versa) would otherwise deadlock the sweep.
        let (consumed, err_tail) = std::thread::scope(|scope| {
            let stderr_thread = scope.spawn(move || {
                let mut tail = String::new();
                let _ = stderr.read_to_string(&mut tail);
                tail
            });
            let consumed = consume(stdout);
            (
                consumed,
                stderr_thread.join().expect("stderr reader panicked"),
            )
        });
        let status = child
            .wait()
            .map_err(|e| fail(format!("wait failed: {e}")))?;
        let stderr_note = || {
            let trimmed = err_tail.trim();
            let tail_start = trimmed.char_indices().rev().nth(399).map_or(0, |(i, _)| i);
            if trimmed.is_empty() {
                String::new()
            } else {
                format!("; stderr: {}", &trimmed[tail_start..])
            }
        };
        // A protocol violation takes precedence over the exit status:
        // dropping stdout mid-stream gives the still-writing worker a broken
        // pipe and a non-zero exit, and reporting *that* would bury the
        // actual diagnosis (e.g. a wire version mismatch).
        let lines_seen = match consumed {
            Ok(n) => n,
            Err(ShardError::WorkerFailed {
                shard_index,
                shard,
                message,
            }) => {
                return Err(ShardError::WorkerFailed {
                    shard_index,
                    shard,
                    message: format!("{message}{}", stderr_note()),
                })
            }
            Err(other) => return Err(other),
        };
        if !status.success() {
            return Err(fail(format!("exited with {status}{}", stderr_note())));
        }
        if lines_seen != shard.len() {
            return Err(fail(format!(
                "reported {lines_seen}/{} episodes{}",
                shard.len(),
                stderr_note()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchRunner;
    use crate::config::SeoConfig;
    use crate::model::ModelSet;
    use crate::optimizer::OptimizerKind;

    fn runner() -> BatchRunner {
        let config = SeoConfig::paper_defaults();
        let models = ModelSet::paper_setup(config.tau).expect("valid");
        BatchRunner::new(
            RuntimeLoop::new(config, models, OptimizerKind::Offloading).expect("valid runtime"),
        )
    }

    fn sample_report(n_obstacles: usize, seed: u64) -> EpisodeReport {
        let spec = ScenarioSpec::new(n_obstacles, seed);
        runner().runtime().run_episode(&spec.world(), spec.seed)
    }

    #[test]
    fn planner_splits_evenly_with_leading_remainder() {
        let plan = ShardPlanner::new(3).plan(10).expect("valid");
        assert_eq!(
            plan.shards(),
            [Shard::new(0, 4), Shard::new(4, 7), Shard::new(7, 10)]
        );
        let exact = ShardPlanner::new(4).plan(8).expect("valid");
        assert!(exact.shards().iter().all(|s| s.len() == 2));
    }

    #[test]
    fn planner_is_deterministic() {
        let a = ShardPlanner::new(5).plan(77).expect("valid");
        let b = ShardPlanner::new(5).plan(77).expect("valid");
        assert_eq!(a, b);
    }

    #[test]
    fn planner_empty_grid_yields_empty_plan() {
        let plan = ShardPlanner::new(4).plan(0).expect("empty grid is fine");
        assert!(plan.shards().is_empty());
        assert_eq!(plan.n_specs(), 0);
    }

    #[test]
    fn planner_rejects_more_workers_than_specs() {
        assert_eq!(
            ShardPlanner::new(5).plan(3),
            Err(ShardError::TooManyWorkers {
                workers: 5,
                specs: 3
            })
        );
        // The clamped variant shrinks to single-spec shards instead.
        let plan = ShardPlanner::new(5).plan_clamped(3).expect("clamps");
        assert_eq!(plan.shards().len(), 3);
        assert!(plan.shards().iter().all(|s| s.len() == 1));
    }

    #[test]
    fn planner_zero_workers_clamps_to_one() {
        let plan = ShardPlanner::new(0).plan(4).expect("valid");
        assert_eq!(plan.shards(), [Shard::new(0, 4)]);
    }

    #[test]
    fn plan_validation_rejects_bad_configs() {
        // Empty shard.
        assert_eq!(
            ShardPlan::from_shards(vec![Shard::new(0, 0), Shard::new(0, 2)], 2),
            Err(ShardError::EmptyShard { index: 0 })
        );
        // Overlap.
        assert_eq!(
            ShardPlan::from_shards(vec![Shard::new(0, 2), Shard::new(1, 3)], 3),
            Err(ShardError::ShardOverlap { index: 1 })
        );
        // Gap in the middle.
        assert!(matches!(
            ShardPlan::from_shards(vec![Shard::new(0, 1), Shard::new(2, 3)], 3),
            Err(ShardError::ShardGap { index: 1, .. })
        ));
        // Uncovered tail.
        assert!(matches!(
            ShardPlan::from_shards(vec![Shard::new(0, 2)], 3),
            Err(ShardError::ShardGap { .. })
        ));
        // Non-empty shard list on an empty grid.
        assert!(ShardPlan::from_shards(vec![Shard::new(0, 1)], 0).is_err());
        // Exact cover is accepted.
        assert!(ShardPlan::from_shards(vec![Shard::new(0, 2), Shard::new(2, 3)], 3).is_ok());
    }

    #[test]
    fn split_weighted_covers_range_proportionally() {
        // Capacity 2:1 over 9 specs → 6 + 3.
        assert_eq!(
            Shard::new(0, 9).split_weighted(&[2, 1]),
            [Shard::new(0, 6), Shard::new(6, 9)]
        );
        // Non-zero-based ranges split in place (a partially-consumed range).
        assert_eq!(
            Shard::new(10, 14).split_weighted(&[1, 1]),
            [Shard::new(10, 12), Shard::new(12, 14)]
        );
        // Tiny ranges may leave later entries empty, never uncovered.
        let parts = Shard::new(0, 1).split_weighted(&[1, 1, 1]);
        assert_eq!(parts.iter().map(Shard::len).sum::<usize>(), 1);
        // Zero weights receive nothing.
        let parts = Shard::new(0, 8).split_weighted(&[3, 0, 1]);
        assert!(parts[1].is_empty());
        assert_eq!(parts.iter().map(Shard::len).sum::<usize>(), 8);
        // Degenerate weight lists yield no parts.
        assert!(Shard::new(0, 5).split_weighted(&[]).is_empty());
        assert!(Shard::new(0, 5).split_weighted(&[0, 0]).is_empty());
    }

    #[test]
    fn split_weighted_is_deterministic_and_contiguous() {
        for (len, weights) in [
            (97usize, vec![1u64, 2, 3]),
            (5, vec![7, 11]),
            (1000, vec![1, 1, 1, 1, 1]),
            (13, vec![u64::MAX / 2, u64::MAX / 2]),
        ] {
            let range = Shard::new(3, 3 + len);
            let a = range.split_weighted(&weights);
            assert_eq!(a, range.split_weighted(&weights), "pure function");
            let mut expected_start = range.start;
            for part in &a {
                assert_eq!(part.start, expected_start, "contiguous in order");
                expected_start = part.end;
            }
            assert_eq!(expected_start, range.end, "exact coverage");
        }
    }

    #[test]
    fn shard_parses_cli_spec() {
        assert_eq!("3..7".parse::<Shard>().expect("valid"), Shard::new(3, 7));
        assert_eq!(Shard::new(3, 7).to_string(), "3..7");
        assert!("7..3".parse::<Shard>().is_err(), "empty range");
        assert!("3..3".parse::<Shard>().is_err(), "empty range");
        assert!("3-7".parse::<Shard>().is_err());
        assert!("a..b".parse::<Shard>().is_err());
    }

    #[test]
    fn spec_wire_round_trip() {
        for spec in ScenarioSpec::grid(&[0, 2, 4], 3, u64::MAX - 1) {
            let line = spec_line(&spec);
            assert_eq!(parse_spec_line(&line).expect("parses"), spec, "{line}");
            // Seeds above i64::MAX ride a decimal string, never a
            // sign-wrapped negative integer a non-Rust peer would misread.
            assert!(!line.contains('-'), "negative number leaked: {line}");
        }
        assert_eq!(
            spec_line(&ScenarioSpec::new(1, u64::MAX)),
            format!(r#"{{"n_obstacles":1,"seed":"{}"}}"#, u64::MAX)
        );
        assert!(parse_spec_line("{}").is_err());
        assert!(parse_spec_line("not json").is_err());
        assert!(
            parse_spec_line(r#"{"n_obstacles":1,"seed":-2}"#).is_err(),
            "negative seeds are rejected, not wrapped"
        );
    }

    #[test]
    fn report_wire_round_trip_is_exact() {
        // A 2-obstacle episode exercises finite floats everywhere…
        let report = sample_report(2, 2023);
        let line = report_line(7, &report);
        let (index, back) = parse_report_line(&line).expect("parses");
        assert_eq!(index, 7);
        assert_eq!(back, report, "wire round-trip must be exact");
        // …and an obstacle-free episode carries min_distance = +inf through
        // the sentinel encoding.
        let open_road = sample_report(0, 11);
        assert!(open_road.min_distance.is_infinite());
        let (_, back) = parse_report_line(&report_line(0, &open_road)).expect("parses");
        assert_eq!(back, open_road);
    }

    #[test]
    fn report_wire_rejects_foreign_versions_and_garbage() {
        let report = sample_report(0, 3);
        let line = report_line(0, &report).replace("\"v\":1", "\"v\":999");
        assert!(matches!(
            parse_report_line(&line),
            Err(ShardError::Wire { .. })
        ));
        assert!(parse_report_line("{\"index\":0}").is_err());
        assert!(parse_report_line("").is_err());
    }

    #[test]
    fn non_finite_sentinels_round_trip() {
        for v in [f64::INFINITY, f64::NEG_INFINITY] {
            let back = f64_from_wire(&f64_to_wire(v), "t").expect("parses");
            assert_eq!(back.to_bits(), v.to_bits());
        }
        assert!(f64_from_wire(&f64_to_wire(f64::NAN), "t")
            .expect("parses")
            .is_nan());
        assert!(f64_from_wire(&Json::Str("weird".into()), "t").is_err());
    }

    #[test]
    fn merge_releases_in_index_order() {
        let a = sample_report(0, 1);
        let b = sample_report(0, 2);
        let c = sample_report(2, 3);
        let mut merge = StreamingMerge::new(3);
        merge.accept(2, c.clone()).expect("ok");
        assert!(merge.drain_ready().is_empty(), "index 0 outstanding");
        merge.accept(0, a.clone()).expect("ok");
        assert_eq!(merge.drain_ready(), vec![a], "prefix releases immediately");
        merge.accept(1, b.clone()).expect("ok");
        assert!(merge.is_complete());
        assert_eq!(merge.finish().expect("complete"), vec![b, c]);
    }

    #[test]
    fn merge_rejects_duplicates_and_out_of_range() {
        let r = sample_report(0, 1);
        let mut merge = StreamingMerge::new(2);
        assert_eq!(
            merge.accept(2, r.clone()),
            Err(ShardError::IndexOutOfRange { index: 2, total: 2 })
        );
        merge.accept(0, r.clone()).expect("ok");
        assert_eq!(
            merge.accept(0, r.clone()),
            Err(ShardError::DuplicateIndex { index: 0 })
        );
        // Draining does not forget: re-sending a drained index still fails.
        let _ = merge.drain_ready();
        assert_eq!(
            merge.accept(0, r),
            Err(ShardError::DuplicateIndex { index: 0 })
        );
    }

    #[test]
    fn merge_finish_names_missing_index() {
        let r = sample_report(0, 1);
        let mut merge = StreamingMerge::new(3);
        merge.accept(0, r.clone()).expect("ok");
        merge.accept(2, r).expect("ok");
        assert_eq!(merge.finish(), Err(ShardError::MissingReport { index: 1 }));
    }

    #[test]
    fn worker_shard_output_matches_serial_slice() {
        let runner = runner();
        let specs = ScenarioSpec::grid(&[0, 2], 2, 2023);
        let serial = runner.run_serial(&specs);
        let shard = Shard::new(1, 3);
        let mut buf = Vec::new();
        run_worker_shard(runner.runtime(), &specs, shard, &mut buf).expect("runs");
        let text = String::from_utf8(buf).expect("utf8");
        let parsed: Vec<(usize, EpisodeReport)> = text
            .lines()
            .map(|l| parse_report_line(l).expect("valid line"))
            .collect();
        assert_eq!(parsed.len(), shard.len());
        for (offset, (i, report)) in parsed.iter().enumerate() {
            assert_eq!(*i, shard.start + offset, "indices emitted in shard order");
            assert_eq!(*report, serial[*i], "shard output must match serial slice");
        }
        // A merge seeded with the missing leading index cannot release
        // anything yet — the shard only covers [1, 3).
        let mut merge = StreamingMerge::new(specs.len());
        for (i, report) in parsed {
            merge.accept(i, report).expect("ok");
        }
        assert_eq!(merge.received(), 2);
        assert!(merge.drain_ready().is_empty(), "index 0 still outstanding");
    }

    #[test]
    fn worker_shard_rejects_out_of_grid_shard() {
        let runner = runner();
        let specs = ScenarioSpec::grid(&[0], 2, 1);
        let mut buf = Vec::new();
        assert!(matches!(
            run_worker_shard(runner.runtime(), &specs, Shard::new(1, 5), &mut buf),
            Err(ShardError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    fn coordinator_surfaces_spawn_failure_with_shard() {
        let plan = ShardPlanner::new(2).plan(4).expect("valid");
        let coordinator = Coordinator::new("/nonexistent/seo-worker-binary");
        match coordinator.run(&plan) {
            Err(ShardError::WorkerFailed { shard, message, .. }) => {
                assert!(!shard.is_empty());
                assert!(message.contains("spawn failed"), "{message}");
            }
            other => panic!("expected WorkerFailed, got {other:?}"),
        }
    }

    #[test]
    fn errors_display_useful_context() {
        let e = ShardError::WorkerFailed {
            shard_index: 1,
            shard: Shard::new(3, 6),
            message: "exited with signal".into(),
        };
        assert_eq!(
            e.to_string(),
            "worker 1 (shard 3..6) failed: exited with signal"
        );
        assert!(ShardError::TooManyWorkers {
            workers: 9,
            specs: 4
        }
        .to_string()
        .contains("9 workers"));
        assert!(ShardError::MissingReport { index: 5 }
            .to_string()
            .contains('5'));
    }
}
