//! Algorithm 1 — *Safe Runtime Control and Optimization* — as a pure,
//! steppable state machine.
//!
//! The scheduler owns the interval bookkeeping of the paper's runtime loop:
//! sampling a new δmax when the previous optimization interval has expired
//! for all models (`new∆` flag), resetting the per-model `done` flags,
//! advancing the slot counter `n`, and deciding per model per slot whether
//! to invoke the full model `N_i`, its optimized version Ω, or nothing
//! (the sensor has not sampled).
//!
//! The decision rule is Algorithm 1 line 14 with sensor synchronization:
//! a model *acts* only on its sampling instants (absolute time
//! `t ≡ 0 (mod δᵢ)` — sensors sample at fixed rates regardless of interval
//! boundaries) or at its forced deadline slot (interval-relative
//! `n == δmax − δᵢ`); it runs **full** when `δᵢ >= δmax` (no optimization
//! room under the current deadline) or at the deadline slot, and
//! **optimized** otherwise.
//!
//! One deliberate divergence from the paper's pseudocode is documented in
//! DESIGN.md: models with `δᵢ >= δmax` are marked `done` at interval start,
//! because Algorithm 1 as printed never sets their flags (line 18 can only
//! fire when `n == δmax − δᵢ >= 0`), which would deadlock the interval.
//!
//! # Example
//!
//! ```
//! use seo_core::model::ModelId;
//! use seo_core::scheduler::{SafeScheduler, SlotKind};
//!
//! // Two Λ′ models with discretized periods δ₀ = 1 and δ₁ = 2.
//! let mut scheduler = SafeScheduler::new(vec![(ModelId(0), 1), (ModelId(1), 2)]);
//! // A new interval begins: the deadline probe T(x, u) yields δmax = 3.
//! let plan = scheduler.plan_step(|| 3);
//! // δ₀ < δmax and slot 0 is before its forced slot n = δmax − δ₀ = 2,
//! // so model 0 runs its energy-optimized version Ω.
//! assert_eq!(plan.slot_for(ModelId(0)), Some(SlotKind::Optimized));
//! assert_eq!(scheduler.delta_max(), 3);
//! ```

use crate::model::{ModelId, ModelSet};
use seo_platform::units::Seconds;
use std::fmt;

/// What one model does in one base period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotKind {
    /// Full invocation at the safety deadline slot `n == δmax − δᵢ`
    /// (guarantees a fresh output by δmax).
    FullDeadline,
    /// Full invocation because `δᵢ >= δmax`: no viable optimization periods
    /// under the current deadline, maximize control performance.
    FullPeriodic,
    /// The energy-optimized version Ω runs (gate / offload).
    Optimized,
    /// The model's sensor has not sampled this period; nothing runs.
    Idle,
}

impl SlotKind {
    /// Whether the full model executes locally this slot.
    #[must_use]
    pub fn is_full(self) -> bool {
        matches!(self, Self::FullDeadline | Self::FullPeriodic)
    }

    /// Whether anything is scheduled at all.
    #[must_use]
    pub fn is_active(self) -> bool {
        self != Self::Idle
    }
}

impl fmt::Display for SlotKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::FullDeadline => "full (deadline)",
            Self::FullPeriodic => "full (periodic)",
            Self::Optimized => "optimized",
            Self::Idle => "idle",
        };
        f.write_str(s)
    }
}

/// The scheduler's decisions for one base period.
#[derive(Debug, Clone, PartialEq)]
pub struct StepPlan {
    /// Per-model slot decisions, in Λ′ registration order.
    pub slots: Vec<(ModelId, SlotKind)>,
    /// Whether this step began a new optimization interval (a fresh δmax
    /// was sampled).
    pub interval_started: bool,
    /// Interval-relative slot index `n` of this step.
    pub n: u32,
    /// The active discretized deadline δmax.
    pub delta_max: u32,
}

impl StepPlan {
    /// Looks up the slot kind for a model.
    #[must_use]
    pub fn slot_for(&self, id: ModelId) -> Option<SlotKind> {
        self.slots.iter().find(|(m, _)| *m == id).map(|(_, k)| *k)
    }
}

impl Default for StepPlan {
    /// An empty plan — the reusable buffer
    /// [`SafeScheduler::plan_step_into`] fills each base period.
    fn default() -> Self {
        Self {
            slots: Vec::new(),
            interval_started: false,
            n: 0,
            delta_max: 0,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Entry {
    id: ModelId,
    delta_i: u32,
    done: bool,
}

/// Algorithm 1's interval state machine over the Λ′ subset.
///
/// # Example
///
/// ```
/// use seo_core::model::ModelId;
/// use seo_core::scheduler::{SafeScheduler, SlotKind};
///
/// // One model at delta_i = 1; the deadline oracle always returns 4.
/// let mut scheduler = SafeScheduler::new(vec![(ModelId(0), 1)]);
/// let kinds: Vec<SlotKind> = (0..4)
///     .map(|_| scheduler.plan_step(|| 4).slots[0].1)
///     .collect();
/// // Slots 0..3 optimized, slot 3 = delta_max - delta_i runs full.
/// assert_eq!(kinds[0], SlotKind::Optimized);
/// assert_eq!(kinds[3], SlotKind::FullDeadline);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SafeScheduler {
    entries: Vec<Entry>,
    /// Interval-relative slot counter (Algorithm 1's `n`).
    n: u32,
    /// Absolute base-period counter (sensor sampling phase).
    t: u64,
    delta_max: u32,
    new_delta: bool,
}

impl SafeScheduler {
    /// Creates a scheduler over `(model, δᵢ)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty or any `δᵢ` is zero (callers validate
    /// via [`ModelSet::validate`](crate::model::ModelSet::validate) and
    /// eq. (4), which never yields 0).
    #[must_use]
    pub fn new(models: Vec<(ModelId, u32)>) -> Self {
        assert!(!models.is_empty(), "scheduler needs at least one Λ' model");
        assert!(
            models.iter().all(|(_, d)| *d >= 1),
            "discretized periods must be at least 1"
        );
        Self {
            entries: models
                .into_iter()
                .map(|(id, delta_i)| Entry {
                    id,
                    delta_i,
                    done: false,
                })
                .collect(),
            n: 0,
            t: 0,
            delta_max: 0,
            new_delta: true,
        }
    }

    /// Creates a scheduler from the Λ′ subset of a model set, discretizing
    /// each period with eq. (4).
    ///
    /// # Panics
    ///
    /// Panics if the Λ′ subset is empty.
    #[must_use]
    pub fn from_model_set(set: &ModelSet, tau: Seconds) -> Self {
        let models: Vec<(ModelId, u32)> = set
            .normal()
            .map(|(id, m)| (id, crate::discretize::discretize_period(m.period(), tau)))
            .collect();
        Self::new(models)
    }

    /// The active δmax (0 until the first step).
    #[must_use]
    pub fn delta_max(&self) -> u32 {
        self.delta_max
    }

    /// Interval-relative index of the *next* slot to plan.
    #[must_use]
    pub fn next_slot(&self) -> u32 {
        self.n
    }

    /// Whether the next step will begin a new interval.
    #[must_use]
    pub fn interval_expired(&self) -> bool {
        self.new_delta
    }

    /// Discretized period of a registered model.
    #[must_use]
    pub fn delta_i(&self, id: ModelId) -> Option<u32> {
        self.entries.iter().find(|e| e.id == id).map(|e| e.delta_i)
    }

    /// Plans one base period. `sample_deadline` is consulted **only** when a
    /// new interval begins (the lookup-table probe of Algorithm 1 line 8).
    ///
    /// Allocates a fresh plan; the runtime hot loop uses
    /// [`Self::plan_step_into`] with a reused buffer instead.
    pub fn plan_step<F>(&mut self, sample_deadline: F) -> StepPlan
    where
        F: FnOnce() -> u32,
    {
        let mut plan = StepPlan::default();
        self.plan_step_into(&mut plan, sample_deadline);
        plan
    }

    /// Plans one base period into a caller-provided [`StepPlan`], reusing
    /// its slot buffer — the allocation-free form of [`Self::plan_step`]
    /// (identical decisions, only the storage differs).
    pub fn plan_step_into<F>(&mut self, plan: &mut StepPlan, sample_deadline: F)
    where
        F: FnOnce() -> u32,
    {
        let interval_started = self.new_delta;
        if self.new_delta {
            self.delta_max = sample_deadline();
            self.n = 0;
            self.new_delta = false;
            for e in &mut self.entries {
                // Divergence (documented): δᵢ >= δmax entries are done at
                // interval start; Algorithm 1's line 18 can never fire for
                // them.
                e.done = e.delta_i >= self.delta_max;
            }
        }
        let n = self.n;
        let delta_max = self.delta_max;
        let t = self.t;
        plan.slots.clear();
        for e in &mut self.entries {
            let deadline_slot = e.delta_i < delta_max && n == delta_max - e.delta_i;
            let due = t.is_multiple_of(u64::from(e.delta_i));
            let kind = if deadline_slot {
                e.done = true;
                SlotKind::FullDeadline
            } else if due && e.delta_i >= delta_max {
                SlotKind::FullPeriodic
            } else if due {
                SlotKind::Optimized
            } else {
                SlotKind::Idle
            };
            plan.slots.push((e.id, kind));
        }
        self.n += 1;
        self.t += 1;
        if self.entries.iter().all(|e| e.done) {
            self.new_delta = true;
        }
        plan.interval_started = interval_started;
        plan.n = n;
        plan.delta_max = delta_max;
    }
}

impl fmt::Display for SafeScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scheduler: {} models, n={}, delta_max={}, interval_expired={}",
            self.entries.len(),
            self.n,
            self.delta_max,
            self.new_delta
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[usize]) -> Vec<(ModelId, u32)> {
        v.iter()
            .enumerate()
            .map(|(i, &d)| (ModelId(i), d as u32))
            .collect()
    }

    /// Runs `steps` steps against a constant deadline oracle; returns the
    /// per-step slot kinds for each model.
    fn run(models: &[usize], delta_max: u32, steps: usize) -> Vec<Vec<SlotKind>> {
        let mut s = SafeScheduler::new(ids(models));
        let mut out = vec![Vec::new(); models.len()];
        for _ in 0..steps {
            let plan = s.plan_step(|| delta_max);
            for (i, (_, k)) in plan.slots.iter().enumerate() {
                out[i].push(*k);
            }
        }
        out
    }

    #[test]
    fn paper_example_delta1_dmax4() {
        // eq. (6): Omega on slots 0..2, full at slot 3 = delta_max - delta_i.
        let kinds = run(&[1], 4, 4);
        assert_eq!(
            kinds[0],
            vec![
                SlotKind::Optimized,
                SlotKind::Optimized,
                SlotKind::Optimized,
                SlotKind::FullDeadline
            ]
        );
    }

    #[test]
    fn paper_example_delta2_dmax4() {
        // Due at 0 (optimized) and full at slot 2; idle at 1, 3.
        let kinds = run(&[1, 2], 4, 4);
        assert_eq!(
            kinds[1],
            vec![
                SlotKind::Optimized,
                SlotKind::Idle,
                SlotKind::FullDeadline,
                SlotKind::Idle
            ]
        );
    }

    #[test]
    fn no_room_runs_full_at_sampling_instants() {
        // delta_i = 2 >= delta_max = 2: full at every *sampling* instant
        // (absolute t = 0, 2), idle in between even though the interval
        // restarts every step.
        let kinds = run(&[2], 2, 4);
        assert_eq!(
            kinds[0],
            vec![
                SlotKind::FullPeriodic,
                SlotKind::Idle,
                SlotKind::FullPeriodic,
                SlotKind::Idle
            ]
        );
    }

    #[test]
    fn zero_deadline_forces_full_capacity() {
        let kinds = run(&[1, 2], 0, 4);
        assert!(kinds[0].iter().all(|k| *k == SlotKind::FullPeriodic));
        // The slower sensor still only samples every 2nd period.
        assert_eq!(
            kinds[1],
            vec![
                SlotKind::FullPeriodic,
                SlotKind::Idle,
                SlotKind::FullPeriodic,
                SlotKind::Idle
            ]
        );
    }

    #[test]
    fn interval_length_follows_smallest_period() {
        // delta = [1, 2], delta_max = 4: the delta=1 model finishes at slot
        // 3, so a new interval starts at step 4.
        let mut s = SafeScheduler::new(ids(&[1, 2]));
        let mut starts = Vec::new();
        for step in 0..8 {
            let plan = s.plan_step(|| 4);
            if plan.interval_started {
                starts.push(step);
            }
        }
        assert_eq!(starts, vec![0, 4]);
    }

    #[test]
    fn deadline_oracle_only_consulted_at_interval_start() {
        let mut s = SafeScheduler::new(ids(&[1]));
        let mut calls = 0;
        for _ in 0..4 {
            s.plan_step(|| {
                calls += 1;
                4
            });
        }
        assert_eq!(calls, 1, "one interval of length 4 needs one sample");
    }

    #[test]
    fn new_deadline_resamples_after_interval() {
        let mut s = SafeScheduler::new(ids(&[1]));
        // First interval with delta_max = 2: slots 0 (opt), 1 (full).
        assert_eq!(s.plan_step(|| 2).slots[0].1, SlotKind::Optimized);
        assert_eq!(s.plan_step(|| 99).slots[0].1, SlotKind::FullDeadline);
        assert!(s.interval_expired());
        // Next interval samples fresh: delta_max = 3.
        let plan = s.plan_step(|| 3);
        assert!(plan.interval_started);
        assert_eq!(plan.delta_max, 3);
        assert_eq!(plan.n, 0);
    }

    #[test]
    fn delta_one_model_at_deadline_one() {
        // delta_i = 1, delta_max = 1: delta_i >= delta_max, always full.
        let kinds = run(&[1], 1, 3);
        assert!(kinds[0].iter().all(|k| *k == SlotKind::FullPeriodic));
    }

    #[test]
    fn due_after_own_deadline_is_optimized_again() {
        // delta = [1, 3], delta_max = 4: the delta=3 model hits its deadline
        // slot at n = 1, and is due again at n = 3 within the same interval
        // (the delta=1 model ends the interval at n = 3): Algorithm 1
        // line 21 sends it back to Omega.
        let kinds = run(&[1, 3], 4, 4);
        assert_eq!(
            kinds[1],
            vec![
                SlotKind::Optimized,
                SlotKind::FullDeadline,
                SlotKind::Idle,
                SlotKind::Optimized
            ]
        );
    }

    #[test]
    fn from_model_set_uses_eq4() {
        let tau = Seconds::from_millis(20.0);
        let set = ModelSet::paper_setup(tau).expect("valid");
        let s = SafeScheduler::from_model_set(&set, tau);
        // Detectors are models 1 and 2 in the paper setup.
        assert_eq!(s.delta_i(ModelId(1)), Some(1));
        assert_eq!(s.delta_i(ModelId(2)), Some(2));
        assert_eq!(
            s.delta_i(ModelId(0)),
            None,
            "critical model is not scheduled"
        );
    }

    #[test]
    fn plan_lookup_helper() {
        let mut s = SafeScheduler::new(ids(&[1, 2]));
        let plan = s.plan_step(|| 4);
        assert_eq!(plan.slot_for(ModelId(0)), Some(SlotKind::Optimized));
        assert_eq!(plan.slot_for(ModelId(7)), None);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_model_list_panics() {
        let _ = SafeScheduler::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_period_panics() {
        let _ = SafeScheduler::new(vec![(ModelId(0), 0)]);
    }

    #[test]
    fn energy_slot_counts_match_eq6() {
        // Over one interval with delta_max = 4: delta=1 model has 3
        // optimized + 1 full; delta=2 model has 1 optimized + 1 full.
        let kinds = run(&[1, 2], 4, 4);
        let count = |v: &[SlotKind], k: SlotKind| v.iter().filter(|x| **x == k).count();
        assert_eq!(count(&kinds[0], SlotKind::Optimized), 3);
        assert_eq!(count(&kinds[0], SlotKind::FullDeadline), 1);
        assert_eq!(count(&kinds[1], SlotKind::Optimized), 1);
        assert_eq!(count(&kinds[1], SlotKind::FullDeadline), 1);
        assert_eq!(count(&kinds[1], SlotKind::Idle), 2);
    }

    #[test]
    fn display_and_clone() {
        let s = SafeScheduler::new(ids(&[1]));
        assert!(s.to_string().contains("1 models"));
        let back = s.clone();
        assert_eq!(back, s);
    }
}
