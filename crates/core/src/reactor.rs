//! The deterministic episode reactor: overlapped offload I/O with a
//! seed-pure completion order.
//!
//! Every engine used to run episodes strictly one at a time, blocking for
//! the full (simulated) offload latency at each transmission — exactly when
//! the bursty Gilbert–Elliott channels make I/O slowest. The reactor keeps
//! a **window** of episodes in flight per core instead: each episode is an
//! [`EpisodeTask`] state machine that parks at its offload await point, and
//! the reactor resumes whichever parked episode's response arrives first.
//!
//! # The determinism argument
//!
//! Concurrency usually trades determinism for throughput; the reactor
//! refuses the trade by never consulting a wall clock:
//!
//! 1. **Tasks are isolated.** An [`EpisodeTask`] owns its RNG, link copy,
//!    scratch, and in-flight transaction; no state is shared between
//!    episodes, so interleaving their poll segments cannot change what any
//!    of them computes.
//! 2. **The ready-queue is virtually timed.** Parked tasks are ordered by
//!    `(virtual_completion_time, spec_index)` — the episode-clock arrival
//!    time recorded when the transmission was *issued* (a pure function of
//!    the seed), with the stable spec index as the tiebreak. Wall-clock
//!    arrival never participates.
//! 3. **Delivery is reordered.** Completed reports are buffered and handed
//!    to the sink in ascending submission order, so downstream NDJSON
//!    streams are byte-identical to the serial blocking run.
//!
//! Scheduling is therefore a pure function of the seed: `in_flight: 1` and
//! `in_flight: 64` produce the same bytes, which is what lets every engine
//! — serial, threads, worker processes, hosts — adopt the async path
//! without renegotiating the bit-identical-merge invariant. See
//! `docs/async.md` for the lifecycle diagram and measured overlap numbers.
//!
//! # Example
//!
//! ```
//! use seo_core::prelude::*;
//!
//! let plan = SweepPlan::paper(3, 2023);
//! let serial = plan.run_serial()?;
//! let (cell, shard) = plan.cells().remove(0);
//! let runtime = cell.runtime(KernelBackend::Scalar)?;
//! let mut reports = Vec::new();
//! let finished = Reactor::new(4).run(
//!     shard.indices(),
//!     |i| cell.spawn_task(&runtime, plan.point_at(i).expect("in grid").spec),
//!     |_, report| {
//!         reports.push(report);
//!         true
//!     },
//! );
//! assert!(finished);
//! assert_eq!(reports, serial); // overlap never changes a byte
//! # Ok::<(), seo_core::SeoError>(())
//! ```

use crate::metrics::EpisodeReport;
use crate::runtime::{EpisodeTask, TaskPoll};
use seo_platform::units::Seconds;
use std::cmp::{Ordering, Reverse};
use std::collections::{BTreeMap, BinaryHeap, HashMap, VecDeque};
use std::fmt;
use std::time::{Duration, Instant};

/// How episodes treat offload I/O — the plan's `exec.offload` knob.
///
/// Either way the output bytes are identical; async changes only *when*
/// episode segments execute (and therefore the wall-clock once responses
/// take real time). Defaults to [`Self::Blocking`], so existing plans are
/// untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OffloadExec {
    /// Each episode is polled straight through its await points — the
    /// serial reference behavior.
    #[default]
    Blocking,
    /// A [`Reactor`] keeps up to `in_flight` episodes in flight per worker,
    /// parking each at its offload await point.
    Async {
        /// Window size: how many episodes may be parked or running at once
        /// on one worker (validated ≥ 1 by the plan layer).
        in_flight: usize,
    },
}

impl OffloadExec {
    /// The resolved window size: `1` for blocking, `in_flight` otherwise —
    /// the number `sweep --plan --check` prints.
    #[must_use]
    pub fn window(&self) -> usize {
        match self {
            Self::Blocking => 1,
            Self::Async { in_flight } => (*in_flight).max(1),
        }
    }

    /// Whether this is the async variant.
    #[must_use]
    pub fn is_async(&self) -> bool {
        matches!(self, Self::Async { .. })
    }
}

impl fmt::Display for OffloadExec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Blocking => f.write_str("blocking"),
            Self::Async { in_flight } => write!(f, "async (in_flight {in_flight})"),
        }
    }
}

/// Ready-queue key: virtual completion time, spec index as the tiebreak.
/// Total order via `f64::total_cmp` (virtual times are finite, but a heap
/// must not be able to panic on a comparison).
#[derive(Debug, Clone, Copy)]
struct ReadyKey {
    wake: Seconds,
    index: usize,
}

impl ReadyKey {
    fn order(&self, other: &Self) -> Ordering {
        self.wake
            .as_secs()
            .total_cmp(&other.wake.as_secs())
            .then(self.index.cmp(&other.index))
    }
}

impl PartialEq for ReadyKey {
    fn eq(&self, other: &Self) -> bool {
        self.order(other) == Ordering::Equal
    }
}

impl Eq for ReadyKey {}

impl PartialOrd for ReadyKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ReadyKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.order(other)
    }
}

/// Maps a task's virtual park/resume points onto wall-clock effects.
///
/// The sweep engines use [`NoPacer`] (offload latency is simulated, so
/// there is nothing to wait for); the bench harness uses
/// [`WallClockPacer`] to re-introduce real response time and measure the
/// overlap win honestly. Pacing **never** affects scheduling order — the
/// ready-queue is popped before the pacer runs.
pub trait Pacer {
    /// Called when `index` parks for a response `wait` away in virtual
    /// time.
    fn on_park(&mut self, index: usize, wait: Seconds);
    /// Called immediately before `index` is resumed.
    fn before_resume(&mut self, index: usize);
}

/// The no-op pacer: virtual waits cost zero wall-clock.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPacer;

impl Pacer for NoPacer {
    fn on_park(&mut self, _index: usize, _wait: Seconds) {}
    fn before_resume(&mut self, _index: usize) {}
}

/// A pacer that sleeps `scale` wall-seconds per virtual second of offload
/// wait, emulating a real server round trip. With a window of 1 every wait
/// is serialized (the blocking cost model); with a wide window the reactor
/// overlaps waits across episodes — the `throughput.async` BENCH cell
/// measures exactly this ratio.
///
/// The wall deadline is pinned at park time, so time an episode spends
/// waiting behind others counts toward its own response window, just as a
/// real in-flight response keeps traveling while the CPU is busy.
#[derive(Debug, Clone)]
pub struct WallClockPacer {
    scale: f64,
    deadlines: HashMap<usize, Instant>,
}

impl WallClockPacer {
    /// A pacer sleeping `scale` wall-seconds per virtual second (clamped
    /// non-negative).
    #[must_use]
    pub fn new(scale: f64) -> Self {
        Self {
            scale: if scale.is_finite() {
                scale.max(0.0)
            } else {
                0.0
            },
            deadlines: HashMap::new(),
        }
    }
}

impl Pacer for WallClockPacer {
    fn on_park(&mut self, index: usize, wait: Seconds) {
        let secs = wait.as_secs() * self.scale;
        if secs.is_finite() && secs > 0.0 {
            self.deadlines
                .insert(index, Instant::now() + Duration::from_secs_f64(secs));
        }
    }

    fn before_resume(&mut self, index: usize) {
        if let Some(deadline) = self.deadlines.remove(&index) {
            let now = Instant::now();
            if deadline > now {
                std::thread::sleep(deadline - now);
            }
        }
    }
}

/// The hand-rolled, dependency-free poll-loop executor (see the [module
/// docs](self) for the determinism argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reactor {
    window: usize,
}

impl Reactor {
    /// A reactor keeping up to `in_flight` episodes in flight (clamped to
    /// at least 1; a window of 1 *is* the blocking loop).
    #[must_use]
    pub fn new(in_flight: usize) -> Self {
        Self {
            window: in_flight.max(1),
        }
    }

    /// The window size.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// [`Self::run_paced`] with the no-op pacer — what every sweep engine
    /// calls.
    pub fn run<'rt>(
        &self,
        indices: impl Iterator<Item = usize>,
        spawn: impl FnMut(usize) -> EpisodeTask<'rt>,
        sink: impl FnMut(usize, EpisodeReport) -> bool,
    ) -> bool {
        self.run_paced(indices, spawn, &mut NoPacer, sink)
    }

    /// Drives every spec index through the executor: spawn tasks up to the
    /// window, park each at its offload await points, resume in
    /// `(virtual_completion_time, spec_index)` order, and deliver
    /// `(index, report)` pairs to `sink` in ascending submission order.
    ///
    /// `indices` must be ascending (engines hand in contiguous ranges);
    /// `spawn` builds the task for one index; the sink's return value is a
    /// stop signal exactly as in `SweepPlan::run_range` — returning `false`
    /// abandons the remaining episodes and makes this method return
    /// `false` too.
    pub fn run_paced<'rt, P: Pacer>(
        &self,
        mut indices: impl Iterator<Item = usize>,
        mut spawn: impl FnMut(usize) -> EpisodeTask<'rt>,
        pacer: &mut P,
        mut sink: impl FnMut(usize, EpisodeReport) -> bool,
    ) -> bool {
        // Parked tasks, keyed by spec index; every entry has exactly one
        // heap key.
        let mut parked: HashMap<usize, EpisodeTask<'rt>> = HashMap::with_capacity(self.window);
        let mut ready: BinaryHeap<Reverse<ReadyKey>> = BinaryHeap::with_capacity(self.window);
        // Completed-but-undelivered reports (the reorder buffer) and the
        // submission order delivery must follow. A buffered report keeps
        // holding its window slot until delivered, which bounds the buffer
        // at the window size.
        let mut completed: BTreeMap<usize, EpisodeReport> = BTreeMap::new();
        let mut order: VecDeque<usize> = VecDeque::new();
        loop {
            // 1. Deliver every report that is next in submission order.
            while let Some(&front) = order.front() {
                let Some(report) = completed.remove(&front) else {
                    break;
                };
                order.pop_front();
                if !sink(front, report) {
                    return false;
                }
            }
            // 2. Refill the window, polling each fresh task to its first
            //    park point.
            while parked.len() + completed.len() < self.window {
                let Some(index) = indices.next() else { break };
                order.push_back(index);
                let mut task = spawn(index);
                match task.poll() {
                    TaskPoll::Parked { wake, wait } => {
                        pacer.on_park(index, wait);
                        ready.push(Reverse(ReadyKey { wake, index }));
                        parked.insert(index, task);
                    }
                    TaskPoll::Complete(report) => {
                        completed.insert(index, report);
                    }
                }
            }
            // 3. Resume the episode whose response arrives first in
            //    virtual time.
            let Some(Reverse(key)) = ready.pop() else {
                if parked.is_empty() && completed.is_empty() && order.is_empty() {
                    return true;
                }
                // Only buffered completions left: loop back to deliver and
                // refill.
                continue;
            };
            pacer.before_resume(key.index);
            let task = parked
                .get_mut(&key.index)
                .expect("every heap key has a parked task");
            match task.poll() {
                TaskPoll::Parked { wake, wait } => {
                    pacer.on_park(key.index, wait);
                    ready.push(Reverse(ReadyKey {
                        wake,
                        index: key.index,
                    }));
                }
                TaskPoll::Complete(report) => {
                    parked.remove(&key.index);
                    completed.insert(key.index, report);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SweepPlan;
    use seo_nn::kernel::KernelBackend;

    fn run_with_window(plan: &SweepPlan, window: usize) -> Vec<EpisodeReport> {
        let mut reports = Vec::with_capacity(plan.n_specs());
        for (cell, shard) in plan.cells() {
            let runtime = cell.runtime(KernelBackend::Scalar).expect("valid cell");
            let finished = Reactor::new(window).run(
                shard.indices(),
                |i| cell.spawn_task(&runtime, plan.point_at(i).expect("in grid").spec),
                |_, report| {
                    reports.push(report);
                    true
                },
            );
            assert!(finished);
        }
        reports
    }

    #[test]
    fn any_window_reproduces_the_serial_stream() {
        let plan = SweepPlan::paper(4, 2023);
        let serial = plan.run_serial().expect("serial runs");
        for window in [1, 2, 7, 64] {
            assert_eq!(
                run_with_window(&plan, window),
                serial,
                "window {window} diverged from serial"
            );
        }
    }

    #[test]
    fn early_stop_propagates() {
        let plan = SweepPlan::paper(3, 11);
        let (cell, shard) = plan.cells().remove(0);
        let runtime = cell.runtime(KernelBackend::Scalar).expect("valid cell");
        let mut delivered = 0usize;
        let finished = Reactor::new(2).run(
            shard.indices(),
            |i| cell.spawn_task(&runtime, plan.point_at(i).expect("in grid").spec),
            |_, _| {
                delivered += 1;
                false
            },
        );
        assert!(!finished, "a refusing sink must stop the reactor");
        assert_eq!(delivered, 1);
    }

    #[test]
    fn ready_key_orders_by_time_then_index() {
        let a = ReadyKey {
            wake: Seconds::new(1.0),
            index: 5,
        };
        let b = ReadyKey {
            wake: Seconds::new(2.0),
            index: 0,
        };
        let c = ReadyKey {
            wake: Seconds::new(1.0),
            index: 9,
        };
        assert!(a < b, "earlier wake wins");
        assert!(a < c, "index breaks ties");
        assert_eq!(a, a);
    }

    #[test]
    fn offload_exec_resolves_windows() {
        assert_eq!(OffloadExec::default(), OffloadExec::Blocking);
        assert_eq!(OffloadExec::Blocking.window(), 1);
        assert!(!OffloadExec::Blocking.is_async());
        let async_exec = OffloadExec::Async { in_flight: 16 };
        assert_eq!(async_exec.window(), 16);
        assert!(async_exec.is_async());
        assert_eq!(async_exec.to_string(), "async (in_flight 16)");
        assert_eq!(OffloadExec::Blocking.to_string(), "blocking");
    }

    #[test]
    fn wall_clock_pacer_serializes_versus_overlaps() {
        // Two parked "episodes" with 20 ms scaled waits: resuming them
        // back-to-back after both parked at t=0 must take well under the
        // 40 ms a serialized pacer would need.
        let mut pacer = WallClockPacer::new(1.0);
        let start = Instant::now();
        pacer.on_park(0, Seconds::from_millis(20.0));
        pacer.on_park(1, Seconds::from_millis(20.0));
        pacer.before_resume(0);
        pacer.before_resume(1);
        let overlapped = start.elapsed();
        assert!(
            overlapped < Duration::from_millis(35),
            "concurrent parks must overlap, took {overlapped:?}"
        );
    }
}
