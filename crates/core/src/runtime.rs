//! The closed runtime control loop — Algorithm 1 end to end.
//!
//! Each base period τ the loop:
//!
//! 1. runs the Λ″ state estimation (ground-truth relative observation, as
//!    the paper retrieves from CARLA "for simplicity");
//! 2. computes the raw control `u = π(Θ)` from the driving controller;
//! 3. filters it through Ψ when the safety component is active
//!    (`u' = Ψ(x, u)`);
//! 4. consults the [`SafeScheduler`]; at interval starts a fresh Δmax is
//!    probed from the lookup table `T(x, u)` and discretized (eq. 5);
//! 5. executes the per-model slot plans, accounting optimized and baseline
//!    energy and driving the offload machinery (issue, complete, fall
//!    back);
//! 6. advances the vehicle with `u'` and records the safety monitor.
//!
//! # Example
//!
//! ```
//! use seo_core::prelude::*;
//!
//! let config = SeoConfig::paper_defaults();
//! let models = ModelSet::paper_setup(config.tau)?;
//! let runtime = RuntimeLoop::new(config, models, OptimizerKind::Offloading)?;
//! // One obstacle-free episode; the report is a pure function of
//! // (world, seed), which is what every sweep engine builds on.
//! let spec = ScenarioSpec::new(0, 7);
//! let report = runtime.run_episode(&spec.world(), spec.seed);
//! assert!(report.steps > 0);
//! assert_eq!(report, runtime.run_episode(&spec.world(), spec.seed));
//! # Ok::<(), seo_core::SeoError>(())
//! ```

use crate::config::{ControlMode, OffloadFallback, SeoConfig};
use crate::controller::Controller;
use crate::discretize::discretize_deadline;
use crate::error::SeoError;
use crate::metrics::{DeltaMaxHistogram, EpisodeReport, ModelEnergyReport};
use crate::model::{ModelId, ModelSet};
use crate::optimizer::{full_slot_cost, optimized_slot_cost, OptimizerKind};
use crate::scheduler::{SafeScheduler, SlotKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use seo_nn::kernel::{BlockedKernel, Kernel, KernelBackend, ScalarKernel};
use seo_nn::policy::PolicyFeatures;
use seo_nn::InferenceScratch;
use seo_platform::energy::{EnergyCategory, EnergyLedger};
use seo_platform::units::Seconds;
use seo_safety::filter::SafetyFilter;
use seo_safety::interval::SafeIntervalEvaluator;
use seo_safety::lookup::DeadlineTable;
use seo_safety::monitor::SafetyMonitor;
use seo_sim::dynamics::DynamicWorld;
use seo_sim::episode::{Episode, EpisodeConfig, EpisodeStatus};
use seo_sim::sensing::RelativeObservation;
use seo_sim::vehicle::Control;
use seo_sim::world::{Road, World};
use seo_wireless::link::WirelessLink;
use seo_wireless::offload::{OffloadTransaction, ResponseEstimator};
use seo_wireless::server::EdgeServer;
use std::borrow::Cow;

/// Per-model offload bookkeeping.
#[derive(Debug, Clone)]
struct OffloadState {
    inflight: Option<OffloadTransaction>,
    estimator: ResponseEstimator,
    issued: usize,
    successes: usize,
    fallbacks: usize,
}

/// Per-model energy/slot accounting.
#[derive(Debug, Clone)]
struct ModelState {
    id: ModelId,
    delta_i: u32,
    optimized: EnergyLedger,
    baseline: EnergyLedger,
    full_invocations: usize,
    optimized_slots: usize,
    offload: OffloadState,
}

/// The assembled SEO runtime: simulator-facing closed loop with safety-aware
/// optimization.
///
/// Construct once per configuration (the deadline table build is the
/// expensive part) and reuse across episodes via [`Self::run_episode`].
#[derive(Debug, Clone)]
pub struct RuntimeLoop {
    config: SeoConfig,
    models: ModelSet,
    optimizer: OptimizerKind,
    controller: Controller,
    filter: SafetyFilter,
    evaluator: SafeIntervalEvaluator,
    table: DeadlineTable,
    link: WirelessLink,
    server: EdgeServer,
    kernel: KernelBackend,
}

/// Where episode worlds come from: a fixed snapshot or a moving-obstacle
/// timeline.
///
/// Borrowed, not owned — the runtime never clones a world per run. Batch
/// sweeps generate each world once and fan episodes out against `&World`.
#[derive(Debug, Clone, Copy)]
pub enum WorldSource<'a> {
    /// A fixed world snapshot (the paper's static-obstacle scenarios).
    Static(&'a World),
    /// A moving-obstacle timeline; each base period the episode's snapshot
    /// advances in place.
    Dynamic(&'a DynamicWorld),
}

/// Reusable per-worker workspace threaded through the episode loop so that
/// each control step performs **zero heap allocations**:
///
/// * `nn` — the [`InferenceScratch`] neural controller inference runs in;
/// * `plan` — the [`StepPlan`](crate::scheduler::StepPlan) the scheduler
///   refills each base period.
///
/// Construct one per worker thread (or once per call site) and reuse it
/// across episodes; buffers stay at their high-water mark.
#[derive(Debug, Clone, Default)]
pub struct EpisodeScratch {
    nn: InferenceScratch,
    plan: crate::scheduler::StepPlan,
}

impl EpisodeScratch {
    /// Creates an empty scratch; buffers grow to their high-water mark on
    /// first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl RuntimeLoop {
    /// Builds the runtime: validates the configuration and model partition,
    /// and constructs the deadline lookup table offline.
    ///
    /// # Errors
    ///
    /// Returns [`SeoError`] when the configuration or model set is invalid
    /// or the wireless models cannot be built.
    pub fn new(
        config: SeoConfig,
        models: ModelSet,
        optimizer: OptimizerKind,
    ) -> Result<Self, SeoError> {
        config.validate()?;
        models.validate()?;
        let evaluator = SafeIntervalEvaluator::default().with_horizon(config.delta_cap);
        let table = DeadlineTable::build_default(&evaluator);
        Ok(Self {
            config,
            models,
            optimizer,
            controller: Controller::default(),
            filter: SafetyFilter::default(),
            evaluator,
            table,
            link: WirelessLink::paper_default()?,
            server: EdgeServer::paper_default()?,
            kernel: KernelBackend::default(),
        })
    }

    /// Selects the inference kernel backend (builder style). Backends are
    /// **bit-identical by contract** (`seo_nn::kernel`, property-tested), so
    /// this changes episode wall-clock only — never a report. The episode
    /// loop monomorphizes on the choice once per episode; the hot loop
    /// itself carries no dispatch.
    #[must_use]
    pub fn with_kernel(mut self, kernel: KernelBackend) -> Self {
        self.kernel = kernel;
        self
    }

    /// Replaces the driving controller (builder style).
    #[must_use]
    pub fn with_controller(mut self, controller: Controller) -> Self {
        self.controller = controller;
        self
    }

    /// Replaces the wireless link (builder style).
    #[must_use]
    pub fn with_link(mut self, link: WirelessLink) -> Self {
        self.link = link;
        self
    }

    /// Replaces the edge server model (builder style).
    #[must_use]
    pub fn with_server(mut self, server: EdgeServer) -> Self {
        self.server = server;
        self
    }

    /// The framework configuration.
    #[must_use]
    pub fn config(&self) -> &SeoConfig {
        &self.config
    }

    /// The model partition.
    #[must_use]
    pub fn models(&self) -> &ModelSet {
        &self.models
    }

    /// The active Ω instantiation.
    #[must_use]
    pub fn optimizer(&self) -> OptimizerKind {
        self.optimizer
    }

    /// The deadline lookup table.
    #[must_use]
    pub fn deadline_table(&self) -> &DeadlineTable {
        &self.table
    }

    /// The selected inference kernel backend.
    #[must_use]
    pub fn kernel(&self) -> KernelBackend {
        self.kernel
    }

    /// Runs one closed-loop episode in `world` (borrowed — no clone),
    /// seeding the stochastic wireless channel with `seed`.
    ///
    /// Allocates a fresh [`EpisodeScratch`] per call; sweep engines reuse
    /// one via [`Self::run_with`].
    pub fn run_episode(&self, world: &World, seed: u64) -> EpisodeReport {
        self.run_with(WorldSource::Static(world), seed, &mut EpisodeScratch::new())
    }

    /// Runs one closed-loop episode in a **dynamic** world (moving
    /// obstacles): each base period the world snapshot advances and the
    /// deadline is sampled from the full dynamic φ(x, x′, u) instead of the
    /// static lookup table (the table's axes carry no obstacle velocity).
    pub fn run_dynamic_episode(&self, world: &DynamicWorld, seed: u64) -> EpisodeReport {
        self.run_with(
            WorldSource::Dynamic(world),
            seed,
            &mut EpisodeScratch::new(),
        )
    }

    /// Runs one closed-loop episode from a borrowed [`WorldSource`] with a
    /// caller-owned [`EpisodeScratch`] — the hot entry point of the batch
    /// sweep engine. Once the scratch has reached its high-water mark the
    /// per-control-step loop performs zero heap allocations.
    ///
    /// Implemented as an [`EpisodeTask`] polled straight to completion, so
    /// the blocking engines and the async reactor
    /// ([`crate::reactor::Reactor`]) execute the *same* state machine —
    /// which is why overlapping episodes cannot change a single byte of
    /// output.
    ///
    /// Reports are **bit-identical** across serial and parallel callers —
    /// and across kernel backends ([`Self::with_kernel`]): every stochastic
    /// draw comes from a [`StdRng`] derived from `seed`, the scratch never
    /// influences results, and every backend upholds the `seo_nn::kernel`
    /// ordering contract.
    pub fn run_with(
        &self,
        source: WorldSource<'_>,
        seed: u64,
        scratch: &mut EpisodeScratch,
    ) -> EpisodeReport {
        let task_source = match source {
            WorldSource::Static(w) => TaskSource::Static(Cow::Borrowed(w)),
            WorldSource::Dynamic(d) => TaskSource::Dynamic(Cow::Borrowed(d)),
        };
        let mut task = EpisodeTask::new(self, task_source, seed, std::mem::take(scratch));
        let report = loop {
            match task.poll() {
                // Blocking semantics: a parked task resumes immediately —
                // completion is decided by the episode's virtual clock, so
                // polling straight through *is* the serial reference run.
                TaskPoll::Parked { .. } => {}
                TaskPoll::Complete(report) => break report,
            }
        };
        *scratch = task.into_scratch();
        report
    }

    /// Checks whether the newest in-flight offload has completed by `now`;
    /// consumes it either way and feeds the response estimator.
    fn resolve_offload(offload: &mut OffloadState, now: Seconds) -> bool {
        match offload.inflight {
            Some(tx) if tx.is_complete(now) => {
                offload.estimator.observe(tx.response_duration());
                offload.inflight = None;
                true
            }
            _ => false,
        }
    }

    /// Handles an Ω slot under task offloading: estimates feasibility
    /// against the interval's fallback deadline, issues the transmission,
    /// or — when no fallback period exists (`δᵢ <= δ̂`-style check) —
    /// evaluates locally instead (Section V-A).
    ///
    /// Returns the virtual arrival time of the issued transmission — the
    /// await point an [`EpisodeTask`] parks at — or `None` when the slot
    /// was served locally.
    #[allow(clippy::too_many_arguments)]
    fn offload_slot(
        &self,
        model_state: &mut ModelState,
        model: &crate::model::PipelineModel,
        link: &mut WirelessLink,
        now: Seconds,
        interval_start_step: u64,
        delta_max: u32,
        tau: Seconds,
        rng: &mut StdRng,
    ) -> Option<Seconds> {
        // The fallback slot for this model sits at interval-relative
        // delta_max - delta_i; offloading is feasible only if the estimated
        // response arrives before it.
        let fallback_step =
            interval_start_step + u64::from(delta_max.saturating_sub(model_state.delta_i));
        let fallback_time = Seconds::new(fallback_step as f64 * tau.as_secs());
        let expected_completion = now + model_state.offload.estimator.estimate();
        if expected_completion > fallback_time {
            // No viable fallback period: evaluate locally (paper Section
            // V-A, the "offloading is not feasible" branch).
            full_slot_cost(model, &self.config).apply_to(&mut model_state.optimized);
            model_state.full_invocations += 1;
            return None;
        }
        // Resolve any already-completed transaction first (its result
        // served a previous period; account its timing for the estimator).
        let _ = Self::resolve_offload(&mut model_state.offload, now);
        let tx = OffloadTransaction::issue(link, &self.server, now, rng);
        model_state
            .optimized
            .record(EnergyCategory::Transmission, tx.radio_energy());
        model_state.offload.inflight = Some(tx);
        model_state.offload.issued += 1;
        Some(tx.completes_at())
    }
}

// ---------------------------------------------------------------------------
// The resumable episode state machine
// ---------------------------------------------------------------------------

/// Where an [`EpisodeTask`]'s world comes from.
///
/// Unlike [`WorldSource`] this can **own** its world (`Cow::Owned`), which
/// is what lets a reactor keep many episodes in flight at once without
/// tying each task's lifetime to a caller-side world buffer. The blocking
/// path keeps borrowing (`Cow::Borrowed`) and stays zero-copy.
#[derive(Debug, Clone)]
pub enum TaskSource<'a> {
    /// A fixed world snapshot (the paper's static-obstacle scenarios).
    Static(Cow<'a, World>),
    /// A moving-obstacle timeline; each base period the episode's snapshot
    /// advances in place.
    Dynamic(Cow<'a, DynamicWorld>),
}

/// Outcome of one [`EpisodeTask::poll`]: the task either parked at an
/// offload await point or ran to termination.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskPoll {
    /// The episode issued an offload transmission and parked at its await
    /// point.
    Parked {
        /// Virtual (episode-clock) time the server response arrives — the
        /// key a deterministic reactor orders its ready-queue by.
        wake: Seconds,
        /// Virtual duration between the park point and `wake` — the I/O
        /// window a paced executor may overlap with other episodes.
        wait: Seconds,
    },
    /// The episode terminated; this task must not be polled again.
    Complete(EpisodeReport),
}

/// The task-side view of the episode's world (the owning counterpart of
/// the borrowed `WorldSource` match in the old monolithic loop).
#[derive(Debug, Clone)]
enum TaskWorld<'a> {
    /// The world lives inside the episode (borrowed or owned).
    Static,
    /// The timeline the episode's snapshot is advanced from each period.
    Dynamic(Cow<'a, DynamicWorld>),
}

/// Where to resume on the next poll. `Copy` so polling can read it without
/// borrowing the task.
#[derive(Debug, Clone, Copy)]
enum Resume {
    /// At the top of the control step (Algorithm 1 line 7).
    StepStart,
    /// Mid slot execution: models `0..next_model` already ran this step.
    Slots {
        /// First model whose slot has not executed yet.
        next_model: usize,
        /// The filtered control computed at the top of this step.
        control: Control,
    },
    /// The report was produced; polling again is a caller bug.
    Finished,
}

/// One closed-loop episode as a **resumable state machine**: the episode
/// loop of [`RuntimeLoop::run_with`], split at the offload transaction so
/// an executor can park the episode while its (simulated or real) server
/// response is in flight and resume it later.
///
/// The task owns everything an episode needs — its [`EpisodeScratch`]
/// (inference buffers + the pending `StepPlan`), the seeded [`StdRng`], the
/// per-episode link copy, and the in-flight [`OffloadTransaction`] inside
/// its model states — so parking is free: no state is recomputed on
/// resume, and the op-for-op execution order is exactly that of the
/// blocking loop. That is the determinism argument in one sentence:
/// *parking changes when code runs, never what it computes* (see
/// `docs/async.md`).
///
/// # Example
///
/// ```
/// use seo_core::prelude::*;
/// use std::borrow::Cow;
///
/// let config = SeoConfig::paper_defaults();
/// let models = ModelSet::paper_setup(config.tau)?;
/// let runtime = RuntimeLoop::new(config, models, OptimizerKind::Offloading)?;
/// let spec = ScenarioSpec::new(0, 7);
/// // Polling a task to completion reproduces `run_episode` bit-exactly.
/// let mut task = EpisodeTask::new(
///     &runtime,
///     TaskSource::Static(Cow::Owned(spec.world())),
///     spec.seed,
///     EpisodeScratch::new(),
/// );
/// let report = loop {
///     match task.poll() {
///         TaskPoll::Parked { .. } => {} // blocking: resume immediately
///         TaskPoll::Complete(report) => break report,
///     }
/// };
/// assert_eq!(report, runtime.run_episode(&spec.world(), spec.seed));
/// # Ok::<(), seo_core::SeoError>(())
/// ```
#[derive(Debug, Clone)]
pub struct EpisodeTask<'a> {
    runtime: &'a RuntimeLoop,
    world: TaskWorld<'a>,
    episode: Episode<'a>,
    road: Road,
    rng: StdRng,
    // The link is copied per task: a bursty channel's Markov state advances
    // per transmission, and starting every episode from the same state is
    // what keeps reports a pure function of (world, seed).
    link: WirelessLink,
    scheduler: SafeScheduler,
    monitor: SafetyMonitor,
    histogram: DeltaMaxHistogram,
    states: Vec<ModelState>,
    scratch: EpisodeScratch,
    step: u64,
    interval_start_step: u64,
    resume: Resume,
}

impl<'a> EpisodeTask<'a> {
    /// Builds the task in its initial state (nothing runs until the first
    /// [`Self::poll`]). The scratch is owned because a parked task's
    /// `StepPlan` must survive until resume; recover it afterwards with
    /// [`Self::into_scratch`].
    #[must_use]
    pub fn new(
        runtime: &'a RuntimeLoop,
        source: TaskSource<'a>,
        seed: u64,
        scratch: EpisodeScratch,
    ) -> Self {
        let link = runtime.link;
        let tau = runtime.config.tau;
        let episode_config = EpisodeConfig::default().with_dt(tau);
        let (episode, world) = match source {
            TaskSource::Static(Cow::Borrowed(w)) => {
                (Episode::borrowed(w, episode_config), TaskWorld::Static)
            }
            TaskSource::Static(Cow::Owned(w)) => {
                (Episode::new(w, episode_config), TaskWorld::Static)
            }
            TaskSource::Dynamic(d) => (
                Episode::new(d.snapshot(Seconds::ZERO), episode_config),
                TaskWorld::Dynamic(d),
            ),
        };
        let road = episode.world().road();
        let states = runtime
            .models
            .normal()
            .map(|(id, m)| ModelState {
                id,
                delta_i: crate::discretize::discretize_period(m.period(), tau),
                optimized: EnergyLedger::new(),
                baseline: EnergyLedger::new(),
                full_invocations: 0,
                optimized_slots: 0,
                offload: OffloadState {
                    inflight: None,
                    estimator: ResponseEstimator::from_models(&link, &runtime.server),
                    issued: 0,
                    successes: 0,
                    fallbacks: 0,
                },
            })
            .collect();
        Self {
            runtime,
            world,
            episode,
            road,
            rng: StdRng::seed_from_u64(seed),
            link,
            scheduler: SafeScheduler::from_model_set(&runtime.models, tau),
            monitor: SafetyMonitor::new(*runtime.filter.barrier()),
            histogram: DeltaMaxHistogram::new(),
            states,
            scratch,
            step: 0,
            interval_start_step: 0,
            resume: Resume::StepStart,
        }
    }

    /// Runs the episode until it either parks at an offload await point or
    /// terminates. Progress never *requires* an external event — the
    /// response clock is the episode's own virtual time — so polling a
    /// parked task again simply resumes it; [`TaskPoll::Parked`] is a
    /// scheduling hint, not a readiness precondition.
    ///
    /// # Panics
    ///
    /// Panics when called again after [`TaskPoll::Complete`].
    pub fn poll(&mut self) -> TaskPoll {
        // The runtime-to-compile-time hop happens per resume segment; the
        // per-control-step code stays branch-free on the backend.
        match self.runtime.kernel {
            KernelBackend::Scalar => self.poll_with::<ScalarKernel>(),
            KernelBackend::Blocked => self.poll_with::<BlockedKernel>(),
        }
    }

    /// Recovers the scratch for reuse by the next episode.
    #[must_use]
    pub fn into_scratch(self) -> EpisodeScratch {
        self.scratch
    }

    /// The state-machine body, monomorphized over the kernel backend `K`.
    fn poll_with<K: Kernel>(&mut self) -> TaskPoll {
        loop {
            match self.resume {
                Resume::Finished => panic!("EpisodeTask polled after completion"),
                Resume::StepStart => {
                    if self.episode.status() != EpisodeStatus::Running {
                        return TaskPoll::Complete(self.finish());
                    }
                    let runtime = self.runtime;
                    let tau = runtime.config.tau;
                    let cap = runtime.config.delta_max_cap();
                    let now = Seconds::new(self.step as f64 * tau.as_secs());
                    // Dynamic worlds advance their obstacles each base
                    // period, in place (the snapshot buffer is reused).
                    if let TaskWorld::Dynamic(dynamic) = &self.world {
                        if self
                            .episode
                            .update_world(|w| dynamic.snapshot_into(now, w))
                            .is_terminal()
                        {
                            return TaskPoll::Complete(self.finish());
                        }
                    }
                    let state = self.episode.state();
                    // 1. Lambda'' state estimation (nearest obstacle overall
                    // feeds the safety machinery; nearest obstacle *ahead*
                    // feeds the driving controller).
                    let observation = RelativeObservation::observe(self.episode.world(), &state);
                    let ahead = RelativeObservation::observe_ahead(self.episode.world(), &state);
                    // 2. Main control.
                    let features = PolicyFeatures::from_observation(
                        &state,
                        &ahead,
                        self.road.length,
                        self.road.width,
                    );
                    let raw = runtime
                        .controller
                        .act_scratch_with::<K>(&features, &mut self.scratch.nn);
                    // 3. Safe control.
                    let (control, decision) = match runtime.config.control_mode {
                        ControlMode::Filtered => {
                            runtime.filter.filter(self.episode.world(), &state, raw)
                        }
                        ControlMode::Unfiltered => {
                            (raw, seo_safety::filter::FilterDecision::Passed)
                        }
                    };
                    self.monitor.record(&observation, decision.is_correction());
                    // 4. Deadline sampling + slot planning (Algorithm 1
                    // lines 7-21), planned into the reused scratch buffer.
                    let world = &self.world;
                    let histogram = &mut self.histogram;
                    self.scheduler.plan_step_into(&mut self.scratch.plan, || {
                        let delta_raw = match world {
                            TaskWorld::Static => runtime.table.query(&observation),
                            TaskWorld::Dynamic(dynamic) => runtime
                                .evaluator
                                .safe_interval_dynamic(dynamic, now, &state, control),
                        };
                        let delta = discretize_deadline(delta_raw, tau).min(cap);
                        histogram.record(delta);
                        delta
                    });
                    if self.scratch.plan.interval_started {
                        self.interval_start_step = self.step;
                    }
                    self.resume = Resume::Slots {
                        next_model: 0,
                        control,
                    };
                }
                Resume::Slots {
                    next_model,
                    control,
                } => {
                    let runtime = self.runtime;
                    let tau = runtime.config.tau;
                    let now = Seconds::new(self.step as f64 * tau.as_secs());
                    // 5. Execute slots + energy accounting, resuming after
                    // the last model whose slot already ran this step.
                    let mut m = next_model;
                    while m < self.states.len() {
                        let plan = &self.scratch.plan;
                        let model_state = &mut self.states[m];
                        let kind = plan
                            .slot_for(model_state.id)
                            .expect("scheduler covers every normal model");
                        let model = runtime
                            .models
                            .get(model_state.id)
                            .expect("state ids come from the set");
                        let sampling_instant =
                            self.step.is_multiple_of(u64::from(model_state.delta_i));
                        // Baseline: full inference at every sampling instant.
                        if sampling_instant {
                            full_slot_cost(model, &runtime.config)
                                .apply_to(&mut model_state.baseline);
                        }
                        m += 1;
                        if runtime.optimizer == OptimizerKind::LocalBaseline {
                            // The baseline "optimizer" is exactly the
                            // baseline schedule: full inference at sampling
                            // instants, no extra deadline-aligned
                            // invocations.
                            if sampling_instant {
                                full_slot_cost(model, &runtime.config)
                                    .apply_to(&mut model_state.optimized);
                                model_state.full_invocations += 1;
                            }
                            continue;
                        }
                        let mut parked = None;
                        match kind {
                            SlotKind::Idle => {}
                            SlotKind::FullPeriodic => {
                                full_slot_cost(model, &runtime.config)
                                    .apply_to(&mut model_state.optimized);
                                model_state.full_invocations += 1;
                            }
                            SlotKind::FullDeadline => {
                                let response_arrived = runtime.optimizer
                                    == OptimizerKind::Offloading
                                    && RuntimeLoop::resolve_offload(&mut model_state.offload, now);
                                if response_arrived {
                                    model_state.offload.successes += 1;
                                }
                                // Under the strict eq. (7) reading the local
                                // model runs at the fallback slot regardless
                                // of whether the response made it.
                                let served_remotely = response_arrived
                                    && runtime.config.offload_fallback
                                        == OffloadFallback::LocalOnTimeout;
                                if !served_remotely {
                                    if runtime.optimizer == OptimizerKind::Offloading
                                        && model_state.offload.inflight.take().is_some()
                                    {
                                        model_state.offload.fallbacks += 1;
                                    }
                                    full_slot_cost(model, &runtime.config)
                                        .apply_to(&mut model_state.optimized);
                                    model_state.full_invocations += 1;
                                }
                            }
                            SlotKind::Optimized => {
                                model_state.optimized_slots += 1;
                                optimized_slot_cost(runtime.optimizer, model, &runtime.config)
                                    .apply_to(&mut model_state.optimized);
                                if runtime.optimizer == OptimizerKind::Offloading {
                                    parked = runtime.offload_slot(
                                        model_state,
                                        model,
                                        &mut self.link,
                                        now,
                                        self.interval_start_step,
                                        plan.delta_max,
                                        tau,
                                        &mut self.rng,
                                    );
                                }
                            }
                        }
                        // The await point: an issued transmission parks the
                        // episode until (in virtual time) its response
                        // arrives. Parking stores only *where* to resume —
                        // every byte of state already lives in the task.
                        if let Some(wake) = parked {
                            self.resume = Resume::Slots {
                                next_model: m,
                                control,
                            };
                            return TaskPoll::Parked {
                                wake,
                                wait: wake - now,
                            };
                        }
                    }
                    // 6. Actuate and advance.
                    self.episode.step(control);
                    self.step += 1;
                    self.resume = Resume::StepStart;
                }
            }
        }
    }

    /// Assembles the episode report and retires the task.
    fn finish(&mut self) -> EpisodeReport {
        self.resume = Resume::Finished;
        let states = std::mem::take(&mut self.states);
        let histogram = std::mem::take(&mut self.histogram);
        EpisodeReport {
            status: self.episode.status(),
            steps: self.episode.steps(),
            models: states
                .into_iter()
                .map(|s| {
                    let name = self
                        .runtime
                        .models
                        .get(s.id)
                        .map(|m| m.name().to_owned())
                        .unwrap_or_default();
                    ModelEnergyReport {
                        name,
                        delta_i: s.delta_i,
                        optimized: s.optimized,
                        baseline: s.baseline,
                        full_invocations: s.full_invocations,
                        optimized_slots: s.optimized_slots,
                        offloads_issued: s.offload.issued,
                        offload_successes: s.offload.successes,
                        offload_fallbacks: s.offload.fallbacks,
                    }
                })
                .collect(),
            histogram,
            unsafe_steps: self.monitor.unsafe_steps(),
            corrections: self.monitor.corrections(),
            min_barrier: self.monitor.min_barrier(),
            min_distance: self.monitor.min_distance(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seo_sim::scenario::ScenarioConfig;

    fn runtime(optimizer: OptimizerKind) -> RuntimeLoop {
        let config = SeoConfig::paper_defaults();
        let models = ModelSet::paper_setup(config.tau).expect("valid");
        RuntimeLoop::new(config, models, optimizer).expect("valid runtime")
    }

    #[test]
    fn empty_road_completes_with_large_gains_under_offloading() {
        let rt = runtime(OptimizerKind::Offloading);
        let report = rt.run_episode(&ScenarioConfig::new(0).with_seed(1).generate(), 1);
        assert_eq!(report.status, EpisodeStatus::Completed);
        let gain = report.combined_gain().expect("nonzero baseline");
        assert!(
            gain > 0.6,
            "offloading on an empty road should gain a lot, got {gain}"
        );
        // No obstacles: every sampled deadline is the cap.
        assert!((report.histogram.mean() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn gating_gains_are_positive_but_below_offloading() {
        let world = ScenarioConfig::new(0).with_seed(1).generate();
        let offload = runtime(OptimizerKind::Offloading).run_episode(&world, 2);
        let gating = runtime(OptimizerKind::ModelGating).run_episode(&world, 2);
        let go = offload.combined_gain().expect("ok");
        let gg = gating.combined_gain().expect("ok");
        assert!(gg > 0.0, "gating should gain: {gg}");
        assert!(go > gg, "offloading ({go}) should beat 50% gating ({gg})");
    }

    #[test]
    fn baseline_optimizer_has_zero_gain() {
        let rt = runtime(OptimizerKind::LocalBaseline);
        let report = rt.run_episode(&ScenarioConfig::new(2).with_seed(3).generate(), 3);
        let gain = report.combined_gain().expect("ok");
        assert!(gain.abs() < 1e-9, "baseline must match baseline: {gain}");
    }

    #[test]
    fn obstacles_reduce_gains_and_deadlines() {
        let rt = runtime(OptimizerKind::ModelGating);
        let free = rt.run_episode(&ScenarioConfig::new(0).with_seed(5).generate(), 5);
        let risky = rt.run_episode(&ScenarioConfig::new(4).with_seed(5).generate(), 5);
        assert_eq!(
            risky.status,
            EpisodeStatus::Completed,
            "agent should complete"
        );
        assert!(
            risky.histogram.mean() < free.histogram.mean(),
            "more obstacles -> lower mean delta_max ({} vs {})",
            risky.histogram.mean(),
            free.histogram.mean()
        );
        let g_free = free.combined_gain().expect("ok");
        let g_risky = risky.combined_gain().expect("ok");
        assert!(
            g_risky < g_free,
            "more obstacles -> lower gains ({g_risky} vs {g_free})"
        );
    }

    #[test]
    fn faster_model_gains_more_on_average() {
        // Fig. 5's ordering (p = tau gains more than p = 2 tau) is a
        // property of the run average: under low deadlines the slower
        // detector has no optimization room at all.
        let rt = runtime(OptimizerKind::Offloading);
        let (mut g1, mut g2, mut n) = (0.0, 0.0, 0);
        for seed in 0..6u64 {
            let report = rt.run_episode(&ScenarioConfig::new(4).with_seed(seed).generate(), seed);
            if report.status == EpisodeStatus::Completed {
                g1 += report.models[0].gain().expect("ok");
                g2 += report.models[1].gain().expect("ok");
                n += 1;
            }
        }
        assert!(n >= 4, "most seeds should complete, got {n}");
        assert!(
            g1 > g2,
            "the p=tau detector ({g1}) should gain more than p=2tau ({g2}) over {n} runs"
        );
    }

    #[test]
    fn filtered_runs_are_collision_free_with_unsafe_free_monitor() {
        let rt = runtime(OptimizerKind::Offloading);
        for seed in 0..3u64 {
            let report = rt.run_episode(&ScenarioConfig::new(4).with_seed(seed).generate(), seed);
            assert_eq!(report.status, EpisodeStatus::Completed, "seed {seed}");
            assert_eq!(report.unsafe_steps, 0, "seed {seed}: no barrier violations");
        }
    }

    #[test]
    fn offload_bookkeeping_is_consistent() {
        let rt = runtime(OptimizerKind::Offloading);
        let report = rt.run_episode(&ScenarioConfig::new(0).with_seed(11).generate(), 11);
        let m = &report.models[0];
        assert!(m.offloads_issued > 0, "offloads should be issued");
        assert!(
            m.offload_successes + m.offload_fallbacks <= m.offloads_issued,
            "terminal outcomes cannot exceed issues"
        );
        // On an empty road with a healthy link, successes dominate.
        assert!(m.offload_successes > m.offload_fallbacks);
    }

    #[test]
    fn gating_never_issues_offloads() {
        let rt = runtime(OptimizerKind::ModelGating);
        let report = rt.run_episode(&ScenarioConfig::new(2).with_seed(13).generate(), 13);
        for m in &report.models {
            assert_eq!(m.offloads_issued, 0);
            assert_eq!(m.offload_successes, 0);
        }
    }

    #[test]
    fn reports_are_deterministic_given_seeds() {
        let rt = runtime(OptimizerKind::Offloading);
        let world = ScenarioConfig::new(2).with_seed(17).generate();
        let a = rt.run_episode(&world, 17);
        let b = rt.run_episode(&world, 17);
        assert_eq!(a, b);
    }

    #[test]
    fn dynamic_episode_matches_static_for_parked_obstacles() {
        let rt = runtime(OptimizerKind::ModelGating);
        let world = ScenarioConfig::new(2).with_seed(19).generate();
        let dynamic = seo_sim::dynamics::DynamicWorld::from_static(&world);
        let a = rt.run_episode(&world, 19);
        let b = rt.run_dynamic_episode(&dynamic, 19);
        // Same physics; only the deadline source differs (table vs direct
        // phi), so statuses and step counts must match and gains must be in
        // the same region.
        assert_eq!(a.status, b.status);
        assert_eq!(a.steps, b.steps);
        let (ga, gb) = (
            a.combined_gain().expect("ok"),
            b.combined_gain().expect("ok"),
        );
        assert!((ga - gb).abs() < 0.2, "static {ga} vs dynamic {gb}");
    }

    #[test]
    fn oncoming_traffic_reduces_deadlines_vs_parked() {
        use seo_sim::dynamics::{DynamicWorld, MovingObstacle};
        use seo_sim::world::{Obstacle, Road};
        let rt = runtime(OptimizerKind::ModelGating);
        let parked = DynamicWorld::new(
            Road::default(),
            vec![MovingObstacle::parked(Obstacle::new(90.0, 1.0, 1.0))],
        );
        let oncoming = DynamicWorld::new(
            Road::default(),
            vec![MovingObstacle::new(
                Obstacle::new(160.0, 1.0, 1.0),
                -7.0,
                0.0,
            )],
        );
        let a = rt.run_dynamic_episode(&parked, 23);
        let b = rt.run_dynamic_episode(&oncoming, 23);
        assert_ne!(a.status, EpisodeStatus::Collided);
        assert_ne!(b.status, EpisodeStatus::Collided);
        assert!(
            b.histogram.mean() <= a.histogram.mean() + 0.1,
            "oncoming traffic should not raise deadlines: {} vs {}",
            b.histogram.mean(),
            a.histogram.mean()
        );
    }

    #[test]
    fn crossing_traffic_scenario_is_survivable_under_shield() {
        let rt = runtime(OptimizerKind::Offloading);
        let world = seo_sim::dynamics::DynamicWorld::crossing_traffic_scenario();
        let report = rt.run_dynamic_episode(&world, 31);
        assert_ne!(report.status, EpisodeStatus::Collided, "{report}");
        // A mover can transiently breach the *clearance band* by walking
        // toward the vehicle — the shield only controls the vehicle — but
        // collision-free operation must hold and breaches must be brief.
        assert!(
            report.unsafe_steps <= 5,
            "prolonged violation: {}",
            report.unsafe_steps
        );
        assert!(report.min_distance > 0.5, "came within collision margin");
    }

    #[test]
    fn accessors_expose_configuration() {
        let rt = runtime(OptimizerKind::SensorGating);
        assert_eq!(rt.optimizer(), OptimizerKind::SensorGating);
        assert_eq!(rt.config().tau.as_millis(), 20.0);
        assert_eq!(rt.models().normal().count(), 2);
        assert!(!rt.deadline_table().is_empty());
        assert_eq!(rt.kernel(), KernelBackend::Scalar);
        assert_eq!(
            rt.with_kernel(KernelBackend::Blocked).kernel(),
            KernelBackend::Blocked
        );
    }

    #[test]
    fn kernel_backends_produce_bit_identical_reports() {
        // A *neural* controller puts the dense kernels in the per-step loop
        // (the potential-field default contains none); every backend must
        // then reproduce the scalar episode report exactly — the invariant
        // the whole distributed stack assumes when mixing backends.
        for optimizer in [OptimizerKind::Offloading, OptimizerKind::ModelGating] {
            let base =
                runtime(optimizer).with_controller(crate::controller::Controller::seeded_neural(7));
            for seed in [3u64, 17] {
                let world = ScenarioConfig::new(2).with_seed(seed).generate();
                let reference = base
                    .clone()
                    .with_kernel(KernelBackend::Scalar)
                    .run_episode(&world, seed);
                for backend in KernelBackend::ALL {
                    let report = base.clone().with_kernel(backend).run_episode(&world, seed);
                    assert_eq!(
                        report, reference,
                        "{backend} episode diverged (seed {seed})"
                    );
                }
            }
        }
    }
}
