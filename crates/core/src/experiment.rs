//! Paper-experiment harness.
//!
//! Wraps [`RuntimeLoop`] with the paper's evaluation protocol: run seeded
//! scenarios until the requested number of **successful** episodes (route
//! completed, no collision) has been collected — the paper averages over 25
//! such runs — then aggregate energy gains and δmax statistics.
//!
//! # Example
//!
//! ```
//! use seo_core::prelude::*;
//!
//! // One successful obstacle-free run of the paper's offloading cell.
//! let result = ExperimentConfig::paper_defaults()
//!     .with_optimizer(OptimizerKind::Offloading)
//!     .with_obstacles(0)
//!     .with_runs(1)
//!     .run()?;
//! assert_eq!(result.reports.len(), 1);
//! assert!(result.reports[0].is_success());
//! # Ok::<(), seo_core::SeoError>(())
//! ```

use crate::batch::{BatchRunner, ScenarioSpec};
use crate::config::{ControlMode, EnergyAccounting, SeoConfig};
use crate::controller::Controller;
use crate::error::SeoError;
use crate::metrics::{EpisodeReport, ExperimentSummary};
use crate::model::ModelSet;
use crate::optimizer::OptimizerKind;
use crate::runtime::{EpisodeScratch, RuntimeLoop, WorldSource};
use seo_nn::kernel::KernelBackend;
use seo_platform::units::Seconds;
use seo_sim::scenario::ScenarioConfig;
use std::fmt;

/// Complete description of one experiment cell (one bar/row of a paper
/// figure or table).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Framework knobs (τ, gating level, control mode, accounting).
    pub seo: SeoConfig,
    /// Ω instantiation.
    pub optimizer: OptimizerKind,
    /// Obstacles on the route (the paper sweeps {0, 2, 4}).
    pub n_obstacles: usize,
    /// Successful runs to collect (the paper uses 25).
    pub runs: usize,
    /// Base RNG seed; run `k` uses `base_seed + k`.
    pub base_seed: u64,
    /// Episode attempts allowed before giving up on collecting `runs`
    /// successes.
    pub max_attempts: usize,
    /// The Λ model partition (defaults to the paper's VAE + two detectors).
    pub models: ModelSet,
    /// The driving controller.
    pub controller: Controller,
    /// The inference kernel backend (bit-identical across backends by the
    /// `seo_nn::kernel` contract; affects wall-clock only).
    pub kernel: KernelBackend,
}

impl ExperimentConfig {
    /// The paper's default cell: τ = 20 ms, offloading, filtered control,
    /// 2 obstacles, 25 successful runs.
    ///
    /// The controller is a deliberately *tight-margin* tuning of the
    /// potential-field agent (10 m influence radius, 11 m/s cruise): like
    /// the paper's RL agent, it passes obstacles closer than the shield
    /// would, so the filtered case measurably increases distances — and
    /// thus sampled δmax — over the unfiltered case (the paper's second
    /// key observation on Fig. 5).
    ///
    /// # Panics
    ///
    /// Never panics: the paper defaults are statically valid.
    #[must_use]
    pub fn paper_defaults() -> Self {
        let seo = SeoConfig::paper_defaults();
        let models = ModelSet::paper_setup(seo.tau).expect("paper defaults are valid");
        Self {
            seo,
            optimizer: OptimizerKind::Offloading,
            n_obstacles: 2,
            runs: 25,
            base_seed: 2023,
            max_attempts: 200,
            models,
            controller: Controller::tight_margin_potential_field(),
            kernel: KernelBackend::default(),
        }
    }

    /// Builds the experiment cell corresponding to one sweep-plan grid
    /// cell: τ (with the paper model set rebuilt on it), gating level,
    /// control mode, optimizer, and controller all come from the cell, the
    /// evaluation protocol (runs, base seed, attempt budget) from
    /// [`Self::paper_defaults`]. This is the bridge from the declarative
    /// [`crate::plan::SweepPlan`] axes — which promoted these previously
    /// builder-buried knobs into sweepable grid dimensions — back into the
    /// successful-runs protocol this harness implements.
    ///
    /// # Errors
    ///
    /// Any model-construction error from [`ModelSet::paper_setup`] on the
    /// cell's τ.
    pub fn from_cell(cell: &crate::plan::CellConfig) -> Result<Self, SeoError> {
        let seo = cell.seo_config();
        let models = ModelSet::paper_setup(seo.tau)?;
        Ok(Self {
            seo,
            models,
            optimizer: cell.optimizer,
            controller: cell.controller.build(),
            ..Self::paper_defaults()
        })
    }

    /// Sets the inference kernel backend (builder style). Because backends
    /// are bit-identical, this cannot change any experiment summary — only
    /// how fast it is produced.
    #[must_use]
    pub fn with_kernel(mut self, kernel: KernelBackend) -> Self {
        self.kernel = kernel;
        self
    }

    /// Sets the optimizer (builder style).
    #[must_use]
    pub fn with_optimizer(mut self, optimizer: OptimizerKind) -> Self {
        self.optimizer = optimizer;
        self
    }

    /// Sets the obstacle count (builder style).
    #[must_use]
    pub fn with_obstacles(mut self, n: usize) -> Self {
        self.n_obstacles = n;
        self
    }

    /// Sets the number of successful runs to collect (builder style).
    #[must_use]
    pub fn with_runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// Sets the base seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Sets the control mode (builder style).
    #[must_use]
    pub fn with_control_mode(mut self, mode: ControlMode) -> Self {
        self.seo = self.seo.with_control_mode(mode);
        self
    }

    /// Sets τ, rebuilding the paper model set on the new base period
    /// (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `tau` is non-positive (validated again at run time).
    #[must_use]
    pub fn with_tau(mut self, tau: Seconds) -> Self {
        self.seo = self.seo.with_tau(tau);
        self
    }

    /// Sets the accounting scope (builder style).
    #[must_use]
    pub fn with_accounting(mut self, accounting: EnergyAccounting) -> Self {
        self.seo = self.seo.with_accounting(accounting);
        self
    }

    /// Replaces the model set (builder style).
    #[must_use]
    pub fn with_models(mut self, models: ModelSet) -> Self {
        self.models = models;
        self
    }

    /// Sets the gating level (builder style).
    #[must_use]
    pub fn with_gating_level(mut self, level: f64) -> Self {
        self.seo = self.seo.with_gating_level(level);
        self
    }

    /// Replaces the driving controller (builder style).
    #[must_use]
    pub fn with_controller(mut self, controller: Controller) -> Self {
        self.controller = controller;
        self
    }

    /// Runs the experiment: collects `runs` successful episodes and
    /// aggregates them.
    ///
    /// # Errors
    ///
    /// Returns [`SeoError::InsufficientSuccessfulRuns`] when `max_attempts`
    /// episodes do not produce enough successes, or any configuration
    /// error from [`RuntimeLoop::new`].
    pub fn run(&self) -> Result<ExperimentResult, SeoError> {
        let runtime = RuntimeLoop::new(self.seo, self.models.clone(), self.optimizer)?
            .with_controller(self.controller.clone())
            .with_kernel(self.kernel);
        let mut scratch = EpisodeScratch::new();
        let mut successes: Vec<EpisodeReport> = Vec::with_capacity(self.runs);
        let mut attempts = 0usize;
        let mut failures = 0usize;
        while successes.len() < self.runs && attempts < self.max_attempts {
            let seed = self.base_seed.wrapping_add(attempts as u64);
            let world = ScenarioConfig::new(self.n_obstacles)
                .with_seed(seed)
                .generate();
            let report = runtime.run_with(WorldSource::Static(&world), seed, &mut scratch);
            if report.is_success() {
                successes.push(report);
            } else {
                failures += 1;
            }
            attempts += 1;
        }
        if successes.len() < self.runs {
            return Err(SeoError::InsufficientSuccessfulRuns {
                collected: successes.len(),
                requested: self.runs,
                attempts,
            });
        }
        let summary = ExperimentSummary::from_reports(&successes)?;
        Ok(ExperimentResult {
            config: self.clone(),
            reports: successes,
            summary,
            failures,
        })
    }

    /// Parallel variant of [`Self::run`]: fans episode attempts out over a
    /// [`BatchRunner`] worker pool, in waves so a mostly-successful
    /// configuration does not burn the whole `max_attempts` budget.
    /// Episodes are independent (seeded per attempt) and each wave is
    /// consumed in seed order, so the selected successful-run set — and
    /// therefore the summary — is **identical** to the sequential
    /// protocol's.
    ///
    /// # Errors
    ///
    /// Same as [`Self::run`].
    pub fn run_parallel(&self, threads: usize) -> Result<ExperimentResult, SeoError> {
        let runtime = RuntimeLoop::new(self.seo, self.models.clone(), self.optimizer)?
            .with_controller(self.controller.clone())
            .with_kernel(self.kernel);
        let runner = BatchRunner::new(runtime).with_threads(threads);
        // Slightly over-provision each wave for expected failures so most
        // experiments finish in a single wave.
        let wave = (self.runs + self.runs / 4 + runner.threads()).max(1);

        let mut successes = Vec::with_capacity(self.runs);
        let mut failures = 0usize;
        let mut attempts_used = 0usize;
        let mut offset = 0usize;
        while successes.len() < self.runs && offset < self.max_attempts {
            let n = wave.min(self.max_attempts - offset);
            let specs: Vec<ScenarioSpec> = (0..n as u64)
                .map(|k| {
                    ScenarioSpec::new(
                        self.n_obstacles,
                        self.base_seed.wrapping_add(offset as u64 + k),
                    )
                })
                .collect();
            for report in runner.run(&specs) {
                if successes.len() >= self.runs {
                    break;
                }
                attempts_used += 1;
                if report.is_success() {
                    successes.push(report);
                } else {
                    failures += 1;
                }
            }
            offset += n;
        }
        if successes.len() < self.runs {
            return Err(SeoError::InsufficientSuccessfulRuns {
                collected: successes.len(),
                requested: self.runs,
                attempts: attempts_used,
            });
        }
        let summary = ExperimentSummary::from_reports(&successes)?;
        Ok(ExperimentResult {
            config: self.clone(),
            reports: successes,
            summary,
            failures,
        })
    }

    /// [`Self::run_parallel`] on the default pool size
    /// ([`BatchRunner::default_threads`]: `SEO_THREADS` or all available
    /// cores) — what the experiment binaries and benches call.
    ///
    /// # Errors
    ///
    /// Same as [`Self::run`].
    pub fn run_auto(&self) -> Result<ExperimentResult, SeoError> {
        self.run_parallel(BatchRunner::default_threads())
    }
}

impl fmt::Display for ExperimentConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} | {} obstacles | {} runs | {}",
            self.optimizer, self.n_obstacles, self.runs, self.seo
        )
    }
}

/// Outcome of one experiment cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// The configuration that produced this result.
    pub config: ExperimentConfig,
    /// The successful episode reports, in collection order.
    pub reports: Vec<EpisodeReport>,
    /// Aggregated statistics over the successful runs.
    pub summary: ExperimentSummary,
    /// Unsuccessful episodes encountered while collecting.
    pub failures: usize,
}

impl ExperimentResult {
    /// Energy gain of Λ′ model `index` (registration order), aggregated
    /// over runs.
    ///
    /// # Errors
    ///
    /// Returns [`SeoError::InvalidConfig`] for an out-of-range index.
    pub fn gain_for_model(&self, index: usize) -> Result<f64, SeoError> {
        self.summary
            .model_gains
            .get(index)
            .copied()
            .ok_or(SeoError::InvalidConfig {
                field: "model index",
                constraint: "address a registered Λ' model",
            })
    }

    /// Mean combined gain over all models (energy-weighted).
    ///
    /// # Errors
    ///
    /// Kept fallible for API symmetry; the value is precomputed.
    pub fn mean_gain_over_models(&self) -> Result<f64, SeoError> {
        Ok(self.summary.combined_gain)
    }

    /// Average of the per-model gains (the paper's "Average gains" column
    /// in Table I, which averages the two detectors' percentages).
    #[must_use]
    pub fn unweighted_mean_model_gain(&self) -> f64 {
        if self.summary.model_gains.is_empty() {
            return 0.0;
        }
        self.summary.model_gains.iter().sum::<f64>() / self.summary.model_gains.len() as f64
    }

    /// Mean sampled δmax over runs.
    #[must_use]
    pub fn mean_delta_max(&self) -> f64 {
        self.summary.mean_delta_max
    }

    /// Whether every successful run preserved the safety state throughout
    /// (`S = 1` on every step).
    #[must_use]
    pub fn all_runs_safe(&self) -> bool {
        self.reports.iter().all(|r| r.unsafe_steps == 0)
    }
}

impl fmt::Display for ExperimentResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.config, self.summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(optimizer: OptimizerKind, obstacles: usize, mode: ControlMode) -> ExperimentConfig {
        ExperimentConfig::paper_defaults()
            .with_optimizer(optimizer)
            .with_obstacles(obstacles)
            .with_control_mode(mode)
            .with_runs(3)
    }

    #[test]
    fn collects_requested_successful_runs() {
        let result = quick(OptimizerKind::ModelGating, 2, ControlMode::Filtered)
            .run()
            .expect("experiment runs");
        assert_eq!(result.reports.len(), 3);
        assert_eq!(result.summary.runs, 3);
        assert!(result.reports.iter().all(EpisodeReport::is_success));
    }

    #[test]
    fn gains_positive_and_ordered_by_model_rate() {
        let result = quick(OptimizerKind::Offloading, 2, ControlMode::Filtered)
            .run()
            .expect("experiment runs");
        let g1 = result.gain_for_model(0).expect("model 0");
        let g2 = result.gain_for_model(1).expect("model 1");
        assert!(
            g1 > 0.0 && g2 >= 0.0,
            "gains should be non-negative: {g1}, {g2}"
        );
        assert!(g1 > g2, "p=tau should beat p=2tau: {g1} vs {g2}");
        assert!(result.gain_for_model(5).is_err());
    }

    #[test]
    fn impossible_run_budget_errors() {
        let mut config = quick(OptimizerKind::ModelGating, 2, ControlMode::Filtered);
        config.max_attempts = 1;
        config.runs = 10;
        match config.run() {
            Err(SeoError::InsufficientSuccessfulRuns {
                collected,
                requested,
                attempts,
            }) => {
                assert!(collected <= 1);
                assert_eq!(requested, 10);
                assert_eq!(attempts, 1);
            }
            other => panic!("expected InsufficientSuccessfulRuns, got {other:?}"),
        }
    }

    #[test]
    fn zero_runs_is_trivially_empty_error() {
        let mut config = quick(OptimizerKind::ModelGating, 0, ControlMode::Filtered);
        config.runs = 0;
        // Zero successful runs requested: summary over zero reports fails.
        assert!(config.run().is_err());
    }

    #[test]
    fn parallel_run_matches_sequential() {
        let config = quick(OptimizerKind::Offloading, 2, ControlMode::Filtered);
        let seq = config.run().expect("sequential runs");
        let par = config.run_parallel(4).expect("parallel runs");
        assert_eq!(
            seq.summary, par.summary,
            "parallel must reproduce the protocol"
        );
        assert_eq!(seq.failures, par.failures);
    }

    #[test]
    fn kernel_backend_cannot_change_a_summary() {
        // The experiment protocol must be backend-invariant even with the
        // neural controller in the loop (the default potential-field agent
        // would make this vacuous).
        // Policy seed 0 is a fixed initialization known to complete
        // obstacle-free routes without training.
        let base = quick(OptimizerKind::Offloading, 0, ControlMode::Filtered);
        let mut config = base.clone().with_controller(Controller::seeded_neural(0));
        config.max_attempts = 60;
        config.runs = 2;
        let scalar = config
            .clone()
            .with_kernel(KernelBackend::Scalar)
            .run()
            .expect("scalar runs");
        let blocked = config
            .with_kernel(KernelBackend::Blocked)
            .run()
            .expect("blocked runs");
        assert_eq!(scalar.reports, blocked.reports);
        assert_eq!(scalar.summary, blocked.summary);
    }

    #[test]
    fn results_are_reproducible() {
        let config = quick(OptimizerKind::Offloading, 2, ControlMode::Filtered);
        let a = config.run().expect("runs");
        let b = config.run().expect("runs");
        assert_eq!(a.summary, b.summary);
    }

    #[test]
    fn safety_preserved_in_filtered_runs() {
        let result = quick(OptimizerKind::Offloading, 4, ControlMode::Filtered)
            .run()
            .expect("experiment runs");
        assert!(
            result.all_runs_safe(),
            "filtered runs must never violate the barrier"
        );
    }

    #[test]
    fn display_includes_key_facts() {
        let config = quick(OptimizerKind::ModelGating, 2, ControlMode::Filtered);
        assert!(config.to_string().contains("model-gating"));
        assert!(config.to_string().contains("2 obstacles"));
    }

    #[test]
    fn clone_roundtrip_config() {
        let config = quick(OptimizerKind::SensorGating, 4, ControlMode::Unfiltered);
        let back = config.clone();
        assert_eq!(back, config);
    }

    #[test]
    fn from_cell_mirrors_the_grid_cell() {
        use crate::plan::{CellConfig, ChannelKind, ControllerKind, TrafficKind};
        use seo_platform::units::Seconds;
        let cell = CellConfig {
            tau_ms: 25.0,
            gating_level: 0.25,
            control_mode: ControlMode::Unfiltered,
            optimizer: OptimizerKind::ModelGating,
            controller: ControllerKind::TightMargin,
            channel: ChannelKind::Clean,
            traffic: TrafficKind::Static,
        };
        let config = ExperimentConfig::from_cell(&cell).expect("valid cell");
        assert_eq!(config.seo.tau, Seconds::from_millis(25.0));
        assert_eq!(config.seo.gating_level, 0.25);
        assert_eq!(config.seo.control_mode, ControlMode::Unfiltered);
        assert_eq!(config.optimizer, OptimizerKind::ModelGating);
        assert_eq!(
            config.controller,
            Controller::tight_margin_potential_field()
        );
        // Protocol knobs stay on the paper defaults.
        assert_eq!(config.runs, 25);
        assert_eq!(config.base_seed, 2023);
        // The model set is rebuilt on the cell's tau, not the paper's.
        assert_eq!(
            config.models,
            ModelSet::paper_setup(Seconds::from_millis(25.0)).expect("models")
        );
    }
}
