//! Dependency-free JSON emission **and parsing**.
//!
//! The workspace is built without network access to crates.io, so instead of
//! `serde_json` the harness binaries emit machine-readable dumps through this
//! small value tree. It started life in `seo-bench` as an emitter-only seam;
//! the sharded sweep protocol ([`crate::shard`]) promoted it into core and
//! added [`Json::parse`] so coordinator processes can read the line-delimited
//! reports their workers stream back.
//!
//! Numbers render through Rust's shortest-round-trip `Display` for `f64`, so
//! `parse(render(x))` recovers every finite float **exactly** — the property
//! the sharded sweep's bit-identical merge guarantee rests on. Non-finite
//! floats render as `null`; protocols that must carry them (the sweep wire
//! format) encode them out-of-band as strings.
//!
//! # Example
//!
//! ```
//! use seo_core::json::Json;
//!
//! let value = Json::obj(vec![
//!     ("label", Json::from("sweep")),
//!     ("ns_per_step", Json::from(0.1)), // floats round-trip exactly
//!     ("scenarios", Json::from(60usize)),
//! ]);
//! let text = value.render();
//! assert_eq!(text, r#"{"label":"sweep","ns_per_step":0.1,"scenarios":60}"#);
//! assert_eq!(Json::parse(&text)?, value);
//! # Ok::<(), seo_core::json::JsonParseError>(())
//! ```

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// An integer, kept separate so counts render without a decimal point.
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Self {
        Self::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Renders compactly (no whitespace).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with two-space indentation.
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    /// Parses a JSON document.
    ///
    /// Integer tokens (no `.`, `e`, or `E`) that fit an `i64` become
    /// [`Json::Int`]; every other number becomes [`Json::Num`]. Because the
    /// emitter writes floats via the shortest-round-trip formatter, a parse
    /// of rendered output recovers each finite `f64` bit-for-bit (integral
    /// floats come back as [`Json::Int`] — read them through a width-agnostic
    /// accessor when the distinction does not matter).
    ///
    /// # Errors
    ///
    /// Returns [`JsonParseError`] (with a byte offset) on malformed input or
    /// trailing non-whitespace.
    pub fn parse(input: &str) -> Result<Self, JsonParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Looks up a key in an object.
    ///
    /// Returns `None` when `self` is not an object or the key is absent.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Self::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` ([`Json::Num`] or [`Json::Int`]).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Num(v) => Some(*v),
            #[allow(clippy::cast_precision_loss)]
            Self::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as an `i64` (only [`Json::Int`]).
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Self::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Self::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let pad = |out: &mut String, d: usize| {
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * d));
            }
        };
        match self {
            Self::Null => out.push_str("null"),
            Self::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Self::Num(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            Self::Num(_) => out.push_str("null"),
            Self::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Self::Str(s) => write_escaped(out, s),
            Self::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    pad(out, depth);
                }
                out.push(']');
            }
            Self::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !pairs.is_empty() {
                    pad(out, depth);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A malformed JSON document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by this
                            // workspace's writer; reject rather than
                            // mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is &str, so slicing on
                    // char boundaries is safe via chars()).
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        // "-0" must stay a float: the integer path would drop the sign bit.
        if !is_float && token != "-0" {
            if let Ok(v) = token.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        token
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Self::Num(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Self::Int(v as i64)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Self::Int(i64::from(v))
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Self::Int(v as i64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Self::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Self::Str(v.to_owned())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Self::Str(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Self::Arr(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::from(true).render(), "true");
        assert_eq!(Json::from(1.5).render(), "1.5");
        assert_eq!(Json::from(42u32).render(), "42");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(Json::from("a\"b\\c\n").render(), r#""a\"b\\c\n""#);
        assert_eq!(Json::from("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn containers_render_compact_and_pretty() {
        let v = Json::obj(vec![
            ("name", Json::from("sweep")),
            ("xs", Json::from(vec![1.0, 2.0])),
            ("empty", Json::Arr(vec![])),
        ]);
        assert_eq!(v.render(), r#"{"name":"sweep","xs":[1,2],"empty":[]}"#);
        let pretty = v.render_pretty();
        assert!(pretty.contains("\n  \"name\": \"sweep\""), "{pretty}");
        assert!(pretty.ends_with("}\n"));
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").expect("ok"), Json::Null);
        assert_eq!(Json::parse(" true ").expect("ok"), Json::Bool(true));
        assert_eq!(Json::parse("false").expect("ok"), Json::Bool(false));
        assert_eq!(Json::parse("42").expect("ok"), Json::Int(42));
        assert_eq!(Json::parse("-7").expect("ok"), Json::Int(-7));
        assert_eq!(Json::parse("1.5").expect("ok"), Json::Num(1.5));
        assert_eq!(Json::parse("1e3").expect("ok"), Json::Num(1000.0));
        assert_eq!(Json::parse("\"hi\"").expect("ok"), Json::from("hi"));
    }

    #[test]
    fn parse_containers_and_accessors() {
        let v = Json::parse(r#"{"a":[1,2.5,"x"],"b":{"c":null}}"#).expect("ok");
        assert_eq!(
            v.get("a").and_then(|a| a.as_arr()).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("a")
                .and_then(|a| a.as_arr())
                .and_then(|a| a[0].as_i64()),
            Some(1)
        );
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Int(3).as_f64(), Some(3.0));
        assert_eq!(Json::from("s").as_str(), Some("s"));
    }

    #[test]
    fn parse_string_escapes() {
        let v = Json::parse(r#""a\"b\\c\n\u0041""#).expect("ok");
        assert_eq!(v, Json::from("a\"b\\c\nA"));
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "{\"a\" 1}",
            "1 2",
            "\"unterminated",
            "{'a':1}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
        let err = Json::parse("[1,]").expect_err("trailing comma");
        assert!(err.to_string().contains("at byte"), "{err}");
    }

    #[test]
    fn float_round_trip_is_exact() {
        // The emitter uses Rust's shortest-round-trip Display, so every
        // finite f64 survives render -> parse bit-for-bit.
        for v in [
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            -2.2250738585072014e-308,
            11935.548651603498,
            -0.0,
        ] {
            let rendered = Json::Num(v).render();
            let back = Json::parse(&rendered)
                .expect("parses")
                .as_f64()
                .expect("numeric");
            assert_eq!(back.to_bits(), v.to_bits(), "{v} via {rendered}");
        }
    }

    #[test]
    fn render_parse_round_trip_tree() {
        let v = Json::obj(vec![
            ("name", Json::from("sweep")),
            ("n", Json::from(3usize)),
            ("x", Json::from(0.25)),
            ("flags", Json::from(vec![true, false])),
            ("nested", Json::obj(vec![("deep", Json::Null)])),
        ]);
        assert_eq!(Json::parse(&v.render()).expect("ok"), v);
        assert_eq!(Json::parse(&v.render_pretty()).expect("ok"), v);
    }
}
