//! # seo-core
//!
//! **SEO: Safety-Aware Energy Optimization Framework for Multi-Sensor Neural
//! Controllers at the Edge** — a full Rust reproduction of the DAC 2023
//! paper (arXiv:2302.12493).
//!
//! SEO divides an autonomous system's sensory processing models into a
//! critical subset Λ″ (feeding precise state estimates to a formally-derived
//! safety filter) and a normal subset Λ′ (eligible for runtime energy
//! optimization). The safety state is characterized as a **dynamic
//! processing deadline**: the safe time interval Δmax a frozen control can
//! be tolerated, discretized to δmax base periods. Each Λ′ model with
//! discretized period δᵢ runs its energy-optimized version Ω on the early
//! slots of the interval and is re-invoked at full capacity at slot
//! δmax − δᵢ, so a fresh result is guaranteed by the safety deadline
//! (eq. 6 / Algorithm 1).
//!
//! Module map:
//!
//! * [`config`] — framework configuration (base period τ, control mode,
//!   energy accounting).
//! * [`model`] — pipeline model descriptors and the Λ′/Λ″ partition.
//! * [`discretize`] — eqs. (4) and (5): periods and deadlines in τ units.
//! * [`scheduler`] — Algorithm 1 as a pure, steppable state machine.
//! * [`optimizer`] — the two Ω instantiations (task offloading, gating)
//!   plus the always-local baseline.
//! * [`runtime`] — the closed control loop tying simulator, controller,
//!   safety filter, deadline table, scheduler, and energy accounting
//!   together, split at the offload transaction into the resumable
//!   [`runtime::EpisodeTask`] state machine.
//! * [`reactor`] — the deterministic poll-loop executor (`exec.offload`):
//!   many episodes in flight per core, parked at offload await points and
//!   resumed in `(virtual_completion_time, spec_index)` order, so
//!   scheduling stays a pure function of the seed.
//! * [`metrics`] — per-episode and per-experiment reports (energy gains,
//!   δmax histograms, safety evidence).
//! * [`agg`] — streaming aggregation: exactly-associative per-cell
//!   sketches ([`agg::CellSketch`]) and the spec-index-ordered
//!   [`agg::RunSummary`] fold, configured by the `report` plan section —
//!   merged summary output is bit-identical regardless of which engine,
//!   shard, or lease produced each fragment.
//! * [`experiment`] — paper-experiment harness: builds the exact setups of
//!   Figures 1/5/6 and Tables I/II/III.
//! * [`plan`] — the unified [`plan::SweepPlan`]: one declarative, validated,
//!   versioned description of a run (multi-axis scenario grid + execution
//!   section) that every sweep mode — serial, threads, worker processes,
//!   TCP hosts — consumes.
//! * [`shard`] — multi-process sharded sweeps: shard planning, the
//!   line-delimited JSON wire format, the streaming deterministic merge, and
//!   the worker-process coordinator.
//! * [`lease`] — pull-based work-stealing scheduling: the chunk policy
//!   (`exec.hosts.chunk`) and the blocking lease queue hosts pull spec
//!   ranges from, with failed leases re-queued for re-issue.
//! * [`transport`] — multi-host sweeps: length-delimited TCP framing over
//!   the same wire format, validated host pools with retry policies, and
//!   the fault-tolerant remote coordinator (retry with backoff, host
//!   quarantine and re-admission, lease re-issue around lost hosts).
//! * [`daemon`] — the long-lived `seo-sweepd` service: persistent accept
//!   loop, `--jobs` admission control with `busy` backpressure, `health`
//!   introspection, and graceful drain on `shutdown`/SIGTERM.
//! * [`fault`] — deterministic chaos: the [`fault::FaultPlan`] grammar
//!   (refuse/drop/stall/garble) that exercises every recovery path
//!   reproducibly.
//! * [`json`] — the dependency-free JSON tree (render + parse) the wire
//!   format and harness dumps are built on.
//!
//! The architecture book — crate map, determinism invariant, wire protocol,
//! extension guide — lives in `ARCHITECTURE.md` at the repository root.
//!
//! # Quickstart
//!
//! ```
//! use seo_core::prelude::*;
//!
//! // Two ResNet-152 detectors at p = tau and p = 2 tau, offloading enabled,
//! // safety filter active, over one 2-obstacle scenario.
//! let config = ExperimentConfig::paper_defaults()
//!     .with_optimizer(OptimizerKind::Offloading)
//!     .with_obstacles(2)
//!     .with_runs(1);
//! let result = config.run()?;
//! let gains = result.mean_gain_over_models()?;
//! assert!(gains > 0.0, "offloading should save energy");
//! # Ok::<(), seo_core::SeoError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod batch;
pub mod config;
pub mod controller;
pub mod daemon;
pub mod discretize;
pub mod error;
pub mod experiment;
pub mod falsify;
pub mod fault;
pub mod json;
pub mod lease;
pub mod metrics;
pub mod model;
pub mod optimizer;
pub mod plan;
pub mod reactor;
pub mod runtime;
pub mod scheduler;
pub mod shard;
pub mod transport;

pub use error::SeoError;

/// Convenient re-exports of the most used framework types.
pub mod prelude {
    pub use crate::agg::{
        CellSketch, QuantileSketch, ReportMode, ReportSpec, RunSummary, StatSketch,
    };
    pub use crate::batch::{BatchRunner, ScenarioSpec};
    pub use crate::config::{ControlMode, EnergyAccounting, OffloadFallback, SeoConfig};
    pub use crate::controller::Controller;
    pub use crate::daemon::{DaemonConfig, DaemonServer, DaemonStats};
    pub use crate::discretize::{discretize_deadline, discretize_period};
    pub use crate::error::SeoError;
    pub use crate::experiment::{ExperimentConfig, ExperimentResult};
    pub use crate::falsify::{falsify, Counterexample, FalsifyOutcome, FalsifySpec, Objective};
    pub use crate::fault::{FaultAction, FaultInjector, FaultPlan};
    pub use crate::lease::{ChunkPolicy, Lease, LeaseQueue};
    pub use crate::metrics::{DeltaMaxHistogram, EpisodeReport, ModelEnergyReport};
    pub use crate::model::{Criticality, ModelId, ModelSet, PipelineModel};
    pub use crate::optimizer::OptimizerKind;
    pub use crate::plan::{
        CellConfig, ChannelKind, ControllerKind, ExecMode, GridAxes, GridPoint, PlanError,
        SeedRange, SweepPlan, TrafficKind,
    };
    pub use crate::reactor::{NoPacer, OffloadExec, Pacer, Reactor, WallClockPacer};
    pub use crate::runtime::{
        EpisodeScratch, EpisodeTask, RuntimeLoop, TaskPoll, TaskSource, WorldSource,
    };
    pub use crate::scheduler::{SafeScheduler, SlotKind, StepPlan};
    pub use crate::shard::{Shard, ShardError, ShardPlan, ShardPlanner, StreamingMerge};
    pub use crate::transport::{
        FaultClass, HealthReport, HostPool, HostSpec, RemoteCoordinator, RemoteRunStats,
        RetryPolicy, TransportError, WorkerServer,
    };
    pub use seo_nn::kernel::{BlockedKernel, Kernel, KernelBackend, ScalarKernel};
}
