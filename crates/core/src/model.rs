//! Pipeline model descriptors and the Λ′/Λ″ partition.
//!
//! Each sensory processing model `N_i` is described by its sampling period
//! (synchronized to its sensor), its compute characterization, its sensor
//! power specification, and its **criticality**: models the safety filter
//! relies on for state estimation form Λ″ and must always run at full
//! capacity; the rest form Λ′ and are eligible for energy optimization
//! (Section IV-A).

use crate::error::SeoError;
use seo_platform::compute::ComputeProfile;
use seo_platform::sensor::SensorSpec;
use seo_platform::units::Seconds;
use std::fmt;

/// Opaque identifier of one pipeline model within a [`ModelSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModelId(pub usize);

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// Whether a model belongs to the state-estimation subset Λ″ or the
/// optimizable subset Λ′.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Criticality {
    /// Λ″: feeds the safety filter; always runs at full capacity.
    Critical,
    /// Λ′: does not influence the formal safety guarantees; optimizable.
    Normal,
}

impl fmt::Display for Criticality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Critical => f.write_str("critical (Λ'')"),
            Self::Normal => f.write_str("normal (Λ')"),
        }
    }
}

/// Descriptor of one sensory processing model.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineModel {
    name: String,
    period: Seconds,
    compute: ComputeProfile,
    sensor: SensorSpec,
    criticality: Criticality,
}

impl PipelineModel {
    /// Creates a model descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`SeoError::InvalidConfig`] for a non-positive period.
    pub fn new(
        name: impl Into<String>,
        period: Seconds,
        compute: ComputeProfile,
        sensor: SensorSpec,
        criticality: Criticality,
    ) -> Result<Self, SeoError> {
        if !(period.as_secs().is_finite() && period.as_secs() > 0.0) {
            return Err(SeoError::InvalidConfig {
                field: "period",
                constraint: "be finite and positive",
            });
        }
        Ok(Self {
            name: name.into(),
            period,
            compute,
            sensor,
            criticality,
        })
    }

    /// The paper's Λ′ detector: a ResNet-152 (PX2 characterization) bound to
    /// a zero-power abstract sensor, sampling every `multiple` base periods
    /// of `tau`.
    ///
    /// # Errors
    ///
    /// Returns [`SeoError::InvalidConfig`] when `multiple` is zero or `tau`
    /// non-positive.
    pub fn paper_detector(multiple: u32, tau: Seconds) -> Result<Self, SeoError> {
        if multiple == 0 {
            return Err(SeoError::InvalidConfig {
                field: "multiple",
                constraint: "be at least 1",
            });
        }
        let name = format!("resnet152-detector-p{multiple}tau");
        Self::new(
            name.clone(),
            tau * f64::from(multiple),
            ComputeProfile::px2_resnet152(),
            SensorSpec::zero_power(format!("{name}-sensor")),
            Criticality::Normal,
        )
    }

    /// Model name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sampling period `pᵢ` (synchronized to the sensor).
    #[must_use]
    pub fn period(&self) -> Seconds {
        self.period
    }

    /// Compute characterization (`T_N`, `P_N`).
    #[must_use]
    pub fn compute(&self) -> &ComputeProfile {
        &self.compute
    }

    /// Sensor specification (`P_meas`, `P_mech`).
    #[must_use]
    pub fn sensor(&self) -> &SensorSpec {
        &self.sensor
    }

    /// Λ′ or Λ″ membership.
    #[must_use]
    pub fn criticality(&self) -> Criticality {
        self.criticality
    }

    /// Returns a copy with a different sensor (builder style).
    #[must_use]
    pub fn with_sensor(mut self, sensor: SensorSpec) -> Self {
        self.sensor = sensor;
        self
    }
}

impl fmt::Display for PipelineModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] p={:.0} ms",
            self.name,
            self.criticality,
            self.period.as_millis()
        )
    }
}

/// The full model set Λ with its Λ′/Λ″ partition.
///
/// # Example
///
/// ```
/// use seo_core::model::{Criticality, ModelSet, PipelineModel};
/// use seo_platform::units::Seconds;
///
/// let tau = Seconds::from_millis(20.0);
/// let set = ModelSet::paper_setup(tau)?;
/// assert_eq!(set.normal().count(), 2);   // the two detectors
/// assert_eq!(set.critical().count(), 1); // the VAE state-estimation pipeline
/// # Ok::<(), seo_core::SeoError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSet {
    models: Vec<PipelineModel>,
}

impl ModelSet {
    /// Creates a set from descriptors.
    #[must_use]
    pub fn new(models: Vec<PipelineModel>) -> Self {
        Self { models }
    }

    /// The paper's evaluation setup: one critical VAE pipeline (Λ″, runs
    /// every τ) plus two ResNet-152 detectors at p = τ and p = 2τ (Λ′).
    ///
    /// # Errors
    ///
    /// Returns [`SeoError::InvalidConfig`] for a non-positive `tau`.
    pub fn paper_setup(tau: Seconds) -> Result<Self, SeoError> {
        let vae = PipelineModel::new(
            "shieldnn-vae",
            tau,
            ComputeProfile::new(
                "vae-encoder",
                Seconds::from_millis(3.0),
                seo_platform::units::Watts::new(2.0),
            )
            .map_err(SeoError::from)?,
            SensorSpec::zero_power("vae-camera"),
            Criticality::Critical,
        )?;
        Ok(Self::new(vec![
            vae,
            PipelineModel::paper_detector(1, tau)?,
            PipelineModel::paper_detector(2, tau)?,
        ]))
    }

    /// Number of models (`N` in the paper).
    #[must_use]
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Looks up a model by id.
    #[must_use]
    pub fn get(&self, id: ModelId) -> Option<&PipelineModel> {
        self.models.get(id.0)
    }

    /// Iterates over all `(id, model)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ModelId, &PipelineModel)> {
        self.models.iter().enumerate().map(|(i, m)| (ModelId(i), m))
    }

    /// Iterates over the optimizable subset Λ′.
    pub fn normal(&self) -> impl Iterator<Item = (ModelId, &PipelineModel)> {
        self.iter()
            .filter(|(_, m)| m.criticality() == Criticality::Normal)
    }

    /// Iterates over the state-estimation subset Λ″.
    pub fn critical(&self) -> impl Iterator<Item = (ModelId, &PipelineModel)> {
        self.iter()
            .filter(|(_, m)| m.criticality() == Criticality::Critical)
    }

    /// Validates that the partition is usable for SEO: Λ′ non-empty.
    ///
    /// # Errors
    ///
    /// Returns [`SeoError::NoOptimizableModels`] when Λ′ is empty.
    pub fn validate(&self) -> Result<(), SeoError> {
        if self.normal().next().is_none() {
            return Err(SeoError::NoOptimizableModels);
        }
        Ok(())
    }
}

impl fmt::Display for ModelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} models ({} critical, {} normal)",
            self.len(),
            self.critical().count(),
            self.normal().count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seo_platform::units::Watts;

    const TAU: Seconds = Seconds::new(0.02);

    #[test]
    fn paper_setup_partition() {
        let set = ModelSet::paper_setup(TAU).expect("valid");
        assert_eq!(set.len(), 3);
        assert_eq!(set.normal().count(), 2);
        assert_eq!(set.critical().count(), 1);
        assert!(set.validate().is_ok());
        // Detector periods: tau and 2 tau.
        let periods: Vec<f64> = set.normal().map(|(_, m)| m.period().as_millis()).collect();
        assert_eq!(periods, vec![20.0, 40.0]);
    }

    #[test]
    fn detector_uses_px2_characterization() {
        let d = PipelineModel::paper_detector(2, TAU).expect("valid");
        assert_eq!(d.compute().latency().as_millis(), 17.0);
        assert_eq!(d.compute().power().as_watts(), 7.0);
        assert_eq!(d.criticality(), Criticality::Normal);
        assert_eq!(d.sensor().active_power(), Watts::ZERO);
    }

    #[test]
    fn zero_multiple_rejected() {
        assert!(PipelineModel::paper_detector(0, TAU).is_err());
    }

    #[test]
    fn invalid_period_rejected() {
        let err = PipelineModel::new(
            "m",
            Seconds::ZERO,
            ComputeProfile::px2_resnet152(),
            SensorSpec::zero_power("s"),
            Criticality::Normal,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SeoError::InvalidConfig {
                field: "period",
                ..
            }
        ));
    }

    #[test]
    fn empty_normal_subset_fails_validation() {
        let critical_only = ModelSet::new(vec![PipelineModel::new(
            "vae",
            TAU,
            ComputeProfile::px2_resnet152(),
            SensorSpec::zero_power("s"),
            Criticality::Critical,
        )
        .expect("valid")]);
        assert_eq!(
            critical_only.validate().unwrap_err(),
            SeoError::NoOptimizableModels
        );
    }

    #[test]
    fn get_and_iter_agree() {
        let set = ModelSet::paper_setup(TAU).expect("valid");
        for (id, model) in set.iter() {
            assert_eq!(set.get(id).expect("id valid"), model);
        }
        assert!(set.get(ModelId(99)).is_none());
    }

    #[test]
    fn with_sensor_swaps_spec() {
        let d = PipelineModel::paper_detector(1, TAU)
            .expect("valid")
            .with_sensor(SensorSpec::velodyne_hdl32e());
        assert_eq!(d.sensor().name(), "velodyne-hdl32e-lidar");
    }

    #[test]
    fn displays() {
        let set = ModelSet::paper_setup(TAU).expect("valid");
        assert!(set.to_string().contains("3 models"));
        assert!(ModelId(2).to_string() == "N2");
        assert!(Criticality::Critical.to_string().contains("Λ''"));
    }

    #[test]
    fn clone_roundtrip() {
        let set = ModelSet::paper_setup(TAU).expect("valid");
        let back = set.clone();
        assert_eq!(back, set);
    }
}
