//! Per-episode and per-experiment reporting.
//!
//! Experiments report (i) **energy gains** of the optimized schedule over
//! the always-local baseline per Λ′ model, (ii) the **δmax histogram** (the
//! paper's Fig. 6), and (iii) **safety evidence** (violations, corrections,
//! minimum barrier).

use crate::error::SeoError;
use seo_platform::energy::EnergyLedger;
use seo_sim::episode::EpisodeStatus;
use std::fmt;

/// Histogram of sampled δmax values over one or more runs.
///
/// Backed by a dense count array indexed by δmax (small and bounded by the
/// deadline cap), so recording inside the control loop is allocation-free
/// once the array has reached the largest observed value.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DeltaMaxHistogram {
    /// `counts[v]` = occurrences of δmax = v. Invariant: the last element,
    /// when present, is nonzero (the vector only grows when recording its
    /// index), which keeps derived equality meaningful.
    counts: Vec<usize>,
    total: usize,
}

impl DeltaMaxHistogram {
    /// Values above this saturate into one top bucket, bounding the dense
    /// count array. Far above any discretized deadline the framework
    /// produces (the paper's cap is 4), but `discretize_deadline` yields
    /// `u32::MAX` for infinite deadlines, which must not translate into a
    /// `u32::MAX`-slot allocation.
    pub const SATURATION: u32 = 4096;

    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sampled δmax. Values above [`Self::SATURATION`] are
    /// counted in the saturation bucket.
    pub fn record(&mut self, delta_max: u32) {
        self.record_n(delta_max, 1);
    }

    /// Records `count` occurrences of one δmax value in a single step —
    /// how the sharded-sweep wire format ([`crate::shard`]) reconstitutes a
    /// histogram from its `(delta_max, count)` pairs without replaying every
    /// sample. Recording zero occurrences is a no-op, preserving the
    /// nonzero-tail invariant of the dense backing.
    pub fn record_n(&mut self, delta_max: u32, count: usize) {
        if count == 0 {
            return;
        }
        let idx = delta_max.min(Self::SATURATION) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += count;
        self.total += count;
    }

    /// Total samples.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Count for one δmax value.
    #[must_use]
    pub fn count(&self, delta_max: u32) -> usize {
        self.counts.get(delta_max as usize).copied().unwrap_or(0)
    }

    /// Occurrence frequency of one δmax value in `[0, 1]` (0 when empty).
    #[must_use]
    pub fn frequency(&self, delta_max: u32) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(delta_max) as f64 / self.total as f64
        }
    }

    /// Mean sampled δmax (the paper's Table II "δmax" column); 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts
            .iter()
            .enumerate()
            .map(|(v, &c)| v as f64 * c as f64)
            .sum::<f64>()
            / self.total as f64
    }

    /// Iterates `(delta_max, count)` in increasing δmax order, skipping
    /// values that never occurred.
    pub fn iter(&self) -> impl Iterator<Item = (u32, usize)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| (v as u32, c))
    }

    /// The q-th quantile of the sampled δmax values (`None` when empty),
    /// using the ceiling-rank convention: `quantile(0.0)` is the minimum
    /// sampled value, `quantile(1.0)` the maximum. Exact — the histogram
    /// holds the full integer distribution, so unlike a float sketch this
    /// is the true order statistic.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u32> {
        if self.total == 0 {
            return None;
        }
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let rank = ((q * self.total as f64).ceil() as usize).clamp(1, self.total);
        let mut cumulative = 0usize;
        for (v, c) in self.iter() {
            cumulative += c;
            if cumulative >= rank {
                return Some(v);
            }
        }
        self.iter().last().map(|(v, _)| v)
    }

    /// Merges another histogram into this one: dense count-array addition,
    /// preserving the nonzero-tail invariant (only bins `other` actually
    /// populated are touched). Pure integer addition, so merging is exactly
    /// associative and commutative — the property [`crate::agg`] relies on
    /// to keep merged summary output bit-identical regardless of how the
    /// grid was fragmented across shards, leases, or hosts.
    pub fn merge(&mut self, other: &Self) {
        for (v, c) in other.iter() {
            let idx = v.min(Self::SATURATION) as usize;
            if idx >= self.counts.len() {
                self.counts.resize(idx + 1, 0);
            }
            self.counts[idx] += c;
            self.total += c;
        }
    }
}

impl fmt::Display for DeltaMaxHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "delta_max histogram [")?;
        let mut first = true;
        for (v, c) in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{v}: {c}")?;
            first = false;
        }
        write!(f, "] mean {:.2}", self.mean())
    }
}

/// Energy outcome of one Λ′ model over one episode.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelEnergyReport {
    /// Model name.
    pub name: String,
    /// Discretized period δᵢ.
    pub delta_i: u32,
    /// Energy consumed under the SEO schedule.
    pub optimized: EnergyLedger,
    /// Energy the always-local baseline would have consumed over the same
    /// episode.
    pub baseline: EnergyLedger,
    /// Full local inferences executed.
    pub full_invocations: usize,
    /// Optimized (Ω) slots executed.
    pub optimized_slots: usize,
    /// Offloads issued (0 for gating).
    pub offloads_issued: usize,
    /// Offloads whose response arrived in time.
    pub offload_successes: usize,
    /// Offloads that required the local fallback.
    pub offload_fallbacks: usize,
}

impl ModelEnergyReport {
    /// Fractional energy gain over the baseline (the paper's headline
    /// metric).
    ///
    /// # Errors
    ///
    /// Returns [`SeoError::Platform`] when the baseline consumed no energy.
    pub fn gain(&self) -> Result<f64, SeoError> {
        Ok(self.optimized.gain_over(&self.baseline)?)
    }

    /// Normalized energy (`optimized / baseline`, Fig. 1's vertical axis).
    ///
    /// # Errors
    ///
    /// Returns [`SeoError::Platform`] when the baseline consumed no energy.
    pub fn normalized_energy(&self) -> Result<f64, SeoError> {
        Ok(self.optimized.normalized_against(&self.baseline)?)
    }
}

impl fmt::Display for ModelEnergyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let gain = self
            .gain()
            .map(|g| format!("{:.1}%", g * 100.0))
            .unwrap_or_else(|_| "n/a".into());
        write!(
            f,
            "{} (delta_i={}): gain {gain}, {} full / {} optimized slots",
            self.name, self.delta_i, self.full_invocations, self.optimized_slots
        )
    }
}

/// Complete record of one closed-loop episode.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeReport {
    /// How the episode ended.
    pub status: EpisodeStatus,
    /// Base periods simulated.
    pub steps: usize,
    /// Per-Λ′-model energy outcomes, in registration order.
    pub models: Vec<ModelEnergyReport>,
    /// Histogram of the δmax values sampled at interval starts.
    pub histogram: DeltaMaxHistogram,
    /// Steps on which the safety state was violated (`h < 0`).
    pub unsafe_steps: usize,
    /// Steps on which the safety filter corrected the control.
    pub corrections: usize,
    /// Minimum observed barrier value.
    pub min_barrier: f64,
    /// Minimum observed obstacle distance.
    pub min_distance: f64,
}

impl EpisodeReport {
    /// Whether the run counts toward the paper's "successful test runs"
    /// (route completed without collision).
    #[must_use]
    pub fn is_success(&self) -> bool {
        self.status.is_success()
    }

    /// Combined gain over all Λ′ models (total optimized vs total baseline
    /// energy — the paper's "average energy gains ... for two combined
    /// models", Table II).
    ///
    /// # Errors
    ///
    /// Returns [`SeoError::Platform`] when the combined baseline is zero.
    pub fn combined_gain(&self) -> Result<f64, SeoError> {
        let optimized: EnergyLedger = self.models.iter().map(|m| m.optimized).sum();
        let baseline: EnergyLedger = self.models.iter().map(|m| m.baseline).sum();
        Ok(optimized.gain_over(&baseline)?)
    }
}

impl fmt::Display for EpisodeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "episode {} in {} steps; {} models; {}",
            self.status,
            self.steps,
            self.models.len(),
            self.histogram
        )
    }
}

/// Aggregation over the successful runs of one experiment configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSummary {
    /// Per-model mean gain across runs (energy-weighted: total optimized vs
    /// total baseline), indexed like the per-episode model lists.
    pub model_gains: Vec<f64>,
    /// Mean combined gain across models.
    pub combined_gain: f64,
    /// Mean sampled δmax.
    pub mean_delta_max: f64,
    /// Merged δmax histogram.
    pub histogram: DeltaMaxHistogram,
    /// Successful runs aggregated.
    pub runs: usize,
}

impl ExperimentSummary {
    /// Builds the summary from successful episode reports.
    ///
    /// # Errors
    ///
    /// Returns [`SeoError::InsufficientSuccessfulRuns`] when `reports` is
    /// empty and [`SeoError::Platform`] on zero baselines.
    pub fn from_reports(reports: &[EpisodeReport]) -> Result<Self, SeoError> {
        if reports.is_empty() {
            return Err(SeoError::InsufficientSuccessfulRuns {
                collected: 0,
                requested: 1,
                attempts: 0,
            });
        }
        let n_models = reports[0].models.len();
        let mut model_gains = Vec::with_capacity(n_models);
        for i in 0..n_models {
            let optimized: EnergyLedger = reports.iter().map(|r| r.models[i].optimized).sum();
            let baseline: EnergyLedger = reports.iter().map(|r| r.models[i].baseline).sum();
            model_gains.push(optimized.gain_over(&baseline)?);
        }
        let optimized: EnergyLedger = reports
            .iter()
            .flat_map(|r| r.models.iter().map(|m| m.optimized))
            .sum();
        let baseline: EnergyLedger = reports
            .iter()
            .flat_map(|r| r.models.iter().map(|m| m.baseline))
            .sum();
        let combined_gain = optimized.gain_over(&baseline)?;
        let mut histogram = DeltaMaxHistogram::new();
        for r in reports {
            histogram.merge(&r.histogram);
        }
        Ok(Self {
            model_gains,
            combined_gain,
            mean_delta_max: histogram.mean(),
            histogram,
            runs: reports.len(),
        })
    }
}

impl fmt::Display for ExperimentSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} runs: combined gain {:.1}%, mean delta_max {:.2}",
            self.runs,
            self.combined_gain * 100.0,
            self.mean_delta_max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seo_platform::energy::EnergyCategory;
    use seo_platform::units::Joules;

    fn ledger(j: f64) -> EnergyLedger {
        let mut l = EnergyLedger::new();
        l.record(EnergyCategory::Compute, Joules::new(j));
        l
    }

    fn model_report(name: &str, optimized: f64, baseline: f64) -> ModelEnergyReport {
        ModelEnergyReport {
            name: name.into(),
            delta_i: 1,
            optimized: ledger(optimized),
            baseline: ledger(baseline),
            full_invocations: 1,
            optimized_slots: 3,
            offloads_issued: 0,
            offload_successes: 0,
            offload_fallbacks: 0,
        }
    }

    fn episode(optimized: f64, baseline: f64, deltas: &[u32]) -> EpisodeReport {
        let mut histogram = DeltaMaxHistogram::new();
        for &d in deltas {
            histogram.record(d);
        }
        EpisodeReport {
            status: EpisodeStatus::Completed,
            steps: 100,
            models: vec![model_report("a", optimized, baseline)],
            histogram,
            unsafe_steps: 0,
            corrections: 0,
            min_barrier: 1.0,
            min_distance: 10.0,
        }
    }

    #[test]
    fn histogram_counts_and_frequencies() {
        let mut h = DeltaMaxHistogram::new();
        for d in [4, 4, 4, 2, 1, 1] {
            h.record(d);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.count(4), 3);
        assert_eq!(h.count(3), 0);
        assert!((h.frequency(4) - 0.5).abs() < 1e-12);
        assert!((h.mean() - (4.0 * 3.0 + 2.0 + 2.0) / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_well_behaved() {
        let h = DeltaMaxHistogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.frequency(4), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn histogram_saturates_extreme_deltas() {
        // discretize_deadline() yields u32::MAX for infinite deadlines; the
        // dense backing must saturate instead of allocating u32::MAX slots.
        let mut h = DeltaMaxHistogram::new();
        h.record(u32::MAX);
        h.record(DeltaMaxHistogram::SATURATION + 7);
        assert_eq!(h.count(DeltaMaxHistogram::SATURATION), 2);
        assert_eq!(h.total(), 2);
        let mut other = DeltaMaxHistogram::new();
        other.record(u32::MAX);
        h.merge(&other);
        assert_eq!(h.count(DeltaMaxHistogram::SATURATION), 3);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut bulk = DeltaMaxHistogram::new();
        bulk.record_n(3, 5);
        bulk.record_n(7, 0); // no-op: must not grow the dense tail
        let mut single = DeltaMaxHistogram::new();
        for _ in 0..5 {
            single.record(3);
        }
        assert_eq!(bulk, single);
        assert_eq!(bulk.total(), 5);
        bulk.record_n(u32::MAX, 2);
        assert_eq!(bulk.count(DeltaMaxHistogram::SATURATION), 2);
    }

    #[test]
    fn histogram_merge() {
        let mut a = DeltaMaxHistogram::new();
        a.record(4);
        let mut b = DeltaMaxHistogram::new();
        b.record(4);
        b.record(2);
        a.merge(&b);
        assert_eq!(a.count(4), 2);
        assert_eq!(a.count(2), 1);
    }

    /// Deterministic pseudo-random histogram for the merge properties
    /// below (an inline LCG keeps the test dependency-free).
    fn arbitrary_histogram(seed: u64) -> DeltaMaxHistogram {
        let mut state = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            state >> 33
        };
        let mut h = DeltaMaxHistogram::new();
        for _ in 0..(next() % 20) {
            // Mostly small δmax values, occasionally a saturating one.
            let v = match next() % 10 {
                9 => u32::MAX,
                _ => (next() % 6) as u32,
            };
            h.record_n(v, (next() % 4) as usize);
        }
        h
    }

    #[test]
    fn merge_property_commutative_and_associative() {
        for seed in 0..50 {
            let a = arbitrary_histogram(seed * 3);
            let b = arbitrary_histogram(seed * 3 + 1);
            let c = arbitrary_histogram(seed * 3 + 2);
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            assert_eq!(ab, ba, "merge must be commutative (seed {seed})");
            let mut ab_c = ab.clone();
            ab_c.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut a_bc = a.clone();
            a_bc.merge(&bc);
            assert_eq!(ab_c, a_bc, "merge must be associative (seed {seed})");
        }
    }

    #[test]
    fn merge_property_matches_record_replay() {
        // Merging must equal replaying every (value, count) pair of both
        // operands into a fresh histogram — i.e. merge adds distributions.
        for seed in 0..50 {
            let a = arbitrary_histogram(seed * 2);
            let b = arbitrary_histogram(seed * 2 + 1);
            let mut merged = a.clone();
            merged.merge(&b);
            let mut replayed = DeltaMaxHistogram::new();
            for (v, c) in a.iter().chain(b.iter()) {
                replayed.record_n(v, c);
            }
            assert_eq!(merged, replayed, "seed {seed}");
            assert_eq!(merged.total(), a.total() + b.total());
        }
    }

    #[test]
    fn merge_property_preserves_nonzero_tail() {
        // The dense backing's invariant: the last element, when present,
        // is nonzero. Merging an empty or shorter histogram must never
        // grow a zero tail (that would break derived equality).
        for seed in 0..50 {
            let mut a = arbitrary_histogram(seed);
            let before = a.clone();
            a.merge(&DeltaMaxHistogram::new());
            assert_eq!(a, before, "merging empty is the identity (seed {seed})");
            let b = arbitrary_histogram(seed + 1000);
            a.merge(&b);
            if let Some(&last) = a.counts.last() {
                assert!(last > 0, "nonzero-tail invariant broken (seed {seed})");
            }
        }
    }

    #[test]
    fn quantile_is_the_exact_order_statistic() {
        let mut h = DeltaMaxHistogram::new();
        for v in [1, 1, 2, 3, 3, 3, 4] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.5), Some(3)); // rank ceil(3.5)=4 -> value 3
        assert_eq!(h.quantile(0.99), Some(4));
        assert_eq!(h.quantile(1.0), Some(4));
        assert_eq!(DeltaMaxHistogram::new().quantile(0.5), None);
    }

    #[test]
    fn model_gain_and_normalized_energy() {
        let r = model_report("m", 0.25, 1.0);
        assert!((r.gain().expect("nonzero baseline") - 0.75).abs() < 1e-12);
        assert!((r.normalized_energy().expect("ok") - 0.25).abs() < 1e-12);
        let zero = model_report("z", 0.0, 0.0);
        assert!(zero.gain().is_err());
    }

    #[test]
    fn combined_gain_weights_by_energy() {
        let mut ep = episode(0.0, 0.0, &[4]);
        ep.models = vec![model_report("a", 1.0, 2.0), model_report("b", 1.0, 4.0)];
        // Combined: (1 + 1) / (2 + 4) = 1/3 -> gain 2/3.
        assert!((ep.combined_gain().expect("ok") - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn summary_aggregates_runs() {
        let reports = vec![episode(1.0, 4.0, &[4, 4]), episode(3.0, 4.0, &[2])];
        let s = ExperimentSummary::from_reports(&reports).expect("nonempty");
        assert_eq!(s.runs, 2);
        // Energy-weighted: (1 + 3) / (4 + 4) = 0.5 -> gain 0.5.
        assert!((s.combined_gain - 0.5).abs() < 1e-12);
        assert!((s.mean_delta_max - (4.0 + 4.0 + 2.0) / 3.0).abs() < 1e-12);
        assert_eq!(s.histogram.total(), 3);
        assert_eq!(s.model_gains.len(), 1);
    }

    #[test]
    fn summary_of_empty_reports_is_error() {
        assert!(matches!(
            ExperimentSummary::from_reports(&[]),
            Err(SeoError::InsufficientSuccessfulRuns { .. })
        ));
    }

    #[test]
    fn episode_success_tracks_status() {
        let mut ep = episode(1.0, 2.0, &[4]);
        assert!(ep.is_success());
        ep.status = EpisodeStatus::Collided;
        assert!(!ep.is_success());
    }

    #[test]
    fn displays() {
        let ep = episode(1.0, 2.0, &[4]);
        assert!(ep.to_string().contains("completed"));
        let s = ExperimentSummary::from_reports(&[ep]).expect("ok");
        assert!(s.to_string().contains("combined gain"));
        let r = model_report("m", 1.0, 2.0);
        assert!(r.to_string().contains("50.0%"));
    }

    #[test]
    fn clone_roundtrip() {
        let ep = episode(1.0, 2.0, &[4, 2]);
        let back = ep.clone();
        assert_eq!(back, ep);
    }
}
