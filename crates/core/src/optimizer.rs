//! The energy optimization methods Ω — Section V.
//!
//! Two Ω instantiations are modeled, matching the paper:
//!
//! * **Task offloading** (eq. 7): a due slot transmits the input to an edge
//!   server (`E_Ω = T_tx · P_tx`); if the response has not arrived by the
//!   fallback slot `n == δmax − δᵢ`, the local model is re-invoked and its
//!   full energy `T_N · P_N` is additionally incurred.
//! * **Gating** (eq. 8): a due slot runs the model at a reduced gating
//!   level (model gating) or skips both the computation and the sensor
//!   measurement (sensor gating), in which case only the mechanical power
//!   `P_mech` keeps drawing (`E_Ω = τ · P_mech`).
//!
//! This module holds the *pure* per-slot energy arithmetic; the stochastic
//! offload mechanics (channel sampling, in-flight tracking) live in
//! [`crate::runtime`].

use crate::config::{EnergyAccounting, SeoConfig};
use crate::model::PipelineModel;
use seo_platform::energy::{EnergyCategory, EnergyLedger};
use seo_platform::units::Joules;
use std::fmt;

/// Which optimization method a Λ′ model uses for its Ω slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptimizerKind {
    /// No optimization: the full model runs at every sampling instant
    /// (the baseline every experiment compares against).
    LocalBaseline,
    /// Task offloading over the wireless link with local fallback.
    Offloading,
    /// Model gating: the NN runs at the configured gating level; the sensor
    /// keeps measuring.
    ModelGating,
    /// Sensor gating: computation is skipped *and* the sensor measurement
    /// circuitry is gated; only `P_mech` keeps drawing.
    SensorGating,
}

impl OptimizerKind {
    /// All optimizer kinds, in reporting order.
    pub const ALL: [Self; 4] = [
        Self::LocalBaseline,
        Self::Offloading,
        Self::ModelGating,
        Self::SensorGating,
    ];
}

impl fmt::Display for OptimizerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::LocalBaseline => "local-baseline",
            Self::Offloading => "offloading",
            Self::ModelGating => "model-gating",
            Self::SensorGating => "sensor-gating",
        };
        f.write_str(s)
    }
}

/// Energy cost of one slot, split by category.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SlotCost {
    /// Local NN compute energy.
    pub compute: Joules,
    /// Radio transmission energy.
    pub transmission: Joules,
    /// Sensor measurement energy (`P_meas` share).
    pub sensor_measurement: Joules,
    /// Sensor mechanical energy (`P_mech` share).
    pub sensor_mechanical: Joules,
}

impl SlotCost {
    /// A zero-cost slot.
    pub const ZERO: Self = Self {
        compute: Joules::ZERO,
        transmission: Joules::ZERO,
        sensor_measurement: Joules::ZERO,
        sensor_mechanical: Joules::ZERO,
    };

    /// Total energy of the slot.
    #[must_use]
    pub fn total(&self) -> Joules {
        self.compute + self.transmission + self.sensor_measurement + self.sensor_mechanical
    }

    /// Accumulates this cost into a ledger.
    pub fn apply_to(&self, ledger: &mut EnergyLedger) {
        ledger.record(EnergyCategory::Compute, self.compute);
        ledger.record(EnergyCategory::Transmission, self.transmission);
        ledger.record(EnergyCategory::SensorMeasurement, self.sensor_measurement);
        ledger.record(EnergyCategory::SensorMechanical, self.sensor_mechanical);
    }
}

/// Sensor share of an *active* (measuring) slot under the configured
/// accounting.
fn active_sensor_cost(model: &PipelineModel, config: &SeoConfig) -> (Joules, Joules) {
    match config.accounting {
        EnergyAccounting::ComputeOnly => (Joules::ZERO, Joules::ZERO),
        EnergyAccounting::WithSensor => (
            config.tau * model.sensor().measurement_power(),
            config.tau * model.sensor().mechanical_power(),
        ),
    }
}

/// Cost of a **full local inference** slot (`E_N` of eq. 8): compute plus,
/// under sensor accounting, the active sensor window
/// `τ · (P_mech + P_meas)`.
#[must_use]
pub fn full_slot_cost(model: &PipelineModel, config: &SeoConfig) -> SlotCost {
    let (meas, mech) = active_sensor_cost(model, config);
    SlotCost {
        compute: model.compute().energy_per_inference(),
        transmission: Joules::ZERO,
        sensor_measurement: meas,
        sensor_mechanical: mech,
    }
}

/// Cost of an **optimized (Ω) slot** for the gating methods.
///
/// * [`OptimizerKind::ModelGating`]: compute scaled by the gating level;
///   the sensor keeps measuring.
/// * [`OptimizerKind::SensorGating`]: no compute; only `τ · P_mech` under
///   sensor accounting (eq. 8's `E_Ω`).
/// * [`OptimizerKind::LocalBaseline`]: a full slot (the baseline never
///   optimizes).
/// * [`OptimizerKind::Offloading`]: the *radio* part is stochastic and
///   sampled by the runtime; this function returns the sensor share only
///   (the frame must still be captured to be offloaded).
#[must_use]
pub fn optimized_slot_cost(
    kind: OptimizerKind,
    model: &PipelineModel,
    config: &SeoConfig,
) -> SlotCost {
    match kind {
        OptimizerKind::LocalBaseline => full_slot_cost(model, config),
        OptimizerKind::ModelGating => {
            let (meas, mech) = active_sensor_cost(model, config);
            SlotCost {
                compute: model.compute().energy_at_gating_level(config.gating_level),
                transmission: Joules::ZERO,
                sensor_measurement: meas,
                sensor_mechanical: mech,
            }
        }
        OptimizerKind::SensorGating => {
            let mech = match config.accounting {
                EnergyAccounting::ComputeOnly => Joules::ZERO,
                EnergyAccounting::WithSensor => config.tau * model.sensor().mechanical_power(),
            };
            SlotCost {
                compute: Joules::ZERO,
                transmission: Joules::ZERO,
                sensor_measurement: Joules::ZERO,
                sensor_mechanical: mech,
            }
        }
        OptimizerKind::Offloading => {
            let (meas, mech) = active_sensor_cost(model, config);
            SlotCost {
                compute: Joules::ZERO,
                transmission: Joules::ZERO, // sampled per transmission by the runtime
                sensor_measurement: meas,
                sensor_mechanical: mech,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SeoConfig;
    use crate::model::{Criticality, PipelineModel};
    use seo_platform::compute::ComputeProfile;
    use seo_platform::sensor::SensorSpec;
    use seo_platform::units::Seconds;

    fn detector() -> PipelineModel {
        PipelineModel::paper_detector(1, Seconds::from_millis(20.0)).expect("valid")
    }

    fn lidar_model() -> PipelineModel {
        PipelineModel::new(
            "lidar-detector",
            Seconds::from_millis(20.0),
            ComputeProfile::px2_resnet152(),
            SensorSpec::velodyne_hdl32e(),
            Criticality::Normal,
        )
        .expect("valid")
    }

    #[test]
    fn full_slot_compute_only_is_en() {
        let cost = full_slot_cost(&detector(), &SeoConfig::paper_defaults());
        assert!((cost.compute.as_joules() - 0.119).abs() < 1e-12);
        assert_eq!(cost.sensor_measurement, Joules::ZERO);
        assert!((cost.total().as_joules() - 0.119).abs() < 1e-12);
    }

    #[test]
    fn full_slot_with_sensor_matches_eq8() {
        let config = SeoConfig::paper_defaults().with_accounting(EnergyAccounting::WithSensor);
        let cost = full_slot_cost(&lidar_model(), &config);
        // tau (Pmech + Pmeas) + T_N P_N = 0.02 * 12 + 0.119 = 0.359 J.
        assert!((cost.total().as_joules() - 0.359).abs() < 1e-12);
        assert!((cost.sensor_measurement.as_joules() - 0.02 * 9.6).abs() < 1e-12);
        assert!((cost.sensor_mechanical.as_joules() - 0.02 * 2.4).abs() < 1e-12);
    }

    #[test]
    fn model_gating_scales_compute_by_level() {
        let config = SeoConfig::paper_defaults(); // g = 0.5
        let cost = optimized_slot_cost(OptimizerKind::ModelGating, &detector(), &config);
        assert!((cost.compute.as_joules() - 0.0595).abs() < 1e-12);
        let config = config.with_gating_level(0.0);
        let cost = optimized_slot_cost(OptimizerKind::ModelGating, &detector(), &config);
        assert_eq!(cost.compute, Joules::ZERO);
    }

    #[test]
    fn sensor_gating_leaves_only_mechanical_power() {
        let config = SeoConfig::paper_defaults().with_accounting(EnergyAccounting::WithSensor);
        let cost = optimized_slot_cost(OptimizerKind::SensorGating, &lidar_model(), &config);
        // E_Omega = tau * P_mech = 0.02 * 2.4 = 0.048 J.
        assert!((cost.total().as_joules() - 0.048).abs() < 1e-12);
        assert_eq!(cost.compute, Joules::ZERO);
        assert_eq!(cost.sensor_measurement, Joules::ZERO);
    }

    #[test]
    fn table_iii_4tau_gains_reproduce_from_slot_costs() {
        // Validate the eq. (8) arithmetic against the paper's Table III
        // "4tau gains" column: one interval of delta_max = 4 with a
        // delta_i = 1 sensor has 3 gated + 1 full slot vs 4 full slots.
        let config = SeoConfig::paper_defaults().with_accounting(EnergyAccounting::WithSensor);
        let cases = [
            (SensorSpec::zed_camera(), 0.75),        // paper: 75 %
            (SensorSpec::navtech_cts350x(), 0.6893), // paper: 68.93 %
            (SensorSpec::velodyne_hdl32e(), 0.6482), // paper: 64.82 %
        ];
        for (sensor, expected) in cases {
            let model = detector().with_sensor(sensor.clone());
            let full = full_slot_cost(&model, &config).total().as_joules();
            let gated = optimized_slot_cost(OptimizerKind::SensorGating, &model, &config)
                .total()
                .as_joules();
            let gain = 1.0 - (3.0 * gated + full) / (4.0 * full);
            assert!(
                (gain - expected).abs() < 0.01,
                "{}: gain {gain:.4} vs paper {expected}",
                sensor.name()
            );
        }
    }

    #[test]
    fn table_iii_4tau_gains_p2tau_reproduce() {
        // p = 2 tau: one gated + one full slot vs two full slots.
        let config = SeoConfig::paper_defaults().with_accounting(EnergyAccounting::WithSensor);
        let cases = [
            (SensorSpec::zed_camera(), 0.50),        // paper: 50 %
            (SensorSpec::navtech_cts350x(), 0.4553), // paper: 45.53 %
            (SensorSpec::velodyne_hdl32e(), 0.4191), // paper: 41.91 %
        ];
        for (sensor, expected) in cases {
            let model = detector().with_sensor(sensor.clone());
            let full = full_slot_cost(&model, &config).total().as_joules();
            let gated = optimized_slot_cost(OptimizerKind::SensorGating, &model, &config)
                .total()
                .as_joules();
            let gain = 1.0 - (gated + full) / (2.0 * full);
            assert!(
                (gain - expected).abs() < 0.05,
                "{}: gain {gain:.4} vs paper {expected}",
                sensor.name()
            );
        }
    }

    #[test]
    fn baseline_never_optimizes() {
        let config = SeoConfig::paper_defaults();
        let full = full_slot_cost(&detector(), &config);
        let opt = optimized_slot_cost(OptimizerKind::LocalBaseline, &detector(), &config);
        assert_eq!(full, opt);
    }

    #[test]
    fn offloading_slot_cost_is_sensor_only() {
        let config = SeoConfig::paper_defaults().with_accounting(EnergyAccounting::WithSensor);
        let cost = optimized_slot_cost(OptimizerKind::Offloading, &lidar_model(), &config);
        assert_eq!(cost.compute, Joules::ZERO);
        assert_eq!(cost.transmission, Joules::ZERO);
        assert!(cost.sensor_measurement.as_joules() > 0.0);
    }

    #[test]
    fn slot_cost_applies_to_ledger_by_category() {
        let config = SeoConfig::paper_defaults().with_accounting(EnergyAccounting::WithSensor);
        let cost = full_slot_cost(&lidar_model(), &config);
        let mut ledger = EnergyLedger::new();
        cost.apply_to(&mut ledger);
        assert_eq!(ledger.by_category(EnergyCategory::Compute), cost.compute);
        assert_eq!(
            ledger.by_category(EnergyCategory::SensorMechanical),
            cost.sensor_mechanical
        );
        assert!((ledger.total().as_joules() - cost.total().as_joules()).abs() < 1e-15);
    }

    #[test]
    fn kind_display() {
        assert_eq!(OptimizerKind::Offloading.to_string(), "offloading");
        assert_eq!(OptimizerKind::SensorGating.to_string(), "sensor-gating");
        assert_eq!(OptimizerKind::ALL.len(), 4);
    }
}
