//! Error type for the SEO framework.

use seo_platform::PlatformError;
use seo_safety::SafetyError;
use seo_wireless::WirelessError;
use std::error::Error;
use std::fmt;

/// Errors raised while configuring or running the SEO framework.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SeoError {
    /// A configuration field was out of range.
    InvalidConfig {
        /// Offending field.
        field: &'static str,
        /// Constraint description.
        constraint: &'static str,
    },
    /// The Λ′ subset was empty — there is nothing to optimize.
    NoOptimizableModels,
    /// An experiment could not collect the requested number of successful
    /// (collision-free, completed) runs.
    InsufficientSuccessfulRuns {
        /// Successful runs collected.
        collected: usize,
        /// Successful runs requested.
        requested: usize,
        /// Episodes attempted before giving up.
        attempts: usize,
    },
    /// A platform-layer error (invalid quantities, zero baselines).
    Platform(PlatformError),
    /// A safety-layer error.
    Safety(SafetyError),
    /// A wireless-layer error.
    Wireless(WirelessError),
}

impl fmt::Display for SeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig { field, constraint } => {
                write!(f, "invalid SEO config: {field} must {constraint}")
            }
            Self::NoOptimizableModels => {
                write!(f, "the optimizable subset Λ' is empty")
            }
            Self::InsufficientSuccessfulRuns {
                collected,
                requested,
                attempts,
            } => write!(
                f,
                "collected only {collected}/{requested} successful runs after {attempts} attempts"
            ),
            Self::Platform(e) => write!(f, "platform error: {e}"),
            Self::Safety(e) => write!(f, "safety error: {e}"),
            Self::Wireless(e) => write!(f, "wireless error: {e}"),
        }
    }
}

impl Error for SeoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Platform(e) => Some(e),
            Self::Safety(e) => Some(e),
            Self::Wireless(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlatformError> for SeoError {
    fn from(e: PlatformError) -> Self {
        Self::Platform(e)
    }
}

impl From<SafetyError> for SeoError {
    fn from(e: SafetyError) -> Self {
        Self::Safety(e)
    }
}

impl From<WirelessError> for SeoError {
    fn from(e: WirelessError) -> Self {
        Self::Wireless(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SeoError::NoOptimizableModels.to_string().contains("Λ'"));
        let e = SeoError::InsufficientSuccessfulRuns {
            collected: 3,
            requested: 25,
            attempts: 60,
        };
        assert!(e.to_string().contains("3/25"));
    }

    #[test]
    fn wraps_sub_errors_with_source() {
        let e = SeoError::from(PlatformError::ZeroBaseline);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("platform"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SeoError>();
    }
}
