//! Deterministic fault injection for the multi-host transport.
//!
//! The fleet's recovery paths — retry with backoff, quarantine, lease
//! re-issue — are only trustworthy if they are *exercised*, and only
//! debuggable if every exercised failure is **reproducible**. This module
//! generalizes the old `--fail-after K` knob into a [`FaultPlan`]: a small,
//! parseable description of which faults a daemon injects and when, as a
//! pure function of the plan and a connection counter. No randomness leaks
//! in at injection time; the `seed` field only keys the garble keystream,
//! so two runs with the same fault plan misbehave byte-for-byte alike.
//!
//! The four fault shapes map one-to-one onto the coordinator's fault
//! taxonomy (see `ARCHITECTURE.md`):
//!
//! | grammar        | behaviour                                         | coordinator sees        |
//! |----------------|---------------------------------------------------|-------------------------|
//! | `refuse=N`     | accept + immediately close the first N connects   | transient (EOF)         |
//! | `drop-after=K` | drop the connection after K reports, no `done`    | transient (EOF)         |
//! | `stall-ms=T`   | sleep T ms before emitting report `stall-at` (default 0) | transient (timeout) |
//! | `garble=K`     | corrupt report frame K into guaranteed non-UTF-8  | **fatal** (frame error) |
//!
//! A plan is spelled as comma-separated `key=value` pairs, e.g.
//! `refuse=2,drop-after=5,seed=7`. The legacy `--fail-after K` flag is kept
//! as sugar for `drop-after=K`.
//!
//! # Example
//!
//! ```
//! use seo_core::fault::{FaultAction, FaultPlan};
//!
//! let plan: FaultPlan = "refuse=2,drop-after=1,seed=9".parse()?;
//! assert!(plan.refuses_connection(0) && plan.refuses_connection(1));
//! assert!(!plan.refuses_connection(2));
//! let mut inj = plan.injector(2);
//! assert_eq!(inj.before_report(), FaultAction::Continue);
//! inj.after_report();
//! assert_eq!(inj.before_report(), FaultAction::Drop); // drop-after=1
//! # Ok::<(), seo_core::transport::TransportError>(())
//! ```

use crate::transport::TransportError;
use std::fmt;
use std::str::FromStr;

fn parse_err(message: impl Into<String>) -> TransportError {
    TransportError::Config {
        message: format!("fault plan: {}", message.into()),
    }
}

/// SplitMix64 — the tiny, well-mixed generator seeding the garble
/// keystream. Self-contained so the fault layer stays dependency-free.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic description of the faults a daemon (or an in-process
/// test server) injects. Every field is a count or duration keyed off
/// connection and report counters, so the same plan against the same
/// traffic misbehaves identically every run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Accept and immediately close the first N connections (counted from
    /// daemon start). The coordinator sees an EOF before any frame — a
    /// transient fault it retries.
    pub refuse_connects: u64,
    /// Drop each serving connection after emitting K reports, without a
    /// `done` frame — the classic mid-stream host death (`--fail-after`).
    pub drop_after: Option<usize>,
    /// Stall for this many milliseconds before emitting report
    /// [`Self::stall_at`] on each serving connection, tripping the
    /// coordinator's read timeout when larger than it.
    pub stall_ms: Option<u64>,
    /// Which report (0-based, per connection) the stall precedes.
    pub stall_at: usize,
    /// Garble report frame K (0-based, per connection) into a payload that
    /// is guaranteed invalid UTF-8 — a protocol violation the coordinator
    /// must classify as fatal, not retry.
    pub garble_at: Option<usize>,
    /// Keys the garble keystream; has no effect on *when* faults fire.
    pub seed: u64,
}

impl FaultPlan {
    /// The fault plan equivalent of the legacy `--fail-after K` flag.
    #[must_use]
    pub fn fail_after(k: usize) -> Self {
        Self {
            drop_after: Some(k),
            ..Self::default()
        }
    }

    /// True when the plan injects nothing.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        *self == Self::default()
            || *self
                == Self {
                    seed: self.seed,
                    ..Self::default()
                }
    }

    /// Whether connection number `conn_index` (0-based, counted from
    /// daemon start) should be accepted and immediately closed.
    #[must_use]
    pub fn refuses_connection(&self, conn_index: u64) -> bool {
        conn_index < self.refuse_connects
    }

    /// A fresh per-connection injection state machine. `conn_index` keys
    /// the garble keystream so distinct connections garble distinctly but
    /// reproducibly.
    #[must_use]
    pub fn injector(&self, conn_index: u64) -> FaultInjector<'_> {
        FaultInjector {
            plan: Some(self),
            conn_index,
            emitted: 0,
            stalled: false,
            injected: 0,
        }
    }
}

impl FromStr for FaultPlan {
    type Err = TransportError;

    /// Parses the `key=value[,key=value…]` grammar. Unknown keys and
    /// duplicate keys are rejected by name.
    fn from_str(text: &str) -> Result<Self, TransportError> {
        let mut plan = Self::default();
        let mut seen: Vec<&str> = Vec::new();
        for pair in text.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                return Err(parse_err("empty clause (trailing or doubled comma?)"));
            }
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| parse_err(format!("'{pair}': expected key=value")))?;
            let (key, value) = (key.trim(), value.trim());
            if seen.contains(&key) {
                return Err(parse_err(format!("duplicate key '{key}'")));
            }
            let number = |what: &str| {
                value
                    .parse::<u64>()
                    .map_err(|e| parse_err(format!("{what}={value}: {e}")))
            };
            match key {
                "refuse" => plan.refuse_connects = number("refuse")?,
                "drop-after" => plan.drop_after = Some(number("drop-after")? as usize),
                "stall-ms" => plan.stall_ms = Some(number("stall-ms")?),
                "stall-at" => plan.stall_at = number("stall-at")? as usize,
                "garble" => plan.garble_at = Some(number("garble")? as usize),
                "seed" => plan.seed = number("seed")?,
                other => {
                    return Err(parse_err(format!(
                        "unknown key '{other}' (valid: refuse, drop-after, stall-ms, \
                         stall-at, garble, seed)"
                    )))
                }
            }
            seen.push(key);
        }
        Ok(plan)
    }
}

impl fmt::Display for FaultPlan {
    /// Renders the plan back to its grammar, in canonical key order
    /// (round-trips through [`FromStr`]). A no-op plan renders as `seed=S`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut clauses: Vec<String> = Vec::new();
        if self.refuse_connects > 0 {
            clauses.push(format!("refuse={}", self.refuse_connects));
        }
        if let Some(k) = self.drop_after {
            clauses.push(format!("drop-after={k}"));
        }
        if let Some(t) = self.stall_ms {
            clauses.push(format!("stall-ms={t}"));
            if self.stall_at > 0 {
                clauses.push(format!("stall-at={}", self.stall_at));
            }
        }
        if let Some(k) = self.garble_at {
            clauses.push(format!("garble={k}"));
        }
        clauses.push(format!("seed={}", self.seed));
        write!(f, "{}", clauses.join(","))
    }
}

/// What [`FaultInjector::before_report`] tells the episode loop to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Emit the report normally (a configured stall, if any, has already
    /// been slept through).
    Continue,
    /// Drop the connection now, without a `done` frame.
    Drop,
}

/// Per-connection fault state machine. Built by [`FaultPlan::injector`]
/// (or [`FaultInjector::none`] for fault-free serving) and threaded
/// through the episode loop: `before_report` → (emit, possibly garbled via
/// `garble`) → `after_report`.
#[derive(Debug)]
pub struct FaultInjector<'a> {
    plan: Option<&'a FaultPlan>,
    conn_index: u64,
    emitted: usize,
    stalled: bool,
    injected: u64,
}

impl FaultInjector<'_> {
    /// An injector that never fires — the fault-free serving path.
    #[must_use]
    pub fn none() -> Self {
        FaultInjector {
            plan: None,
            conn_index: 0,
            emitted: 0,
            stalled: false,
            injected: 0,
        }
    }

    /// Called before each report is produced. Sleeps through a configured
    /// stall (once per connection), then decides whether the connection
    /// dies here.
    pub fn before_report(&mut self) -> FaultAction {
        let Some(plan) = self.plan else {
            return FaultAction::Continue;
        };
        if let Some(ms) = plan.stall_ms {
            if !self.stalled && self.emitted == plan.stall_at {
                self.stalled = true;
                self.injected += 1;
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
        }
        if plan.drop_after == Some(self.emitted) {
            self.injected += 1;
            return FaultAction::Drop;
        }
        FaultAction::Continue
    }

    /// Transforms an outgoing report payload: when this report is the
    /// configured garble target, the payload is replaced by a corrupted
    /// one that is **guaranteed** invalid UTF-8 (it starts with `0xFF`),
    /// so the coordinator's frame parser must reject it — a deterministic
    /// protocol violation. Other reports pass through untouched.
    #[must_use]
    pub fn garble(&mut self, payload: Vec<u8>) -> Vec<u8> {
        let Some(plan) = self.plan else {
            return payload;
        };
        if plan.garble_at != Some(self.emitted) {
            return payload;
        }
        self.injected += 1;
        // 0xFF is never valid in UTF-8, so the corruption cannot be
        // mistaken for a well-formed frame; the rest of the payload is
        // XOR-scrambled with a seed-keyed splitmix64 stream so the bytes
        // are reproducible garbage, not a recognizable report.
        let mut state = plan.seed ^ self.conn_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut out = Vec::with_capacity(payload.len() + 2);
        out.extend_from_slice(&[0xFF, 0xFE]);
        for chunk in payload.chunks(8) {
            let word = splitmix64(&mut state).to_le_bytes();
            out.extend(chunk.iter().zip(word.iter()).map(|(b, k)| b ^ k));
        }
        out
    }

    /// Called after each report is emitted.
    pub fn after_report(&mut self) {
        self.emitted += 1;
    }

    /// How many faults this connection has injected so far (stalls, drops,
    /// garbles — refusals are counted by the accept loop, not here).
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_round_trips() {
        for text in [
            "refuse=2,drop-after=5,stall-ms=100,garble=3,seed=9",
            "drop-after=0,seed=0",
            "stall-ms=50,stall-at=2,seed=1",
            "seed=42",
        ] {
            let plan: FaultPlan = text.parse().expect(text);
            let rendered = plan.to_string();
            let reparsed: FaultPlan = rendered.parse().expect(&rendered);
            assert_eq!(plan, reparsed, "{text} → {rendered}");
        }
    }

    #[test]
    fn grammar_rejects_bad_input() {
        for text in [
            "bogus=1",
            "refuse",
            "refuse=x",
            "refuse=1,refuse=2",
            "refuse=1,,seed=2",
            "",
        ] {
            assert!(text.parse::<FaultPlan>().is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn fail_after_sugar_matches_drop_after() {
        assert_eq!(
            FaultPlan::fail_after(3),
            "drop-after=3,seed=0".parse().unwrap()
        );
    }

    #[test]
    fn refusals_count_connections() {
        let plan: FaultPlan = "refuse=2".parse().unwrap();
        assert!(plan.refuses_connection(0));
        assert!(plan.refuses_connection(1));
        assert!(!plan.refuses_connection(2));
        assert!(!FaultPlan::default().refuses_connection(0));
    }

    #[test]
    fn drop_fires_at_exact_report() {
        let plan = FaultPlan::fail_after(2);
        let mut inj = plan.injector(0);
        assert_eq!(inj.before_report(), FaultAction::Continue);
        inj.after_report();
        assert_eq!(inj.before_report(), FaultAction::Continue);
        inj.after_report();
        assert_eq!(inj.before_report(), FaultAction::Drop);
        assert_eq!(inj.injected(), 1);
    }

    #[test]
    fn garble_is_deterministic_and_invalid_utf8() {
        let plan: FaultPlan = "garble=1,seed=7".parse().unwrap();
        let payload = b"{\"i\":4,\"ok\":true}".to_vec();
        let mut a = plan.injector(3);
        let mut b = plan.injector(3);
        // Report 0 passes through untouched.
        assert_eq!(a.garble(payload.clone()), payload);
        a.after_report();
        let _ = b.garble(payload.clone());
        b.after_report();
        let ga = a.garble(payload.clone());
        let gb = b.garble(payload.clone());
        assert_eq!(ga, gb, "same plan + connection must garble identically");
        assert_ne!(ga, payload);
        assert!(std::str::from_utf8(&ga).is_err(), "garble must break UTF-8");
        // A different connection garbles differently (but still invalidly).
        let mut c = plan.injector(4);
        let _ = c.garble(payload.clone());
        c.after_report();
        let gc = c.garble(payload);
        assert_ne!(ga, gc);
        assert!(std::str::from_utf8(&gc).is_err());
    }

    #[test]
    fn noop_detection() {
        assert!(FaultPlan::default().is_noop());
        assert!("seed=5".parse::<FaultPlan>().unwrap().is_noop());
        assert!(!FaultPlan::fail_after(0).is_noop());
    }
}
