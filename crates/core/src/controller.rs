//! The main controller π.
//!
//! The paper's π is an RL-trained neural network emitting steering and
//! throttle. This module lets the runtime be driven by either controller
//! family provided by `seo-nn`:
//!
//! * the deterministic [`PotentialFieldController`] (the experiment-harness
//!   default — reproducible and guaranteed-competent), or
//! * a CEM-trained neural [`DrivingPolicy`], which is what the paper's
//!   title refers to by "multi-sensor **neural** controllers".
//!
//! SEO itself is agnostic: it schedules the *perception* models around π,
//! whichever family π belongs to.

use seo_nn::kernel::{Kernel, ScalarKernel};
use seo_nn::policy::{DrivingPolicy, PolicyFeatures, PotentialFieldController};
use seo_sim::vehicle::Control;
use std::fmt;

/// A driving controller π: features in, control action out.
#[derive(Debug, Clone, PartialEq)]
pub enum Controller {
    /// Deterministic potential-field agent.
    PotentialField(PotentialFieldController),
    /// Neural policy (MLP trained with the Cross-Entropy Method).
    Neural(DrivingPolicy),
}

impl Controller {
    /// The experiment-harness default: a tight-margin potential-field
    /// tuning (see
    /// [`ExperimentConfig::paper_defaults`](crate::experiment::ExperimentConfig::paper_defaults)).
    #[must_use]
    pub fn tight_margin_potential_field() -> Self {
        Self::PotentialField(PotentialFieldController {
            influence_radius: 10.0,
            bearing_cone: 1.2,
            target_speed: 11.0,
            ..PotentialFieldController::default()
        })
    }

    /// A deterministic fixed-seed neural policy (no training run): the
    /// controller kernel benches and the sweep harness's per-backend cells
    /// use this when they need the dense-kernel hot path in the loop — the
    /// potential-field controllers contain no dense kernels, so they cannot
    /// exercise a [`Kernel`] backend.
    #[must_use]
    pub fn seeded_neural(seed: u64) -> Self {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        Self::Neural(DrivingPolicy::new(&mut rng).expect("fixed topology"))
    }

    /// Computes the control action for the given features.
    #[must_use]
    pub fn act(&self, features: &PolicyFeatures) -> Control {
        match self {
            Self::PotentialField(pf) => pf.act(features),
            Self::Neural(policy) => policy.act(features),
        }
    }

    /// Allocation-free [`Self::act`]: neural inference runs inside the
    /// reused `scratch` workspace (the potential-field controller never
    /// allocates either way). Bit-identical to `act`.
    #[must_use]
    pub fn act_scratch(
        &self,
        features: &PolicyFeatures,
        scratch: &mut seo_nn::InferenceScratch,
    ) -> Control {
        self.act_scratch_with::<ScalarKernel>(features, scratch)
    }

    /// [`Self::act_scratch`] over an explicit [`Kernel`] backend — what the
    /// runtime's monomorphized episode loop calls. Bit-identical across
    /// backends by the kernel contract (`seo_nn::kernel`); the
    /// potential-field controller contains no dense kernels, so the backend
    /// only matters for the neural policy.
    #[must_use]
    pub fn act_scratch_with<K: Kernel>(
        &self,
        features: &PolicyFeatures,
        scratch: &mut seo_nn::InferenceScratch,
    ) -> Control {
        match self {
            Self::PotentialField(pf) => pf.act(features),
            Self::Neural(policy) => policy.act_scratch_with::<K>(features, scratch),
        }
    }

    /// Whether this is a neural controller.
    #[must_use]
    pub fn is_neural(&self) -> bool {
        matches!(self, Self::Neural(_))
    }
}

impl Default for Controller {
    fn default() -> Self {
        Self::PotentialField(PotentialFieldController::default())
    }
}

impl From<PotentialFieldController> for Controller {
    fn from(pf: PotentialFieldController) -> Self {
        Self::PotentialField(pf)
    }
}

impl From<DrivingPolicy> for Controller {
    fn from(policy: DrivingPolicy) -> Self {
        Self::Neural(policy)
    }
}

impl fmt::Display for Controller {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::PotentialField(_) => f.write_str("potential-field"),
            Self::Neural(_) => f.write_str("neural-policy"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn features() -> PolicyFeatures {
        PolicyFeatures {
            lateral: 0.2,
            heading: 0.1,
            speed: 0.6,
            obstacle_proximity: 0.5,
            obstacle_bearing: -0.3,
            obstacle_lateral: -0.4,
            progress: 0.5,
        }
    }

    #[test]
    fn both_variants_produce_bounded_controls() {
        let mut rng = StdRng::seed_from_u64(1);
        let controllers = [
            Controller::default(),
            Controller::tight_margin_potential_field(),
            Controller::Neural(DrivingPolicy::new(&mut rng).expect("fixed topology")),
        ];
        for c in &controllers {
            let u = c.act(&features());
            assert!(u.steering.abs() <= 1.0, "{c}: steering out of range");
            assert!(u.throttle.abs() <= 1.0, "{c}: throttle out of range");
        }
    }

    #[test]
    fn conversions_and_flags() {
        let pf: Controller = PotentialFieldController::default().into();
        assert!(!pf.is_neural());
        let mut rng = StdRng::seed_from_u64(2);
        let nn: Controller = DrivingPolicy::new(&mut rng).expect("fixed topology").into();
        assert!(nn.is_neural());
        assert_eq!(pf.to_string(), "potential-field");
        assert_eq!(nn.to_string(), "neural-policy");
    }

    #[test]
    fn neural_controller_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(3);
        let c = Controller::Neural(DrivingPolicy::new(&mut rng).expect("fixed topology"));
        assert_eq!(c.act(&features()), c.act(&features()));
    }

    #[test]
    fn clone_roundtrip() {
        let c = Controller::tight_margin_potential_field();
        let back = c.clone();
        assert_eq!(back, c);
    }
}
