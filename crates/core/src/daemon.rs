//! The long-lived `seo-sweepd` service: a persistent, multi-job worker
//! daemon over the [`crate::transport`] wire protocol.
//!
//! [`crate::transport::WorkerServer`] is the minimal building block — an
//! accept loop that serves one job per connection and nothing else. This
//! module grows it into a *service*:
//!
//! * **Persistence** — the accept loop survives per-connection errors and
//!   serves any number of consecutive jobs; a client that disconnects
//!   mid-job costs one thread's cleanup, never the process.
//! * **Admission control** — at most [`DaemonConfig::jobs`] jobs run
//!   concurrently; a job beyond the cap (or during drain) is answered
//!   with a structured `busy` frame — backpressure the coordinator
//!   retries on, not a silent hang.
//! * **Introspection** — a `health` request frame is answered with a
//!   [`HealthReport`]: liveness plus cumulative counters (jobs served,
//!   episodes emitted, faults injected, uptime ticks).
//! * **Graceful drain** — a `shutdown` control frame (or, in the binary,
//!   SIGTERM via [`request_drain`]) flips the daemon into draining:
//!   in-flight shards finish, new jobs get `busy`, and
//!   [`DaemonServer::serve`] returns `Ok(())` so the process can exit 0.
//! * **Deterministic chaos** — an optional [`FaultPlan`] injects refusals,
//!   mid-stream drops, stalls, and garbled frames, keyed off a connection
//!   counter, so every coordinator recovery path is exercisable in CI.
//!
//! v1/v2 job frames from pre-daemon clients are served unchanged — the
//! first frame of a connection is dispatched by
//! [`crate::transport::parse_daemon_request`], and anything that is not a
//! `health`/`shutdown` verb takes the classic job path. A plan job whose
//! report mode is pure `summary` flows through the same path but ships a
//! single [`crate::transport::summary_frame`] sketch payload instead of
//! per-episode frames ([`crate::agg`]); the `episodes_emitted` counter
//! still advances by the episodes *run*, so health accounting is
//! identical across report modes.
//!
//! The full lifecycle, frame grammar, and operational notes live in
//! `docs/sweepd.md`.

use crate::fault::{FaultInjector, FaultPlan};
use crate::runtime::RuntimeLoop;
use crate::transport::{
    busy_frame, error_frame, io_err, parse_daemon_request, read_frame, serve_job,
    shutdown_ack_frame, write_frame, DaemonRequest, HealthReport, TransportError, DEFAULT_TIMEOUT,
};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Process-wide drain request, set by the `seo-sweepd` binary's SIGTERM
/// handler (an atomic store is async-signal-safe; nothing else here is
/// called from the handler). Every [`DaemonServer`] in the process honours
/// it, alongside its own per-instance flag.
static GLOBAL_DRAIN: AtomicBool = AtomicBool::new(false);

/// Asks every daemon in this process to drain: finish in-flight jobs,
/// refuse new ones with `busy`, then return from
/// [`DaemonServer::serve`]. Safe to call from a signal handler.
pub fn request_drain() {
    GLOBAL_DRAIN.store(true, Ordering::Release);
}

/// How often the accept loop polls for connections and drain progress.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Tuning for a [`DaemonServer`].
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Maximum concurrently running jobs; job number `jobs + 1` gets a
    /// `busy` frame. Clamped to ≥ 1.
    pub jobs: usize,
    /// Per-connection read/write timeout, so a coordinator that connects
    /// and goes silent cannot pin a daemon thread forever.
    pub timeout: Duration,
    /// Deterministic fault injection (testing only); `None` serves
    /// faithfully.
    pub faults: Option<FaultPlan>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            jobs: 4,
            timeout: DEFAULT_TIMEOUT,
            faults: None,
        }
    }
}

/// Cumulative service counters, shared between the accept loop, the
/// per-connection threads, and anyone holding [`DaemonServer::stats`].
#[derive(Debug)]
pub struct DaemonStats {
    jobs_active: AtomicUsize,
    jobs_served: AtomicU64,
    episodes_emitted: AtomicU64,
    faults_injected: AtomicU64,
    started: Instant,
}

impl DaemonStats {
    fn new() -> Self {
        Self {
            jobs_active: AtomicUsize::new(0),
            jobs_served: AtomicU64::new(0),
            episodes_emitted: AtomicU64::new(0),
            faults_injected: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Jobs running right now.
    #[must_use]
    pub fn jobs_active(&self) -> usize {
        self.jobs_active.load(Ordering::Acquire)
    }

    /// Jobs served to completion since the daemon started.
    #[must_use]
    pub fn jobs_served(&self) -> u64 {
        self.jobs_served.load(Ordering::Relaxed)
    }

    /// Episode reports emitted across all completed jobs.
    #[must_use]
    pub fn episodes_emitted(&self) -> u64 {
        self.episodes_emitted.load(Ordering::Relaxed)
    }

    /// Faults deliberately injected by the configured [`FaultPlan`].
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected.load(Ordering::Relaxed)
    }

    /// Whole seconds since the daemon started.
    #[must_use]
    pub fn uptime_ticks(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Snapshot for a `health` response.
    #[must_use]
    pub fn health(&self, accepting: bool) -> HealthReport {
        HealthReport {
            accepting,
            jobs_active: self.jobs_active(),
            jobs_served: self.jobs_served(),
            episodes_emitted: self.episodes_emitted(),
            faults_injected: self.faults_injected(),
            uptime_ticks: self.uptime_ticks(),
        }
    }
}

/// The long-lived multi-job worker daemon (see the module docs for the
/// service contract). Share it in an [`Arc`] to call
/// [`Self::request_drain`] from another thread while [`Self::serve`]
/// runs.
#[derive(Debug)]
pub struct DaemonServer {
    listener: TcpListener,
    config: DaemonConfig,
    stats: Arc<DaemonStats>,
    draining: AtomicBool,
    connections: AtomicU64,
}

impl DaemonServer {
    /// Binds the listener. Use port `0` to let the OS pick (then read the
    /// actual address back via [`Self::local_addr`]).
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] when the address cannot be bound.
    pub fn bind(addr: &str, config: DaemonConfig) -> Result<Self, TransportError> {
        let listener = TcpListener::bind(addr).map_err(|e| io_err(&format!("bind {addr}"), &e))?;
        Ok(Self {
            listener,
            config,
            stats: Arc::new(DaemonStats::new()),
            draining: AtomicBool::new(false),
            connections: AtomicU64::new(0),
        })
    }

    /// The bound address (the one to put in `hosts.json`).
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] when the socket cannot report its address.
    pub fn local_addr(&self) -> Result<SocketAddr, TransportError> {
        self.listener
            .local_addr()
            .map_err(|e| io_err("local_addr", &e))
    }

    /// The daemon's live counters.
    #[must_use]
    pub fn stats(&self) -> Arc<DaemonStats> {
        Arc::clone(&self.stats)
    }

    /// Asks **this** daemon to drain (the per-instance equivalent of a
    /// `shutdown` frame): finish in-flight jobs, answer new ones with
    /// `busy`, then return from [`Self::serve`].
    pub fn request_drain(&self) {
        self.draining.store(true, Ordering::Release);
    }

    /// True once a `shutdown` frame, [`Self::request_drain`], or the
    /// process-wide [`request_drain`] has been seen.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire) || GLOBAL_DRAIN.load(Ordering::Acquire)
    }

    /// Runs the service: accepts and dispatches connections — each one a
    /// job, a `health` probe, or a `shutdown` verb — until a drain is
    /// requested **and** every in-flight job has finished, then returns
    /// `Ok(())` (the binary's cue to exit 0).
    ///
    /// Per-connection failures are reported to stderr and never stop the
    /// loop; the daemon must survive misbehaving coordinators.
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] when the listener cannot be polled at all
    /// (per-connection accept hiccups are logged and survived).
    pub fn serve(self: &Arc<Self>, runtime: Arc<RuntimeLoop>) -> Result<(), TransportError> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| io_err("listener set_nonblocking", &e))?;
        loop {
            if self.is_draining() && self.stats.jobs_active() == 0 {
                return Ok(());
            }
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    let conn_index = self.connections.fetch_add(1, Ordering::Relaxed);
                    if let Some(faults) = &self.config.faults {
                        if faults.refuses_connection(conn_index) {
                            // Injected refusal: accept, count, slam shut.
                            self.stats.faults_injected.fetch_add(1, Ordering::Relaxed);
                            drop(stream);
                            continue;
                        }
                    }
                    let server = Arc::clone(self);
                    let runtime = Arc::clone(&runtime);
                    std::thread::spawn(move || {
                        if let Err(e) = server.handle_connection(stream, &runtime, conn_index) {
                            eprintln!("seo-sweepd: connection from {peer}: {e}");
                        }
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) => {
                    // A transient accept failure (e.g. the peer aborted
                    // while queued) must not kill the service.
                    eprintln!("seo-sweepd: accept: {e}");
                    std::thread::sleep(ACCEPT_POLL);
                }
            }
        }
    }

    /// One connection end to end: timeouts, first-frame dispatch,
    /// admission control, then the job/health/shutdown path.
    fn handle_connection(
        &self,
        mut stream: TcpStream,
        runtime: &RuntimeLoop,
        conn_index: u64,
    ) -> Result<(), TransportError> {
        // Accepted sockets may inherit the listener's non-blocking mode on
        // some platforms; the per-connection protocol is blocking-with-
        // timeout.
        stream
            .set_nonblocking(false)
            .and_then(|()| stream.set_read_timeout(Some(self.config.timeout)))
            .and_then(|()| stream.set_write_timeout(Some(self.config.timeout)))
            .and_then(|()| stream.set_nodelay(true))
            .map_err(|e| io_err("daemon socket setup", &e))?;
        let request = match read_frame(&mut stream)? {
            Some(payload) => match parse_daemon_request(&payload) {
                Ok(request) => request,
                Err(e) => {
                    let _ = write_frame(&mut stream, &error_frame(&e.to_string()));
                    return Err(e);
                }
            },
            None => return Ok(()), // peer connected and left; nothing to do
        };
        match request {
            DaemonRequest::Health => {
                let report = self.stats.health(!self.is_draining());
                write_frame(&mut stream, &report.to_frame())
            }
            DaemonRequest::Shutdown => {
                // Ack first, then flip the flag: the requester learns how
                // many jobs the daemon will finish before exiting.
                write_frame(&mut stream, &shutdown_ack_frame(self.stats.jobs_active()))?;
                self.draining.store(true, Ordering::Release);
                Ok(())
            }
            DaemonRequest::Job(job) => self.handle_job(&mut stream, &job, runtime, conn_index),
        }
    }

    /// Admission control plus the episode loop. The active-jobs slot is
    /// claimed with a compare-exchange so the `--jobs` cap holds under
    /// concurrent connections.
    fn handle_job(
        &self,
        stream: &mut TcpStream,
        job: &crate::transport::JobRequest,
        runtime: &RuntimeLoop,
        conn_index: u64,
    ) -> Result<(), TransportError> {
        let cap = self.config.jobs.max(1);
        let admitted = loop {
            if self.is_draining() {
                break false;
            }
            let active = self.stats.jobs_active.load(Ordering::Acquire);
            if active >= cap {
                break false;
            }
            if self
                .stats
                .jobs_active
                .compare_exchange(active, active + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break true;
            }
        };
        if !admitted {
            let active = self.stats.jobs_active();
            let cap = if self.is_draining() { 0 } else { cap };
            return write_frame(stream, &busy_frame(active, cap));
        }
        let mut injector = match &self.config.faults {
            Some(plan) => plan.injector(conn_index),
            None => FaultInjector::none(),
        };
        let served = serve_job(stream, job, runtime, &mut injector);
        self.stats.jobs_active.fetch_sub(1, Ordering::AcqRel);
        self.stats
            .faults_injected
            .fetch_add(injector.injected(), Ordering::Relaxed);
        match served {
            Ok(Some(count)) => {
                self.stats.jobs_served.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .episodes_emitted
                    .fetch_add(count as u64, Ordering::Relaxed);
                Ok(())
            }
            Ok(None) => Ok(()), // injected mid-stream death; not "served"
            Err(e) => Err(e),
        }
    }
}
