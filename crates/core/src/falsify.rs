//! Deterministic falsification: adversarial search for violating episodes.
//!
//! A sweep asks "what does the grid look like?"; falsification asks "**where
//! does it break?**" — and must answer reproducibly. This module drives a
//! seeded hill-climb with random restarts over a [`SweepPlan`]'s axis values
//! and episode seeds, scoring each candidate episode with an [`Objective`]
//! (lower = closer to failure). Every candidate below the objective's
//! threshold is a violation; each violation is *shrunk* — axes reverted to
//! the plan's first value where possible, the seed bisected toward the base
//! seed — into a minimal one-cell replay [`SweepPlan`] whose serial run
//! reproduces the violating episode bit-identically.
//!
//! # Determinism
//!
//! Every decision the search makes is a pure function of the plan and its
//! [`FalsifySpec::search_seed`]:
//!
//! * restarts draw candidates from a [`StdRng`] seeded with `search_seed`;
//! * neighbor order is a fixed enumeration (axes in declaration order, then
//!   seed-offset steps ±1, ±16, ±256);
//! * candidate evaluation runs the same per-cell serial episode loop as
//!   `sweep --plan` (via [`CellConfig::run_spec`]), which is itself a pure
//!   function of `(spec, seed)`;
//! * evaluations are memoized, so revisiting a candidate costs no budget and
//!   draws no randomness.
//!
//! Two runs of [`falsify`] on the same plan therefore produce byte-identical
//! counterexample streams and provenance — and each emitted replay plan
//! regenerates its recorded episode exactly, on any engine.
//!
//! # Example
//!
//! ```
//! use seo_core::falsify::{falsify, FalsifySpec, Objective};
//! use seo_core::plan::SweepPlan;
//!
//! // A generous threshold turns ordinary near-misses into "violations",
//! // which keeps the example fast; real hunts use tighter thresholds.
//! let plan = SweepPlan::paper(1, 2023).with_falsify(FalsifySpec {
//!     objective: Objective::GatingMargin,
//!     budget: 4,
//!     search_seed: 7,
//!     threshold: 10.0,
//! });
//! let outcome = falsify(&plan)?;
//! // Same plan + same search seed => the entire outcome reproduces.
//! assert_eq!(falsify(&plan)?, outcome);
//! for cx in &outcome.counterexamples {
//!     // Every counterexample replays bit-identically through the normal
//!     // sweep path.
//!     assert_eq!(cx.plan.run_serial()?, vec![cx.report.clone()]);
//! }
//! # Ok::<(), seo_core::SeoError>(())
//! ```

use std::collections::HashMap;
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::batch::ScenarioSpec;
use crate::error::SeoError;
use crate::json::Json;
use crate::metrics::EpisodeReport;
use crate::plan::{CellConfig, GridAxes, SeedRange, SweepPlan};
use crate::runtime::{EpisodeScratch, RuntimeLoop};
use crate::shard;

/// Seed offsets the search may explore above the plan's base seed. Bounded
/// so shrinking by bisection terminates quickly and emitted seeds stay close
/// to the plan's own seed range.
pub const SEED_SPACE: u64 = 4096;

// ---------------------------------------------------------------------------
// Objectives
// ---------------------------------------------------------------------------

/// What the search minimizes. Lower is closer to failure; a candidate whose
/// value drops below the threshold **is** a failure (a counterexample).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Minimum barrier value `h` observed over the episode. Below `0` the
    /// safety invariant was violated outright; small positive values are
    /// near-misses of the control barrier.
    MinBarrier,
    /// Minimum obstacle distance observed over the episode — the margin the
    /// gating pipeline has to work with. Collisions drive this to `0`.
    GatingMargin,
    /// Fraction of issued offloads whose response beat the deadline
    /// (`successes / issued`; an episode that never offloads scores `1`).
    /// Low values mean the offload path is missing its deadlines and the
    /// local fallback is carrying the episode.
    OffloadDeadlineSlack,
}

impl Objective {
    /// Every objective, in canonical order.
    pub const ALL: [Self; 3] = [
        Self::MinBarrier,
        Self::GatingMargin,
        Self::OffloadDeadlineSlack,
    ];

    /// The canonical plan-file name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::MinBarrier => "min-barrier",
            Self::GatingMargin => "gating-margin",
            Self::OffloadDeadlineSlack => "offload-deadline-slack",
        }
    }

    /// Parses a canonical name back into an objective.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message listing the valid names.
    pub fn parse(value: &str) -> Result<Self, String> {
        Self::ALL
            .into_iter()
            .find(|o| o.name() == value)
            .ok_or_else(|| {
                let valid = Self::ALL.map(|o| o.name()).join(", ");
                format!("unknown objective '{value}' (valid: {valid})")
            })
    }

    /// The violation threshold used when the plan does not set one:
    /// `min-barrier` < 0 is a barrier violation, the margin/slack
    /// objectives flag anything below one half.
    #[must_use]
    pub fn default_threshold(&self) -> f64 {
        match self {
            Self::MinBarrier => 0.0,
            Self::GatingMargin | Self::OffloadDeadlineSlack => 0.5,
        }
    }

    /// Scores one episode (lower = closer to failure).
    #[must_use]
    pub fn value(&self, report: &EpisodeReport) -> f64 {
        match self {
            Self::MinBarrier => report.min_barrier,
            Self::GatingMargin => report.min_distance,
            Self::OffloadDeadlineSlack => {
                let issued: usize = report.models.iter().map(|m| m.offloads_issued).sum();
                let successes: usize = report.models.iter().map(|m| m.offload_successes).sum();
                if issued == 0 {
                    1.0
                } else {
                    successes as f64 / issued as f64
                }
            }
        }
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

// ---------------------------------------------------------------------------
// The falsify plan section
// ---------------------------------------------------------------------------

/// The `falsify` section of a plan file: what to minimize, how many fresh
/// episode evaluations the search may spend, and the seed that fixes every
/// search decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FalsifySpec {
    /// The objective the search minimizes.
    pub objective: Objective,
    /// Fresh episode evaluations the search may spend (memoized revisits
    /// are free; a violation found near the end is still shrunk to
    /// completion).
    pub budget: usize,
    /// Seed for every search decision — restarts, candidate draws.
    pub search_seed: u64,
    /// Violation threshold: a candidate with `objective value < threshold`
    /// is a counterexample.
    pub threshold: f64,
}

impl FalsifySpec {
    /// A spec for `objective` with the default budget (256), search seed 0,
    /// and the objective's default threshold.
    #[must_use]
    pub fn new(objective: Objective) -> Self {
        Self {
            objective,
            budget: 256,
            search_seed: 0,
            threshold: objective.default_threshold(),
        }
    }

    /// Encodes the section for a plan file.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("objective", self.objective.name().into()),
            ("budget", self.budget.into()),
            ("search_seed", shard::u64_to_wire(self.search_seed)),
            ("threshold", shard::f64_to_wire(self.threshold)),
        ])
    }

    /// Parses the section, pushing every problem (named `falsify.FIELD`)
    /// through `push`. Returns `None` when the section is unusable.
    pub(crate) fn parse_into(json: &Json, push: &mut dyn FnMut(&str, String)) -> Option<Self> {
        let Json::Obj(pairs) = json else {
            push("falsify", "expected an object".to_owned());
            return None;
        };
        for (key, _) in pairs {
            if !matches!(
                key.as_str(),
                "objective" | "budget" | "search_seed" | "threshold"
            ) {
                push(
                    &format!("falsify.{key}"),
                    "unknown field (expected: objective, budget, search_seed, threshold)"
                        .to_owned(),
                );
            }
        }
        let objective = match json.get("objective").and_then(Json::as_str) {
            Some(name) => match Objective::parse(name) {
                Ok(objective) => Some(objective),
                Err(message) => {
                    push("falsify.objective", message);
                    None
                }
            },
            None => {
                push(
                    "falsify.objective",
                    "missing or non-string objective".to_owned(),
                );
                None
            }
        };
        let mut spec = Self::new(objective?);
        if let Some(budget) = json.get("budget") {
            match budget.as_i64().and_then(|n| usize::try_from(n).ok()) {
                Some(budget) => spec.budget = budget,
                None => push(
                    "falsify.budget",
                    "expected a non-negative integer".to_owned(),
                ),
            }
        }
        if let Some(seed) = json.get("search_seed") {
            match shard::u64_from_wire(seed, "search_seed") {
                Ok(seed) => spec.search_seed = seed,
                Err(e) => push("falsify.search_seed", e.to_string()),
            }
        }
        if let Some(threshold) = json.get("threshold") {
            match threshold.as_f64() {
                Some(threshold) => spec.threshold = threshold,
                None => push("falsify.threshold", "expected a number".to_owned()),
            }
        }
        Some(spec)
    }

    /// Value-level validation, pushing problems named `falsify.FIELD`.
    pub(crate) fn check(&self, push: &mut dyn FnMut(&str, String)) {
        if self.budget == 0 {
            push(
                "falsify.budget",
                "the search needs at least one evaluation".to_owned(),
            );
        }
        if !self.threshold.is_finite() {
            push("falsify.threshold", "must be a finite number".to_owned());
        }
    }
}

impl fmt::Display for FalsifySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "minimize {} below {} within {} evaluation(s), search seed {}",
            self.objective, self.threshold, self.budget, self.search_seed
        )
    }
}

// ---------------------------------------------------------------------------
// Candidates
// ---------------------------------------------------------------------------

/// Number of index dimensions a candidate has: the seven runtime-cell axes
/// plus the obstacle axis.
const N_DIMS: usize = 8;

/// One point of the search space: an index per grid axis plus a seed offset
/// above the plan's base seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Candidate {
    /// Per-axis indices: tau, gating, control mode, optimizer, controller,
    /// channel, traffic, obstacles — in [`GridAxes`] declaration order.
    idx: [usize; N_DIMS],
    /// Episode seed = plan base seed + this offset (`< SEED_SPACE`).
    seed_offset: u64,
}

/// Axis cardinalities in candidate-dimension order.
fn dims(axes: &GridAxes) -> [usize; N_DIMS] {
    [
        axes.tau_ms.len(),
        axes.gating_levels.len(),
        axes.control_modes.len(),
        axes.optimizers.len(),
        axes.controllers.len(),
        axes.channels.len(),
        axes.traffic.len(),
        axes.obstacles.len(),
    ]
}

impl Candidate {
    /// The runtime cell this candidate pins.
    fn cell(&self, axes: &GridAxes) -> CellConfig {
        CellConfig {
            tau_ms: axes.tau_ms[self.idx[0]],
            gating_level: axes.gating_levels[self.idx[1]],
            control_mode: axes.control_modes[self.idx[2]],
            optimizer: axes.optimizers[self.idx[3]],
            controller: axes.controllers[self.idx[4]],
            channel: axes.channels[self.idx[5]],
            traffic: axes.traffic[self.idx[6]],
        }
    }

    /// The scenario spec this candidate runs.
    fn spec(&self, axes: &GridAxes) -> ScenarioSpec {
        ScenarioSpec::new(
            axes.obstacles[self.idx[7]],
            axes.seeds.base.wrapping_add(self.seed_offset),
        )
    }

    /// Neighbors in a fixed, deterministic enumeration order: each index
    /// dimension −1 then +1 (within bounds), then seed-offset steps of
    /// ±1, ±16, ±256 (within `[0, SEED_SPACE)`).
    fn neighbors(&self, dims: &[usize; N_DIMS]) -> Vec<Self> {
        let mut out = Vec::new();
        for (d, &cardinality) in dims.iter().enumerate() {
            if self.idx[d] > 0 {
                let mut n = *self;
                n.idx[d] -= 1;
                out.push(n);
            }
            if self.idx[d] + 1 < cardinality {
                let mut n = *self;
                n.idx[d] += 1;
                out.push(n);
            }
        }
        for step in [1u64, 16, 256] {
            if self.seed_offset >= step {
                out.push(Self {
                    seed_offset: self.seed_offset - step,
                    ..*self
                });
            }
            if self.seed_offset + step < SEED_SPACE {
                out.push(Self {
                    seed_offset: self.seed_offset + step,
                    ..*self
                });
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Memoized evaluation
// ---------------------------------------------------------------------------

/// Runs candidates through the per-cell serial episode loop, memoizing both
/// runtimes (per cell) and episode results (per candidate).
struct Evaluator<'a> {
    plan: &'a SweepPlan,
    objective: Objective,
    dims: [usize; N_DIMS],
    runtimes: HashMap<[usize; 7], RuntimeLoop>,
    results: HashMap<Candidate, (f64, EpisodeReport)>,
    scratch: EpisodeScratch,
    evaluations: usize,
    trace: Vec<f64>,
}

impl<'a> Evaluator<'a> {
    fn new(plan: &'a SweepPlan, objective: Objective) -> Self {
        Self {
            plan,
            objective,
            dims: dims(&plan.axes),
            runtimes: HashMap::new(),
            results: HashMap::new(),
            scratch: EpisodeScratch::new(),
            evaluations: 0,
            trace: Vec::new(),
        }
    }

    /// A uniformly random candidate (the restart draw).
    fn random(&self, rng: &mut StdRng) -> Candidate {
        let mut idx = [0usize; N_DIMS];
        for (i, &n) in self.dims.iter().enumerate() {
            idx[i] = rng.gen_range(0..n);
        }
        Candidate {
            idx,
            seed_offset: rng.gen_range(0..SEED_SPACE),
        }
    }

    /// The objective value of `cand`, running the episode on a cache miss.
    fn eval(&mut self, cand: Candidate) -> Result<f64, SeoError> {
        if let Some((value, _)) = self.results.get(&cand) {
            return Ok(*value);
        }
        let cell_key: [usize; 7] = cand.idx[..7].try_into().expect("seven cell dims");
        if !self.runtimes.contains_key(&cell_key) {
            let runtime = cand.cell(&self.plan.axes).runtime(self.plan.kernel)?;
            self.runtimes.insert(cell_key, runtime);
        }
        let runtime = &self.runtimes[&cell_key];
        let cell = cand.cell(&self.plan.axes);
        let report = cell.run_spec(runtime, cand.spec(&self.plan.axes), &mut self.scratch);
        let value = self.objective.value(&report);
        self.evaluations += 1;
        self.trace.push(value);
        self.results.insert(cand, (value, report));
        Ok(value)
    }

    /// The memoized report of an already-evaluated candidate.
    fn report(&self, cand: Candidate) -> &EpisodeReport {
        &self.results[&cand].1
    }
}

// ---------------------------------------------------------------------------
// Outcome types
// ---------------------------------------------------------------------------

/// One shrunk, replayable violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Counterexample {
    /// The objective that was violated.
    pub objective: Objective,
    /// The violation threshold in force.
    pub threshold: f64,
    /// The objective value of the violating episode (`< threshold`).
    pub value: f64,
    /// The runtime cell of the violating episode.
    pub cell: CellConfig,
    /// Obstacle count of the violating scenario.
    pub obstacles: usize,
    /// Episode seed of the violating scenario.
    pub seed: u64,
    /// Shrink evaluations spent minimizing this counterexample.
    pub shrink_steps: usize,
    /// The minimal one-cell, one-spec serial replay plan: running it
    /// through any sweep engine reproduces [`Self::report`] bit-identically.
    pub plan: SweepPlan,
    /// The violating episode's full report.
    pub report: EpisodeReport,
}

impl Counterexample {
    /// The NDJSON stream line for this counterexample (stable field order,
    /// exact float round-trip — byte-identical across reruns).
    #[must_use]
    pub fn line(&self, ordinal: usize) -> String {
        Json::obj(vec![
            ("counterexample", ordinal.into()),
            ("objective", self.objective.name().into()),
            ("value", shard::f64_to_wire(self.value)),
            ("threshold", shard::f64_to_wire(self.threshold)),
            ("cell", self.cell.to_json()),
            ("obstacles", self.obstacles.into()),
            ("seed", shard::u64_to_wire(self.seed)),
            ("shrink_steps", self.shrink_steps.into()),
            ("plan", self.plan.to_json()),
        ])
        .render()
    }

    /// The expected replay output: the worker wire line of the violating
    /// episode at spec index 0 — exactly what `sweep --plan` prints when
    /// replaying [`Self::plan`].
    #[must_use]
    pub fn expected_line(&self) -> String {
        shard::report_line(0, &self.report)
    }
}

/// Search provenance: how the budget was spent. Serialized into
/// `BENCH_sweep.json` so a falsification run's effort is auditable.
#[derive(Debug, Clone, PartialEq)]
pub struct FalsifyStats {
    /// Random restarts taken.
    pub restarts: usize,
    /// Fresh (non-memoized) episode evaluations, including shrinking.
    pub evaluations: usize,
    /// Evaluations spent shrinking violations.
    pub shrink_steps: usize,
    /// Violations found before deduplication.
    pub violations: usize,
    /// Objective value of every fresh evaluation, in evaluation order.
    pub trace: Vec<f64>,
}

impl FalsifyStats {
    /// Encodes the stats for `BENCH_sweep.json`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("restarts", self.restarts.into()),
            ("evaluations", self.evaluations.into()),
            ("shrink_steps", self.shrink_steps.into()),
            ("violations", self.violations.into()),
            (
                "trace",
                Json::Arr(self.trace.iter().map(|&v| shard::f64_to_wire(v)).collect()),
            ),
        ])
    }
}

/// Everything one falsification run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct FalsifyOutcome {
    /// Deduplicated counterexamples, in discovery order.
    pub counterexamples: Vec<Counterexample>,
    /// Search provenance.
    pub stats: FalsifyStats,
}

// ---------------------------------------------------------------------------
// The search driver
// ---------------------------------------------------------------------------

/// Runs the falsification search described by `plan.falsify` over `plan`'s
/// axes. See the [module docs](self) for the algorithm and the determinism
/// argument.
///
/// # Errors
///
/// [`SeoError::InvalidConfig`] when the plan has no `falsify` section, plus
/// any runtime-construction error from the plan's cells.
pub fn falsify(plan: &SweepPlan) -> Result<FalsifyOutcome, SeoError> {
    let spec = plan.falsify.ok_or(SeoError::InvalidConfig {
        field: "falsify",
        constraint: "be present in the plan to run falsification",
    })?;
    if spec.budget == 0 {
        return Err(SeoError::InvalidConfig {
            field: "falsify.budget",
            constraint: "allow at least one evaluation",
        });
    }
    let mut rng = StdRng::seed_from_u64(spec.search_seed);
    let mut ev = Evaluator::new(plan, spec.objective);
    let mut counterexamples: Vec<Counterexample> = Vec::new();
    let mut restarts = 0usize;
    let mut shrink_total = 0usize;
    let mut violations = 0usize;

    while ev.evaluations < spec.budget {
        restarts += 1;
        let mut current = ev.random(&mut rng);
        let mut value = ev.eval(current)?;
        // Greedy descent: move to the best strictly-improving neighbor
        // until a violation, a local minimum, or budget exhaustion.
        while value >= spec.threshold && ev.evaluations < spec.budget {
            let mut best: Option<(f64, Candidate)> = None;
            for neighbor in current.neighbors(&ev.dims) {
                if ev.evaluations >= spec.budget {
                    break;
                }
                let v = ev.eval(neighbor)?;
                if best.is_none_or(|(bv, _)| v < bv) {
                    best = Some((v, neighbor));
                }
            }
            match best {
                Some((bv, n)) if bv < value => {
                    current = n;
                    value = bv;
                }
                _ => break,
            }
        }
        if value < spec.threshold {
            violations += 1;
            let before = ev.evaluations;
            let minimal = shrink(&mut ev, current, spec.threshold)?;
            let shrink_steps = ev.evaluations - before;
            shrink_total += shrink_steps;
            let cell = minimal.cell(&plan.axes);
            let scenario = minimal.spec(&plan.axes);
            let already = counterexamples.iter().any(|cx| {
                cx.cell == cell && cx.obstacles == scenario.n_obstacles && cx.seed == scenario.seed
            });
            if !already {
                let report = ev.report(minimal).clone();
                counterexamples.push(Counterexample {
                    objective: spec.objective,
                    threshold: spec.threshold,
                    value: spec.objective.value(&report),
                    cell,
                    obstacles: scenario.n_obstacles,
                    seed: scenario.seed,
                    shrink_steps,
                    plan: replay_plan(plan, &cell, &scenario),
                    report,
                });
            }
        }
    }

    Ok(FalsifyOutcome {
        counterexamples,
        stats: FalsifyStats {
            restarts,
            evaluations: ev.evaluations,
            shrink_steps: shrink_total,
            violations,
            trace: ev.trace,
        },
    })
}

/// Greedy minimization of a violating candidate: revert each index
/// dimension to 0 (the plan's first value) if the violation survives, then
/// bisect the seed offset toward 0 while keeping the high end violating.
/// Always terminates on a violating candidate.
fn shrink(
    ev: &mut Evaluator<'_>,
    mut cand: Candidate,
    threshold: f64,
) -> Result<Candidate, SeoError> {
    for d in 0..N_DIMS {
        if cand.idx[d] == 0 {
            continue;
        }
        let mut trial = cand;
        trial.idx[d] = 0;
        if ev.eval(trial)? < threshold {
            cand = trial;
        }
    }
    if cand.seed_offset > 0 {
        let zero = Candidate {
            seed_offset: 0,
            ..cand
        };
        if ev.eval(zero)? < threshold {
            cand = zero;
        } else {
            // Invariant: `hi` violates, `lo` does not; converge to the
            // smallest violating offset on this bracket.
            let (mut lo, mut hi) = (0u64, cand.seed_offset);
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                let trial = Candidate {
                    seed_offset: mid,
                    ..cand
                };
                if ev.eval(trial)? < threshold {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            cand.seed_offset = hi;
        }
    }
    Ok(cand)
}

/// The minimal one-cell, one-spec serial replay plan for a violating
/// episode. Replaying it through `sweep --plan` (any engine) reproduces the
/// recorded episode bit-identically.
fn replay_plan(plan: &SweepPlan, cell: &CellConfig, scenario: &ScenarioSpec) -> SweepPlan {
    SweepPlan::new(GridAxes {
        obstacles: vec![scenario.n_obstacles],
        tau_ms: vec![cell.tau_ms],
        gating_levels: vec![cell.gating_level],
        control_modes: vec![cell.control_mode],
        optimizers: vec![cell.optimizer],
        controllers: vec![cell.controller],
        channels: vec![cell.channel],
        traffic: vec![cell.traffic],
        seeds: SeedRange {
            base: scenario.seed,
            runs: 1,
        },
    })
    .with_kernel(plan.kernel)
    .with_offload(plan.offload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ChannelKind, TrafficKind};

    fn tiny_plan() -> SweepPlan {
        SweepPlan::paper(1, 2023).with_falsify(FalsifySpec {
            objective: Objective::GatingMargin,
            budget: 8,
            search_seed: 11,
            threshold: 6.0,
        })
    }

    #[test]
    fn objective_names_round_trip() {
        for objective in Objective::ALL {
            assert_eq!(
                Objective::parse(objective.name()).expect("parses"),
                objective
            );
        }
        assert!(Objective::parse("speed").is_err());
    }

    #[test]
    fn search_is_deterministic_in_the_search_seed() {
        let plan = tiny_plan();
        let a = falsify(&plan).expect("runs");
        let b = falsify(&plan).expect("runs");
        assert_eq!(a, b);
        // The NDJSON stream is byte-identical too.
        let lines_a: Vec<String> = a
            .counterexamples
            .iter()
            .enumerate()
            .map(|(i, cx)| cx.line(i))
            .collect();
        let lines_b: Vec<String> = b
            .counterexamples
            .iter()
            .enumerate()
            .map(|(i, cx)| cx.line(i))
            .collect();
        assert_eq!(lines_a, lines_b);

        // A different search seed explores differently.
        let mut other = plan.clone();
        other.falsify = Some(FalsifySpec {
            search_seed: 12,
            ..plan.falsify.expect("set")
        });
        let c = falsify(&other).expect("runs");
        assert_ne!(a.stats.trace, c.stats.trace);
    }

    #[test]
    fn counterexamples_replay_bit_identically() {
        let plan = tiny_plan();
        let outcome = falsify(&plan).expect("runs");
        assert!(
            !outcome.counterexamples.is_empty(),
            "the generous threshold should produce a violation"
        );
        for cx in &outcome.counterexamples {
            assert!(cx.value < cx.threshold);
            let replay = cx.plan.run_serial().expect("replay runs");
            assert_eq!(replay, vec![cx.report.clone()], "replay diverged");
            assert_eq!(
                shard::report_line(0, &replay[0]),
                cx.expected_line(),
                "wire line diverged"
            );
        }
    }

    #[test]
    fn shrinking_reverts_axes_to_first_values() {
        // Every episode violates a huge threshold, so whatever the search
        // visits first shrinks all the way back to the first axis values
        // and seed offset 0.
        let plan = SweepPlan::paper(1, 2023)
            .with_obstacles(vec![2])
            .with_tau_ms(vec![20.0, 25.0])
            .with_channels(vec![ChannelKind::Clean, ChannelKind::Bursty])
            .with_traffic(vec![
                TrafficKind::Static,
                TrafficKind::Oncoming {
                    count: 1,
                    speed_mps: 5.0,
                },
            ])
            .with_falsify(FalsifySpec {
                objective: Objective::GatingMargin,
                budget: 3,
                search_seed: 5,
                threshold: 1e9,
            });
        let outcome = falsify(&plan).expect("runs");
        let cx = &outcome.counterexamples[0];
        assert_eq!(cx.cell.tau_ms, 20.0);
        assert_eq!(cx.cell.channel, ChannelKind::Clean);
        assert_eq!(cx.cell.traffic, TrafficKind::Static);
        assert_eq!(cx.seed, 2023, "seed shrinks to the plan base");
        assert_eq!(cx.obstacles, 2, "obstacle axis pinned to its only value");
    }

    #[test]
    fn budget_bounds_search_but_not_shrinking() {
        let plan = tiny_plan();
        let outcome = falsify(&plan).expect("runs");
        let spec = plan.falsify.expect("set");
        assert!(outcome.stats.evaluations >= spec.budget.min(outcome.stats.trace.len()));
        assert_eq!(outcome.stats.evaluations, outcome.stats.trace.len());
        // Only shrink evaluations may exceed the budget.
        assert!(outcome.stats.evaluations <= spec.budget + outcome.stats.shrink_steps);
    }

    #[test]
    fn falsify_without_a_section_is_an_error() {
        let err = falsify(&SweepPlan::paper(1, 2023)).expect_err("no section");
        assert!(err.to_string().contains("falsify"));
    }

    #[test]
    fn stats_serialize_with_exact_floats() {
        let stats = FalsifyStats {
            restarts: 2,
            evaluations: 5,
            shrink_steps: 1,
            violations: 1,
            trace: vec![0.1, 0.2],
        };
        let json = stats.to_json().render();
        assert!(json.contains("\"restarts\":2"), "{json}");
        assert!(json.contains("\"trace\":[0.1,0.2]"), "{json}");
    }
}
