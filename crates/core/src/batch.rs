//! The parallel scenario-sweep engine.
//!
//! Every paper table and figure is produced by pushing many
//! scenario × seed configurations through the same closed control loop, so
//! sweep throughput is the reproduction's bottleneck. [`BatchRunner`] fans a
//! list of [`ScenarioSpec`]s out over a pool of worker threads, each worker
//! holding one reusable [`EpisodeScratch`] so the per-control-step hot path
//! never touches the heap.
//!
//! Determinism is a hard guarantee, not best-effort: each episode's entire
//! stochastic stream derives from its spec's seed, worlds are generated
//! per-spec, and results are returned in spec order — so
//! [`BatchRunner::run`] is **bit-identical** to [`BatchRunner::run_serial`]
//! regardless of thread count or scheduling.
//!
//! # Example
//!
//! ```
//! use seo_core::batch::{BatchRunner, ScenarioSpec};
//! use seo_core::prelude::*;
//!
//! let config = SeoConfig::paper_defaults();
//! let models = ModelSet::paper_setup(config.tau)?;
//! let runner = BatchRunner::new(RuntimeLoop::new(
//!     config, models, OptimizerKind::Offloading,
//! )?);
//! let specs = ScenarioSpec::grid(&[0], 2, 2023); // two obstacle-free cells
//! let reports = runner.run(&specs);
//! assert_eq!(reports, runner.run_serial(&specs)); // the determinism invariant
//! # Ok::<(), seo_core::SeoError>(())
//! ```

use crate::metrics::EpisodeReport;
use crate::runtime::{EpisodeScratch, RuntimeLoop, WorldSource};
use seo_sim::scenario::ScenarioConfig;
use seo_sim::world::World;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One cell of a sweep: which world to generate and which seed drives the
/// episode's stochastic machinery (wireless channel, server latency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScenarioSpec {
    /// Obstacles on the route (the paper sweeps {0, 2, 4}).
    pub n_obstacles: usize,
    /// Seed for both scenario generation and the episode RNG.
    pub seed: u64,
}

impl ScenarioSpec {
    /// Creates a spec.
    #[must_use]
    pub fn new(n_obstacles: usize, seed: u64) -> Self {
        Self { n_obstacles, seed }
    }

    /// The paper's evaluation grid: for each obstacle count, `runs` seeds
    /// starting at `base_seed` (run `k` uses `base_seed + k`).
    #[must_use]
    pub fn grid(obstacle_counts: &[usize], runs: usize, base_seed: u64) -> Vec<Self> {
        let mut specs = Vec::with_capacity(obstacle_counts.len() * runs);
        for &n in obstacle_counts {
            for k in 0..runs as u64 {
                specs.push(Self::new(n, base_seed.wrapping_add(k)));
            }
        }
        specs
    }

    /// The sweep-harness grid shared by every distributed mode: `scenarios`
    /// cells spread over the paper's {0, 2, 4} obstacle counts (rounded up
    /// to a multiple of three). The `sweep` binary's coordinator and
    /// `--worker` modes, the `seo-sweepd` TCP worker, and
    /// [`crate::transport::RemoteCoordinator`] all reconstruct the grid
    /// through here, so `(scenarios, seed)` fully determines the spec list
    /// on every machine involved.
    ///
    /// The declarative form of this grid is the named paper preset
    /// [`crate::plan::SweepPlan::paper`], whose expansion is **byte-
    /// identical** to this function (property-tested); multi-axis grids
    /// beyond obstacles × seed are described there.
    #[must_use]
    pub fn paper_grid(scenarios: usize, base_seed: u64) -> Vec<Self> {
        Self::grid(&[0, 2, 4], scenarios.div_ceil(3), base_seed)
    }

    /// Generates the world for this spec (deterministic in the seed).
    #[must_use]
    pub fn world(&self) -> World {
        ScenarioConfig::new(self.n_obstacles)
            .with_seed(self.seed)
            .generate()
    }
}

impl fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} obstacle(s), seed {}", self.n_obstacles, self.seed)
    }
}

/// Fans scenario sweeps out over a worker pool.
///
/// # Example
///
/// ```
/// use seo_core::batch::{BatchRunner, ScenarioSpec};
/// use seo_core::prelude::*;
///
/// let config = SeoConfig::paper_defaults();
/// let models = ModelSet::paper_setup(config.tau)?;
/// let runtime = RuntimeLoop::new(config, models, OptimizerKind::ModelGating)?;
/// let runner = BatchRunner::new(runtime);
/// let specs = ScenarioSpec::grid(&[0, 2], 3, 2023);
/// let reports = runner.run(&specs);
/// assert_eq!(reports.len(), 6);
/// // Parallel output is bit-identical to the serial loop.
/// assert_eq!(reports, runner.run_serial(&specs));
/// # Ok::<(), seo_core::SeoError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BatchRunner {
    runtime: RuntimeLoop,
    threads: usize,
}

impl BatchRunner {
    /// Wraps a runtime; the pool sizes itself to [`Self::default_threads`].
    #[must_use]
    pub fn new(runtime: RuntimeLoop) -> Self {
        Self {
            runtime,
            threads: Self::default_threads(),
        }
    }

    /// The worker count used when none is given explicitly: the
    /// `SEO_THREADS` environment variable when set to a positive integer,
    /// otherwise the machine's available parallelism. Every sweep entry
    /// point (this runner, [`crate::experiment::ExperimentConfig::run_auto`],
    /// the bench binaries) resolves its pool through here so one knob
    /// governs them all.
    #[must_use]
    pub fn default_threads() -> usize {
        Self::threads_override(std::env::var("SEO_THREADS").ok().as_deref()).unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
    }

    /// Interprets an `SEO_THREADS`-style override: `Some(n)` for a positive
    /// integer value, `None` (fall back to available parallelism) for
    /// absent, unparsable, or zero values.
    fn threads_override(value: Option<&str>) -> Option<usize> {
        value
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t > 0)
    }

    /// Overrides the worker count (builder style; clamped to at least 1).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The wrapped runtime.
    #[must_use]
    pub fn runtime(&self) -> &RuntimeLoop {
        &self.runtime
    }

    /// The worker count episodes fan out over.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The default episode body: generate the spec's static world and run
    /// it through the runtime. [`Self::run`] and [`Self::run_serial`] are
    /// exactly the generic loops applied to this function.
    fn static_episode(
        runtime: &RuntimeLoop,
        spec: &ScenarioSpec,
        scratch: &mut EpisodeScratch,
    ) -> EpisodeReport {
        let world = spec.world();
        runtime.run_with(WorldSource::Static(&world), spec.seed, scratch)
    }

    /// Runs every spec and returns reports **in spec order**, fanned out
    /// over the worker pool. Work is distributed dynamically (an atomic
    /// cursor), so stragglers never idle the pool, while per-spec seeding
    /// keeps the output independent of which worker ran what.
    #[must_use]
    pub fn run(&self, specs: &[ScenarioSpec]) -> Vec<EpisodeReport> {
        self.run_with_episode(specs, Self::static_episode)
    }

    /// Reference serial loop over the same specs — one scratch, one thread.
    /// [`Self::run`] must (and does) produce bit-identical output.
    #[must_use]
    pub fn run_serial(&self, specs: &[ScenarioSpec]) -> Vec<EpisodeReport> {
        self.run_serial_with_episode(specs, Self::static_episode)
    }

    /// [`Self::run`] with a caller-supplied episode body — how the plan
    /// layer fans out cells whose episodes are not plain static worlds
    /// (e.g. a `traffic` axis value that lifts each world into a
    /// [`seo_sim::dynamics::DynamicWorld`]). The determinism contract is
    /// unchanged *provided* `episode` is a pure function of
    /// `(runtime, spec)` — the scratch must never influence results.
    #[must_use]
    pub fn run_with_episode<F>(&self, specs: &[ScenarioSpec], episode: F) -> Vec<EpisodeReport>
    where
        F: Fn(&RuntimeLoop, &ScenarioSpec, &mut EpisodeScratch) -> EpisodeReport + Sync,
    {
        let workers = self.threads.min(specs.len()).max(1);
        if workers == 1 {
            return self.run_serial_with_episode(specs, episode);
        }
        let cursor = AtomicUsize::new(0);
        let mut results: Vec<Option<EpisodeReport>> = Vec::new();
        results.resize_with(specs.len(), || None);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let cursor = &cursor;
                let runtime = &self.runtime;
                let episode = &episode;
                handles.push(scope.spawn(move || {
                    let mut scratch = EpisodeScratch::new();
                    let mut local: Vec<(usize, EpisodeReport)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(spec) = specs.get(i) else { break };
                        local.push((i, episode(runtime, spec, &mut scratch)));
                    }
                    local
                }));
            }
            for handle in handles {
                for (i, report) in handle.join().expect("sweep worker panicked") {
                    results[i] = Some(report);
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every spec index visited"))
            .collect()
    }

    /// [`Self::run_serial`] with a caller-supplied episode body.
    #[must_use]
    pub fn run_serial_with_episode<F>(
        &self,
        specs: &[ScenarioSpec],
        episode: F,
    ) -> Vec<EpisodeReport>
    where
        F: Fn(&RuntimeLoop, &ScenarioSpec, &mut EpisodeScratch) -> EpisodeReport,
    {
        let mut scratch = EpisodeScratch::new();
        specs
            .iter()
            .map(|spec| episode(&self.runtime, spec, &mut scratch))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SeoConfig;
    use crate::model::ModelSet;
    use crate::optimizer::OptimizerKind;

    fn runner(optimizer: OptimizerKind) -> BatchRunner {
        let config = SeoConfig::paper_defaults();
        let models = ModelSet::paper_setup(config.tau).expect("valid");
        BatchRunner::new(RuntimeLoop::new(config, models, optimizer).expect("valid runtime"))
    }

    #[test]
    fn grid_enumerates_counts_by_seeds() {
        let specs = ScenarioSpec::grid(&[0, 2, 4], 2, 100);
        assert_eq!(specs.len(), 6);
        assert_eq!(specs[0], ScenarioSpec::new(0, 100));
        assert_eq!(specs[1], ScenarioSpec::new(0, 101));
        assert_eq!(specs[4], ScenarioSpec::new(4, 100));
        assert_eq!(specs[0].to_string(), "0 obstacle(s), seed 100");
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        let runner = runner(OptimizerKind::Offloading);
        let specs = ScenarioSpec::grid(&[0, 2, 4], 3, 2023);
        let serial = runner.run_serial(&specs);
        for threads in [2usize, 3, 8] {
            let parallel = runner.clone().with_threads(threads).run(&specs);
            assert_eq!(
                parallel, serial,
                "{threads} workers must reproduce the serial sweep"
            );
        }
    }

    #[test]
    fn reports_come_back_in_spec_order() {
        let runner = runner(OptimizerKind::ModelGating).with_threads(4);
        let specs = ScenarioSpec::grid(&[0, 4], 4, 7);
        let reports = runner.run(&specs);
        assert_eq!(reports.len(), specs.len());
        // Spot-check order: reports for the same spec must match a direct
        // run regardless of which worker produced them.
        for (spec, report) in specs.iter().zip(&reports) {
            let direct = runner.runtime().run_episode(&spec.world(), spec.seed);
            assert_eq!(*report, direct, "out-of-order report for {spec}");
        }
    }

    #[test]
    fn empty_spec_list_is_empty_result() {
        let runner = runner(OptimizerKind::ModelGating);
        assert!(runner.run(&[]).is_empty());
        assert!(runner.run_serial(&[]).is_empty());
    }

    #[test]
    fn thread_overrides_clamp() {
        let runner = runner(OptimizerKind::ModelGating).with_threads(0);
        assert_eq!(runner.threads(), 1);
        assert!(BatchRunner::new(runner.runtime().clone()).threads() >= 1);
    }

    #[test]
    fn sweeps_are_kernel_backend_invariant() {
        use crate::controller::Controller;
        use seo_nn::kernel::KernelBackend;
        // Neural controller so the kernel backend is actually exercised.
        let config = SeoConfig::paper_defaults();
        let models = ModelSet::paper_setup(config.tau).expect("valid");
        let runtime = RuntimeLoop::new(config, models, OptimizerKind::Offloading)
            .expect("valid runtime")
            .with_controller(Controller::seeded_neural(5));
        let specs = ScenarioSpec::grid(&[0, 2], 3, 2023);
        let reference = BatchRunner::new(runtime.clone()).run_serial(&specs);
        for backend in KernelBackend::ALL {
            let runner = BatchRunner::new(runtime.clone().with_kernel(backend)).with_threads(3);
            assert_eq!(
                runner.run(&specs),
                reference,
                "{backend} sweep diverged from the scalar serial loop"
            );
        }
    }

    #[test]
    fn seo_threads_override_parsing() {
        // Pure-function test: mutating the process environment would race
        // with every other test that constructs a BatchRunner.
        assert_eq!(BatchRunner::threads_override(Some("3")), Some(3));
        assert_eq!(BatchRunner::threads_override(Some(" 8 ")), Some(8));
        assert_eq!(BatchRunner::threads_override(Some("0")), None);
        assert_eq!(BatchRunner::threads_override(Some("not a number")), None);
        assert_eq!(BatchRunner::threads_override(None), None);
        assert!(BatchRunner::default_threads() >= 1);
    }
}
