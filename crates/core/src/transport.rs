//! Multi-host sweep transport: length-delimited TCP framing over the v1
//! NDJSON episode protocol, validated host-pool configuration, and a
//! fault-tolerant remote coordinator.
//!
//! [`crate::shard`] scales a sweep across **processes** on one machine; this
//! module scales the same grid across **hosts** while keeping the same
//! invariant: the merged output is bit-identical to
//! [`crate::batch::BatchRunner::run_serial`] over the whole grid, no matter
//! how many hosts participate or which of them die mid-stream.
//!
//! 1. **Framing** — each message travels as a 4-byte big-endian length
//!    prefix followed by that many payload bytes ([`write_frame`] /
//!    [`read_frame`]). Report payloads are byte-for-byte the
//!    [`crate::shard::report_line`] NDJSON the process-level protocol
//!    already speaks; TCP merely carries them. Control frames (`job`,
//!    `done`, `error`, `busy`, `health`, `shutdown`) are JSON objects
//!    distinguished by a `"type"` field, as is the `summary` frame — the
//!    one whole-shard sketch payload a job ships instead of episode
//!    frames when its plan's report mode is pure `summary`
//!    ([`crate::agg`]).
//! 2. **[`HostPool`]** — the `--hosts hosts.json` configuration, parsed and
//!    validated by [`crate::json`]: duplicate addresses, zero capacities,
//!    blank addresses, and empty pools are rejected **before** any
//!    connection is attempted. The pool also carries the fleet's
//!    [`RetryPolicy`] (`exec.hosts.retry` in a [`SweepPlan`]).
//! 3. **[`RemoteCoordinator`]** — a pull-based work-stealing scheduler:
//!    the grid is carved into chunk-sized leases ([`crate::lease`],
//!    `exec.hosts.chunk` in a plan) and each host pulls the next lease
//!    whenever it is idle, streaming every report into one
//!    [`StreamingMerge`]. Every lease failure is classified as
//!    **transient** (connect refused, timeout, dropped connection, `busy`
//!    backpressure — retried in place with bounded exponential backoff)
//!    or **fatal** (protocol violation — never retried). A host that
//!    exhausts its retry budget is *quarantined*: the unreported
//!    remainder of its lease re-queues immediately for the survivors to
//!    steal, while the host is re-probed with `health` exchanges and
//!    rejoins the pull loop mid-run once a probe passes *and* the fleet
//!    has merged something since its last admission. Protocol violators,
//!    and quarantined hosts whose probes keep failing while the fleet
//!    makes no progress, are declared dead permanently — that "progress
//!    or death" rule is what guarantees termination.
//! 4. **[`crate::daemon::DaemonServer`]** / [`WorkerServer`] — the accept
//!    loops behind the `seo-sweepd` binary. `DaemonServer` is the
//!    long-lived multi-job service (admission control, `health`,
//!    graceful drain); `WorkerServer` is the minimal
//!    one-job-per-connection building block it grew from.
//!
//! Deterministic fault injection for all of the above lives in
//! [`crate::fault`]; `docs/sweepd.md` is the service book.
//!
//! # Example
//!
//! ```
//! use seo_core::transport::HostPool;
//!
//! let pool = HostPool::parse(
//!     r#"{"v":1,"hosts":[
//!         {"addr":"10.0.0.1:7641","capacity":4},
//!         {"addr":"10.0.0.2:7641","capacity":2}
//!     ]}"#,
//! )?;
//! assert_eq!(pool.total_capacity(), 6);
//! // Zero-capacity or duplicate hosts never reach the network layer.
//! assert!(HostPool::parse(
//!     r#"{"v":1,"hosts":[{"addr":"10.0.0.1:7641","capacity":0}]}"#
//! ).is_err());
//! # Ok::<(), seo_core::transport::TransportError>(())
//! ```

use crate::agg::{CellSketch, RunSummary};
use crate::batch::ScenarioSpec;
use crate::fault::{FaultAction, FaultInjector, FaultPlan};
use crate::json::Json;
use crate::lease::{ChunkPolicy, Lease, LeaseQueue};
use crate::metrics::EpisodeReport;
use crate::plan::{CellConfig, SweepPlan};
use crate::reactor::{OffloadExec, Reactor};
use crate::runtime::{EpisodeScratch, RuntimeLoop, WorldSource};
use crate::shard::{self, Shard, ShardError, StreamingMerge};
use std::fmt;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Upper bound on a single frame's payload, rejecting absurd length
/// prefixes (a peer speaking a different protocol, or garbage) before any
/// allocation happens. Real report lines are a few kilobytes.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Default per-connection timeout (connect, read, write). A host that goes
/// silent longer than this is declared lost and its lease remainder is
/// re-queued for re-issue.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

/// Errors raised by the multi-host transport: configuration validation,
/// framing, socket I/O, merge protocol violations, and fleet exhaustion.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TransportError {
    /// An invalid host-pool configuration (empty pool, duplicate address,
    /// zero capacity, malformed JSON).
    Config {
        /// What was wrong.
        message: String,
    },
    /// A malformed, oversized, or truncated frame.
    Frame {
        /// What was wrong.
        message: String,
    },
    /// A socket-level failure.
    Io {
        /// What the transport was doing when it failed.
        context: String,
        /// The underlying I/O error.
        message: String,
    },
    /// The streaming merge rejected a report (duplicate index, index
    /// outside the grid, or a hole at the end of the run).
    Merge(ShardError),
    /// Every host died before the grid completed; lease re-issue has
    /// nowhere left to go.
    NoSurvivors {
        /// Spec indices still unreported when the last host was lost.
        remaining: usize,
        /// The failure message of the last host to die.
        last_error: String,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Config { message } => write!(f, "host pool config error: {message}"),
            Self::Frame { message } => write!(f, "frame error: {message}"),
            Self::Io { context, message } => write!(f, "{context}: {message}"),
            Self::Merge(e) => write!(f, "merge error: {e}"),
            Self::NoSurvivors {
                remaining,
                last_error,
            } => write!(
                f,
                "all hosts lost with {remaining} spec(s) unreported (last failure: {last_error})"
            ),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<ShardError> for TransportError {
    fn from(e: ShardError) -> Self {
        Self::Merge(e)
    }
}

fn config_err(message: impl Into<String>) -> TransportError {
    TransportError::Config {
        message: message.into(),
    }
}

fn frame_err(message: impl Into<String>) -> TransportError {
    TransportError::Frame {
        message: message.into(),
    }
}

pub(crate) fn io_err(context: &str, e: &std::io::Error) -> TransportError {
    TransportError::Io {
        context: context.to_owned(),
        message: e.to_string(),
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Writes one length-delimited frame (4-byte big-endian payload length,
/// then the payload) and flushes, so the peer sees it immediately.
///
/// # Errors
///
/// [`TransportError::Frame`] when the payload exceeds [`MAX_FRAME_LEN`],
/// [`TransportError::Io`] on a socket failure.
pub fn write_frame(w: &mut dyn Write, payload: &[u8]) -> Result<(), TransportError> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME_LEN)
        .ok_or_else(|| {
            frame_err(format!(
                "payload of {} bytes exceeds the {MAX_FRAME_LEN}-byte frame cap",
                payload.len()
            ))
        })?;
    w.write_all(&len.to_be_bytes())
        .and_then(|()| w.write_all(payload))
        .and_then(|()| w.flush())
        .map_err(|e| io_err("writing frame", &e))
}

/// Reads one length-delimited frame. Returns `Ok(None)` on a clean EOF at a
/// frame boundary — the peer closed the connection between frames.
///
/// # Errors
///
/// [`TransportError::Frame`] on a truncated frame or a length prefix above
/// [`MAX_FRAME_LEN`], [`TransportError::Io`] on a socket failure (including
/// a read timeout).
pub fn read_frame(r: &mut dyn Read) -> Result<Option<Vec<u8>>, TransportError> {
    let mut len_buf = [0u8; 4];
    match read_full(r, &mut len_buf)? {
        0 => return Ok(None),
        4 => {}
        n => return Err(frame_err(format!("truncated length prefix ({n}/4 bytes)"))),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(frame_err(format!(
            "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    let got = read_full(r, &mut payload)?;
    if got != payload.len() {
        return Err(frame_err(format!(
            "truncated frame ({got}/{} payload bytes)",
            payload.len()
        )));
    }
    Ok(Some(payload))
}

/// Reads until `buf` is full or EOF; returns the bytes read. Unlike
/// `read_exact`, a clean EOF before the first byte is distinguishable from
/// a mid-buffer truncation.
fn read_full(r: &mut dyn Read, buf: &mut [u8]) -> Result<usize, TransportError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(io_err("reading frame", &e)),
        }
    }
    Ok(filled)
}

// ---------------------------------------------------------------------------
// Protocol messages
// ---------------------------------------------------------------------------

fn get<'a>(obj: &'a Json, field: &str) -> Result<&'a Json, TransportError> {
    obj.get(field)
        .ok_or_else(|| frame_err(format!("missing field '{field}'")))
}

fn get_usize(obj: &Json, field: &str) -> Result<usize, TransportError> {
    get(obj, field)?
        .as_i64()
        .and_then(|v| usize::try_from(v).ok())
        .ok_or_else(|| frame_err(format!("{field}: expected a non-negative integer")))
}

fn check_version(obj: &Json) -> Result<(), TransportError> {
    let v = get(obj, "v")?
        .as_i64()
        .ok_or_else(|| frame_err("v: expected an integer"))?;
    if v != i64::try_from(shard::WIRE_VERSION).unwrap_or(i64::MAX) {
        return Err(frame_err(format!(
            "wire version {v} (this build speaks {})",
            shard::WIRE_VERSION
        )));
    }
    Ok(())
}

/// One unit of work a coordinator sends a worker: run the shard
/// `[start, end)` of the shared grid and stream one report frame per
/// episode, **in ascending index order**, followed by a `done` frame.
///
/// The grid is either the legacy paper grid
/// `ScenarioSpec::paper_grid(scenarios, seed)` or — when the optional
/// `plan` payload is present — the expanded multi-axis grid of a
/// [`SweepPlan`] shipped inline with the job, so a daemon needs no local
/// plan file to serve one.
///
/// The ascending-order requirement is load-bearing for fault tolerance: it
/// makes a lost host's unreported work a contiguous tail, which is what
/// [`RemoteCoordinator`] re-queues for the surviving hosts to steal.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Grid size parameter (see [`ScenarioSpec::paper_grid`]); ignored by
    /// receivers when `plan` is present.
    pub scenarios: usize,
    /// Grid base seed; ignored by receivers when `plan` is present.
    pub seed: u64,
    /// The full sweep plan whose expanded grid the shard indexes into
    /// (`None` for legacy paper-grid jobs).
    pub plan: Option<SweepPlan>,
    /// The spec range to run.
    pub shard: Shard,
}

impl JobRequest {
    /// The full grid this job's shard indexes into — identical on every
    /// participating machine by construction.
    #[must_use]
    pub fn specs(&self) -> Vec<ScenarioSpec> {
        match &self.plan {
            Some(plan) => plan.expand().iter().map(|p| p.spec).collect(),
            None => ScenarioSpec::paper_grid(self.scenarios, self.seed),
        }
    }

    /// Job-frame version for **plan-bearing** jobs. Legacy paper-grid jobs
    /// keep speaking [`shard::WIRE_VERSION`] (1) byte-for-byte; a plan job
    /// bumps the frame's `"v"` to 2 so a pre-plan daemon — which only
    /// understands the legacy grid — rejects it with a version error
    /// instead of silently running the wrong grid.
    pub const PLAN_JOB_VERSION: u64 = 2;

    /// Encodes the request as a control-frame payload.
    #[must_use]
    pub fn to_frame(&self) -> Vec<u8> {
        let version = if self.plan.is_some() {
            Self::PLAN_JOB_VERSION
        } else {
            shard::WIRE_VERSION
        };
        let mut fields = vec![
            ("v", version.into()),
            ("type", "job".into()),
            ("scenarios", self.scenarios.into()),
            ("seed", shard::u64_to_wire(self.seed)),
            ("start", self.shard.start.into()),
            ("end", self.shard.end.into()),
        ];
        if let Some(plan) = &self.plan {
            fields.push(("plan", plan.to_json()));
        }
        Json::obj(fields).render().into_bytes()
    }

    /// Decodes a request from a control-frame payload. Version 1 frames are
    /// legacy paper-grid jobs (an inline plan there is a protocol error);
    /// version 2 frames **must** carry the plan their version promises.
    ///
    /// # Errors
    ///
    /// [`TransportError::Frame`] on malformed JSON, a version/payload
    /// mismatch, a wrong `type`, an empty/reversed shard range, or an
    /// invalid inline plan (the plan's own collected validation errors are
    /// included).
    pub fn from_frame(payload: &[u8]) -> Result<Self, TransportError> {
        let json = parse_frame_json(payload)?;
        let version = get(&json, "v")?
            .as_i64()
            .ok_or_else(|| frame_err("v: expected an integer"))?;
        let kind = get(&json, "type")?
            .as_str()
            .ok_or_else(|| frame_err("type: expected a string"))?;
        if kind != "job" {
            return Err(frame_err(format!("expected a job frame, got '{kind}'")));
        }
        let plan = match (version, json.get("plan")) {
            (1, None) => None,
            (2, Some(p)) => {
                Some(SweepPlan::from_json(p).map_err(|e| frame_err(format!("plan: {e}")))?)
            }
            (1, Some(_)) => {
                return Err(frame_err(
                    "job frame v1 must not carry a plan (plan jobs speak v2)",
                ))
            }
            (2, None) => return Err(frame_err("job frame v2 is missing its plan")),
            (v, _) => {
                return Err(frame_err(format!(
                    "job frame version {v} (this build speaks 1 and 2)"
                )))
            }
        };
        let shard = Shard::new(get_usize(&json, "start")?, get_usize(&json, "end")?);
        if shard.is_empty() {
            return Err(frame_err(format!("job shard {shard} covers no specs")));
        }
        Ok(Self {
            scenarios: get_usize(&json, "scenarios")?,
            seed: shard::u64_from_wire(get(&json, "seed")?, "seed")
                .map_err(TransportError::from)?,
            plan,
            shard,
        })
    }
}

/// A frame sent by a worker back to the coordinator.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerMsg {
    /// One episode report — the payload is byte-for-byte a
    /// [`crate::shard::report_line`].
    Report {
        /// Global spec index.
        index: usize,
        /// The episode's report.
        report: EpisodeReport,
    },
    /// The job completed; `count` episodes were reported.
    Done {
        /// Reports the worker claims to have sent.
        count: usize,
    },
    /// The worker could not run (or finish) the job.
    Error {
        /// The worker-side failure description.
        message: String,
    },
    /// The daemon's admission control rejected the job: it is at its
    /// `--jobs` cap (or draining). Structured backpressure — the
    /// coordinator treats it as a transient fault and retries with
    /// backoff instead of hanging.
    Busy {
        /// Jobs currently running on the daemon.
        active: usize,
        /// The daemon's concurrent-job cap (0 while draining).
        cap: usize,
    },
    /// The whole job shard folded into per-cell sketches — the one frame a
    /// worker sends (before `done`) when the job's plan runs in pure
    /// `summary` report mode. All-or-nothing per connection attempt: a
    /// worker that dies mid-shard has shipped *nothing*, so the
    /// coordinator re-issues the full remainder and each episode is folded
    /// exactly once.
    Summary {
        /// The exact shard the fragment covers.
        shard: Shard,
        /// Non-empty per-cell sketch fragments for that shard.
        cells: Vec<CellSketch>,
    },
}

/// Encodes the `done` control frame.
#[must_use]
pub fn done_frame(count: usize) -> Vec<u8> {
    Json::obj(vec![
        ("v", shard::WIRE_VERSION.into()),
        ("type", "done".into()),
        ("count", count.into()),
    ])
    .render()
    .into_bytes()
}

/// Encodes the `summary` frame: one worker's whole-shard sketch fragment,
/// the only payload (besides `done`) that crosses the wire in pure
/// `summary` report mode. The `cells` array is byte-for-byte
/// [`crate::agg::cells_to_json`], so folding at the coordinator is
/// independent of which host produced the fragment.
#[must_use]
pub fn summary_frame(shard: Shard, cells: &[CellSketch]) -> Vec<u8> {
    Json::obj(vec![
        ("v", shard::WIRE_VERSION.into()),
        ("type", "summary".into()),
        ("shard", shard.to_string().into()),
        ("cells", crate::agg::cells_to_json(cells)),
    ])
    .render()
    .into_bytes()
}

/// Encodes the `error` control frame.
#[must_use]
pub fn error_frame(message: &str) -> Vec<u8> {
    Json::obj(vec![
        ("v", shard::WIRE_VERSION.into()),
        ("type", "error".into()),
        ("message", message.into()),
    ])
    .render()
    .into_bytes()
}

/// Encodes the `busy` control frame a daemon answers a job with when its
/// admission control rejects it (cap reached, or draining).
#[must_use]
pub fn busy_frame(active: usize, cap: usize) -> Vec<u8> {
    Json::obj(vec![
        ("v", shard::WIRE_VERSION.into()),
        ("type", "busy".into()),
        ("active", active.into()),
        ("cap", cap.into()),
    ])
    .render()
    .into_bytes()
}

/// Encodes the `health` request frame (no payload beyond the type).
#[must_use]
pub fn health_request_frame() -> Vec<u8> {
    Json::obj(vec![
        ("v", shard::WIRE_VERSION.into()),
        ("type", "health".into()),
    ])
    .render()
    .into_bytes()
}

/// Encodes the `shutdown` request frame asking a daemon to drain: finish
/// in-flight jobs, refuse new ones, then exit 0.
#[must_use]
pub fn shutdown_request_frame() -> Vec<u8> {
    Json::obj(vec![
        ("v", shard::WIRE_VERSION.into()),
        ("type", "shutdown".into()),
    ])
    .render()
    .into_bytes()
}

/// Encodes the `shutdown` acknowledgement a daemon sends back before it
/// starts draining; `jobs_active` is how many in-flight jobs it will
/// finish first.
#[must_use]
pub fn shutdown_ack_frame(jobs_active: usize) -> Vec<u8> {
    Json::obj(vec![
        ("v", shard::WIRE_VERSION.into()),
        ("type", "shutdown".into()),
        ("jobs_active", jobs_active.into()),
    ])
    .render()
    .into_bytes()
}

/// A daemon's liveness answer to a [`health_request_frame`]: status plus
/// cumulative service counters since the daemon started.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// `false` once the daemon is draining (it will refuse new jobs).
    pub accepting: bool,
    /// Jobs running right now.
    pub jobs_active: usize,
    /// Jobs served to completion since start.
    pub jobs_served: u64,
    /// Episode reports emitted across all jobs since start.
    pub episodes_emitted: u64,
    /// Faults deliberately injected by the daemon's [`FaultPlan`].
    pub faults_injected: u64,
    /// Whole seconds the daemon has been up.
    pub uptime_ticks: u64,
}

impl HealthReport {
    /// Encodes the `health` response frame.
    #[must_use]
    pub fn to_frame(&self) -> Vec<u8> {
        Json::obj(vec![
            ("v", shard::WIRE_VERSION.into()),
            ("type", "health".into()),
            (
                "status",
                if self.accepting { "ok" } else { "draining" }.into(),
            ),
            ("jobs_active", self.jobs_active.into()),
            ("jobs_served", shard::u64_to_wire(self.jobs_served)),
            (
                "episodes_emitted",
                shard::u64_to_wire(self.episodes_emitted),
            ),
            ("faults_injected", shard::u64_to_wire(self.faults_injected)),
            ("uptime_ticks", shard::u64_to_wire(self.uptime_ticks)),
        ])
        .render()
        .into_bytes()
    }

    /// Decodes a `health` response frame.
    ///
    /// # Errors
    ///
    /// [`TransportError::Frame`] on malformed payloads, a wrong `type`, or
    /// an unknown `status` — which is exactly what an `error` frame from a
    /// pre-daemon `seo-sweepd` produces, so probing a legacy worker fails
    /// cleanly instead of mis-reading its reply.
    pub fn from_frame(payload: &[u8]) -> Result<Self, TransportError> {
        let json = parse_frame_json(payload)?;
        check_version(&json)?;
        let kind = get(&json, "type")?
            .as_str()
            .ok_or_else(|| frame_err("type: expected a string"))?;
        if kind != "health" {
            return Err(frame_err(format!("expected a health frame, got '{kind}'")));
        }
        let accepting = match get(&json, "status")?.as_str() {
            Some("ok") => true,
            Some("draining") => false,
            _ => return Err(frame_err("status: expected 'ok' or 'draining'")),
        };
        let u64_field = |field: &str| {
            shard::u64_from_wire(get(&json, field)?, field).map_err(TransportError::from)
        };
        Ok(Self {
            accepting,
            jobs_active: get_usize(&json, "jobs_active")?,
            jobs_served: u64_field("jobs_served")?,
            episodes_emitted: u64_field("episodes_emitted")?,
            faults_injected: u64_field("faults_injected")?,
            uptime_ticks: u64_field("uptime_ticks")?,
        })
    }
}

/// The first frame of a daemon conversation, as the daemon sees it: a job
/// to run, or one of the service control verbs.
#[derive(Debug, Clone, PartialEq)]
pub enum DaemonRequest {
    /// Run a shard (v1 legacy paper-grid or v2 plan-bearing job — both
    /// wire versions are accepted unchanged).
    Job(Box<JobRequest>),
    /// Answer a [`HealthReport`].
    Health,
    /// Acknowledge, then drain and exit.
    Shutdown,
}

/// Decodes the first frame of a daemon conversation. `health` and
/// `shutdown` requests are distinguished by their `"type"`; everything
/// else must parse as a [`JobRequest`] (which keeps v1/v2 job frames from
/// pre-daemon clients working byte-for-byte).
///
/// # Errors
///
/// [`TransportError::Frame`] on malformed payloads or unknown types.
pub fn parse_daemon_request(payload: &[u8]) -> Result<DaemonRequest, TransportError> {
    let json = parse_frame_json(payload)?;
    match json.get("type").and_then(Json::as_str) {
        Some("health") => {
            check_version(&json)?;
            Ok(DaemonRequest::Health)
        }
        Some("shutdown") => {
            check_version(&json)?;
            Ok(DaemonRequest::Shutdown)
        }
        _ => Ok(DaemonRequest::Job(Box::new(JobRequest::from_frame(
            payload,
        )?))),
    }
}

fn parse_frame_json(payload: &[u8]) -> Result<Json, TransportError> {
    let text = std::str::from_utf8(payload).map_err(|e| frame_err(format!("not UTF-8: {e}")))?;
    Json::parse(text.trim()).map_err(|e| frame_err(e.to_string()))
}

/// Decodes one worker frame: report payloads are exactly the NDJSON
/// [`crate::shard::report_line`] (no `"type"` field), control payloads
/// carry `"type": "done" | "error"`.
///
/// # Errors
///
/// [`TransportError::Frame`] on malformed payloads or unknown frame types.
pub fn parse_worker_frame(payload: &[u8]) -> Result<WorkerMsg, TransportError> {
    let json = parse_frame_json(payload)?;
    let Some(kind) = json.get("type") else {
        let text =
            std::str::from_utf8(payload).map_err(|e| frame_err(format!("not UTF-8: {e}")))?;
        let (index, report) =
            shard::parse_report_line(text.trim()).map_err(|e| frame_err(e.to_string()))?;
        return Ok(WorkerMsg::Report { index, report });
    };
    let kind = kind
        .as_str()
        .ok_or_else(|| frame_err("type: expected a string"))?;
    check_version(&json)?;
    match kind {
        "done" => Ok(WorkerMsg::Done {
            count: get_usize(&json, "count")?,
        }),
        "error" => Ok(WorkerMsg::Error {
            message: get(&json, "message")?
                .as_str()
                .ok_or_else(|| frame_err("message: expected a string"))?
                .to_owned(),
        }),
        "busy" => Ok(WorkerMsg::Busy {
            active: get_usize(&json, "active")?,
            cap: get_usize(&json, "cap")?,
        }),
        "summary" => {
            let shard = get(&json, "shard")?
                .as_str()
                .ok_or_else(|| frame_err("shard: expected a string"))?
                .parse::<Shard>()
                .map_err(|e| frame_err(e.to_string()))?;
            let cells = crate::agg::cells_from_json(get(&json, "cells")?)
                .map_err(|e| frame_err(e.to_string()))?;
            Ok(WorkerMsg::Summary { shard, cells })
        }
        other => Err(frame_err(format!("unknown frame type '{other}'"))),
    }
}

// ---------------------------------------------------------------------------
// Host pool
// ---------------------------------------------------------------------------

/// One worker host: where to connect and how much work it can take
/// relative to its peers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostSpec {
    /// `host:port` the host's `seo-sweepd` listens on.
    pub addr: String,
    /// Relative capacity weight (≥ 1). Kept for config compatibility;
    /// under the pull scheduler a fast host simply takes more leases, so
    /// the weight no longer sizes assignments.
    pub capacity: u64,
}

/// The coordinator's bounded, deterministic retry schedule for
/// **transient** job failures (connect refused, read timeout, dropped
/// connection, `busy` backpressure). Fatal faults — protocol violations —
/// are never retried.
///
/// Carried by the [`HostPool`] so every surface that names a fleet gets it
/// for free: a `--hosts hosts.json` file and a [`SweepPlan`]'s
/// `exec.mode.hosts` section both accept an optional `"retry"` object
/// (`{"attempts":N,"base_delay_ms":M}`).
///
/// Attempt `k` (0-based) of a job that keeps failing transiently is
/// preceded by a delay of `base_delay_ms × 2^(k-1)` milliseconds, capped
/// at [`RetryPolicy::MAX_BACKOFF`]; after `attempts` total tries the host
/// is quarantined and its lease remainder re-queued for re-issue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total connection attempts per job, including the first (≥ 1).
    pub attempts: u32,
    /// Delay before the first retry, in milliseconds; doubles per retry.
    pub base_delay_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 3,
            base_delay_ms: 100,
        }
    }
}

impl RetryPolicy {
    /// Ceiling on any single backoff delay, however many doublings.
    pub const MAX_BACKOFF: Duration = Duration::from_secs(10);

    /// The delay before retry number `retry_index` (0-based):
    /// `base_delay_ms × 2^retry_index`, capped at [`Self::MAX_BACKOFF`].
    #[must_use]
    pub fn backoff(&self, retry_index: u32) -> Duration {
        let factor = 1u64 << retry_index.min(20);
        Duration::from_millis(self.base_delay_ms.saturating_mul(factor)).min(Self::MAX_BACKOFF)
    }

    /// Validates the policy; the message names the offending field the way
    /// plan validation expects.
    ///
    /// # Errors
    ///
    /// A plain message (`attempts must be at least 1`) for the caller to
    /// prefix with its own field path.
    pub fn validate(&self) -> Result<(), String> {
        if self.attempts == 0 {
            return Err("attempts must be at least 1 (it counts the first try)".to_owned());
        }
        Ok(())
    }

    /// Decodes `{"attempts":N,"base_delay_ms":M}`; missing fields keep
    /// their defaults, unknown fields are rejected by name.
    ///
    /// # Errors
    ///
    /// [`TransportError::Config`] on malformed JSON or a zero attempt
    /// budget.
    pub fn from_json(json: &Json) -> Result<Self, TransportError> {
        let Json::Obj(pairs) = json else {
            return Err(config_err("retry: expected an object"));
        };
        let mut policy = Self::default();
        for (key, value) in pairs {
            match key.as_str() {
                "attempts" => {
                    policy.attempts = value
                        .as_i64()
                        .and_then(|v| u32::try_from(v).ok())
                        .ok_or_else(|| {
                            config_err("retry.attempts: expected a non-negative integer")
                        })?;
                }
                "base_delay_ms" => {
                    policy.base_delay_ms = shard::u64_from_wire(value, "base_delay_ms")
                        .map_err(|e| config_err(format!("retry.{e}")))?;
                }
                other => {
                    return Err(config_err(format!(
                        "retry.{other}: unknown field (expected: attempts, base_delay_ms)"
                    )))
                }
            }
        }
        policy
            .validate()
            .map_err(|e| config_err(format!("retry.{e}")))?;
        Ok(policy)
    }

    /// Renders the policy to its JSON form.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("attempts", self.attempts.into()),
            ("base_delay_ms", shard::u64_to_wire(self.base_delay_ms)),
        ])
    }
}

/// A validated set of worker hosts (the `--hosts hosts.json` file).
///
/// Construction rejects misconfigurations — an empty pool, a blank or
/// duplicate address, a zero capacity — so a bad fleet fails loudly before
/// any connection is attempted, mirroring how
/// [`crate::shard::ShardPlan::from_shards`] validates before any process
/// spawns.
///
/// The pool also carries the fleet's [`RetryPolicy`] (default: 3 attempts,
/// 100 ms base delay) and its [`ChunkPolicy`] (default: auto); `"retry"`
/// and `"chunk"` keys in the pool JSON override them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostPool {
    hosts: Vec<HostSpec>,
    retry: RetryPolicy,
    chunk: ChunkPolicy,
}

impl HostPool {
    /// Validates an explicit host list.
    ///
    /// # Errors
    ///
    /// [`TransportError::Config`] naming the first offending host.
    pub fn new(hosts: Vec<HostSpec>) -> Result<Self, TransportError> {
        if hosts.is_empty() {
            return Err(config_err("host pool is empty"));
        }
        for (i, host) in hosts.iter().enumerate() {
            if host.addr.trim().is_empty() {
                return Err(config_err(format!("host {i}: address is blank")));
            }
            if host.capacity == 0 {
                return Err(config_err(format!(
                    "host {i} ('{}'): capacity must be at least 1",
                    host.addr
                )));
            }
            if let Some(dup) = hosts[..i].iter().position(|h| h.addr == host.addr) {
                return Err(config_err(format!(
                    "host {i} duplicates host {dup} ('{}')",
                    host.addr
                )));
            }
        }
        Ok(Self {
            hosts,
            retry: RetryPolicy::default(),
            chunk: ChunkPolicy::default(),
        })
    }

    /// Overrides the pool's retry policy (builder style).
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The transient-fault retry schedule jobs on this pool run under.
    #[must_use]
    pub fn retry(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Overrides the pool's lease chunk policy (builder style).
    #[must_use]
    pub fn with_chunk(mut self, chunk: ChunkPolicy) -> Self {
        self.chunk = chunk;
        self
    }

    /// How sweeps over this pool carve the grid into leases
    /// (`exec.hosts.chunk`).
    #[must_use]
    pub fn chunk(&self) -> &ChunkPolicy {
        &self.chunk
    }

    /// Parses and validates the JSON pool format:
    /// `{"v":1,"hosts":[{"addr":"host:port","capacity":N},…]}`.
    ///
    /// # Errors
    ///
    /// [`TransportError::Config`] on malformed JSON, missing fields, a
    /// version mismatch, or any [`Self::new`] validation failure.
    pub fn parse(text: &str) -> Result<Self, TransportError> {
        let json = Json::parse(text).map_err(|e| config_err(e.to_string()))?;
        Self::from_json(&json)
    }

    /// Decodes a pool from an already-parsed JSON tree (see [`Self::parse`]).
    ///
    /// # Errors
    ///
    /// Same as [`Self::parse`].
    pub fn from_json(json: &Json) -> Result<Self, TransportError> {
        let version = json
            .get("v")
            .ok_or_else(|| config_err("missing field 'v'"))?
            .as_i64()
            .ok_or_else(|| config_err("v: expected an integer"))?;
        if version != i64::try_from(shard::WIRE_VERSION).unwrap_or(i64::MAX) {
            return Err(config_err(format!(
                "host pool version {version} (this build speaks {})",
                shard::WIRE_VERSION
            )));
        }
        let hosts = json
            .get("hosts")
            .and_then(Json::as_arr)
            .ok_or_else(|| config_err("missing or non-array field 'hosts'"))?
            .iter()
            .enumerate()
            .map(|(i, h)| {
                let addr = h
                    .get("addr")
                    .and_then(Json::as_str)
                    .ok_or_else(|| config_err(format!("host {i}: missing string field 'addr'")))?
                    .to_owned();
                let capacity = h
                    .get("capacity")
                    .ok_or_else(|| config_err(format!("host {i}: missing field 'capacity'")))
                    .and_then(|c| {
                        shard::u64_from_wire(c, "capacity")
                            .map_err(|e| config_err(format!("host {i}: {e}")))
                    })?;
                Ok(HostSpec { addr, capacity })
            })
            .collect::<Result<Vec<_>, TransportError>>()?;
        let mut pool = Self::new(hosts)?;
        if let Some(retry) = json.get("retry") {
            pool.retry = RetryPolicy::from_json(retry)?;
        }
        if let Some(chunk) = json.get("chunk") {
            pool.chunk =
                ChunkPolicy::from_json(chunk).map_err(|e| config_err(format!("chunk: {e}")))?;
        }
        Ok(pool)
    }

    /// Renders the pool back to its JSON config form (round-trips through
    /// [`Self::parse`]). A default retry policy and an auto chunk policy
    /// are omitted, so older pool files round-trip byte-stable.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("v", shard::WIRE_VERSION.into()),
            (
                "hosts",
                Json::Arr(
                    self.hosts
                        .iter()
                        .map(|h| {
                            Json::obj(vec![
                                ("addr", h.addr.as_str().into()),
                                ("capacity", shard::u64_to_wire(h.capacity)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if self.retry != RetryPolicy::default() {
            fields.push(("retry", self.retry.to_json()));
        }
        if self.chunk != ChunkPolicy::default() {
            fields.push(("chunk", self.chunk.to_json()));
        }
        Json::obj(fields)
    }

    /// The hosts, in config order.
    #[must_use]
    pub fn hosts(&self) -> &[HostSpec] {
        &self.hosts
    }

    /// Sum of all capacity weights.
    #[must_use]
    pub fn total_capacity(&self) -> u64 {
        self.hosts.iter().map(|h| h.capacity).sum()
    }
}

// ---------------------------------------------------------------------------
// Remote coordinator
// ---------------------------------------------------------------------------

/// The coordinator's two-way fault taxonomy: every job failure is one or
/// the other, and the distinction drives recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// The kind of fault a healthy host can produce while restarting or
    /// overloaded: connect refused, resolve failure, read/write timeout, a
    /// dropped connection, `busy` backpressure. Retried in place with
    /// bounded exponential backoff; exhausting the budget quarantines the
    /// host (its lease remainder re-queues, and `health` probes decide
    /// whether it rejoins the pull loop).
    Transient,
    /// A protocol violation: malformed or garbled frame, out-of-order or
    /// duplicate report, a `done` count mismatch, a worker `error` frame.
    /// Never retried — the peer is broken, not busy — and the host is
    /// declared dead permanently.
    Fatal,
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Transient => write!(f, "transient"),
            Self::Fatal => write!(f, "fatal"),
        }
    }
}

/// One lost host, as recorded in [`RemoteRunStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostLoss {
    /// The host's configured address.
    pub addr: String,
    /// Why it was declared lost.
    pub message: String,
    /// Specs of its lease still unreported at the time of loss — the
    /// range re-queued for re-issue to the survivors.
    pub reassigned: usize,
    /// How the final failure was classified. `Transient` means the retry
    /// budget ran out (the host was quarantined, not executed); `Fatal`
    /// means a protocol violation killed it outright.
    pub class: FaultClass,
}

/// What a [`RemoteCoordinator`] run did: dispatch counts, retry/quarantine
/// activity, per-host episode tallies, and every host loss it survived. A
/// run that returns `Ok` produced complete, correct output even when
/// `hosts_lost` is non-empty.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RemoteRunStats {
    /// One entry per failed lease (a host failing two leases appears
    /// twice).
    pub hosts_lost: Vec<HostLoss>,
    /// Lease dispatches: every pull of a lease by a host, re-issues
    /// included (≥ `leases` on success).
    pub jobs: usize,
    /// The resolved chunk size: specs per lease.
    pub chunk: usize,
    /// Leases the grid was carved into up front (re-issues not counted);
    /// 0 for an empty grid.
    pub leases: usize,
    /// Failed leases whose unreported remainder was returned to the queue
    /// for re-issue.
    pub reissues: usize,
    /// Re-issued leases completed by a *different* host than the one that
    /// failed them.
    pub steals: usize,
    /// In-place reconnect attempts after transient faults (a retry that
    /// succeeds leaves no [`HostLoss`] entry).
    pub retries: usize,
    /// Leases whose host exhausted its retry budget and was quarantined.
    pub quarantines: usize,
    /// Quarantined hosts that passed a health probe after fresh fleet
    /// progress and rejoined the pull loop.
    pub readmissions: usize,
    /// Episode reports merged per host, in pool order (`(addr, count)`;
    /// counts sum to the grid size on success).
    pub episodes_by_host: Vec<(String, usize)>,
    /// Leases completed per host, in pool order (`(addr, count)`).
    pub leases_by_host: Vec<(String, usize)>,
}

impl RemoteRunStats {
    /// Renders the stats as one JSON object — the structured summary
    /// `sweep --plan` prints to stderr and records in `BENCH_sweep.json`
    /// provenance after a hosts-mode run.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("jobs", self.jobs.into()),
            ("chunk", self.chunk.into()),
            ("leases", self.leases.into()),
            ("reissues", self.reissues.into()),
            ("steals", self.steals.into()),
            ("retries", self.retries.into()),
            ("quarantines", self.quarantines.into()),
            ("readmissions", self.readmissions.into()),
            (
                "hosts_lost",
                Json::Arr(
                    self.hosts_lost
                        .iter()
                        .map(|loss| {
                            Json::obj(vec![
                                ("addr", loss.addr.as_str().into()),
                                ("class", loss.class.to_string().as_str().into()),
                                ("reassigned", loss.reassigned.into()),
                                ("message", loss.message.as_str().into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "episodes_by_host",
                Json::Obj(
                    self.episodes_by_host
                        .iter()
                        .map(|(addr, count)| (addr.clone(), (*count).into()))
                        .collect(),
                ),
            ),
            (
                "leases_by_host",
                Json::Obj(
                    self.leases_by_host
                        .iter()
                        .map(|(addr, count)| (addr.clone(), (*count).into()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Per-lease sketch fragments collected in pure `summary` report mode, in
/// arrival order.
type SummaryFragments = Vec<(Shard, Vec<CellSketch>)>;

/// Shared merge state: the merge plus the streaming sink it feeds, under
/// one lock so reports are sunk in exactly merge order (the same discipline
/// as the process-level coordinator). `accepted`/`by_host` feed the
/// readmission progress rule and [`RemoteRunStats::episodes_by_host`].
struct MergeState<'a> {
    merge: StreamingMerge,
    sink: &'a mut (dyn FnMut(usize, EpisodeReport) + Send),
    accepted: usize,
    by_host: Vec<usize>,
    /// Sketch fragments in pure `summary` report mode (arrival order —
    /// [`RunSummary::fold_fragments`] re-sorts by shard start, so the fold
    /// is independent of lease scheduling). `accepted` still advances by
    /// the fragment's episode count, keeping the quarantine-readmission
    /// progress rule engine-agnostic.
    summaries: SummaryFragments,
}

/// A lease-level failure: what remains of the lease's shard, why, and how
/// the final error was classified.
struct LeaseFailure {
    remaining: Shard,
    message: String,
    class: FaultClass,
}

/// Scheduler-wide tallies and the loss record, shared across all host
/// threads of one run.
struct SchedulerShared {
    jobs: AtomicUsize,
    retries: AtomicUsize,
    quarantines: AtomicUsize,
    readmissions: AtomicUsize,
    reissues: AtomicUsize,
    steals: AtomicUsize,
    leases_by_host: Vec<AtomicUsize>,
    losses: Mutex<Vec<HostLoss>>,
}

/// A classified single-connection failure, before retry handling.
struct DriveError {
    class: FaultClass,
    message: String,
}

impl DriveError {
    fn transient(message: impl Into<String>) -> Self {
        Self {
            class: FaultClass::Transient,
            message: message.into(),
        }
    }

    fn fatal(message: impl Into<String>) -> Self {
        Self {
            class: FaultClass::Fatal,
            message: message.into(),
        }
    }

    /// Classifies a [`TransportError`] bubbling out of the framing layer:
    /// socket I/O (timeouts included) is transient, everything else —
    /// malformed frames above all — is a protocol violation.
    fn from_transport(e: &TransportError) -> Self {
        match e {
            TransportError::Io { .. } => Self::transient(e.to_string()),
            _ => Self::fatal(e.to_string()),
        }
    }
}

/// Distributes a sweep grid across a [`HostPool`] over TCP and merges the
/// streamed reports deterministically, re-issuing lost hosts' leases to
/// the survivors.
///
/// The output contract is identical to the single-machine engines: the
/// merged reports are **bit-identical** to
/// [`crate::batch::BatchRunner::run_serial`] over
/// [`ScenarioSpec::paper_grid`]`(scenarios, seed)` — host count, chunk
/// size, and mid-stream host deaths included, because every episode is a
/// pure function of its spec and the merge orders by spec index.
///
/// Work is **pulled**, not assigned: the grid is carved into chunk-sized
/// leases (the pool's [`ChunkPolicy`], `exec.hosts.chunk` in a plan) held
/// in a shared [`LeaseQueue`], and each host runs one lease at a time,
/// pulling the next as soon as it finishes. Fast hosts naturally take
/// more leases; a straggler costs at most one chunk of tail latency. A
/// failed lease's unreported remainder returns to the queue immediately
/// and is *stolen* by whichever host pulls next.
///
/// Failures are classified per [`FaultClass`]. A transiently-failing
/// lease is retried in place under the pool's [`RetryPolicy`]
/// (deterministic exponential backoff, fixed attempt budget per lease); a
/// host that exhausts the budget is quarantined: its remainder re-queues
/// and the host sits out, probed with `health` exchanges, until a probe
/// passes *and* the fleet has merged new reports since the host's last
/// admission — then it rejoins the pull loop mid-run. A protocol violator
/// is dead forever. Termination is guaranteed by that progress gate plus
/// a bounded idle-probe budget: each readmission consumes fresh global
/// progress (so there are at most `n_specs` readmissions per host), and a
/// quarantined host that keeps probing while the fleet merges nothing
/// gives up and dies, so the run either advances or sheds hosts. When
/// every host has exited with specs still unreported the run fails with
/// [`TransportError::NoSurvivors`].
#[derive(Debug, Clone)]
pub struct RemoteCoordinator {
    pool: HostPool,
    timeout: Duration,
}

impl RemoteCoordinator {
    /// A coordinator over `pool` with the [`DEFAULT_TIMEOUT`].
    #[must_use]
    pub fn new(pool: HostPool) -> Self {
        Self {
            pool,
            timeout: DEFAULT_TIMEOUT,
        }
    }

    /// Overrides the connect/read/write timeout (builder style). A host
    /// silent for longer is declared lost and its lease re-issued.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// The pool this coordinator dispatches over.
    #[must_use]
    pub fn pool(&self) -> &HostPool {
        &self.pool
    }

    /// Runs the grid and returns the merged reports in spec order plus the
    /// run's fault record.
    ///
    /// # Errors
    ///
    /// [`TransportError::NoSurvivors`] when every host died with work
    /// outstanding; [`TransportError::Merge`] on an unfillable hole (a
    /// protocol violation the lease re-issue could not paper over).
    pub fn run(
        &self,
        scenarios: usize,
        seed: u64,
    ) -> Result<(Vec<EpisodeReport>, RemoteRunStats), TransportError> {
        let mut merged = Vec::new();
        let stats = self.run_streaming(scenarios, seed, |_, report| merged.push(report))?;
        Ok((merged, stats))
    }

    /// Runs a [`SweepPlan`]'s expanded grid across the pool, shipping the
    /// plan inline with every job (a daemon needs no local plan file), and
    /// returns the merged reports in spec order plus the run's fault
    /// record. Output is bit-identical to [`SweepPlan::run_serial`].
    ///
    /// # Errors
    ///
    /// Same as [`Self::run`].
    pub fn run_plan(
        &self,
        plan: &SweepPlan,
    ) -> Result<(Vec<EpisodeReport>, RemoteRunStats), TransportError> {
        let mut merged = Vec::new();
        let stats = self.run_plan_streaming(plan, |_, report| merged.push(report))?;
        Ok((merged, stats))
    }

    /// Like [`Self::run_plan`], but delivers each report to `sink` while
    /// hosts are still streaming, strictly in spec order.
    ///
    /// # Errors
    ///
    /// Same as [`Self::run`].
    pub fn run_plan_streaming(
        &self,
        plan: &SweepPlan,
        sink: impl FnMut(usize, EpisodeReport) + Send,
    ) -> Result<RemoteRunStats, TransportError> {
        let n_specs = plan.n_specs();
        self.stream_grid(
            n_specs,
            &|shard| JobRequest {
                scenarios: n_specs,
                seed: plan.axes.seeds.base,
                plan: Some(plan.clone()),
                shard,
            },
            sink,
            false,
        )
        .map(|(stats, _)| stats)
    }

    /// Runs a pure-`summary` plan across the pool: each lease comes back
    /// as one all-or-nothing [`summary_frame`] sketch fragment — no
    /// per-episode NDJSON crosses the host boundary — and the fragments
    /// are folded into the plan's [`RunSummary`] in spec-index order. The
    /// folded state is bit-identical to folding [`SweepPlan::run_serial`]
    /// locally, host count, lease schedule, and mid-lease host deaths
    /// included: a worker that dies before its frame has shipped nothing
    /// (the full remainder re-queues), and a worker whose frame arrived
    /// but whose `done` handshake was lost leaves an empty remainder, so
    /// every episode is folded exactly once.
    ///
    /// # Errors
    ///
    /// [`TransportError::Config`] when the plan's report mode still
    /// streams episodes (fold a [`Self::run_plan_streaming`] sink
    /// instead); otherwise the same as [`Self::run`].
    pub fn run_plan_summary(
        &self,
        plan: &SweepPlan,
    ) -> Result<(RunSummary, RemoteRunStats), TransportError> {
        if plan.emits_episodes() {
            return Err(TransportError::Config {
                message: "run_plan_summary needs report mode 'summary'; this plan still \
                          streams episodes — fold a run_plan_streaming sink instead"
                    .to_owned(),
            });
        }
        let n_specs = plan.n_specs();
        let (stats, fragments) = self.stream_grid(
            n_specs,
            &|shard| JobRequest {
                scenarios: n_specs,
                seed: plan.axes.seeds.base,
                plan: Some(plan.clone()),
                shard,
            },
            |_, _| {},
            true,
        )?;
        let mut summary = plan.run_summary();
        summary
            .fold_fragments(fragments)
            .map_err(TransportError::Merge)?;
        Ok((summary, stats))
    }

    /// Like [`Self::run`], but delivers each report to `sink` while hosts
    /// are still streaming: `sink(spec_index, report)` is invoked strictly
    /// in spec order as soon as the contiguous prefix up to that index is
    /// complete.
    ///
    /// # Errors
    ///
    /// Same as [`Self::run`].
    pub fn run_streaming(
        &self,
        scenarios: usize,
        seed: u64,
        sink: impl FnMut(usize, EpisodeReport) + Send,
    ) -> Result<RemoteRunStats, TransportError> {
        let n_specs = ScenarioSpec::paper_grid(scenarios, seed).len();
        self.stream_grid(
            n_specs,
            &|shard| JobRequest {
                scenarios,
                seed,
                plan: None,
                shard,
            },
            sink,
            false,
        )
        .map(|(stats, _)| stats)
    }

    /// The shared dispatch loop: carves `n_specs` grid indices into
    /// chunk-sized leases and runs one pull loop per host, building each
    /// lease's request through `make_request` (which fixes the grid
    /// encoding — legacy paper-grid parameters or an inline plan). With
    /// `expect_summary` the streamed merge is bypassed: hosts ship one
    /// sketch fragment per lease instead of episode frames, and the
    /// collected fragments are returned for the caller to fold.
    fn stream_grid(
        &self,
        n_specs: usize,
        make_request: &(dyn Fn(Shard) -> JobRequest + Sync),
        mut sink: impl FnMut(usize, EpisodeReport) + Send,
        expect_summary: bool,
    ) -> Result<(RemoteRunStats, SummaryFragments), TransportError> {
        let n_hosts = self.pool.hosts().len();
        let chunk = self.pool.chunk().resolve(n_specs, n_hosts);
        let addr_counts = || {
            self.pool
                .hosts()
                .iter()
                .map(|h| (h.addr.clone(), 0))
                .collect()
        };
        let mut stats = RemoteRunStats {
            chunk,
            episodes_by_host: addr_counts(),
            leases_by_host: addr_counts(),
            ..RemoteRunStats::default()
        };
        if n_specs == 0 {
            return Ok((stats, Vec::new()));
        }
        let queue = LeaseQueue::new(Shard::new(0, n_specs), chunk);
        stats.leases = queue.initial_leases();
        let state = Mutex::new(MergeState {
            merge: StreamingMerge::new(n_specs),
            sink: &mut sink,
            accepted: 0,
            by_host: vec![0; n_hosts],
            summaries: Vec::new(),
        });
        let shared = SchedulerShared {
            jobs: AtomicUsize::new(0),
            retries: AtomicUsize::new(0),
            quarantines: AtomicUsize::new(0),
            readmissions: AtomicUsize::new(0),
            reissues: AtomicUsize::new(0),
            steals: AtomicUsize::new(0),
            leases_by_host: (0..n_hosts).map(|_| AtomicUsize::new(0)).collect(),
            losses: Mutex::new(Vec::new()),
        };
        {
            let (queue, state, shared) = (&queue, &state, &shared);
            std::thread::scope(|scope| {
                for host_index in 0..n_hosts {
                    scope.spawn(move || {
                        self.host_loop(host_index, queue, make_request, state, shared);
                    });
                }
            });
        }
        stats.jobs = shared.jobs.load(Ordering::Relaxed);
        stats.retries = shared.retries.load(Ordering::Relaxed);
        stats.quarantines = shared.quarantines.load(Ordering::Relaxed);
        stats.readmissions = shared.readmissions.load(Ordering::Relaxed);
        stats.reissues = shared.reissues.load(Ordering::Relaxed);
        stats.steals = shared.steals.load(Ordering::Relaxed);
        for (slot, count) in stats.leases_by_host.iter_mut().zip(&shared.leases_by_host) {
            slot.1 = count.load(Ordering::Relaxed);
        }
        stats.hosts_lost = shared.losses.into_inner().expect("loss mutex poisoned");
        if !queue.is_finished() {
            // Every host thread exited (fatal fault or failed readmission)
            // with leases still in the queue: nowhere left to re-issue.
            return Err(TransportError::NoSurvivors {
                remaining: queue.remaining_specs(),
                last_error: stats
                    .hosts_lost
                    .last()
                    .map(|loss| loss.message.clone())
                    .unwrap_or_default(),
            });
        }
        // Every accepted report was streamed on arrival; anything left is a
        // hole, which finish() names.
        let final_state = state.into_inner().expect("merge mutex poisoned");
        for (slot, count) in stats.episodes_by_host.iter_mut().zip(&final_state.by_host) {
            slot.1 = *count;
        }
        if expect_summary {
            // No episode ever entered the merge; coverage is structural —
            // the queue only finishes once every lease completed, and a
            // lease completes only after its full-shard fragment arrived.
            debug_assert_eq!(
                final_state.accepted, n_specs,
                "a finished lease queue covers the grid"
            );
            return Ok((stats, final_state.summaries));
        }
        let leftovers = final_state.merge.finish()?;
        debug_assert!(leftovers.is_empty(), "streamed merge cannot hold a tail");
        Ok((stats, final_state.summaries))
    }

    /// One host's pull loop: pull a lease, run it, repeat until the queue
    /// is drained. A failed lease's unreported remainder re-queues for
    /// the survivors to steal; a fatal failure exits the loop (the host
    /// is dead forever), a transient one parks the host in
    /// [`Self::await_readmission`] until it may rejoin or gives up.
    fn host_loop(
        &self,
        host_index: usize,
        queue: &LeaseQueue,
        make_request: &(dyn Fn(Shard) -> JobRequest + Sync),
        state: &Mutex<MergeState<'_>>,
        shared: &SchedulerShared,
    ) {
        // Global merge progress at (re)admission time: a quarantined host
        // is only readmitted after the fleet moves past this, so every
        // readmission consumes fresh progress and quarantine churn is
        // bounded by the grid size.
        let mut admitted_at = state.lock().expect("merge mutex poisoned").accepted;
        while let Some(lease) = queue.pop() {
            shared.jobs.fetch_add(1, Ordering::Relaxed);
            match self.run_lease(host_index, &lease, make_request, state, &shared.retries) {
                Ok(()) => {
                    shared.leases_by_host[host_index].fetch_add(1, Ordering::Relaxed);
                    if lease.reissued_from.is_some_and(|from| from != host_index) {
                        shared.steals.fetch_add(1, Ordering::Relaxed);
                    }
                    queue.complete();
                }
                Err(failure) => {
                    let class = failure.class;
                    shared
                        .losses
                        .lock()
                        .expect("loss mutex poisoned")
                        .push(HostLoss {
                            addr: self.pool.hosts()[host_index].addr.clone(),
                            message: failure.message,
                            reassigned: failure.remaining.len(),
                            class,
                        });
                    if failure.remaining.is_empty() {
                        // Every report of the lease merged; only the
                        // `done` handshake was lost.
                        queue.complete();
                    } else {
                        shared.reissues.fetch_add(1, Ordering::Relaxed);
                        queue.requeue(failure.remaining, host_index);
                    }
                    if class == FaultClass::Fatal {
                        return;
                    }
                    shared.quarantines.fetch_add(1, Ordering::Relaxed);
                    if !self.await_readmission(host_index, queue, state, admitted_at) {
                        return;
                    }
                    shared.readmissions.fetch_add(1, Ordering::Relaxed);
                    admitted_at = state.lock().expect("merge mutex poisoned").accepted;
                }
            }
        }
    }

    /// Parks a quarantined host and decides whether it may rejoin the
    /// pull loop. Returns `true` to readmit: a `health` probe passed
    /// *and* the fleet has merged reports since this host's last
    /// admission (`admitted_at`). Returns `false` when the grid finished
    /// without the host, or when its idle-probe budget ran out with the
    /// fleet stuck — a fleet that merges nothing sheds every quarantined
    /// host instead of spinning forever, which (with every connection
    /// bounded by the timeout) is what guarantees termination.
    fn await_readmission(
        &self,
        host_index: usize,
        queue: &LeaseQueue,
        state: &Mutex<MergeState<'_>>,
        admitted_at: usize,
    ) -> bool {
        let addr = &self.pool.hosts()[host_index].addr;
        let retry = self.pool.retry();
        // Probes tolerated with *no* fleet progress in between; the floor
        // keeps tight retry budgets from starving slow-but-live fleets.
        let idle_budget = retry.attempts.max(4);
        let mut idle_probes = 0u32;
        let mut last_accepted = state.lock().expect("merge mutex poisoned").accepted;
        loop {
            if queue.is_finished() {
                return false;
            }
            // Sleep the backoff in short slices so a finishing queue
            // releases the parked thread promptly.
            let delay = retry.backoff(idle_probes);
            let mut slept = Duration::ZERO;
            while slept < delay {
                if queue.is_finished() {
                    return false;
                }
                let slice = Duration::from_millis(25).min(delay - slept);
                std::thread::sleep(slice);
                slept += slice;
            }
            let accepted = state.lock().expect("merge mutex poisoned").accepted;
            let progressed = accepted > last_accepted;
            last_accepted = accepted;
            if probe_host(addr, self.timeout) && accepted > admitted_at {
                return true;
            }
            if progressed {
                idle_probes = 0;
            } else {
                idle_probes += 1;
                if idle_probes >= idle_budget {
                    return false;
                }
            }
        }
    }

    /// Drives one lease on one host under the pool's [`RetryPolicy`]: a
    /// transient connection failure is retried after a deterministic
    /// backoff, resuming from the first unreported index (progress made
    /// before the fault is kept — the merge never sees an index twice).
    /// The attempt budget is fresh per lease, so a host that keeps
    /// dropping mid-stream still exhausts it and has its remainder
    /// re-issued to the survivors.
    fn run_lease(
        &self,
        host_index: usize,
        lease: &Lease,
        make_request: &(dyn Fn(Shard) -> JobRequest + Sync),
        state: &Mutex<MergeState<'_>>,
        retries: &AtomicUsize,
    ) -> Result<(), LeaseFailure> {
        let request = make_request(lease.shard);
        let retry = self.pool.retry();
        let budget = retry.attempts.max(1);
        let end = request.shard.end;
        let mut next = request.shard.start;
        let mut attempt = 0u32;
        loop {
            let job = JobRequest {
                shard: Shard::new(next, end),
                ..request.clone()
            };
            match self.drive_connection(host_index, &job, state, &mut next) {
                Ok(()) => return Ok(()),
                Err(fault) => {
                    attempt += 1;
                    let retryable =
                        fault.class == FaultClass::Transient && attempt < budget && next < end;
                    if !retryable {
                        return Err(LeaseFailure {
                            remaining: Shard::new(next, end),
                            message: if attempt > 1 {
                                format!("{} (attempt {attempt}/{budget})", fault.message)
                            } else {
                                fault.message
                            },
                            class: fault.class,
                        });
                    }
                    retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(retry.backoff(attempt - 1));
                }
            }
        }
    }

    /// The per-connection protocol loop. `next` tracks the lowest index of
    /// the shard not yet accepted into the merge; because workers must
    /// stream in ascending order, `[next, shard.end)` is exactly the
    /// remaining work if the connection dies. Every failure is classified
    /// per [`FaultClass`] for the retry layer above.
    fn drive_connection(
        &self,
        host_index: usize,
        request: &JobRequest,
        state: &Mutex<MergeState<'_>>,
        next: &mut usize,
    ) -> Result<(), DriveError> {
        let host = &self.pool.hosts()[host_index];
        let mut stream = connect(&host.addr, self.timeout).map_err(DriveError::transient)?;
        stream
            .set_read_timeout(Some(self.timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.timeout)))
            .and_then(|()| stream.set_nodelay(true))
            .map_err(|e| DriveError::transient(format!("socket setup for {}: {e}", host.addr)))?;
        write_frame(&mut stream, &request.to_frame())
            .map_err(|e| DriveError::from_transport(&e))?;
        // In pure `summary` report mode the worker folds the whole job
        // shard locally and ships one sketch frame; any per-episode report
        // frame on the wire is a protocol violation (and vice versa).
        let summary_only = request.plan.as_ref().is_some_and(|p| !p.emits_episodes());
        loop {
            let payload = read_frame(&mut stream)
                .map_err(|e| DriveError::from_transport(&e))?
                .ok_or_else(|| {
                    DriveError::transient(format!(
                        "connection closed mid-shard ({}/{} reports received)",
                        *next - request.shard.start,
                        request.shard.len()
                    ))
                })?;
            match parse_worker_frame(&payload).map_err(|e| DriveError::from_transport(&e))? {
                WorkerMsg::Report { index, report } => {
                    if summary_only {
                        return Err(DriveError::fatal(format!(
                            "episode report frame for index {index} in summary mode \
                             (per-episode NDJSON must not cross the host boundary)"
                        )));
                    }
                    if *next >= request.shard.end {
                        return Err(DriveError::fatal(format!(
                            "report {index} after shard {} completed",
                            request.shard
                        )));
                    }
                    if index != *next {
                        return Err(DriveError::fatal(format!(
                            "out-of-order report: expected index {next}, got {index} \
                             (workers must stream their shard in ascending order)"
                        )));
                    }
                    let mut guard = state.lock().expect("merge mutex poisoned");
                    let MergeState {
                        merge,
                        sink,
                        accepted,
                        by_host,
                        ..
                    } = &mut *guard;
                    merge
                        .accept(index, report)
                        .map_err(|e| DriveError::fatal(format!("protocol violation: {e}")))?;
                    *accepted += 1;
                    by_host[host_index] += 1;
                    let base = merge.next_index();
                    for (offset, ready) in merge.drain_ready().into_iter().enumerate() {
                        sink(base + offset, ready);
                    }
                    drop(guard);
                    *next += 1;
                }
                WorkerMsg::Done { count } => {
                    if *next != request.shard.end {
                        return Err(DriveError::fatal(format!(
                            "done after {}/{} reports",
                            *next - request.shard.start,
                            request.shard.len()
                        )));
                    }
                    if count != request.shard.len() {
                        return Err(DriveError::fatal(format!(
                            "done frame claims {count} reports for shard {} of {}",
                            request.shard,
                            request.shard.len()
                        )));
                    }
                    return Ok(());
                }
                WorkerMsg::Summary { shard, cells } => {
                    if !summary_only {
                        return Err(DriveError::fatal(format!(
                            "summary frame for shard {shard} on a job that streams episodes"
                        )));
                    }
                    let expected = Shard::new(*next, request.shard.end);
                    if shard != expected {
                        return Err(DriveError::fatal(format!(
                            "summary frame covers shard {shard}, expected the full job \
                             shard {expected} (summary fragments are all-or-nothing per \
                             connection)"
                        )));
                    }
                    let mut guard = state.lock().expect("merge mutex poisoned");
                    guard.accepted += shard.len();
                    guard.by_host[host_index] += shard.len();
                    guard.summaries.push((shard, cells));
                    drop(guard);
                    *next = shard.end;
                }
                WorkerMsg::Error { message } => {
                    // The worker looked at the job and rejected it — a
                    // deterministic answer, not a flaky connection.
                    return Err(DriveError::fatal(format!("worker error: {message}")));
                }
                WorkerMsg::Busy { active, cap } => {
                    return Err(DriveError::transient(format!(
                        "host busy ({active}/{cap} jobs): backpressure, retry later"
                    )));
                }
            }
        }
    }
}

/// One `health` round-trip against a quarantined host: true when the host
/// accepts a connection and answers a well-formed [`HealthReport`] that
/// says it is accepting work. A legacy (pre-daemon) `seo-sweepd` answers
/// `health` with an `error` frame, so it never passes a probe — it stays
/// quarantined, which is the conservative choice.
fn probe_host(addr: &str, timeout: Duration) -> bool {
    let Ok(mut stream) = connect(addr, timeout) else {
        return false;
    };
    if stream.set_read_timeout(Some(timeout)).is_err()
        || stream.set_write_timeout(Some(timeout)).is_err()
    {
        return false;
    }
    if write_frame(&mut stream, &health_request_frame()).is_err() {
        return false;
    }
    match read_frame(&mut stream) {
        Ok(Some(payload)) => HealthReport::from_frame(&payload).is_ok_and(|h| h.accepting),
        _ => false,
    }
}

/// Connects to `addr`, trying **every** address it resolves to before
/// giving up — on a dual-stack machine `localhost` may resolve to `::1`
/// first while the daemon listens on `127.0.0.1`, and one refused family
/// must not condemn a reachable host. The failure message aggregates
/// every candidate's error (not just the last one tried), so a
/// half-reachable host is diagnosable from the loss record alone.
fn connect(addr: &str, timeout: Duration) -> Result<TcpStream, String> {
    let resolved: Vec<SocketAddr> = addr
        .to_socket_addrs()
        .map_err(|e| format!("resolve '{addr}': {e}"))?
        .collect();
    if resolved.is_empty() {
        return Err(format!("'{addr}' resolved to no addresses"));
    }
    let mut errors: Vec<String> = Vec::with_capacity(resolved.len());
    for candidate in &resolved {
        match TcpStream::connect_timeout(candidate, timeout) {
            Ok(stream) => return Ok(stream),
            Err(e) => errors.push(format!("{candidate}: {e}")),
        }
    }
    Err(format!(
        "connect to {addr} failed on all {} resolved address(es): {}",
        resolved.len(),
        errors.join("; ")
    ))
}

// ---------------------------------------------------------------------------
// Worker server
// ---------------------------------------------------------------------------

/// Serves one coordinator connection end to end: reads the job frame, runs
/// the requested shard through the same serial scratch loop every other
/// sweep mode uses, streams one report frame per episode in ascending index
/// order, and finishes with a `done` frame.
///
/// `fail_after` is the fault-injection hook the loopback tests and the
/// `seo-sweepd --fail-after` flag use: after emitting that many reports the
/// connection is dropped **without** a `done` frame, exactly like a host
/// dying mid-stream. `None` disables it.
///
/// The connection gets the [`DEFAULT_TIMEOUT`] for reads and writes, so a
/// coordinator that connects and goes silent (or stops draining its
/// socket) cannot pin a daemon thread forever — the connection errors out
/// and the thread exits.
///
/// # Errors
///
/// [`TransportError`] on a malformed job frame (an `error` frame is sent
/// back best-effort), a shard outside the grid, or a socket failure.
pub fn serve_connection(
    mut stream: TcpStream,
    runtime: &RuntimeLoop,
    fail_after: Option<usize>,
) -> Result<(), TransportError> {
    stream
        .set_read_timeout(Some(DEFAULT_TIMEOUT))
        .and_then(|()| stream.set_write_timeout(Some(DEFAULT_TIMEOUT)))
        .and_then(|()| stream.set_nodelay(true))
        .map_err(|e| io_err("worker socket setup", &e))?;
    let request = match read_frame(&mut stream)? {
        Some(payload) => match JobRequest::from_frame(&payload) {
            Ok(request) => request,
            Err(e) => {
                let _ = write_frame(&mut stream, &error_frame(&e.to_string()));
                return Err(e);
            }
        },
        None => return Ok(()), // peer connected and left; nothing to do
    };
    let faults = fail_after.map(FaultPlan::fail_after);
    let mut injector = match &faults {
        Some(plan) => plan.injector(0),
        None => FaultInjector::none(),
    };
    serve_job(&mut stream, &request, runtime, &mut injector).map(|_| ())
}

/// Runs one already-parsed [`JobRequest`] over `stream`: bounds-checks the
/// shard against the grid, runs the episode loop, streams the reports, and
/// — unless the injector killed the connection first — finishes with a
/// `done` frame. Returns the number of reports emitted, or `None` when the
/// fault injector dropped the connection mid-stream.
///
/// This is the daemon's job path; [`serve_connection`] wraps it for the
/// legacy one-job-per-connection server.
///
/// # Errors
///
/// [`TransportError`] on a shard outside the grid (an `error` frame is
/// sent back best-effort) or a socket failure.
pub fn serve_job(
    stream: &mut TcpStream,
    request: &JobRequest,
    runtime: &RuntimeLoop,
    injector: &mut FaultInjector<'_>,
) -> Result<Option<usize>, TransportError> {
    let specs = request.specs();
    if request.shard.end > specs.len() {
        let e = frame_err(format!(
            "job shard {} reaches outside the {}-spec grid",
            request.shard,
            specs.len()
        ));
        let _ = write_frame(stream, &error_frame(&e.to_string()));
        return Err(e);
    }
    match &request.plan {
        Some(plan) => serve_plan_shard(stream, plan, request.shard, runtime, injector),
        None => serve_paper_shard(stream, &specs, request.shard, runtime, injector),
    }
    .and_then(|emitted| match emitted {
        Some(count) => write_frame(stream, &done_frame(count)).map(|()| Some(count)),
        None => Ok(None), // injected mid-stream death: vanish without `done`
    })
}

/// The legacy paper-grid episode loop: one runtime for the whole shard.
/// Returns `Ok(None)` when the fault injector killed the connection.
fn serve_paper_shard(
    stream: &mut TcpStream,
    specs: &[ScenarioSpec],
    shard: Shard,
    runtime: &RuntimeLoop,
    injector: &mut FaultInjector<'_>,
) -> Result<Option<usize>, TransportError> {
    let mut scratch = EpisodeScratch::new();
    let mut emitted = 0usize;
    for i in shard.indices() {
        if injector.before_report() == FaultAction::Drop {
            return Ok(None);
        }
        let spec = specs[i];
        let world = spec.world();
        let report = runtime.run_with(WorldSource::Static(&world), spec.seed, &mut scratch);
        let line = injector.garble(shard::report_line(i, &report).into_bytes());
        write_frame(stream, &line)?;
        injector.after_report();
        emitted += 1;
    }
    if injector.before_report() == FaultAction::Drop {
        return Ok(None);
    }
    Ok(Some(emitted))
}

/// The plan-job episode loop: a runtime is rebuilt at each cell boundary
/// the shard crosses (same serial scratch loop as [`SweepPlan::run_range`]),
/// on **this daemon's** kernel backend — backends are bit-identical, so a
/// mixed fleet still merges correctly. With async offload the inner loop
/// is a [`Reactor`] per cell segment instead; the reactor delivers reports
/// in index order, so the fault-injector hook sequence per emitted report
/// is exactly the blocking one. Returns `Ok(None)` when the fault injector
/// killed the connection.
///
/// When the plan's report mode is pure `summary`, no episode frame is
/// written at all: every report folds into a local [`RunSummary`] and the
/// shard ships as **one** [`summary_frame`] right before `done`. The
/// per-episode fault-injector hook sequence is unchanged (the chaos
/// schedule stays engine-agnostic), and an injected drop at any point
/// means the connection dies with *nothing* shipped — all-or-nothing, so
/// a re-issued lease folds each episode exactly once.
fn serve_plan_shard(
    stream: &mut TcpStream,
    plan: &SweepPlan,
    shard: Shard,
    runtime: &RuntimeLoop,
    injector: &mut FaultInjector<'_>,
) -> Result<Option<usize>, TransportError> {
    let points = plan.expand();
    let reactor = match plan.offload {
        OffloadExec::Blocking => None,
        OffloadExec::Async { in_flight } => Some(Reactor::new(in_flight)),
    };
    let mut summary = (!plan.emits_episodes()).then(|| plan.run_summary());
    let mut scratch = EpisodeScratch::new();
    let mut cell: Option<(CellConfig, RuntimeLoop)> = None;
    let mut emitted = 0usize;
    let mut next = shard.indices().start;
    let end = shard.indices().end;
    while next < end {
        let point = &points[next];
        if cell.as_ref().is_none_or(|(c, _)| *c != point.cell) {
            match point.cell.runtime(runtime.kernel()) {
                Ok(built) => cell = Some((point.cell, built)),
                Err(e) => {
                    let e = frame_err(format!("building cell runtime: {e}"));
                    let _ = write_frame(stream, &error_frame(&e.to_string()));
                    return Err(e);
                }
            }
        }
        let (cell_config, cell_runtime) = cell.as_ref().expect("cell runtime just built");
        // The contiguous run of indices sharing this cell.
        let mut seg_end = next + 1;
        while seg_end < end && points[seg_end].cell == *cell_config {
            seg_end += 1;
        }
        match &reactor {
            None => {
                for (i, point) in points.iter().enumerate().take(seg_end).skip(next) {
                    if injector.before_report() == FaultAction::Drop {
                        return Ok(None);
                    }
                    let report = cell_config.run_spec(cell_runtime, point.spec, &mut scratch);
                    match summary.as_mut() {
                        Some(fold) => fold.record(i, &report),
                        None => {
                            let line = injector.garble(shard::report_line(i, &report).into_bytes());
                            write_frame(stream, &line)?;
                        }
                    }
                    injector.after_report();
                    emitted += 1;
                }
            }
            Some(reactor) => {
                let mut outcome: Result<(), TransportError> = Ok(());
                let mut dropped = false;
                let finished = reactor.run(
                    next..seg_end,
                    |i| cell_config.spawn_task(cell_runtime, points[i].spec),
                    |i, report| {
                        if injector.before_report() == FaultAction::Drop {
                            dropped = true;
                            return false;
                        }
                        match summary.as_mut() {
                            Some(fold) => fold.record(i, &report),
                            None => {
                                let line =
                                    injector.garble(shard::report_line(i, &report).into_bytes());
                                if let Err(e) = write_frame(stream, &line) {
                                    outcome = Err(e);
                                    return false;
                                }
                            }
                        }
                        injector.after_report();
                        emitted += 1;
                        true
                    },
                );
                outcome?;
                if dropped || !finished {
                    return Ok(None);
                }
            }
        }
        next = seg_end;
    }
    if injector.before_report() == FaultAction::Drop {
        return Ok(None);
    }
    if let Some(fold) = &summary {
        let frame = injector.garble(summary_frame(shard, &fold.fragment()));
        write_frame(stream, &frame)?;
    }
    Ok(Some(emitted))
}

/// The accept loop behind `seo-sweepd`: binds a listener and serves each
/// incoming connection (= one [`JobRequest`], typically one lease) on its
/// own thread, so a coordinator can land several lease jobs on the same
/// host concurrently.
#[derive(Debug)]
pub struct WorkerServer {
    listener: TcpListener,
}

impl WorkerServer {
    /// Binds the listener. Use port `0` to let the OS pick (then read the
    /// actual address back via [`Self::local_addr`]).
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] when the address cannot be bound.
    pub fn bind(addr: &str) -> Result<Self, TransportError> {
        Ok(Self {
            listener: TcpListener::bind(addr).map_err(|e| io_err(&format!("bind {addr}"), &e))?,
        })
    }

    /// The bound address (the one to put in `hosts.json`).
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] when the socket cannot report its address.
    pub fn local_addr(&self) -> Result<SocketAddr, TransportError> {
        self.listener
            .local_addr()
            .map_err(|e| io_err("local_addr", &e))
    }

    /// Accepts and serves connections until the process exits, one thread
    /// per connection. Per-connection failures are reported to stderr and
    /// do not stop the loop — a daemon must survive a misbehaving
    /// coordinator.
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] when `accept` itself fails.
    pub fn serve(
        &self,
        runtime: Arc<RuntimeLoop>,
        fail_after: Option<usize>,
    ) -> Result<(), TransportError> {
        loop {
            let (stream, peer) = self.listener.accept().map_err(|e| io_err("accept", &e))?;
            let runtime = Arc::clone(&runtime);
            std::thread::spawn(move || {
                if let Err(e) = serve_connection(stream, &runtime, fail_after) {
                    eprintln!("seo-sweepd: connection from {peer}: {e}");
                }
            });
        }
    }
}
