//! Framework configuration.

use crate::error::SeoError;
use seo_platform::units::Seconds;
use std::fmt;

/// Whether the safety filter Ψ is in the control loop.
///
/// The paper evaluates both: *filtered* (shield active) and *unfiltered*
/// (raw controls applied directly); safety deadlines are sampled in either
/// case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControlMode {
    /// Ψ corrects unsafe controls before actuation.
    Filtered,
    /// Raw controls are actuated unchanged.
    Unfiltered,
}

impl fmt::Display for ControlMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Filtered => f.write_str("filtered"),
            Self::Unfiltered => f.write_str("unfiltered"),
        }
    }
}

/// Which energy terms experiments account for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnergyAccounting {
    /// NN compute + radio only — the accounting behind Figures 1/5/6 and
    /// Tables I/II.
    ComputeOnly,
    /// Adds the sensor's measurement/mechanical power split of eq. (8) —
    /// the accounting behind Table III (sensor gating).
    WithSensor,
}

impl fmt::Display for EnergyAccounting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ComputeOnly => f.write_str("compute-only"),
            Self::WithSensor => f.write_str("with-sensor"),
        }
    }
}

/// What happens at the offload fallback slot `n == δmax − δᵢ`.
///
/// The paper is ambiguous here (see DESIGN.md §Divergences): eq. (7)'s
/// indicator term reads as an unconditional local re-invocation, while
/// Fig. 3 and the 89.9 % headline imply the local model runs only when the
/// server response missed the deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OffloadFallback {
    /// Fig. 3 reading (default): re-invoke the local model only when the
    /// response has not arrived by the fallback slot.
    LocalOnTimeout,
    /// Strict eq. (7) reading: the local model always runs at the fallback
    /// slot; successful offloads only save the earlier slots.
    AlwaysLocal,
}

impl fmt::Display for OffloadFallback {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::LocalOnTimeout => f.write_str("local-on-timeout"),
            Self::AlwaysLocal => f.write_str("always-local"),
        }
    }
}

/// Core SEO knobs shared by every experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeoConfig {
    /// Base time window τ (the paper defaults to 20 ms).
    pub tau: Seconds,
    /// Cap on Δmax (the evaluator horizon; 4τ in the paper's histograms).
    pub delta_cap: Seconds,
    /// Gating level `g` for model gating (0 = fully gated, 1 = full model);
    /// the paper's motivational example gates at 0.5.
    pub gating_level: f64,
    /// Safety filter in or out of the loop.
    pub control_mode: ControlMode,
    /// Energy accounting scope.
    pub accounting: EnergyAccounting,
    /// Offload fallback-slot semantics.
    pub offload_fallback: OffloadFallback,
}

impl SeoConfig {
    /// The paper's defaults: τ = 20 ms, Δ capped at 4τ = 80 ms, 50 % model
    /// gating, filtered control, compute-only accounting.
    #[must_use]
    pub fn paper_defaults() -> Self {
        Self {
            tau: Seconds::from_millis(20.0),
            delta_cap: Seconds::from_millis(80.0),
            gating_level: 0.5,
            control_mode: ControlMode::Filtered,
            accounting: EnergyAccounting::ComputeOnly,
            offload_fallback: OffloadFallback::LocalOnTimeout,
        }
    }

    /// Sets the offload fallback-slot semantics (builder style).
    #[must_use]
    pub fn with_offload_fallback(mut self, fallback: OffloadFallback) -> Self {
        self.offload_fallback = fallback;
        self
    }

    /// Sets τ (builder style).
    ///
    /// The deadline cap Δcap is a property of the *environment* (how far
    /// ahead the safety analysis bounds Δmax), not of the platform's base
    /// period, so it is left unchanged: at τ = 25 ms the paper-default
    /// 80 ms cap discretizes to δmax ≤ 3, which is exactly why Table I's
    /// gains shrink relative to τ = 20 ms.
    #[must_use]
    pub fn with_tau(mut self, tau: Seconds) -> Self {
        self.tau = tau;
        self
    }

    /// Sets the deadline cap Δcap (builder style).
    #[must_use]
    pub fn with_delta_cap(mut self, delta_cap: Seconds) -> Self {
        self.delta_cap = delta_cap;
        self
    }

    /// Sets the control mode (builder style).
    #[must_use]
    pub fn with_control_mode(mut self, mode: ControlMode) -> Self {
        self.control_mode = mode;
        self
    }

    /// Sets the gating level (builder style).
    #[must_use]
    pub fn with_gating_level(mut self, level: f64) -> Self {
        self.gating_level = level;
        self
    }

    /// Sets the accounting scope (builder style).
    #[must_use]
    pub fn with_accounting(mut self, accounting: EnergyAccounting) -> Self {
        self.accounting = accounting;
        self
    }

    /// Maximum δmax value under this configuration (`⌊Δcap/τ⌋`).
    #[must_use]
    pub fn delta_max_cap(&self) -> u32 {
        crate::discretize::discretize_deadline(self.delta_cap, self.tau)
    }

    /// Validates all knobs.
    ///
    /// # Errors
    ///
    /// Returns [`SeoError::InvalidConfig`] on a non-positive τ or Δcap, a
    /// Δcap smaller than τ, or a gating level outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), SeoError> {
        if !(self.tau.as_secs().is_finite() && self.tau.as_secs() > 0.0) {
            return Err(SeoError::InvalidConfig {
                field: "tau",
                constraint: "be finite and positive",
            });
        }
        if !(self.delta_cap.as_secs().is_finite() && self.delta_cap.as_secs() > 0.0) {
            return Err(SeoError::InvalidConfig {
                field: "delta_cap",
                constraint: "be finite and positive",
            });
        }
        if self.delta_cap < self.tau {
            return Err(SeoError::InvalidConfig {
                field: "delta_cap",
                constraint: "be at least one base period",
            });
        }
        if !(0.0..=1.0).contains(&self.gating_level) || !self.gating_level.is_finite() {
            return Err(SeoError::InvalidConfig {
                field: "gating_level",
                constraint: "lie in [0, 1]",
            });
        }
        Ok(())
    }
}

impl Default for SeoConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

impl fmt::Display for SeoConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tau={:.0} ms, cap={:.0} ms, gating={:.2}, {}, {}",
            self.tau.as_millis(),
            self.delta_cap.as_millis(),
            self.gating_level,
            self.control_mode,
            self.accounting
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_paper() {
        let c = SeoConfig::paper_defaults();
        assert_eq!(c.tau.as_millis(), 20.0);
        assert_eq!(c.delta_cap.as_millis(), 80.0);
        assert_eq!(c.gating_level, 0.5);
        assert_eq!(c.control_mode, ControlMode::Filtered);
        assert_eq!(c.delta_max_cap(), 4);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn with_tau_keeps_environment_cap() {
        let c = SeoConfig::paper_defaults().with_tau(Seconds::from_millis(25.0));
        assert_eq!(c.delta_cap.as_millis(), 80.0);
        assert_eq!(c.delta_max_cap(), 3, "80 ms / 25 ms floors to 3 slots");
        let c = c.with_delta_cap(Seconds::from_millis(100.0));
        assert_eq!(c.delta_max_cap(), 4);
    }

    #[test]
    fn builders_set_fields() {
        let c = SeoConfig::paper_defaults()
            .with_control_mode(ControlMode::Unfiltered)
            .with_gating_level(0.3)
            .with_accounting(EnergyAccounting::WithSensor);
        assert_eq!(c.control_mode, ControlMode::Unfiltered);
        assert_eq!(c.gating_level, 0.3);
        assert_eq!(c.accounting, EnergyAccounting::WithSensor);
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        let mut c = SeoConfig::paper_defaults();
        c.gating_level = 1.5;
        assert!(c.validate().is_err());
        let mut c = SeoConfig::paper_defaults();
        c.tau = Seconds::ZERO;
        assert!(c.validate().is_err());
        let mut c = SeoConfig::paper_defaults();
        c.delta_cap = Seconds::from_millis(10.0); // smaller than tau
        assert!(c.validate().is_err());
    }

    #[test]
    fn default_is_paper_defaults() {
        assert_eq!(SeoConfig::default(), SeoConfig::paper_defaults());
    }

    #[test]
    fn displays() {
        assert_eq!(ControlMode::Filtered.to_string(), "filtered");
        assert_eq!(EnergyAccounting::WithSensor.to_string(), "with-sensor");
        assert!(SeoConfig::paper_defaults()
            .to_string()
            .contains("tau=20 ms"));
    }

    #[test]
    fn clone_roundtrip() {
        let c = SeoConfig::paper_defaults();
        let back = c;
        assert_eq!(back, c);
    }
}
