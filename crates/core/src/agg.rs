//! Streaming aggregation: mergeable per-cell sketches and run summaries.
//!
//! At the scale the roadmap targets (10⁶+ episodes per sweep), per-episode
//! NDJSON is the bottleneck artifact: every consumer re-derives the paper's
//! summary statistics (energy gain, δmax histogram, safety evidence) by
//! re-reading the full episode log. This module is the reporting side of
//! scale — a [`CellSketch`] per grid cell that any engine can fold episodes
//! into locally, merge across shards/leases/hosts, and render as compact
//! per-cell summary NDJSON.
//!
//! # The determinism contract
//!
//! The repo's invariant — merged output is **bit-identical** to the serial
//! loop in every run mode — extends to summaries, and it must hold no
//! matter how the work-stealing scheduler fragments the grid (including
//! re-issued leases after a mid-run host loss). Floating-point running
//! moments (Welford-style) are *mathematically* mergeable but not
//! **bitwise associative**: `(a ⊕ b) ⊕ c` and `a ⊕ (b ⊕ c)` differ in the
//! last ulp, so two runs with different lease boundaries would render
//! different bytes. Every piece of sketch state is therefore chosen from
//! operations that are exactly associative *and* commutative:
//!
//! - **counts** — unsigned integer addition;
//! - **sums and sums of squares** — fixed-point `i128` accumulators
//!   (scale 2⁴⁰) combined with wrapping addition: modular arithmetic is a
//!   commutative group, so any fold order yields the same bits. Each
//!   sample is rounded to fixed point once, deterministically, at record
//!   time; within the documented value domain (|Σv²| < 2⁸⁷ · 2⁴⁰) the
//!   wrap is never reached;
//! - **min/max** — `f64` with `+∞`/`−∞` identities; non-finite samples
//!   are excluded into a separate `non_finite` counter so `NaN` can never
//!   poison an extremum;
//! - **δmax** — the exact integer [`DeltaMaxHistogram`], whose merge is
//!   dense count-array addition;
//! - **quantiles** — a fixed-resolution [`QuantileSketch`]: values are
//!   quantized to sign × exponent × 7 mantissa bits (relative resolution
//!   ≤ 1/128) and counted in integer bins keyed by an order-preserving
//!   `u64`; merging adds bins.
//!
//! Derived statistics (mean, variance, quantiles) are computed at render
//! time from this integer state, so identical state renders identical
//! bytes everywhere. On top of the associativity argument, the fold order
//! is *also* pinned: [`RunSummary::fold_fragments`] sorts fragments by
//! shard start, i.e. spec-index order — so even a future field that is
//! merely order-sensitive (not fully associative) would stay
//! deterministic.
//!
//! The `report` plan section ([`ReportSpec`]) threads the subsystem
//! through all four engines per the extension rule; see `docs/reporting.md`
//! for the wire frame and the results-book workflow.

use crate::json::Json;
use crate::metrics::{DeltaMaxHistogram, EpisodeReport};
use crate::shard::{self, Shard, ShardError};
use std::collections::BTreeMap;
use std::fmt;

/// Version stamped on every summary wire object (worker stdout lines and
/// the TCP `summary` frame). Bumped whenever the sketch encoding changes
/// shape so a coordinator never folds state from a different schema.
pub const SUMMARY_VERSION: u64 = 1;

fn wire_err(message: impl Into<String>) -> ShardError {
    ShardError::Wire {
        message: message.into(),
    }
}

// ---------------------------------------------------------------------------
// The report plan section
// ---------------------------------------------------------------------------

/// What a sweep emits: the classic per-episode NDJSON stream, per-cell
/// summary NDJSON, or both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportMode {
    /// Per-episode NDJSON only (the behavior of plans without a `report`
    /// section).
    Episodes,
    /// Per-cell summary NDJSON only. In this mode no per-episode line ever
    /// crosses a process or host boundary: workers fold locally and ship
    /// one sketch fragment.
    Summary,
    /// The episode stream followed by the summary block. Workers still
    /// stream episodes (the coordinator folds sketches from the merged
    /// in-order stream), so the wire protocol is unchanged from
    /// [`ReportMode::Episodes`].
    Both,
}

impl ReportMode {
    /// All modes, for error messages.
    pub const ALL: [Self; 3] = [Self::Episodes, Self::Summary, Self::Both];

    /// The plan-file name of this mode.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Episodes => "episodes",
            Self::Summary => "summary",
            Self::Both => "both",
        }
    }

    /// Parses a plan-file mode name.
    ///
    /// # Errors
    ///
    /// Returns a grammar-style message naming the valid modes.
    pub fn parse(value: &str) -> Result<Self, String> {
        Self::ALL
            .into_iter()
            .find(|m| m.name() == value)
            .ok_or_else(|| {
                let valid = Self::ALL.map(|m| m.name()).join(", ");
                format!("unknown report mode '{value}' (valid: {valid})")
            })
    }

    /// Whether this mode emits the per-episode stream.
    #[must_use]
    pub fn includes_episodes(&self) -> bool {
        matches!(self, Self::Episodes | Self::Both)
    }

    /// Whether this mode emits the per-cell summary block.
    #[must_use]
    pub fn includes_summary(&self) -> bool {
        matches!(self, Self::Summary | Self::Both)
    }
}

impl fmt::Display for ReportMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The `report` section of a plan file: which streams to emit, which
/// quantiles the summary renders, and (optionally) the results-book file a
/// named-run row is upserted into.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportSpec {
    /// What the sweep emits.
    pub mode: ReportMode,
    /// Quantiles rendered per summarized metric, in plan order. Each must
    /// be finite and in `[0, 1]`.
    pub quantiles: Vec<f64>,
    /// Results-book path (e.g. `results/results.md`); `None` skips the
    /// book append.
    pub book: Option<String>,
}

impl ReportSpec {
    /// The default section: summary-only, median + p99, no book.
    #[must_use]
    pub fn new() -> Self {
        Self {
            mode: ReportMode::Summary,
            quantiles: vec![0.5, 0.99],
            book: None,
        }
    }

    /// Sets the mode (builder style).
    #[must_use]
    pub fn with_mode(mut self, mode: ReportMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the results-book path (builder style).
    #[must_use]
    pub fn with_book(mut self, book: impl Into<String>) -> Self {
        self.book = Some(book.into());
        self
    }

    /// Encodes the section for a plan file.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("mode", Json::from(self.mode.name())),
            (
                "quantiles",
                Json::Arr(
                    self.quantiles
                        .iter()
                        .map(|&q| shard::f64_to_wire(q))
                        .collect(),
                ),
            ),
        ];
        if let Some(book) = &self.book {
            pairs.push(("book", Json::from(book.as_str())));
        }
        Json::obj(pairs)
    }

    /// Parses the section, pushing every problem (named `report.FIELD`)
    /// through `push`. Returns `None` when the section is unusable.
    pub(crate) fn parse_into(json: &Json, push: &mut dyn FnMut(&str, String)) -> Option<Self> {
        let Json::Obj(pairs) = json else {
            push("report", "expected an object".to_owned());
            return None;
        };
        for (key, _) in pairs {
            if !matches!(key.as_str(), "mode" | "quantiles" | "book") {
                push(
                    &format!("report.{key}"),
                    "unknown field (expected: mode, quantiles, book)".to_owned(),
                );
            }
        }
        let mut spec = Self::new();
        if let Some(mode) = json.get("mode") {
            match mode.as_str().map(ReportMode::parse) {
                Some(Ok(mode)) => spec.mode = mode,
                Some(Err(message)) => push("report.mode", message),
                None => push("report.mode", "expected a string".to_owned()),
            }
        }
        if let Some(quantiles) = json.get("quantiles") {
            match quantiles.as_arr() {
                Some(items) => {
                    let mut parsed = Vec::with_capacity(items.len());
                    for (i, item) in items.iter().enumerate() {
                        match item.as_f64() {
                            Some(q) => parsed.push(q),
                            None => push(
                                &format!("report.quantiles[{i}]"),
                                "expected a number".to_owned(),
                            ),
                        }
                    }
                    spec.quantiles = parsed;
                }
                None => push("report.quantiles", "expected an array".to_owned()),
            }
        }
        if let Some(book) = json.get("book") {
            match book.as_str() {
                Some(path) => spec.book = Some(path.to_owned()),
                None => push("report.book", "expected a string path".to_owned()),
            }
        }
        Some(spec)
    }

    /// Value-level validation, pushing problems named `report.FIELD`.
    pub(crate) fn check(&self, push: &mut dyn FnMut(&str, String)) {
        for (i, &q) in self.quantiles.iter().enumerate() {
            if !q.is_finite() || !(0.0..=1.0).contains(&q) {
                push(
                    &format!("report.quantiles[{i}]"),
                    format!("quantile {q} must be finite and in [0, 1]"),
                );
            }
        }
        if let Some(book) = &self.book {
            if book.trim().is_empty() {
                push("report.book", "book path must not be empty".to_owned());
            }
        }
    }
}

impl Default for ReportSpec {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for ReportSpec {
    /// The resolved one-line form `--plan --check` prints.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mode={} quantiles=[", self.mode)?;
        for (i, q) in self.quantiles.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{q}")?;
        }
        write!(f, "] book={}", self.book.as_deref().unwrap_or("-"))
    }
}

// ---------------------------------------------------------------------------
// Quantile sketch
// ---------------------------------------------------------------------------

/// Mantissa bits dropped when quantizing a sample into its bin: keeping
/// sign, exponent, and the top 7 of 52 mantissa bits gives 128 bins per
/// binade — relative resolution ≤ 1/128 (~0.8%).
const DROPPED_MANTISSA_BITS: u32 = 45;

/// A deterministic fixed-resolution quantile sketch.
///
/// Samples are quantized to sign × exponent × 7 mantissa bits and counted
/// in integer bins keyed by an order-preserving `u64` transform of the
/// quantized IEEE-754 bits, so the bins of any two sketches align exactly
/// and merging is pure integer addition — exactly associative and
/// commutative, the property the summary bit-identity contract rests on.
///
/// A bin's representative value is its smallest-magnitude boundary (the
/// quantized value itself), so a reported quantile is within one part in
/// 128 of the true order statistic's magnitude.
///
/// # Example
///
/// ```
/// use seo_core::agg::QuantileSketch;
///
/// let mut s = QuantileSketch::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     s.record(v);
/// }
/// assert_eq!(s.quantile(0.5), Some(2.0));
/// assert_eq!(s.quantile(1.0), Some(4.0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QuantileSketch {
    /// Bin counts keyed by the order-preserving quantized key, kept sorted
    /// by the `BTreeMap` so iteration is ascending in value.
    bins: BTreeMap<u64, u64>,
    /// Total samples recorded (sum of all bin counts).
    count: u64,
}

/// Order-preserving key of a (quantized) finite `f64`: flips the sign bit
/// of non-negative values and all bits of negative ones, so unsigned key
/// order equals numeric order.
fn quantize_key(v: f64) -> u64 {
    let mask = !((1u64 << DROPPED_MANTISSA_BITS) - 1);
    let bits = v.to_bits() & mask;
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1u64 << 63)
    }
}

/// Inverse of [`quantize_key`]: the bin's representative value.
fn key_value(key: u64) -> f64 {
    let bits = if key >> 63 == 1 {
        key & !(1u64 << 63)
    } else {
        !key
    };
    f64::from_bits(bits)
}

impl QuantileSketch {
    /// Creates an empty sketch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one finite sample. Non-finite samples are ignored —
    /// [`StatSketch`] routes them into its `non_finite` counter before the
    /// sketch ever sees them.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        *self.bins.entry(quantize_key(v)).or_insert(0) += 1;
        self.count += 1;
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Merges another sketch into this one (integer bin addition — exactly
    /// associative and commutative).
    pub fn merge(&mut self, other: &Self) {
        for (&key, &c) in &other.bins {
            let slot = self.bins.entry(key).or_insert(0);
            *slot = slot.saturating_add(c);
        }
        self.count = self.count.saturating_add(other.count);
    }

    /// The q-th quantile's representative value (`None` when empty). Uses
    /// the ceiling-rank convention: `quantile(0.0)` is the minimum bin,
    /// `quantile(1.0)` the maximum bin.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (&key, &c) in &self.bins {
            cumulative = cumulative.saturating_add(c);
            if cumulative >= rank {
                return Some(key_value(key));
            }
        }
        self.bins.keys().next_back().map(|&k| key_value(k))
    }

    /// Encodes the exact bin state as `[[key, count], …]` (ascending keys).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.bins
                .iter()
                .map(|(&k, &c)| Json::Arr(vec![shard::u64_to_wire(k), shard::u64_to_wire(c)]))
                .collect(),
        )
    }

    /// Decodes bin state written by [`Self::to_json`].
    ///
    /// # Errors
    ///
    /// [`ShardError::Wire`] on malformed bins.
    pub fn from_json(json: &Json) -> Result<Self, ShardError> {
        let pairs = json
            .as_arr()
            .ok_or_else(|| wire_err("quantile bins: expected an array"))?;
        let mut sketch = Self::new();
        for pair in pairs {
            let pair = pair
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| wire_err("quantile bins: expected [key, count] pairs"))?;
            let key = shard::u64_from_wire(&pair[0], "quantile bin key")?;
            let count = shard::u64_from_wire(&pair[1], "quantile bin count")?;
            let slot = sketch.bins.entry(key).or_insert(0);
            *slot = slot.saturating_add(count);
            sketch.count = sketch.count.saturating_add(count);
        }
        Ok(sketch)
    }
}

// ---------------------------------------------------------------------------
// Scalar stat sketch
// ---------------------------------------------------------------------------

/// Fixed-point scale for the sum accumulators: 2⁴⁰ (resolution ~9·10⁻¹³).
const FX_SCALE: f64 = (1u64 << 40) as f64;

/// Quantizes one sample to fixed point. The float→int cast saturates at
/// the `i128` extremes (Rust guarantee), which keeps even absurd samples
/// deterministic; within the documented domain the bound is never hit.
fn to_fixed(v: f64) -> i128 {
    #[allow(clippy::cast_possible_truncation)]
    let fx = (v * FX_SCALE).round() as i128;
    fx
}

/// Streaming moments of one scalar metric with exactly-associative state:
/// count, min/max, fixed-point Σv and Σv², and a [`QuantileSketch`].
///
/// Merging two sketches yields bit-identical state to recording all their
/// samples into one — in any merge order (see the module docs for the
/// associativity argument). Non-finite samples are counted in
/// [`Self::non_finite`] and excluded from every other leg.
#[derive(Debug, Clone, PartialEq)]
pub struct StatSketch {
    /// Finite samples recorded.
    pub count: u64,
    /// Non-finite samples (NaN/±∞) excluded from the other legs. For the
    /// energy-gain metric this counts episodes whose baseline consumed no
    /// energy (gain undefined).
    pub non_finite: u64,
    /// Minimum finite sample (`+∞` when none — the merge identity).
    pub min: f64,
    /// Maximum finite sample (`−∞` when none — the merge identity).
    pub max: f64,
    /// Fixed-point Σv (scale 2⁴⁰), combined with wrapping addition.
    pub sum_fx: i128,
    /// Fixed-point Σv² (scale 2⁴⁰), combined with wrapping addition.
    pub sum_sq_fx: i128,
    /// Quantile bins.
    pub quantiles: QuantileSketch,
}

impl StatSketch {
    /// Creates an empty sketch.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            non_finite: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum_fx: 0,
            sum_sq_fx: 0,
            quantiles: QuantileSketch::new(),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            self.non_finite += 1;
            return;
        }
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum_fx = self.sum_fx.wrapping_add(to_fixed(v));
        self.sum_sq_fx = self.sum_sq_fx.wrapping_add(to_fixed(v * v));
        self.quantiles.record(v);
    }

    /// Merges another sketch into this one.
    pub fn merge(&mut self, other: &Self) {
        self.count = self.count.saturating_add(other.count);
        self.non_finite = self.non_finite.saturating_add(other.non_finite);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum_fx = self.sum_fx.wrapping_add(other.sum_fx);
        self.sum_sq_fx = self.sum_sq_fx.wrapping_add(other.sum_sq_fx);
        self.quantiles.merge(&other.quantiles);
    }

    /// Mean of the finite samples (`None` when there are none). Derived at
    /// render time from the integer state.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        #[allow(clippy::cast_precision_loss)]
        Some(self.sum_fx as f64 / FX_SCALE / self.count as f64)
    }

    /// Population variance of the finite samples (`None` when there are
    /// none), clamped at zero against fixed-point rounding.
    #[must_use]
    pub fn variance(&self) -> Option<f64> {
        let mean = self.mean()?;
        #[allow(clippy::cast_precision_loss)]
        let mean_sq = self.sum_sq_fx as f64 / FX_SCALE / self.count as f64;
        Some((mean_sq - mean * mean).max(0.0))
    }

    /// Encodes the exact integer state (the merge-safe wire form). The
    /// fixed-point sums travel as decimal strings so no consumer rounds
    /// them through a float.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", shard::u64_to_wire(self.count)),
            ("non_finite", shard::u64_to_wire(self.non_finite)),
            ("min", shard::f64_to_wire(self.min)),
            ("max", shard::f64_to_wire(self.max)),
            ("sum", Json::Str(self.sum_fx.to_string())),
            ("sum_sq", Json::Str(self.sum_sq_fx.to_string())),
            ("bins", self.quantiles.to_json()),
        ])
    }

    /// Decodes state written by [`Self::to_json`].
    ///
    /// # Errors
    ///
    /// [`ShardError::Wire`] on missing or mistyped fields.
    pub fn from_json(json: &Json) -> Result<Self, ShardError> {
        let field = |name: &str| {
            json.get(name)
                .ok_or_else(|| wire_err(format!("stat sketch: missing field '{name}'")))
        };
        Ok(Self {
            count: shard::u64_from_wire(field("count")?, "count")?,
            non_finite: shard::u64_from_wire(field("non_finite")?, "non_finite")?,
            min: shard::f64_from_wire(field("min")?, "min")?,
            max: shard::f64_from_wire(field("max")?, "max")?,
            sum_fx: i128_from_wire(field("sum")?, "sum")?,
            sum_sq_fx: i128_from_wire(field("sum_sq")?, "sum_sq")?,
            quantiles: QuantileSketch::from_json(field("bins")?)?,
        })
    }

    /// Renders the derived statistics (the human-facing summary form):
    /// count, non-finite count, mean, variance, min/max, and the requested
    /// quantiles keyed by their shortest-round-trip decimal form.
    #[must_use]
    pub fn stats_json(&self, quantiles: &[f64]) -> Json {
        let opt = |v: Option<f64>| shard::f64_to_wire(v.unwrap_or(f64::NAN));
        let q_pairs: Vec<(String, Json)> = quantiles
            .iter()
            .map(|&q| (format!("{q}"), opt(self.quantiles.quantile(q))))
            .collect();
        Json::obj(vec![
            ("count", shard::u64_to_wire(self.count)),
            ("non_finite", shard::u64_to_wire(self.non_finite)),
            ("mean", opt(self.mean())),
            ("var", opt(self.variance())),
            ("min", opt((self.count > 0).then_some(self.min))),
            ("max", opt((self.count > 0).then_some(self.max))),
            ("q", Json::Obj(q_pairs)),
        ])
    }
}

impl Default for StatSketch {
    fn default() -> Self {
        Self::new()
    }
}

fn i128_from_wire(v: &Json, field: &str) -> Result<i128, ShardError> {
    match v {
        Json::Str(s) => s
            .parse::<i128>()
            .map_err(|_| wire_err(format!("{field}: '{s}' is not an i128"))),
        Json::Int(i) => Ok(i128::from(*i)),
        _ => Err(wire_err(format!("{field}: expected an integer string"))),
    }
}

// ---------------------------------------------------------------------------
// Per-cell sketch
// ---------------------------------------------------------------------------

/// The mergeable summary of every episode one grid cell has produced:
/// success/safety tallies, [`StatSketch`]es for the combined energy gain,
/// minimum barrier, and step count, and the exact merged
/// [`DeltaMaxHistogram`] as the δmax leg (its dense count-array merge is
/// pure integer addition, so δmax statistics — including quantiles — are
/// exact, not sketched).
#[derive(Debug, Clone, PartialEq)]
pub struct CellSketch {
    /// Grid cell index (cell-major, as enumerated by the plan).
    pub cell: usize,
    /// Episodes folded in.
    pub episodes: u64,
    /// Episodes that completed the route without collision.
    pub successes: u64,
    /// Total steps on which the safety state was violated.
    pub unsafe_steps: u64,
    /// Total steps on which the safety filter corrected the control.
    pub corrections: u64,
    /// Combined energy gain over the always-local baseline (episodes with
    /// an undefined gain — zero baseline energy — land in `non_finite`).
    pub energy_gain: StatSketch,
    /// Minimum observed barrier value per episode.
    pub min_barrier: StatSketch,
    /// Steps per episode.
    pub steps: StatSketch,
    /// Exact merged δmax histogram.
    pub delta_max: DeltaMaxHistogram,
}

impl CellSketch {
    /// Creates an empty sketch for `cell`.
    #[must_use]
    pub fn new(cell: usize) -> Self {
        Self {
            cell,
            episodes: 0,
            successes: 0,
            unsafe_steps: 0,
            corrections: 0,
            energy_gain: StatSketch::new(),
            min_barrier: StatSketch::new(),
            steps: StatSketch::new(),
            delta_max: DeltaMaxHistogram::new(),
        }
    }

    /// Folds one episode in.
    pub fn record(&mut self, report: &EpisodeReport) {
        self.episodes += 1;
        self.successes += u64::from(report.is_success());
        self.unsafe_steps += report.unsafe_steps as u64;
        self.corrections += report.corrections as u64;
        self.energy_gain
            .record(report.combined_gain().unwrap_or(f64::NAN));
        self.min_barrier.record(report.min_barrier);
        #[allow(clippy::cast_precision_loss)]
        self.steps.record(report.steps as f64);
        self.delta_max.merge(&report.histogram);
    }

    /// Merges another fragment of the **same cell** into this one.
    ///
    /// # Errors
    ///
    /// [`ShardError::Wire`] when the fragments describe different cells.
    pub fn merge(&mut self, other: &Self) -> Result<(), ShardError> {
        if self.cell != other.cell {
            return Err(wire_err(format!(
                "cannot merge sketch for cell {} into cell {}",
                other.cell, self.cell
            )));
        }
        self.absorb(other);
        Ok(())
    }

    /// The cell-agnostic merge body, shared with [`RunSummary::overall`].
    fn absorb(&mut self, other: &Self) {
        self.episodes = self.episodes.saturating_add(other.episodes);
        self.successes = self.successes.saturating_add(other.successes);
        self.unsafe_steps = self.unsafe_steps.saturating_add(other.unsafe_steps);
        self.corrections = self.corrections.saturating_add(other.corrections);
        self.energy_gain.merge(&other.energy_gain);
        self.min_barrier.merge(&other.min_barrier);
        self.steps.merge(&other.steps);
        self.delta_max.merge(&other.delta_max);
    }

    /// Encodes the exact state (the merge-safe wire form shipped in
    /// summary frames and worker summary lines).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("cell", self.cell.into()),
            ("episodes", shard::u64_to_wire(self.episodes)),
            ("successes", shard::u64_to_wire(self.successes)),
            ("unsafe_steps", shard::u64_to_wire(self.unsafe_steps)),
            ("corrections", shard::u64_to_wire(self.corrections)),
            ("energy_gain", self.energy_gain.to_json()),
            ("min_barrier", self.min_barrier.to_json()),
            ("steps", self.steps.to_json()),
            ("delta_max", shard::histogram_to_json(&self.delta_max)),
        ])
    }

    /// Decodes state written by [`Self::to_json`].
    ///
    /// # Errors
    ///
    /// [`ShardError::Wire`] on missing or mistyped fields.
    pub fn from_json(json: &Json) -> Result<Self, ShardError> {
        let field = |name: &str| {
            json.get(name)
                .ok_or_else(|| wire_err(format!("cell sketch: missing field '{name}'")))
        };
        let cell = field("cell")?
            .as_i64()
            .and_then(|v| usize::try_from(v).ok())
            .ok_or_else(|| wire_err("cell sketch: cell must be a non-negative integer"))?;
        Ok(Self {
            cell,
            episodes: shard::u64_from_wire(field("episodes")?, "episodes")?,
            successes: shard::u64_from_wire(field("successes")?, "successes")?,
            unsafe_steps: shard::u64_from_wire(field("unsafe_steps")?, "unsafe_steps")?,
            corrections: shard::u64_from_wire(field("corrections")?, "corrections")?,
            energy_gain: StatSketch::from_json(field("energy_gain")?)?,
            min_barrier: StatSketch::from_json(field("min_barrier")?)?,
            steps: StatSketch::from_json(field("steps")?)?,
            delta_max: shard::histogram_from_json(field("delta_max")?)?,
        })
    }

    /// Renders the derived per-cell summary object (what the summary
    /// NDJSON line carries under `"cell"`).
    #[must_use]
    pub fn stats_json(&self, quantiles: &[f64]) -> Json {
        let delta_q: Vec<(String, Json)> = quantiles
            .iter()
            .map(|&q| {
                (
                    format!("{q}"),
                    self.delta_max
                        .quantile(q)
                        .map_or(Json::Str("nan".to_owned()), Json::from),
                )
            })
            .collect();
        Json::obj(vec![
            ("cell", self.cell.into()),
            ("episodes", shard::u64_to_wire(self.episodes)),
            ("successes", shard::u64_to_wire(self.successes)),
            ("unsafe_steps", shard::u64_to_wire(self.unsafe_steps)),
            ("corrections", shard::u64_to_wire(self.corrections)),
            ("energy_gain", self.energy_gain.stats_json(quantiles)),
            ("min_barrier", self.min_barrier.stats_json(quantiles)),
            ("steps", self.steps.stats_json(quantiles)),
            (
                "delta_max",
                Json::obj(vec![
                    ("count", Json::from(self.delta_max.total())),
                    ("mean", shard::f64_to_wire(self.delta_max.mean())),
                    ("q", Json::Obj(delta_q)),
                ]),
            ),
        ])
    }
}

/// Encodes a fragment (the sketches one shard/lease produced) as a JSON
/// array, in ascending cell order as produced by the fold.
#[must_use]
pub fn cells_to_json(cells: &[CellSketch]) -> Json {
    Json::Arr(cells.iter().map(CellSketch::to_json).collect())
}

/// Decodes a fragment written by [`cells_to_json`].
///
/// # Errors
///
/// [`ShardError::Wire`] on malformed cells.
pub fn cells_from_json(json: &Json) -> Result<Vec<CellSketch>, ShardError> {
    json.as_arr()
        .ok_or_else(|| wire_err("cells: expected an array"))?
        .iter()
        .map(CellSketch::from_json)
        .collect()
}

// ---------------------------------------------------------------------------
// Run summary
// ---------------------------------------------------------------------------

/// The whole-run accumulator: one [`CellSketch`] per grid cell, folded in
/// spec-index order.
///
/// Engines that see episodes in order (serial, threads, the process/host
/// coordinators' merged streams) call [`Self::record`] per episode;
/// engines that receive pre-folded fragments (summary-mode workers and
/// daemons) collect `(shard, cells)` pairs and hand them to
/// [`Self::fold_fragments`], which sorts by shard start before folding —
/// the spec-index-order contract that pins the fold order even though the
/// sketch state is order-independent by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    cells: Vec<CellSketch>,
    specs_per_cell: usize,
}

impl RunSummary {
    /// An empty summary for a grid of `n_cells` cells of `specs_per_cell`
    /// specs each (cell-major spec indexing, as the plan enumerates it).
    #[must_use]
    pub fn new(n_cells: usize, specs_per_cell: usize) -> Self {
        Self {
            cells: (0..n_cells).map(CellSketch::new).collect(),
            specs_per_cell: specs_per_cell.max(1),
        }
    }

    /// The per-cell sketches, in cell order.
    #[must_use]
    pub fn cells(&self) -> &[CellSketch] {
        &self.cells
    }

    /// Episodes folded in across all cells.
    #[must_use]
    pub fn episodes(&self) -> u64 {
        self.cells.iter().map(|c| c.episodes).sum()
    }

    /// Folds one episode in by global spec index.
    ///
    /// # Panics
    ///
    /// Panics when `spec_index` lies outside the grid — a protocol bug, not
    /// a runtime condition.
    pub fn record(&mut self, spec_index: usize, report: &EpisodeReport) {
        let cell = spec_index / self.specs_per_cell;
        self.cells[cell].record(report);
    }

    /// Folds one pre-folded fragment in.
    ///
    /// # Errors
    ///
    /// [`ShardError::Wire`] when a fragment names a cell outside the grid.
    pub fn fold_fragment(&mut self, cells: &[CellSketch]) -> Result<(), ShardError> {
        for sketch in cells {
            let n_cells = self.cells.len();
            let slot = self.cells.get_mut(sketch.cell).ok_or_else(|| {
                wire_err(format!(
                    "fragment names cell {} outside grid of {n_cells} cell(s)",
                    sketch.cell
                ))
            })?;
            slot.merge(sketch)?;
        }
        Ok(())
    }

    /// Folds a batch of `(shard, cells)` fragments in **spec-index order**
    /// (sorted by shard start). The scheduler's lease tiling guarantees
    /// disjoint shards, so after sorting, fragments arrive exactly as a
    /// serial sweep would have produced them.
    ///
    /// # Errors
    ///
    /// [`ShardError::Wire`] when a fragment names a cell outside the grid.
    pub fn fold_fragments(
        &mut self,
        mut fragments: Vec<(Shard, Vec<CellSketch>)>,
    ) -> Result<(), ShardError> {
        fragments.sort_by_key(|(shard, _)| shard.start);
        for (_, cells) in &fragments {
            self.fold_fragment(cells)?;
        }
        Ok(())
    }

    /// The sketches a shard's episodes folded into, for shipping as a
    /// fragment: only cells with at least one episode are included, in
    /// ascending cell order.
    #[must_use]
    pub fn fragment(&self) -> Vec<CellSketch> {
        self.cells
            .iter()
            .filter(|c| c.episodes > 0)
            .cloned()
            .collect()
    }

    /// All cells merged into one whole-run sketch (cell index 0) — what
    /// the results book summarizes into a single row.
    #[must_use]
    pub fn overall(&self) -> CellSketch {
        let mut total = CellSketch::new(0);
        for cell in &self.cells {
            total.absorb(cell);
        }
        total
    }

    /// Renders the summary as per-cell NDJSON lines:
    /// `{"v":1,"cell":N,…}` — one line per grid cell, in cell order,
    /// derived entirely from the integer sketch state so identical state
    /// renders identical bytes.
    #[must_use]
    pub fn lines(&self, quantiles: &[f64]) -> Vec<String> {
        self.cells
            .iter()
            .map(|cell| {
                let mut pairs = vec![("v".to_owned(), Json::from(SUMMARY_VERSION))];
                let Json::Obj(cell_pairs) = cell.stats_json(quantiles) else {
                    unreachable!("stats_json renders an object")
                };
                pairs.extend(cell_pairs);
                Json::Obj(pairs).render()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::ScenarioSpec;
    use crate::config::SeoConfig;
    use crate::model::ModelSet;
    use crate::optimizer::OptimizerKind;
    use crate::runtime::RuntimeLoop;

    fn sample_reports(n: usize) -> Vec<EpisodeReport> {
        let config = SeoConfig::paper_defaults();
        let models = ModelSet::paper_setup(config.tau).expect("paper models");
        let runtime = RuntimeLoop::new(config, models, OptimizerKind::Offloading).expect("runtime");
        (0..n)
            .map(|i| {
                let spec = ScenarioSpec::new(i % 3, 1000 + i as u64);
                runtime.run_episode(&spec.world(), spec.seed)
            })
            .collect()
    }

    #[test]
    fn quantile_sketch_orders_keys_like_values() {
        let values = [-1e9, -2.5, -1.0, -1e-30, 0.0, 1e-30, 0.5, 1.0, 333.25, 1e12];
        for pair in values.windows(2) {
            assert!(
                quantize_key(pair[0]) < quantize_key(pair[1]),
                "{} vs {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn quantile_sketch_representative_is_close() {
        let mut s = QuantileSketch::new();
        s.record(123.456);
        let rep = s.quantile(0.5).expect("nonempty");
        assert!((rep - 123.456).abs() / 123.456 < 1.0 / 128.0, "{rep}");
    }

    #[test]
    fn quantile_sketch_ranks() {
        let mut s = QuantileSketch::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.record(v);
        }
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(0.25), Some(1.0));
        assert_eq!(s.quantile(0.5), Some(2.0));
        assert_eq!(s.quantile(0.75), Some(3.0));
        assert_eq!(s.quantile(0.99), Some(4.0));
        assert_eq!(s.quantile(1.0), Some(4.0));
        assert_eq!(QuantileSketch::new().quantile(0.5), None);
    }

    #[test]
    fn stat_sketch_merge_is_bitwise_associative() {
        // Three fragments, folded in every association/order — the state
        // must be bit-identical each time. This is the property plain
        // Welford merging lacks.
        let values: Vec<f64> = (0..60)
            .map(|i| f64::from(i) * 0.37 - 7.0 + 1.0 / (f64::from(i) + 1.0))
            .collect();
        let mut frags: Vec<StatSketch> = (0..3).map(|_| StatSketch::new()).collect();
        for (i, &v) in values.iter().enumerate() {
            frags[i % 3].record(v);
        }
        let fold = |order: &[usize], left_first: bool| {
            let mut acc = StatSketch::new();
            if left_first {
                for &i in order {
                    acc.merge(&frags[i]);
                }
            } else {
                let mut right = StatSketch::new();
                for &i in &order[1..] {
                    right.merge(&frags[i]);
                }
                acc.merge(&frags[order[0]]);
                acc.merge(&right);
            }
            acc
        };
        let baseline = fold(&[0, 1, 2], true);
        for order in [[0, 1, 2], [2, 1, 0], [1, 0, 2], [2, 0, 1]] {
            for left_first in [true, false] {
                let merged = fold(&order, left_first);
                assert_eq!(merged, baseline, "order {order:?} left_first {left_first}");
                assert_eq!(
                    merged.to_json().render(),
                    baseline.to_json().render(),
                    "wire bytes must match"
                );
            }
        }
        // And the merged state matches recording everything into one sketch.
        let mut single = StatSketch::new();
        for &v in &values {
            single.record(v);
        }
        assert_eq!(single, baseline);
    }

    #[test]
    fn stat_sketch_routes_non_finite_aside() {
        let mut s = StatSketch::new();
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        s.record(2.0);
        assert_eq!(s.count, 1);
        assert_eq!(s.non_finite, 2);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 2.0);
        let mean = s.mean().expect("one sample");
        assert!((mean - 2.0).abs() < 1e-9, "{mean}");
        let empty = StatSketch::new();
        assert_eq!(empty.mean(), None);
        assert_eq!(empty.variance(), None);
    }

    #[test]
    fn stat_sketch_moments_match_direct_computation() {
        let values = [0.25, 0.5, 0.75, 1.0];
        let mut s = StatSketch::new();
        for v in values {
            s.record(v);
        }
        let mean = values.iter().sum::<f64>() / 4.0;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / 4.0;
        assert!((s.mean().expect("nonempty") - mean).abs() < 1e-9);
        assert!((s.variance().expect("nonempty") - var).abs() < 1e-9);
    }

    #[test]
    fn stat_sketch_json_round_trip_is_exact() {
        let mut s = StatSketch::new();
        for v in [-3.5, 0.0, 1.0 / 3.0, 9.75e6, f64::NAN] {
            s.record(v);
        }
        let back = StatSketch::from_json(&s.to_json()).expect("round trip");
        assert_eq!(back, s);
        assert_eq!(back.to_json().render(), s.to_json().render());
        // Empty sketches carry the ±∞ identities through the sentinel path.
        let empty = StatSketch::new();
        let back = StatSketch::from_json(&empty.to_json()).expect("round trip");
        assert_eq!(back, empty);
    }

    #[test]
    fn cell_sketch_records_and_round_trips() {
        let reports = sample_reports(4);
        let mut sketch = CellSketch::new(2);
        for r in &reports {
            sketch.record(r);
        }
        assert_eq!(sketch.episodes, 4);
        assert_eq!(
            sketch.delta_max.total(),
            reports.iter().map(|r| r.histogram.total()).sum::<usize>()
        );
        let back = CellSketch::from_json(&sketch.to_json()).expect("round trip");
        assert_eq!(back, sketch);
        assert_eq!(back.to_json().render(), sketch.to_json().render());
    }

    #[test]
    fn cell_sketch_merge_rejects_cell_mismatch() {
        let mut a = CellSketch::new(0);
        let b = CellSketch::new(1);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn run_summary_fragmentation_is_bit_identical() {
        // Serial fold vs arbitrary fragment tilings (including the
        // re-issued-lease shape: a cell split across fragments) must render
        // identical bytes.
        let reports = sample_reports(6);
        let quantiles = [0.5, 0.99];
        let mut serial = RunSummary::new(3, 2);
        for (i, r) in reports.iter().enumerate() {
            serial.record(i, r);
        }
        let expected = serial.lines(&quantiles);
        for boundaries in [
            vec![0, 3, 6],
            vec![0, 1, 6],
            vec![0, 2, 4, 6],
            vec![0, 5, 6],
        ] {
            let mut fragments = Vec::new();
            for pair in boundaries.windows(2) {
                let shard = Shard::new(pair[0], pair[1]);
                let mut local = RunSummary::new(3, 2);
                for i in shard.indices() {
                    local.record(i, &reports[i]);
                }
                fragments.push((shard, local.fragment()));
            }
            // Worst case: fragments arrive in reverse; fold_fragments sorts.
            fragments.reverse();
            let mut folded = RunSummary::new(3, 2);
            folded.fold_fragments(fragments).expect("fold");
            assert_eq!(folded.lines(&quantiles), expected);
            assert_eq!(folded, serial);
        }
    }

    #[test]
    fn run_summary_overall_absorbs_all_cells() {
        let reports = sample_reports(4);
        let mut summary = RunSummary::new(2, 2);
        for (i, r) in reports.iter().enumerate() {
            summary.record(i, r);
        }
        let overall = summary.overall();
        assert_eq!(overall.episodes, 4);
        assert_eq!(
            overall.delta_max.total(),
            reports.iter().map(|r| r.histogram.total()).sum::<usize>()
        );
    }

    #[test]
    fn run_summary_rejects_out_of_grid_fragment() {
        let mut summary = RunSummary::new(2, 1);
        let bad = vec![CellSketch::new(7)];
        assert!(summary.fold_fragment(&bad).is_err());
    }

    #[test]
    fn summary_lines_are_versioned_objects() {
        let reports = sample_reports(2);
        let mut summary = RunSummary::new(1, 2);
        for (i, r) in reports.iter().enumerate() {
            summary.record(i, r);
        }
        let lines = summary.lines(&[0.5]);
        assert_eq!(lines.len(), 1);
        let parsed = Json::parse(&lines[0]).expect("valid json");
        assert_eq!(parsed.get("v").and_then(Json::as_i64), Some(1));
        assert_eq!(parsed.get("cell").and_then(Json::as_i64), Some(0));
        assert_eq!(parsed.get("episodes").and_then(Json::as_i64), Some(2));
        assert!(parsed.get("energy_gain").is_some());
        assert!(parsed.get("delta_max").is_some());
    }

    #[test]
    fn report_mode_parses_and_prints() {
        for mode in ReportMode::ALL {
            assert_eq!(ReportMode::parse(mode.name()).expect("round trip"), mode);
        }
        assert!(ReportMode::parse("nope").is_err());
        assert!(ReportMode::Summary.includes_summary());
        assert!(!ReportMode::Summary.includes_episodes());
        assert!(ReportMode::Both.includes_episodes());
        assert!(ReportMode::Both.includes_summary());
        assert!(ReportMode::Episodes.includes_episodes());
        assert!(!ReportMode::Episodes.includes_summary());
    }

    #[test]
    fn report_spec_json_round_trip() {
        let spec = ReportSpec::new()
            .with_mode(ReportMode::Both)
            .with_book("results/results.md");
        let mut problems = Vec::new();
        let back = ReportSpec::parse_into(&spec.to_json(), &mut |field, message| {
            problems.push(format!("{field}: {message}"));
        })
        .expect("parses");
        assert!(problems.is_empty(), "{problems:?}");
        assert_eq!(back, spec);
    }

    #[test]
    fn report_spec_flags_problems() {
        let json = Json::obj(vec![
            ("mode", Json::from("sideways")),
            ("quantiles", Json::from(vec![0.5, 1.5])),
            ("mystery", Json::from(1.0)),
        ]);
        let mut problems = Vec::new();
        let spec = ReportSpec::parse_into(&json, &mut |field, message| {
            problems.push(format!("{field}: {message}"));
        })
        .expect("section still usable");
        assert!(problems.iter().any(|p| p.starts_with("report.mode")));
        assert!(problems.iter().any(|p| p.starts_with("report.mystery")));
        let mut check_problems = Vec::new();
        spec.check(&mut |field, message| check_problems.push(format!("{field}: {message}")));
        assert!(
            check_problems
                .iter()
                .any(|p| p.starts_with("report.quantiles[1]")),
            "{check_problems:?}"
        );
    }

    #[test]
    fn report_spec_display_is_the_resolved_line() {
        let spec = ReportSpec::new().with_book("results/results.md");
        assert_eq!(
            spec.to_string(),
            "mode=summary quantiles=[0.5, 0.99] book=results/results.md"
        );
        assert_eq!(
            ReportSpec::new().to_string(),
            "mode=summary quantiles=[0.5, 0.99] book=-"
        );
    }

    #[test]
    fn cells_json_round_trip() {
        let reports = sample_reports(3);
        let mut a = CellSketch::new(0);
        a.record(&reports[0]);
        let mut b = CellSketch::new(1);
        b.record(&reports[1]);
        b.record(&reports[2]);
        let cells = vec![a, b];
        let back = cells_from_json(&cells_to_json(&cells)).expect("round trip");
        assert_eq!(back, cells);
    }
}
