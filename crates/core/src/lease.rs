//! Pull-based lease scheduling for multi-host sweeps: the chunk policy and
//! the blocking lease queue behind [`crate::transport::RemoteCoordinator`].
//!
//! A **lease** is a small contiguous spec range `[start, end)` of the sweep
//! grid, granted to one host for one connection. Instead of assigning each
//! host a capacity-weighted slice of the whole grid up front, the
//! coordinator carves the grid into chunk-sized leases and lets hosts *pull*
//! the next lease whenever they are idle — so a fast host simply takes more
//! leases, and a straggler's slowness costs at most one chunk of tail
//! latency. When a host dies, times out, or is quarantined mid-lease, the
//! unreported remainder of its lease is returned to the queue and re-issued
//! to whichever host asks next (a *steal* when that is a different host).
//!
//! Determinism is untouched by any of this: every episode is a pure
//! function of its spec, and the streaming merge reorders reports by spec
//! index, so the merged output is bit-identical to the serial loop for
//! *every* chunk size — one spec per lease, the whole grid in one lease,
//! and everything in between. That associative-merge argument is what makes
//! arbitrary work splitting safe; `docs/scheduling.md` is the full book.
//!
//! # Example
//!
//! No network required — the queue is plain shared state:
//!
//! ```
//! use seo_core::lease::{ChunkPolicy, LeaseQueue};
//! use seo_core::shard::Shard;
//!
//! // Auto chunking targets ~4 leases per host: 24 specs over 2 hosts → 3.
//! assert_eq!(ChunkPolicy::Auto.resolve(24, 2), 3);
//!
//! // 6 specs in chunks of 4 carve into leases [0,4) and [4,6).
//! let queue = LeaseQueue::new(Shard::new(0, 6), 4);
//! assert_eq!(queue.initial_leases(), 2);
//!
//! // Host 0 pulls the first lease, dies after 2 of its 4 specs, and the
//! // tail goes back to the front of the queue for re-issue.
//! let lease = queue.pop().expect("work available");
//! assert_eq!((lease.shard.start, lease.shard.end), (0, 4));
//! queue.requeue(Shard::new(2, 4), 0);
//!
//! // Host 1 steals the tail (`reissued_from` names the loser), then pulls
//! // the remaining lease; after both complete the queue is finished and
//! // `pop` returns `None` instead of blocking.
//! let stolen = queue.pop().expect("re-issued lease");
//! assert_eq!(stolen.reissued_from, Some(0));
//! queue.complete();
//! let last = queue.pop().expect("final lease");
//! assert_eq!((last.shard.start, last.shard.end), (4, 6));
//! queue.complete();
//! assert!(queue.is_finished());
//! assert!(queue.pop().is_none());
//! ```

use crate::json::Json;
use crate::shard::Shard;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// How a sweep grid is carved into leases: the `exec.hosts.chunk` plan
/// field (`"chunk": N` or `"chunk": "auto"` in a hosts pool).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChunkPolicy {
    /// `specs / (4 × hosts)`, clamped to at least 1 spec — roughly four
    /// leases per host, enough pull granularity to absorb stragglers
    /// without drowning small grids in per-connection overhead.
    #[default]
    Auto,
    /// Exactly this many specs per lease (the last lease takes the
    /// remainder). Must be ≥ 1.
    Fixed(usize),
}

impl ChunkPolicy {
    /// The concrete chunk size for a grid of `n_specs` over `n_hosts`.
    /// Always ≥ 1, so a lease is never empty.
    #[must_use]
    pub fn resolve(&self, n_specs: usize, n_hosts: usize) -> usize {
        match *self {
            Self::Auto => (n_specs / (4 * n_hosts.max(1))).max(1),
            Self::Fixed(chunk) => chunk.max(1),
        }
    }

    /// Validates the policy; the message is bare for the caller to prefix
    /// with its own field path (`exec.hosts.chunk`).
    ///
    /// # Errors
    ///
    /// A plain message when a fixed chunk is zero.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            Self::Fixed(0) => Err("chunk must be at least 1 spec per lease".to_owned()),
            _ => Ok(()),
        }
    }

    /// Decodes the `"chunk"` value of a hosts pool: a positive integer or
    /// the string `"auto"`.
    ///
    /// # Errors
    ///
    /// A plain message naming the expected forms.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        if json.as_str() == Some("auto") {
            return Ok(Self::Auto);
        }
        let policy = json
            .as_i64()
            .filter(|&v| v > 0)
            .and_then(|v| usize::try_from(v).ok())
            .map(Self::Fixed)
            .ok_or_else(|| "expected a positive integer or \"auto\"".to_owned())?;
        policy.validate()?;
        Ok(policy)
    }

    /// Renders the policy to its JSON value form.
    #[must_use]
    pub fn to_json(&self) -> Json {
        match *self {
            Self::Auto => "auto".into(),
            Self::Fixed(chunk) => chunk.into(),
        }
    }
}

/// One grant of contiguous work, as handed out by [`LeaseQueue::pop`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// The spec range to run.
    pub shard: Shard,
    /// `Some(host_index)` when this lease is the re-queued remainder of a
    /// lease that host failed; `None` for first-issue leases. A host
    /// completing a lease re-issued from a *different* host counts as a
    /// steal.
    pub reissued_from: Option<usize>,
}

/// Interior state guarded by the queue's mutex.
struct QueueState {
    pending: VecDeque<Lease>,
    /// Leases popped but neither completed nor re-queued yet. While this
    /// is non-zero an idle host must block in [`LeaseQueue::pop`] rather
    /// than give up: the holder may die and re-queue stealable work.
    outstanding: usize,
}

/// The coordinator's shared work queue: grid leases out, completions and
/// re-queued remainders back in. All methods are safe to call from any
/// host thread concurrently.
///
/// Every lease popped must be balanced by exactly one [`LeaseQueue::complete`]
/// or [`LeaseQueue::requeue`] before the holding thread exits — that
/// invariant is what lets a blocked `pop` distinguish "the grid is done"
/// from "someone still holds work I might inherit".
pub struct LeaseQueue {
    inner: Mutex<QueueState>,
    available: Condvar,
    initial: usize,
}

impl LeaseQueue {
    /// How long a blocked `pop` sleeps between re-checks, bounding the
    /// cost of a missed wakeup without busy-waiting.
    const POP_POLL: Duration = Duration::from_millis(50);

    /// Carves `range` into leases of `chunk` specs each (the last lease
    /// takes the remainder; `chunk` is clamped to ≥ 1). An empty range
    /// yields a queue that is already finished.
    #[must_use]
    pub fn new(range: Shard, chunk: usize) -> Self {
        let chunk = chunk.max(1);
        let mut pending = VecDeque::new();
        let mut start = range.start;
        while start < range.end {
            let end = range.end.min(start + chunk);
            pending.push_back(Lease {
                shard: Shard::new(start, end),
                reissued_from: None,
            });
            start = end;
        }
        let initial = pending.len();
        Self {
            inner: Mutex::new(QueueState {
                pending,
                outstanding: 0,
            }),
            available: Condvar::new(),
            initial,
        }
    }

    /// How many leases the grid was carved into at construction (re-issues
    /// not included) — the `leases` figure in the run stats.
    #[must_use]
    pub fn initial_leases(&self) -> usize {
        self.initial
    }

    /// Pulls the next lease. Blocks while the queue is empty but another
    /// host still holds an outstanding lease (its remainder may yet be
    /// re-queued for stealing); returns `None` only when the queue is
    /// empty *and* nothing is outstanding — the grid is done, or stranded
    /// with no holder left to finish it.
    #[must_use]
    pub fn pop(&self) -> Option<Lease> {
        let mut state = self.inner.lock().expect("lease queue poisoned");
        loop {
            if let Some(lease) = state.pending.pop_front() {
                state.outstanding += 1;
                return Some(lease);
            }
            if state.outstanding == 0 {
                return None;
            }
            let (guard, _) = self
                .available
                .wait_timeout(state, Self::POP_POLL)
                .expect("lease queue poisoned");
            state = guard;
        }
    }

    /// Marks the caller's outstanding lease fully merged.
    pub fn complete(&self) {
        let mut state = self.inner.lock().expect("lease queue poisoned");
        state.outstanding = state.outstanding.saturating_sub(1);
        if state.outstanding == 0 {
            // Whether pending work or a finished grid, blocked poppers
            // must wake to claim it or observe the end.
            self.available.notify_all();
        }
    }

    /// Returns the unreported remainder of a failed lease to the *front*
    /// of the queue (the oldest stranded range re-issues first) and wakes
    /// blocked poppers to steal it. `from_host` attributes the re-issue
    /// for the steal tally.
    pub fn requeue(&self, remainder: Shard, from_host: usize) {
        let mut state = self.inner.lock().expect("lease queue poisoned");
        state.outstanding = state.outstanding.saturating_sub(1);
        if !remainder.is_empty() {
            state.pending.push_front(Lease {
                shard: remainder,
                reissued_from: Some(from_host),
            });
        }
        self.available.notify_all();
    }

    /// True once every lease has been pulled and completed: no pending
    /// work, nothing outstanding.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        let state = self.inner.lock().expect("lease queue poisoned");
        state.pending.is_empty() && state.outstanding == 0
    }

    /// Specs still sitting in the queue (outstanding leases not counted) —
    /// the stranded-work figure when every host has exited.
    #[must_use]
    pub fn remaining_specs(&self) -> usize {
        let state = self.inner.lock().expect("lease queue poisoned");
        state.pending.iter().map(|l| l.shard.len()).sum()
    }
}
