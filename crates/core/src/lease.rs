//! Pull-based lease scheduling for multi-host sweeps: the chunk policy and
//! the blocking lease queue behind [`crate::transport::RemoteCoordinator`].
//!
//! A **lease** is a small contiguous spec range `[start, end)` of the sweep
//! grid, granted to one host for one connection. Instead of assigning each
//! host a capacity-weighted slice of the whole grid up front, the
//! coordinator carves the grid into chunk-sized leases and lets hosts *pull*
//! the next lease whenever they are idle — so a fast host simply takes more
//! leases, and a straggler's slowness costs at most one chunk of tail
//! latency. When a host dies, times out, or is quarantined mid-lease, the
//! unreported remainder of its lease is returned to the queue and re-issued
//! to whichever host asks next (a *steal* when that is a different host).
//!
//! Determinism is untouched by any of this: every episode is a pure
//! function of its spec, and the streaming merge reorders reports by spec
//! index, so the merged output is bit-identical to the serial loop for
//! *every* chunk size — one spec per lease, the whole grid in one lease,
//! and everything in between. That associative-merge argument is what makes
//! arbitrary work splitting safe; `docs/scheduling.md` is the full book.
//!
//! # Example
//!
//! No network required — the queue is plain shared state:
//!
//! ```
//! use seo_core::lease::{ChunkPolicy, LeaseQueue};
//! use seo_core::shard::Shard;
//!
//! // Auto chunking targets ~4 leases per host: 24 specs over 2 hosts → 3.
//! assert_eq!(ChunkPolicy::Auto.resolve(24, 2), 3);
//!
//! // 6 specs in chunks of 4 carve into leases [0,4) and [4,6).
//! let queue = LeaseQueue::new(Shard::new(0, 6), 4);
//! assert_eq!(queue.initial_leases(), 2);
//!
//! // Host 0 pulls the first lease, dies after 2 of its 4 specs, and the
//! // tail goes back to the front of the queue for re-issue.
//! let lease = queue.pop().expect("work available");
//! assert_eq!((lease.shard.start, lease.shard.end), (0, 4));
//! queue.requeue(Shard::new(2, 4), 0);
//!
//! // Host 1 steals the tail (`reissued_from` names the loser), then pulls
//! // the remaining lease; after both complete the queue is finished and
//! // `pop` returns `None` instead of blocking.
//! let stolen = queue.pop().expect("re-issued lease");
//! assert_eq!(stolen.reissued_from, Some(0));
//! queue.complete();
//! let last = queue.pop().expect("final lease");
//! assert_eq!((last.shard.start, last.shard.end), (4, 6));
//! queue.complete();
//! assert!(queue.is_finished());
//! assert!(queue.pop().is_none());
//! ```

use crate::json::Json;
use crate::shard::Shard;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// How a sweep grid is carved into leases: the `exec.hosts.chunk` plan
/// field (`"chunk": N` or `"chunk": "auto"` in a hosts pool).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChunkPolicy {
    /// `specs / (4 × hosts)`, clamped to at least 1 spec — roughly four
    /// leases per host, enough pull granularity to absorb stragglers
    /// without drowning small grids in per-connection overhead.
    #[default]
    Auto,
    /// Exactly this many specs per lease (the last lease takes the
    /// remainder). Must be ≥ 1.
    Fixed(usize),
}

impl ChunkPolicy {
    /// The concrete chunk size for a grid of `n_specs` over `n_hosts`.
    /// Always ≥ 1, so a lease is never empty.
    #[must_use]
    pub fn resolve(&self, n_specs: usize, n_hosts: usize) -> usize {
        match *self {
            Self::Auto => (n_specs / (4 * n_hosts.max(1))).max(1),
            Self::Fixed(chunk) => chunk.max(1),
        }
    }

    /// Validates the policy; the message is bare for the caller to prefix
    /// with its own field path (`exec.hosts.chunk`).
    ///
    /// # Errors
    ///
    /// A plain message when a fixed chunk is zero.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            Self::Fixed(0) => Err("chunk must be at least 1 spec per lease".to_owned()),
            _ => Ok(()),
        }
    }

    /// Decodes the `"chunk"` value of a hosts pool: a positive integer or
    /// the string `"auto"`.
    ///
    /// # Errors
    ///
    /// A plain message naming the expected forms.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        if json.as_str() == Some("auto") {
            return Ok(Self::Auto);
        }
        let policy = json
            .as_i64()
            .filter(|&v| v > 0)
            .and_then(|v| usize::try_from(v).ok())
            .map(Self::Fixed)
            .ok_or_else(|| "expected a positive integer or \"auto\"".to_owned())?;
        policy.validate()?;
        Ok(policy)
    }

    /// Renders the policy to its JSON value form.
    #[must_use]
    pub fn to_json(&self) -> Json {
        match *self {
            Self::Auto => "auto".into(),
            Self::Fixed(chunk) => chunk.into(),
        }
    }
}

/// One grant of contiguous work, as handed out by [`LeaseQueue::pop`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// The spec range to run.
    pub shard: Shard,
    /// `Some(host_index)` when this lease is the re-queued remainder of a
    /// lease that host failed; `None` for first-issue leases. A host
    /// completing a lease re-issued from a *different* host counts as a
    /// steal.
    pub reissued_from: Option<usize>,
}

/// Interior state guarded by the queue's mutex.
struct QueueState {
    pending: VecDeque<Lease>,
    /// Leases popped but neither completed nor re-queued yet. While this
    /// is non-zero an idle host must block in [`LeaseQueue::pop`] rather
    /// than give up: the holder may die and re-queue stealable work.
    outstanding: usize,
}

/// The coordinator's shared work queue: grid leases out, completions and
/// re-queued remainders back in. All methods are safe to call from any
/// host thread concurrently.
///
/// Every lease popped must be balanced by exactly one [`LeaseQueue::complete`]
/// or [`LeaseQueue::requeue`] before the holding thread exits — that
/// invariant is what lets a blocked `pop` distinguish "the grid is done"
/// from "someone still holds work I might inherit".
pub struct LeaseQueue {
    inner: Mutex<QueueState>,
    available: Condvar,
    initial: usize,
}

impl LeaseQueue {
    /// How long a blocked `pop` sleeps between re-checks, bounding the
    /// cost of a missed wakeup without busy-waiting.
    const POP_POLL: Duration = Duration::from_millis(50);

    /// Carves `range` into leases of `chunk` specs each (the last lease
    /// takes the remainder; `chunk` is clamped to ≥ 1). An empty range
    /// yields a queue that is already finished.
    #[must_use]
    pub fn new(range: Shard, chunk: usize) -> Self {
        let chunk = chunk.max(1);
        let mut pending = VecDeque::new();
        let mut start = range.start;
        while start < range.end {
            let end = range.end.min(start + chunk);
            pending.push_back(Lease {
                shard: Shard::new(start, end),
                reissued_from: None,
            });
            start = end;
        }
        let initial = pending.len();
        Self {
            inner: Mutex::new(QueueState {
                pending,
                outstanding: 0,
            }),
            available: Condvar::new(),
            initial,
        }
    }

    /// How many leases the grid was carved into at construction (re-issues
    /// not included) — the `leases` figure in the run stats.
    #[must_use]
    pub fn initial_leases(&self) -> usize {
        self.initial
    }

    /// Pulls the next lease. Blocks while the queue is empty but another
    /// host still holds an outstanding lease (its remainder may yet be
    /// re-queued for stealing); returns `None` only when the queue is
    /// empty *and* nothing is outstanding — the grid is done, or stranded
    /// with no holder left to finish it.
    #[must_use]
    pub fn pop(&self) -> Option<Lease> {
        let mut state = self.inner.lock().expect("lease queue poisoned");
        loop {
            if let Some(lease) = state.pending.pop_front() {
                state.outstanding += 1;
                return Some(lease);
            }
            if state.outstanding == 0 {
                return None;
            }
            let (guard, _) = self
                .available
                .wait_timeout(state, Self::POP_POLL)
                .expect("lease queue poisoned");
            state = guard;
        }
    }

    /// Marks the caller's outstanding lease fully merged.
    pub fn complete(&self) {
        let mut state = self.inner.lock().expect("lease queue poisoned");
        state.outstanding = state.outstanding.saturating_sub(1);
        if state.outstanding == 0 {
            // Whether pending work or a finished grid, blocked poppers
            // must wake to claim it or observe the end.
            self.available.notify_all();
        }
    }

    /// Returns the unreported remainder of a failed lease to the *front*
    /// of the queue (the oldest stranded range re-issues first) and wakes
    /// blocked poppers to steal it. `from_host` attributes the re-issue
    /// for the steal tally.
    pub fn requeue(&self, remainder: Shard, from_host: usize) {
        let mut state = self.inner.lock().expect("lease queue poisoned");
        state.outstanding = state.outstanding.saturating_sub(1);
        if !remainder.is_empty() {
            state.pending.push_front(Lease {
                shard: remainder,
                reissued_from: Some(from_host),
            });
        }
        self.available.notify_all();
    }

    /// True once every lease has been pulled and completed: no pending
    /// work, nothing outstanding.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        let state = self.inner.lock().expect("lease queue poisoned");
        state.pending.is_empty() && state.outstanding == 0
    }

    /// Specs still sitting in the queue (outstanding leases not counted) —
    /// the stranded-work figure when every host has exited.
    #[must_use]
    pub fn remaining_specs(&self) -> usize {
        let state = self.inner.lock().expect("lease queue poisoned");
        state.pending.iter().map(|l| l.shard.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_larger_than_the_grid_yields_one_full_lease() {
        // `exec.hosts.chunk` may legitimately exceed the spec count (tiny
        // smoke grid, generous chunk): the whole range becomes one lease.
        let queue = LeaseQueue::new(Shard::new(0, 3), 10);
        assert_eq!(queue.initial_leases(), 1);
        let lease = queue.pop().expect("the single lease");
        assert_eq!((lease.shard.start, lease.shard.end), (0, 3));
        assert_eq!(lease.reissued_from, None);
        queue.complete();
        assert!(queue.is_finished());
        assert!(queue.pop().is_none());
    }

    #[test]
    fn auto_policy_never_resolves_to_an_empty_chunk() {
        // Fewer specs than 4x hosts would truncate to zero; the clamp keeps
        // every lease at least one spec wide.
        assert_eq!(ChunkPolicy::Auto.resolve(3, 8), 1);
        assert_eq!(ChunkPolicy::Auto.resolve(0, 2), 1);
        assert_eq!(ChunkPolicy::Fixed(0).resolve(100, 2), 1);
        // And a zero-host fleet must not divide by zero.
        assert_eq!(ChunkPolicy::Auto.resolve(24, 0), 6);
    }

    #[test]
    fn single_host_fleet_drains_every_lease_in_grid_order() {
        // One host, auto chunking: 8 specs / (4x1 hosts) = chunks of 2. The
        // lone host pulls leases back-to-back and sees the grid in order —
        // no steals, no blocking, `pop` returns `None` exactly at the end.
        let chunk = ChunkPolicy::Auto.resolve(8, 1);
        assert_eq!(chunk, 2);
        let queue = LeaseQueue::new(Shard::new(0, 8), chunk);
        assert_eq!(queue.initial_leases(), 4);
        let mut covered = Vec::new();
        while let Some(lease) = queue.pop() {
            assert_eq!(lease.reissued_from, None, "nothing to steal from");
            covered.extend(lease.shard.start..lease.shard.end);
            queue.complete();
        }
        assert_eq!(covered, (0..8).collect::<Vec<_>>());
        assert!(queue.is_finished());
        assert_eq!(queue.remaining_specs(), 0);
    }

    #[test]
    fn every_host_quarantined_then_readmitted_finishes_the_grid() {
        // Both hosts of a 2-host fleet fail mid-lease (the coordinator
        // quarantines them and re-queues their unreported remainders); after
        // re-admission they pull the stranded ranges back and finish. The
        // queue must attribute each re-issue to the host that dropped it and
        // end with zero stranded specs.
        let queue = LeaseQueue::new(Shard::new(0, 8), 4);
        assert_eq!(queue.initial_leases(), 2);

        // First connections: host 0 takes [0,4), host 1 takes [4,8).
        let first = queue.pop().expect("lease for host 0");
        let second = queue.pop().expect("lease for host 1");
        assert_eq!((first.shard.start, first.shard.end), (0, 4));
        assert_eq!((second.shard.start, second.shard.end), (4, 8));

        // Host 0 dies after reporting 1 spec, host 1 after 2 — the whole
        // fleet is now quarantined with both remainders queued for re-issue
        // (most recent failure at the front).
        queue.requeue(Shard::new(1, 4), 0);
        queue.requeue(Shard::new(6, 8), 1);
        assert!(!queue.is_finished());
        assert_eq!(queue.remaining_specs(), 5);

        // Re-admission: the recovered hosts pull the stranded work back.
        // Each re-issued lease names the host whose failure stranded it.
        let retry_a = queue.pop().expect("re-issued remainder");
        let retry_b = queue.pop().expect("re-issued remainder");
        assert_eq!((retry_a.shard.start, retry_a.shard.end), (6, 8));
        assert_eq!(retry_a.reissued_from, Some(1));
        assert_eq!((retry_b.shard.start, retry_b.shard.end), (1, 4));
        assert_eq!(retry_b.reissued_from, Some(0));
        queue.complete();
        queue.complete();
        assert!(queue.is_finished());
        assert_eq!(queue.remaining_specs(), 0);
        assert!(queue.pop().is_none());
    }

    #[test]
    fn blocked_pop_inherits_work_requeued_by_a_dying_holder() {
        // The empty-queue-but-outstanding case: an idle popper must block —
        // not give up — while another host still holds a lease, because
        // that holder may die and strand stealable work.
        let queue = std::sync::Arc::new(LeaseQueue::new(Shard::new(0, 4), 4));
        let holder = queue.pop().expect("the single lease");
        assert_eq!((holder.shard.start, holder.shard.end), (0, 4));

        let stealer = {
            let queue = std::sync::Arc::clone(&queue);
            std::thread::spawn(move || queue.pop())
        };
        // Give the stealer time to reach the blocking wait, then fail the
        // outstanding lease with half the range unreported.
        std::thread::sleep(Duration::from_millis(20));
        queue.requeue(Shard::new(2, 4), 0);

        let stolen = stealer
            .join()
            .expect("stealer thread")
            .expect("re-queued remainder must wake the blocked pop");
        assert_eq!((stolen.shard.start, stolen.shard.end), (2, 4));
        assert_eq!(stolen.reissued_from, Some(0));
        queue.complete();
        assert!(queue.is_finished());
    }
}
