//! The unified sweep plan: one declarative, validated description of a run.
//!
//! Before this module, "what does this sweep run, and how?" was smeared
//! across four surfaces: [`crate::experiment::ExperimentConfig`] builders,
//! [`ScenarioSpec::paper_grid`] (hard-coded to obstacles × seed), the
//! `sweep` / `seo-sweepd` CLI flags, and environment variables. A
//! [`SweepPlan`] replaces all of them with a single typed, versioned value:
//!
//! * a **multi-axis scenario grid** ([`GridAxes`]) — obstacles × τ × gating
//!   level × control mode × optimizer × controller × seed range, expanded as
//!   a cartesian product into the existing [`ScenarioSpec`] stream with
//!   **stable spec indices** (the same indices the sharded and multi-host
//!   wire protocols already merge on), and
//! * an **execution section** — [`ExecMode`] (serial, threads, worker
//!   processes, or a TCP host pool — including the pool's transient-fault
//!   [`crate::transport::RetryPolicy`], `exec.mode.hosts.retry`), the
//!   inference kernel backend, the transport timeout, and whether to
//!   verify the merged output against an in-process serial rerun.
//!
//! Plans are **files**: [`SweepPlan::to_json`] / [`SweepPlan::parse`] give a
//! versioned (`"v":1`) JSON form you can commit, diff, and ship to hosts
//! (see `docs/plans.md` for the schema and `examples/plans/` for committed
//! presets). Validation is exhaustive and **collected**, not first-fail:
//! every problem names the offending field ([`PlanError`]).
//!
//! The expansion order is cell-major: all *runtime* axes (τ, gating,
//! control mode, optimizer, controller) vary in the outer loops, so each
//! [`CellConfig`] owns one contiguous index range and a runtime is built
//! once per cell, never per episode. With every runtime axis left at its
//! single paper-default value, the expansion is **byte-identical** to
//! [`ScenarioSpec::paper_grid`] — that invariant is what lets every legacy
//! CLI flag desugar into a plan.
//!
//! # Example
//!
//! ```
//! use seo_core::plan::SweepPlan;
//!
//! // The paper preset expands exactly like ScenarioSpec::paper_grid(6, 2023).
//! let plan = SweepPlan::paper(6, 2023);
//! assert_eq!(plan.n_specs(), 6);
//! plan.validate()?;
//!
//! // Plans round-trip through their committed JSON form losslessly.
//! let reloaded = SweepPlan::parse(&plan.to_json().render())?;
//! assert_eq!(reloaded, plan);
//! assert_eq!(reloaded.expand(), plan.expand());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::agg::{ReportSpec, RunSummary};
use crate::batch::{BatchRunner, ScenarioSpec};
use crate::config::{ControlMode, SeoConfig};
use crate::controller::Controller;
use crate::error::SeoError;
use crate::falsify::FalsifySpec;
use crate::json::Json;
use crate::metrics::EpisodeReport;
use crate::model::ModelSet;
use crate::optimizer::OptimizerKind;
use crate::reactor::{OffloadExec, Reactor};
use crate::runtime::{EpisodeScratch, EpisodeTask, RuntimeLoop, TaskSource, WorldSource};
use crate::shard::{self, Shard, ShardPlanner};
use crate::transport::HostPool;
use seo_nn::kernel::KernelBackend;
use seo_platform::units::Seconds;
use seo_sim::traffic::{TrafficPattern, TrafficProfile};
use seo_wireless::link::WirelessLink;
use std::borrow::Cow;
use std::fmt;

/// Plan schema version stamped on every saved plan (`"v":1`). Bumped
/// whenever the JSON shape changes so a host never silently runs a plan
/// written by an incompatible build.
pub const PLAN_VERSION: u64 = 1;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// One validation (or parse) problem, naming the offending field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanProblem {
    /// Dotted path of the offending field (e.g. `axes.gating_levels`,
    /// `exec.workers`).
    pub field: String,
    /// What is wrong with it.
    pub message: String,
}

impl fmt::Display for PlanProblem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.field, self.message)
    }
}

/// An invalid sweep plan: **every** problem found, not just the first, each
/// naming the offending field — so a plan with three bad axes is fixed in
/// one edit, not three round trips.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    /// All problems found, in field order.
    pub problems: Vec<PlanProblem>,
}

impl PlanError {
    fn new(problems: Vec<PlanProblem>) -> Self {
        Self { problems }
    }
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid sweep plan ({} problem(s)):",
            self.problems.len()
        )?;
        for p in &self.problems {
            write!(f, "\n  - {p}")?;
        }
        Ok(())
    }
}

impl std::error::Error for PlanError {}

/// Collected-problem accumulator shared by validation and parsing.
#[derive(Debug, Default)]
struct Problems(Vec<PlanProblem>);

impl Problems {
    fn push(&mut self, field: &str, message: impl Into<String>) {
        self.0.push(PlanProblem {
            field: field.to_owned(),
            message: message.into(),
        });
    }

    fn into_result<T>(self, value: T) -> Result<T, PlanError> {
        if self.0.is_empty() {
            Ok(value)
        } else {
            Err(PlanError::new(self.0))
        }
    }
}

// ---------------------------------------------------------------------------
// Controllers as a sweepable, serializable axis
// ---------------------------------------------------------------------------

/// A *named* driving controller — the serializable form of
/// [`Controller`] that a plan axis can sweep and a JSON file can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControllerKind {
    /// [`Controller::default`]: the stock potential-field agent — what every
    /// sweep mode has always run, and therefore the paper preset's value.
    PotentialField,
    /// [`Controller::tight_margin_potential_field`]: the experiment
    /// harness's tight-margin tuning (passes obstacles closer, so the
    /// filtered/unfiltered contrast is measurable).
    TightMargin,
    /// [`Controller::seeded_neural`]: a fixed-seed neural policy — the only
    /// controller family whose episodes exercise the dense-kernel hot path.
    SeededNeural(
        /// Policy initialization seed.
        u64,
    ),
}

impl ControllerKind {
    /// Builds the runnable controller this name stands for.
    #[must_use]
    pub fn build(&self) -> Controller {
        match self {
            Self::PotentialField => Controller::default(),
            Self::TightMargin => Controller::tight_margin_potential_field(),
            Self::SeededNeural(seed) => Controller::seeded_neural(*seed),
        }
    }

    /// The canonical plan-file name (`potential-field`, `tight-margin`,
    /// `neural:SEED`).
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            Self::PotentialField => "potential-field".to_owned(),
            Self::TightMargin => "tight-margin".to_owned(),
            Self::SeededNeural(seed) => format!("neural:{seed}"),
        }
    }

    /// Parses a canonical name back into a kind.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message listing the valid grammar.
    pub fn parse(value: &str) -> Result<Self, String> {
        match value {
            "potential-field" => Ok(Self::PotentialField),
            "tight-margin" => Ok(Self::TightMargin),
            other => {
                if let Some(seed) = other.strip_prefix("neural:") {
                    return seed.parse::<u64>().map(Self::SeededNeural).map_err(|_| {
                        format!("'{other}': the neural seed must be a non-negative integer")
                    });
                }
                Err(format!(
                    "unknown controller '{other}' (valid: potential-field, tight-margin, neural:SEED)"
                ))
            }
        }
    }
}

impl fmt::Display for ControllerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

// ---------------------------------------------------------------------------
// Channel and traffic regimes as sweepable, serializable axes
// ---------------------------------------------------------------------------

/// A *named* wireless channel regime — the serializable form of
/// [`seo_wireless::link::FadingChannel`] a plan axis can sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelKind {
    /// The paper's memoryless Rayleigh link
    /// ([`WirelessLink::paper_default`]) — the value every pre-existing
    /// plan implicitly ran, and therefore the paper preset's default.
    Clean,
    /// The Gilbert–Elliott bursty link ([`WirelessLink::bursty_default`]):
    /// same payload/power/overhead, but the effective rate fades in
    /// correlated deep-fade bursts.
    Bursty,
}

impl ChannelKind {
    /// Builds the wireless link this name stands for.
    ///
    /// # Errors
    ///
    /// Any link-construction error (never fails in practice).
    pub fn link(&self) -> Result<WirelessLink, SeoError> {
        Ok(match self {
            Self::Clean => WirelessLink::paper_default()?,
            Self::Bursty => WirelessLink::bursty_default()?,
        })
    }

    /// The canonical plan-file name (`clean`, `bursty`).
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            Self::Clean => "clean".to_owned(),
            Self::Bursty => "bursty".to_owned(),
        }
    }

    /// Parses a canonical name back into a kind.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message listing the valid names.
    pub fn parse(value: &str) -> Result<Self, String> {
        match value {
            "clean" => Ok(Self::Clean),
            "bursty" => Ok(Self::Bursty),
            other => Err(format!("unknown channel '{other}' (valid: clean, bursty)")),
        }
    }
}

impl fmt::Display for ChannelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// A *named* traffic regime — the serializable form of
/// [`TrafficProfile`] a plan axis can sweep. Non-static values lift each
/// spec's world into a [`seo_sim::dynamics::DynamicWorld`] with the
/// profile's deterministic movers; the episode then samples deadlines from
/// the full dynamic φ instead of the static lookup table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficKind {
    /// No movers — the paper's static-obstacle scenarios (and the paper
    /// preset's default).
    Static,
    /// `count` pedestrian-like movers crossing the road at `speed_mps`
    /// ([`TrafficPattern::Crossing`]).
    Crossing {
        /// Movers injected.
        count: usize,
        /// Crossing speed, m/s.
        speed_mps: f64,
    },
    /// `count` vehicle-like movers approaching head-on at `speed_mps`
    /// ([`TrafficPattern::Oncoming`]).
    Oncoming {
        /// Movers injected.
        count: usize,
        /// Approach speed, m/s.
        speed_mps: f64,
    },
}

impl TrafficKind {
    /// The traffic profile this name stands for (`None` for static worlds).
    #[must_use]
    pub fn profile(&self) -> Option<TrafficProfile> {
        match *self {
            Self::Static => None,
            Self::Crossing { count, speed_mps } => Some(TrafficProfile::new(
                TrafficPattern::Crossing,
                count,
                speed_mps,
            )),
            Self::Oncoming { count, speed_mps } => Some(TrafficProfile::new(
                TrafficPattern::Oncoming,
                count,
                speed_mps,
            )),
        }
    }

    /// The canonical plan-file name (`static`, `crossing:COUNT:SPEED`,
    /// `oncoming:COUNT:SPEED`). `SPEED` renders through `f64`'s shortest
    /// round-trip form, so names are lossless.
    #[must_use]
    pub fn name(&self) -> String {
        match *self {
            Self::Static => "static".to_owned(),
            Self::Crossing { count, speed_mps } => format!("crossing:{count}:{speed_mps}"),
            Self::Oncoming { count, speed_mps } => format!("oncoming:{count}:{speed_mps}"),
        }
    }

    /// Parses a canonical name back into a kind.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message listing the valid grammar.
    pub fn parse(value: &str) -> Result<Self, String> {
        if value == "static" {
            return Ok(Self::Static);
        }
        let grammar = "valid: static, crossing:COUNT:SPEED, oncoming:COUNT:SPEED (SPEED in m/s)";
        let mut parts = value.split(':');
        let (pattern, count, speed) = (parts.next(), parts.next(), parts.next());
        if parts.next().is_some() {
            return Err(format!("malformed traffic '{value}' ({grammar})"));
        }
        let (Some(pattern), Some(count), Some(speed)) = (pattern, count, speed) else {
            return Err(format!("unknown traffic '{value}' ({grammar})"));
        };
        let count = count
            .parse::<usize>()
            .map_err(|_| format!("'{value}': COUNT must be a non-negative integer"))?;
        let speed_mps = speed
            .parse::<f64>()
            .map_err(|_| format!("'{value}': SPEED must be a number (m/s)"))?;
        match pattern {
            "crossing" => Ok(Self::Crossing { count, speed_mps }),
            "oncoming" => Ok(Self::Oncoming { count, speed_mps }),
            other => Err(format!("unknown traffic pattern '{other}' ({grammar})")),
        }
    }

    /// Value-level validation shared by parsing and plan validation
    /// (`None` = fine).
    fn check(&self) -> Option<String> {
        match *self {
            Self::Static => None,
            Self::Crossing { count, speed_mps } | Self::Oncoming { count, speed_mps } => {
                if count == 0 {
                    Some(format!(
                        "'{}': COUNT must be at least 1 (use 'static' for no movers)",
                        self.name()
                    ))
                } else if !(speed_mps.is_finite() && speed_mps > 0.0) {
                    Some(format!(
                        "'{}': SPEED must be a finite, positive m/s value",
                        self.name()
                    ))
                } else {
                    None
                }
            }
        }
    }
}

impl fmt::Display for TrafficKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

// ---------------------------------------------------------------------------
// Grid axes
// ---------------------------------------------------------------------------

/// The seed axis: run `k` of each scenario cell uses seed `base + k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedRange {
    /// Seed of run 0.
    pub base: u64,
    /// Seeds per (cell × obstacle count) pairing.
    pub runs: usize,
}

/// The multi-axis scenario grid: every combination of these axes is one
/// grid point. Axes with a single value simply pin that knob; the paper
/// preset pins every runtime axis and sweeps obstacles × seeds, which is
/// exactly [`ScenarioSpec::paper_grid`].
///
/// The first five axes were previously buried as `ExperimentConfig`
/// defaults (τ, gating level, control mode) or CLI-only choices (optimizer,
/// controller); promoting them here is what lets one plan sweep them.
#[derive(Debug, Clone, PartialEq)]
pub struct GridAxes {
    /// Obstacle counts on the route (the paper sweeps {0, 2, 4}).
    pub obstacles: Vec<usize>,
    /// Base periods τ in milliseconds (the paper's Table I sweeps
    /// {20, 25}).
    pub tau_ms: Vec<f64>,
    /// Gating levels `g` in `[0, 1]` (the Fig. 1 knob).
    pub gating_levels: Vec<f64>,
    /// Safety filter in or out of the loop.
    pub control_modes: Vec<ControlMode>,
    /// Ω instantiations.
    pub optimizers: Vec<OptimizerKind>,
    /// Driving controllers.
    pub controllers: Vec<ControllerKind>,
    /// Wireless channel regimes (clean Rayleigh vs bursty Gilbert–Elliott).
    pub channels: Vec<ChannelKind>,
    /// Traffic regimes (static worlds vs deterministic moving obstacles).
    pub traffic: Vec<TrafficKind>,
    /// The seed range appended innermost to every scenario cell.
    pub seeds: SeedRange,
}

impl GridAxes {
    /// The paper grid as axes: obstacles {0, 2, 4} ×
    /// `scenarios.div_ceil(3)` seeds from `base_seed`, every runtime axis at
    /// its paper-default single value. Expands **byte-identically** to
    /// [`ScenarioSpec::paper_grid`]`(scenarios, base_seed)`.
    #[must_use]
    pub fn paper(scenarios: usize, base_seed: u64) -> Self {
        Self {
            obstacles: vec![0, 2, 4],
            tau_ms: vec![20.0],
            gating_levels: vec![0.5],
            control_modes: vec![ControlMode::Filtered],
            optimizers: vec![OptimizerKind::Offloading],
            controllers: vec![ControllerKind::PotentialField],
            channels: vec![ChannelKind::Clean],
            traffic: vec![TrafficKind::Static],
            seeds: SeedRange {
                base: base_seed,
                runs: scenarios.div_ceil(3),
            },
        }
    }

    /// Runtime cells in the grid (product of the seven runtime axes).
    #[must_use]
    pub fn n_cells(&self) -> usize {
        self.tau_ms.len()
            * self.gating_levels.len()
            * self.control_modes.len()
            * self.optimizers.len()
            * self.controllers.len()
            * self.channels.len()
            * self.traffic.len()
    }

    /// Every axis's `(name, cardinality)` in expansion order — what `--plan
    /// --check` prints so a grid blow-up is visible before a run.
    #[must_use]
    pub fn cardinalities(&self) -> Vec<(&'static str, usize)> {
        vec![
            ("tau_ms", self.tau_ms.len()),
            ("gating_levels", self.gating_levels.len()),
            ("control_modes", self.control_modes.len()),
            ("optimizers", self.optimizers.len()),
            ("controllers", self.controllers.len()),
            ("channels", self.channels.len()),
            ("traffic", self.traffic.len()),
            ("obstacles", self.obstacles.len()),
            ("seeds", self.seeds.runs),
        ]
    }

    /// Scenario points per runtime cell (obstacles × seeds).
    #[must_use]
    pub fn specs_per_cell(&self) -> usize {
        self.obstacles.len() * self.seeds.runs
    }

    /// Total grid points.
    #[must_use]
    pub fn n_specs(&self) -> usize {
        self.n_cells() * self.specs_per_cell()
    }
}

// ---------------------------------------------------------------------------
// Cells and grid points
// ---------------------------------------------------------------------------

/// One *runtime cell* of the grid: the combination of every axis that
/// changes how episodes run (as opposed to which world/seed they run on).
/// All grid points of a cell share one [`RuntimeLoop`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellConfig {
    /// Base period τ in milliseconds.
    pub tau_ms: f64,
    /// Gating level `g`.
    pub gating_level: f64,
    /// Safety filter in or out of the loop.
    pub control_mode: ControlMode,
    /// Ω instantiation.
    pub optimizer: OptimizerKind,
    /// Driving controller.
    pub controller: ControllerKind,
    /// Wireless channel regime.
    pub channel: ChannelKind,
    /// Traffic regime.
    pub traffic: TrafficKind,
}

impl CellConfig {
    /// The framework configuration this cell pins (paper defaults with the
    /// cell's τ, gating level, and control mode applied).
    #[must_use]
    pub fn seo_config(&self) -> SeoConfig {
        SeoConfig::paper_defaults()
            .with_tau(Seconds::from_millis(self.tau_ms))
            .with_gating_level(self.gating_level)
            .with_control_mode(self.control_mode)
    }

    /// Builds the cell's runtime: paper model set rebuilt on the cell's τ,
    /// the cell's optimizer and controller, and the given kernel backend.
    ///
    /// # Errors
    ///
    /// Any configuration error from [`RuntimeLoop::new`] or
    /// [`ModelSet::paper_setup`].
    pub fn runtime(&self, kernel: KernelBackend) -> Result<RuntimeLoop, SeoError> {
        let config = self.seo_config();
        let models = ModelSet::paper_setup(config.tau)?;
        Ok(RuntimeLoop::new(config, models, self.optimizer)?
            .with_controller(self.controller.build())
            .with_link(self.channel.link()?)
            .with_kernel(kernel))
    }

    /// Runs one grid point of this cell: generates the spec's world,
    /// applies the cell's traffic regime (static worlds run the paper's
    /// lookup-table path; mover profiles lift the world into a
    /// [`seo_sim::dynamics::DynamicWorld`] and sample deadlines from the
    /// dynamic φ), and executes the episode. Every engine — serial range
    /// runner, thread pool, worker processes, remote daemons — routes its
    /// episodes through here, which is what keeps the bit-identical merge
    /// invariant intact as axes grow.
    #[must_use]
    pub fn run_spec(
        &self,
        runtime: &RuntimeLoop,
        spec: ScenarioSpec,
        scratch: &mut EpisodeScratch,
    ) -> EpisodeReport {
        let world = spec.world();
        match self.traffic.profile() {
            None => runtime.run_with(WorldSource::Static(&world), spec.seed, scratch),
            Some(profile) => {
                let dynamic = profile.apply(&world);
                runtime.run_with(WorldSource::Dynamic(&dynamic), spec.seed, scratch)
            }
        }
    }

    /// Builds the **resumable** form of [`Self::run_spec`]: an
    /// [`EpisodeTask`] owning its world (and, for mover profiles, its
    /// dynamic timeline), ready to be driven by a
    /// [`Reactor`]. Polling the task to completion
    /// yields exactly the `run_spec` report — the two are the same state
    /// machine.
    #[must_use]
    pub fn spawn_task<'rt>(
        &self,
        runtime: &'rt RuntimeLoop,
        spec: ScenarioSpec,
    ) -> EpisodeTask<'rt> {
        let world = spec.world();
        let source = match self.traffic.profile() {
            None => TaskSource::Static(Cow::Owned(world)),
            Some(profile) => TaskSource::Dynamic(Cow::Owned(profile.apply(&world))),
        };
        EpisodeTask::new(runtime, source, spec.seed, EpisodeScratch::new())
    }

    /// Encodes the cell for provenance records (`BENCH_sweep.json` rows and
    /// tooling that must say which grid point produced a result).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("tau_ms", self.tau_ms.into()),
            ("gating_level", self.gating_level.into()),
            ("control_mode", self.control_mode.to_string().into()),
            ("optimizer", self.optimizer.to_string().into()),
            ("controller", self.controller.name().into()),
            ("channel", self.channel.name().into()),
            ("traffic", self.traffic.name().into()),
        ])
    }
}

impl fmt::Display for CellConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tau={} ms, gating={}, {}, {}, {}, {}, {}",
            self.tau_ms,
            self.gating_level,
            self.control_mode,
            self.optimizer,
            self.controller,
            self.channel,
            self.traffic
        )
    }
}

/// One expanded grid point: its stable spec index, the scenario spec the
/// existing engines consume, and the runtime cell it belongs to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPoint {
    /// Stable index in the expanded grid — the index the wire protocols
    /// stamp on report lines and the merge orders by.
    pub index: usize,
    /// The scenario spec (obstacle count + seed).
    pub spec: ScenarioSpec,
    /// The runtime cell.
    pub cell: CellConfig,
}

// ---------------------------------------------------------------------------
// Execution section
// ---------------------------------------------------------------------------

/// How the expanded grid is executed. Every mode produces output
/// bit-identical to [`SweepPlan::run_serial`]; the mode chooses only the
/// machinery (and therefore the wall-clock).
#[derive(Debug, Clone, PartialEq)]
pub enum ExecMode {
    /// One thread, one scratch — the reference loop.
    Serial,
    /// [`BatchRunner`] worker threads in this process.
    Threads(
        /// Worker thread count.
        usize,
    ),
    /// `sweep --worker` child processes via [`crate::shard::Coordinator`].
    Processes(
        /// Worker process count.
        usize,
    ),
    /// `seo-sweepd` TCP daemons via
    /// [`crate::transport::RemoteCoordinator`].
    Hosts(
        /// The validated worker pool.
        HostPool,
    ),
}

impl fmt::Display for ExecMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Serial => f.write_str("serial"),
            Self::Threads(n) => write!(f, "{n} thread(s)"),
            Self::Processes(n) => write!(f, "{n} worker process(es)"),
            Self::Hosts(pool) => write!(f, "{} host(s)", pool.hosts().len()),
        }
    }
}

// ---------------------------------------------------------------------------
// The plan
// ---------------------------------------------------------------------------

/// A complete, self-contained description of one sweep run: the grid and
/// how to execute it. See the [module docs](self) for the design and
/// `docs/plans.md` for the file format.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPlan {
    /// The multi-axis grid.
    pub axes: GridAxes,
    /// Execution machinery.
    pub mode: ExecMode,
    /// Inference kernel backend (bit-identical across backends by the
    /// `seo_nn::kernel` contract — a pure speed knob).
    pub kernel: KernelBackend,
    /// Multi-host connect/read timeout in seconds.
    pub timeout_secs: f64,
    /// How episodes treat offload I/O (`exec.offload`): blocking, or the
    /// deterministic async reactor with a per-worker in-flight window.
    /// Orthogonal to [`Self::mode`] — every engine honors it.
    pub offload: OffloadExec,
    /// Whether runners should rerun the grid serially in-process and fail
    /// unless the merged output is bit-identical.
    pub verify: bool,
    /// Optional falsification section: when present, `sweep --plan
    /// --falsify` searches this grid for violating episodes instead of
    /// enumerating it (see [`crate::falsify`]).
    pub falsify: Option<FalsifySpec>,
    /// Optional report section: what the sweep emits (per-episode stream,
    /// per-cell summary sketches, or both) and where the results-book row
    /// goes (see [`crate::agg`]). Absent means the classic episodes-only
    /// behavior.
    pub report: Option<ReportSpec>,
}

impl SweepPlan {
    /// A serial plan over the given axes with default execution knobs
    /// (scalar kernel, 30 s timeout, no verify).
    #[must_use]
    pub fn new(axes: GridAxes) -> Self {
        Self {
            axes,
            mode: ExecMode::Serial,
            kernel: KernelBackend::default(),
            timeout_secs: 30.0,
            offload: OffloadExec::default(),
            verify: false,
            falsify: None,
            report: None,
        }
    }

    /// The named paper preset: [`GridAxes::paper`] run serially. Expands
    /// byte-identically to [`ScenarioSpec::paper_grid`]`(scenarios,
    /// base_seed)` — the invariant every legacy CLI flag desugars through.
    #[must_use]
    pub fn paper(scenarios: usize, base_seed: u64) -> Self {
        Self::new(GridAxes::paper(scenarios, base_seed))
    }

    /// Sets the obstacle axis (builder style).
    #[must_use]
    pub fn with_obstacles(mut self, obstacles: Vec<usize>) -> Self {
        self.axes.obstacles = obstacles;
        self
    }

    /// Sets the τ axis in milliseconds (builder style).
    #[must_use]
    pub fn with_tau_ms(mut self, tau_ms: Vec<f64>) -> Self {
        self.axes.tau_ms = tau_ms;
        self
    }

    /// Sets the gating-level axis (builder style).
    #[must_use]
    pub fn with_gating_levels(mut self, levels: Vec<f64>) -> Self {
        self.axes.gating_levels = levels;
        self
    }

    /// Sets the control-mode axis (builder style).
    #[must_use]
    pub fn with_control_modes(mut self, modes: Vec<ControlMode>) -> Self {
        self.axes.control_modes = modes;
        self
    }

    /// Sets the optimizer axis (builder style).
    #[must_use]
    pub fn with_optimizers(mut self, optimizers: Vec<OptimizerKind>) -> Self {
        self.axes.optimizers = optimizers;
        self
    }

    /// Sets the controller axis (builder style).
    #[must_use]
    pub fn with_controllers(mut self, controllers: Vec<ControllerKind>) -> Self {
        self.axes.controllers = controllers;
        self
    }

    /// Sets the channel-regime axis (builder style).
    #[must_use]
    pub fn with_channels(mut self, channels: Vec<ChannelKind>) -> Self {
        self.axes.channels = channels;
        self
    }

    /// Sets the traffic-regime axis (builder style).
    #[must_use]
    pub fn with_traffic(mut self, traffic: Vec<TrafficKind>) -> Self {
        self.axes.traffic = traffic;
        self
    }

    /// Sets the seed range (builder style).
    #[must_use]
    pub fn with_seeds(mut self, base: u64, runs: usize) -> Self {
        self.axes.seeds = SeedRange { base, runs };
        self
    }

    /// Sets the execution mode (builder style).
    #[must_use]
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the kernel backend (builder style).
    #[must_use]
    pub fn with_kernel(mut self, kernel: KernelBackend) -> Self {
        self.kernel = kernel;
        self
    }

    /// Sets the multi-host timeout (builder style).
    #[must_use]
    pub fn with_timeout_secs(mut self, timeout_secs: f64) -> Self {
        self.timeout_secs = timeout_secs;
        self
    }

    /// Sets the offload execution (builder style): `OffloadExec::Async {
    /// in_flight }` turns the deterministic reactor on for every engine.
    #[must_use]
    pub fn with_offload(mut self, offload: OffloadExec) -> Self {
        self.offload = offload;
        self
    }

    /// Sets the verify flag (builder style).
    #[must_use]
    pub fn with_verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// Sets the falsification section (builder style).
    #[must_use]
    pub fn with_falsify(mut self, falsify: FalsifySpec) -> Self {
        self.falsify = Some(falsify);
        self
    }

    /// Sets the report section (builder style).
    #[must_use]
    pub fn with_report(mut self, report: ReportSpec) -> Self {
        self.report = Some(report);
        self
    }

    /// Whether this plan emits the per-episode NDJSON stream (true for
    /// plans without a `report` section).
    #[must_use]
    pub fn emits_episodes(&self) -> bool {
        self.report
            .as_ref()
            .is_none_or(|r| r.mode.includes_episodes())
    }

    /// Whether this plan emits the per-cell summary block. In pure
    /// `summary` mode (`emits_episodes()` false) workers and daemons fold
    /// sketches locally and no per-episode line crosses a process or host
    /// boundary.
    #[must_use]
    pub fn emits_summary(&self) -> bool {
        self.report
            .as_ref()
            .is_some_and(|r| r.mode.includes_summary())
    }

    /// An empty [`RunSummary`] shaped for this plan's grid (one sketch per
    /// cell, cell-major spec indexing).
    #[must_use]
    pub fn run_summary(&self) -> RunSummary {
        RunSummary::new(self.axes.n_cells(), self.axes.specs_per_cell())
    }

    // -- shape ---------------------------------------------------------------

    /// Total grid points the plan expands to.
    #[must_use]
    pub fn n_specs(&self) -> usize {
        self.axes.n_specs()
    }

    /// The runtime cells in expansion order, each with the contiguous index
    /// range it owns.
    #[must_use]
    pub fn cells(&self) -> Vec<(CellConfig, Shard)> {
        let per_cell = self.axes.specs_per_cell();
        let mut cells = Vec::with_capacity(self.axes.n_cells());
        let mut start = 0usize;
        for &tau_ms in &self.axes.tau_ms {
            for &gating_level in &self.axes.gating_levels {
                for &control_mode in &self.axes.control_modes {
                    for &optimizer in &self.axes.optimizers {
                        for &controller in &self.axes.controllers {
                            for &channel in &self.axes.channels {
                                for &traffic in &self.axes.traffic {
                                    cells.push((
                                        CellConfig {
                                            tau_ms,
                                            gating_level,
                                            control_mode,
                                            optimizer,
                                            controller,
                                            channel,
                                            traffic,
                                        },
                                        Shard::new(start, start + per_cell),
                                    ));
                                    start += per_cell;
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }

    /// The runtime cell at a cell index (mixed-radix decomposition of the
    /// seven runtime axes — O(1), no grid materialization).
    fn cell_at(&self, cell_index: usize) -> Option<CellConfig> {
        let a = &self.axes;
        if cell_index >= a.n_cells() {
            return None;
        }
        let mut rest = cell_index;
        let traffic = a.traffic[rest % a.traffic.len()];
        rest /= a.traffic.len();
        let channel = a.channels[rest % a.channels.len()];
        rest /= a.channels.len();
        let controller = a.controllers[rest % a.controllers.len()];
        rest /= a.controllers.len();
        let optimizer = a.optimizers[rest % a.optimizers.len()];
        rest /= a.optimizers.len();
        let control_mode = a.control_modes[rest % a.control_modes.len()];
        rest /= a.control_modes.len();
        let gating_level = a.gating_levels[rest % a.gating_levels.len()];
        rest /= a.gating_levels.len();
        Some(CellConfig {
            tau_ms: a.tau_ms[rest],
            gating_level,
            control_mode,
            optimizer,
            controller,
            channel,
            traffic,
        })
    }

    /// The scenario spec at an offset inside a cell's scenario stream.
    fn spec_within_cell(&self, within: usize) -> ScenarioSpec {
        let obstacle = self.axes.obstacles[within / self.axes.seeds.runs];
        let k = (within % self.axes.seeds.runs) as u64;
        ScenarioSpec::new(obstacle, self.axes.seeds.base.wrapping_add(k))
    }

    /// The grid point at a stable spec index (`None` outside the grid).
    /// O(1): the cell is decomposed arithmetically, not by re-expanding the
    /// grid.
    #[must_use]
    pub fn point_at(&self, index: usize) -> Option<GridPoint> {
        let per_cell = self.axes.specs_per_cell();
        if per_cell == 0 || index >= self.n_specs() {
            return None;
        }
        Some(GridPoint {
            index,
            spec: self.spec_within_cell(index % per_cell),
            cell: self.cell_at(index / per_cell)?,
        })
    }

    /// Expands the full grid, cell-major, with stable indices. The paper
    /// preset's spec stream equals [`ScenarioSpec::paper_grid`] exactly.
    #[must_use]
    pub fn expand(&self) -> Vec<GridPoint> {
        let mut points = Vec::with_capacity(self.n_specs());
        for (cell, _) in self.cells() {
            for &obstacle in &self.axes.obstacles {
                for k in 0..self.axes.seeds.runs as u64 {
                    points.push(GridPoint {
                        index: points.len(),
                        spec: ScenarioSpec::new(obstacle, self.axes.seeds.base.wrapping_add(k)),
                        cell,
                    });
                }
            }
        }
        points
    }

    // -- validation ----------------------------------------------------------

    /// Validates every field, collecting **all** problems (each naming its
    /// field) instead of stopping at the first.
    ///
    /// # Errors
    ///
    /// [`PlanError`] listing every offending field.
    pub fn validate(&self) -> Result<(), PlanError> {
        let mut problems = Problems::default();
        let axes = &self.axes;
        check_axis(&mut problems, "axes.obstacles", &axes.obstacles, |_| None);
        check_axis(&mut problems, "axes.tau_ms", &axes.tau_ms, |&t| {
            (!t.is_finite() || t <= 0.0)
                .then(|| format!("value {t} must be a finite, positive number of milliseconds"))
        });
        check_axis(
            &mut problems,
            "axes.gating_levels",
            &axes.gating_levels,
            |&g| {
                (!g.is_finite() || !(0.0..=1.0).contains(&g))
                    .then(|| format!("value {g} must lie in [0, 1]"))
            },
        );
        check_axis(
            &mut problems,
            "axes.control_modes",
            &axes.control_modes,
            |_| None,
        );
        check_axis(&mut problems, "axes.optimizers", &axes.optimizers, |_| None);
        check_axis(&mut problems, "axes.controllers", &axes.controllers, |_| {
            None
        });
        check_axis(&mut problems, "axes.channels", &axes.channels, |_| None);
        check_axis(
            &mut problems,
            "axes.traffic",
            &axes.traffic,
            TrafficKind::check,
        );
        if axes.seeds.runs == 0 {
            problems.push("axes.seeds.runs", "a plan must run at least one seed");
        }
        let n_specs = self.n_specs();
        if n_specs == 0 {
            problems.push("axes", "the plan expands to zero runs");
        }
        match &self.mode {
            ExecMode::Serial => {}
            ExecMode::Threads(workers) | ExecMode::Processes(workers) => {
                if *workers == 0 {
                    problems.push("exec.workers", "at least one worker is required");
                } else if n_specs > 0 && *workers > n_specs {
                    problems.push(
                        "exec.workers",
                        format!("{workers} workers exceed the {n_specs}-spec grid"),
                    );
                }
            }
            // HostPool construction already rejects empty pools, blank or
            // duplicate addresses, and zero capacities; re-check here so a
            // hand-built plan is held to the same standard.
            ExecMode::Hosts(pool) => {
                if let Err(e) = HostPool::new(pool.hosts().to_vec()) {
                    problems.push("exec.hosts", e.to_string());
                }
                if let Err(e) = pool.retry().validate() {
                    problems.push("exec.hosts.retry", e);
                }
                if let Err(e) = pool.chunk().validate() {
                    problems.push("exec.hosts.chunk", e);
                }
            }
        }
        if let OffloadExec::Async { in_flight } = self.offload {
            if in_flight == 0 {
                problems.push(
                    "exec.offload.async.in_flight",
                    "at least one episode must be in flight (use \"blocking\" to disable)",
                );
            }
        }
        if let Some(falsify) = &self.falsify {
            falsify.check(&mut |field, message| problems.push(field, message));
        }
        if let Some(report) = &self.report {
            report.check(&mut |field, message| problems.push(field, message));
        }
        // try_from_secs_f64 also rules out values a Duration cannot
        // represent, which would otherwise panic at the point of use.
        if self.timeout_secs <= 0.0
            || std::time::Duration::try_from_secs_f64(self.timeout_secs).is_err()
        {
            problems.push(
                "exec.timeout_secs",
                "must be a positive number of seconds representable as a timeout",
            );
        }
        problems.into_result(())
    }

    // -- JSON ----------------------------------------------------------------

    /// Encodes the plan in its versioned file form (see `docs/plans.md`).
    /// Round-trips losslessly: `parse(to_json().render()) == self`, with an
    /// index- and bit-identical expansion.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let axes = &self.axes;
        let mode = match &self.mode {
            ExecMode::Serial => Json::from("serial"),
            ExecMode::Threads(n) => Json::obj(vec![("threads", (*n).into())]),
            ExecMode::Processes(n) => Json::obj(vec![("processes", (*n).into())]),
            ExecMode::Hosts(pool) => Json::obj(vec![("hosts", pool.to_json())]),
        };
        let mut pairs = vec![
            ("v", PLAN_VERSION.into()),
            (
                "axes",
                Json::obj(vec![
                    ("obstacles", Json::from(axes.obstacles.clone())),
                    ("tau_ms", Json::from(axes.tau_ms.clone())),
                    ("gating_levels", Json::from(axes.gating_levels.clone())),
                    (
                        "control_modes",
                        Json::Arr(
                            axes.control_modes
                                .iter()
                                .map(|m| m.to_string().into())
                                .collect(),
                        ),
                    ),
                    (
                        "optimizers",
                        Json::Arr(
                            axes.optimizers
                                .iter()
                                .map(|o| o.to_string().into())
                                .collect(),
                        ),
                    ),
                    (
                        "controllers",
                        Json::Arr(axes.controllers.iter().map(|c| c.name().into()).collect()),
                    ),
                    (
                        "channels",
                        Json::Arr(axes.channels.iter().map(|c| c.name().into()).collect()),
                    ),
                    (
                        "traffic",
                        Json::Arr(axes.traffic.iter().map(|t| t.name().into()).collect()),
                    ),
                    (
                        "seeds",
                        Json::obj(vec![
                            ("base", shard::u64_to_wire(axes.seeds.base)),
                            ("runs", axes.seeds.runs.into()),
                        ]),
                    ),
                ]),
            ),
            (
                "exec",
                Json::obj(vec![
                    ("mode", mode),
                    ("kernel", self.kernel.name().into()),
                    ("timeout_secs", self.timeout_secs.into()),
                    (
                        "offload",
                        match self.offload {
                            OffloadExec::Blocking => Json::from("blocking"),
                            OffloadExec::Async { in_flight } => Json::obj(vec![(
                                "async",
                                Json::obj(vec![("in_flight", in_flight.into())]),
                            )]),
                        },
                    ),
                    ("verify", self.verify.into()),
                ]),
            ),
        ];
        if let Some(falsify) = &self.falsify {
            pairs.push(("falsify", falsify.to_json()));
        }
        if let Some(report) = &self.report {
            pairs.push(("report", report.to_json()));
        }
        Json::obj(pairs)
    }

    /// Parses and validates a plan file.
    ///
    /// Missing `axes`/`exec` fields take their paper-preset defaults (so a
    /// minimal `{"v":1}` plan is the paper preset); **unknown** fields are
    /// rejected by name — a typoed axis must never be silently ignored.
    ///
    /// # Errors
    ///
    /// [`PlanError`] collecting every parse and validation problem.
    pub fn parse(text: &str) -> Result<Self, PlanError> {
        let json = Json::parse(text).map_err(|e| {
            PlanError::new(vec![PlanProblem {
                field: "(document)".to_owned(),
                message: format!("not valid JSON: {e}"),
            }])
        })?;
        Self::from_json(&json)
    }

    /// [`Self::parse`] over an already-parsed JSON tree.
    ///
    /// # Errors
    ///
    /// Same as [`Self::parse`].
    #[allow(clippy::too_many_lines)]
    pub fn from_json(json: &Json) -> Result<Self, PlanError> {
        let mut problems = Problems::default();
        let mut plan = Self::paper(60, 2023);

        let Json::Obj(pairs) = json else {
            problems.push("(document)", "a plan must be a JSON object");
            return problems.into_result(plan);
        };
        for (key, _) in pairs {
            if !matches!(key.as_str(), "v" | "axes" | "exec" | "falsify" | "report") {
                problems.push(
                    key,
                    "unknown field (expected: v, axes, exec, falsify, report)",
                );
            }
        }
        match json.get("v").and_then(Json::as_i64) {
            Some(v) if v == i64::try_from(PLAN_VERSION).unwrap_or(i64::MAX) => {}
            Some(v) => problems.push("v", format!("plan version {v} (this build speaks 1)")),
            None => problems.push("v", "missing or non-integer plan version (expected 1)"),
        }

        if let Some(axes) = json.get("axes") {
            parse_axes(axes, &mut plan.axes, &mut problems);
        }
        if let Some(exec) = json.get("exec") {
            parse_exec(exec, &mut plan, &mut problems);
        }
        if let Some(falsify) = json.get("falsify") {
            plan.falsify = FalsifySpec::parse_into(falsify, &mut |field, message| {
                problems.push(field, message);
            });
        }
        if let Some(report) = json.get("report") {
            plan.report = ReportSpec::parse_into(report, &mut |field, message| {
                problems.push(field, message);
            });
        }

        match plan.validate() {
            Ok(()) => problems.into_result(plan),
            Err(e) => {
                let mut all = problems.0;
                all.extend(e.problems);
                Err(PlanError::new(all))
            }
        }
    }

    // -- execution -----------------------------------------------------------

    /// Runs the index range `[range.start, range.end)` of the expanded grid
    /// through the serial scratch loop, delivering `(index, report)` pairs
    /// in ascending index order. This is **the** worker-side loop: `sweep
    /// --worker`, the `seo-sweepd` daemon, and [`Self::run_serial`] all
    /// execute through here, which is why every mode is bit-identical.
    ///
    /// A runtime is built once per cell the range overlaps; `kernel`
    /// overrides the plan's backend (daemons run their own). The sink's
    /// return value is a stop signal: returning `false` abandons the rest
    /// of the range (a worker whose output pipe broke must not keep
    /// burning CPU on episodes nobody will read).
    ///
    /// With `exec.offload` set to async, each cell-overlap segment is
    /// driven by a [`Reactor`] with the plan's in-flight window instead of
    /// the blocking scratch loop — same bytes, overlapped await points.
    ///
    /// # Errors
    ///
    /// [`SeoError::InvalidConfig`] when the range reaches outside the grid,
    /// or any runtime-construction error.
    pub fn run_range(
        &self,
        range: Shard,
        kernel: KernelBackend,
        mut sink: impl FnMut(usize, EpisodeReport) -> bool,
    ) -> Result<(), SeoError> {
        if range.end > self.n_specs() {
            return Err(SeoError::InvalidConfig {
                field: "range",
                constraint: "lie inside the expanded grid",
            });
        }
        let per_cell = self.axes.specs_per_cell();
        for cell_index in 0..self.axes.n_cells() {
            let cell_range = Shard::new(cell_index * per_cell, (cell_index + 1) * per_cell);
            let start = cell_range.start.max(range.start);
            let end = cell_range.end.min(range.end);
            if start >= end {
                continue;
            }
            let cell = self
                .cell_at(cell_index)
                .expect("cell index inside the grid");
            let runtime = cell.runtime(kernel)?;
            match self.offload {
                OffloadExec::Blocking => {
                    let mut scratch = EpisodeScratch::new();
                    for i in start..end {
                        let spec = self.spec_within_cell(i % per_cell);
                        let report = cell.run_spec(&runtime, spec, &mut scratch);
                        if !sink(i, report) {
                            return Ok(());
                        }
                    }
                }
                OffloadExec::Async { in_flight } => {
                    let finished = Reactor::new(in_flight).run(
                        start..end,
                        |i| cell.spawn_task(&runtime, self.spec_within_cell(i % per_cell)),
                        &mut sink,
                    );
                    if !finished {
                        return Ok(());
                    }
                }
            }
        }
        Ok(())
    }

    /// Runs the whole grid serially — the reference output every other mode
    /// must (and does) reproduce bit-identically.
    ///
    /// # Errors
    ///
    /// Same as [`Self::run_range`].
    pub fn run_serial(&self) -> Result<Vec<EpisodeReport>, SeoError> {
        let mut reports = Vec::with_capacity(self.n_specs());
        self.run_range(Shard::new(0, self.n_specs()), self.kernel, |_, report| {
            reports.push(report);
            true
        })?;
        Ok(reports)
    }

    /// Runs the grid on an in-process [`BatchRunner`] pool, cell by cell.
    /// Bit-identical to [`Self::run_serial`] for any thread count (the
    /// batch engine's determinism invariant, applied per cell).
    ///
    /// With async offload each worker thread instead drives a [`Reactor`]
    /// over one contiguous shard of the grid (planned like the worker
    /// processes, remainder on the leading shards), so every thread keeps
    /// its own in-flight window; the shards are stitched back in grid
    /// order.
    ///
    /// # Errors
    ///
    /// Same as [`Self::run_range`].
    pub fn run_threads(&self, threads: usize) -> Result<Vec<EpisodeReport>, SeoError> {
        if self.offload.is_async() {
            return self.run_threads_async(threads);
        }
        let mut reports = Vec::with_capacity(self.n_specs());
        let per_cell = self.axes.specs_per_cell();
        for (cell, _) in self.cells() {
            let specs: Vec<ScenarioSpec> =
                (0..per_cell).map(|w| self.spec_within_cell(w)).collect();
            let runner = BatchRunner::new(cell.runtime(self.kernel)?).with_threads(threads);
            reports.extend(runner.run_with_episode(&specs, |runtime, spec, scratch| {
                cell.run_spec(runtime, *spec, scratch)
            }));
        }
        Ok(reports)
    }

    /// The threads engine's async path: one scoped thread per contiguous
    /// shard, each running [`Self::run_range`] (and therefore a reactor)
    /// over its own slice of the grid.
    fn run_threads_async(&self, threads: usize) -> Result<Vec<EpisodeReport>, SeoError> {
        let shard_plan = ShardPlanner::new(threads)
            .plan_clamped(self.n_specs())
            .map_err(|_| SeoError::InvalidConfig {
                field: "threads",
                constraint: "partition the expanded grid",
            })?;
        let buckets: Vec<Result<Vec<EpisodeReport>, SeoError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = shard_plan
                .shards()
                .iter()
                .map(|&shard| {
                    scope.spawn(move || {
                        let mut local = Vec::with_capacity(shard.len());
                        self.run_range(shard, self.kernel, |_, report| {
                            local.push(report);
                            true
                        })?;
                        Ok(local)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker thread panicked"))
                .collect()
        });
        let mut reports = Vec::with_capacity(self.n_specs());
        for bucket in buckets {
            reports.extend(bucket?);
        }
        Ok(reports)
    }
}

impl fmt::Display for SweepPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} spec(s) in {} cell(s) over {}, kernel '{}'",
            self.n_specs(),
            self.axes.n_cells(),
            self.mode,
            self.kernel
        )
    }
}

// ---------------------------------------------------------------------------
// Parse helpers
// ---------------------------------------------------------------------------

/// Axis validation shared by every axis: non-empty, no duplicates, plus a
/// per-value check (`None` = fine, `Some(msg)` = problem).
fn check_axis<T: PartialEq + fmt::Debug>(
    problems: &mut Problems,
    field: &str,
    values: &[T],
    value_check: impl Fn(&T) -> Option<String>,
) {
    if values.is_empty() {
        problems.push(
            field,
            "axis is empty (a plan must sweep at least one value)",
        );
        return;
    }
    for (i, v) in values.iter().enumerate() {
        if let Some(message) = value_check(v) {
            problems.push(field, message);
        }
        if values[..i].contains(v) {
            problems.push(field, format!("duplicate value {v:?}"));
        }
    }
}

fn parse_string_axis<T>(
    axis: &Json,
    field: &str,
    problems: &mut Problems,
    parse: impl Fn(&str) -> Result<T, String>,
) -> Option<Vec<T>> {
    let Some(items) = axis.as_arr() else {
        problems.push(field, "expected an array of strings");
        return None;
    };
    let mut out = Vec::with_capacity(items.len());
    let mut ok = true;
    for item in items {
        match item.as_str().map(&parse) {
            Some(Ok(v)) => out.push(v),
            Some(Err(message)) => {
                problems.push(field, message);
                ok = false;
            }
            None => {
                problems.push(field, "expected an array of strings");
                ok = false;
            }
        }
    }
    ok.then_some(out)
}

fn parse_control_mode(value: &str) -> Result<ControlMode, String> {
    match value {
        "filtered" => Ok(ControlMode::Filtered),
        "unfiltered" => Ok(ControlMode::Unfiltered),
        other => Err(format!(
            "unknown control mode '{other}' (valid: filtered, unfiltered)"
        )),
    }
}

fn parse_optimizer(value: &str) -> Result<OptimizerKind, String> {
    OptimizerKind::ALL
        .into_iter()
        .find(|o| o.to_string() == value)
        .ok_or_else(|| {
            let valid = OptimizerKind::ALL
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ");
            format!("unknown optimizer '{value}' (valid: {valid})")
        })
}

fn parse_axes(axes: &Json, out: &mut GridAxes, problems: &mut Problems) {
    let Json::Obj(pairs) = axes else {
        problems.push("axes", "expected an object");
        return;
    };
    const KNOWN: [&str; 9] = [
        "obstacles",
        "tau_ms",
        "gating_levels",
        "control_modes",
        "optimizers",
        "controllers",
        "channels",
        "traffic",
        "seeds",
    ];
    for (key, _) in pairs {
        if !KNOWN.contains(&key.as_str()) {
            problems.push(
                &format!("axes.{key}"),
                format!("unknown axis (expected: {})", KNOWN.join(", ")),
            );
        }
    }
    if let Some(v) = axes.get("obstacles") {
        match v.as_arr().map(|items| {
            items
                .iter()
                .map(|n| n.as_i64().and_then(|n| usize::try_from(n).ok()))
                .collect::<Option<Vec<usize>>>()
        }) {
            Some(Some(values)) => out.obstacles = values,
            _ => problems.push(
                "axes.obstacles",
                "expected an array of non-negative integers",
            ),
        }
    }
    for (field, target) in [
        ("tau_ms", &mut out.tau_ms),
        ("gating_levels", &mut out.gating_levels),
    ] {
        if let Some(v) = axes.get(field) {
            match v
                .as_arr()
                .map(|items| items.iter().map(Json::as_f64).collect::<Option<Vec<f64>>>())
            {
                Some(Some(values)) => *target = values,
                _ => problems.push(&format!("axes.{field}"), "expected an array of numbers"),
            }
        }
    }
    if let Some(v) = axes.get("control_modes") {
        if let Some(modes) =
            parse_string_axis(v, "axes.control_modes", problems, parse_control_mode)
        {
            out.control_modes = modes;
        }
    }
    if let Some(v) = axes.get("optimizers") {
        if let Some(optimizers) = parse_string_axis(v, "axes.optimizers", problems, parse_optimizer)
        {
            out.optimizers = optimizers;
        }
    }
    if let Some(v) = axes.get("controllers") {
        if let Some(controllers) =
            parse_string_axis(v, "axes.controllers", problems, ControllerKind::parse)
        {
            out.controllers = controllers;
        }
    }
    if let Some(v) = axes.get("channels") {
        if let Some(channels) = parse_string_axis(v, "axes.channels", problems, ChannelKind::parse)
        {
            out.channels = channels;
        }
    }
    if let Some(v) = axes.get("traffic") {
        if let Some(traffic) = parse_string_axis(v, "axes.traffic", problems, TrafficKind::parse) {
            out.traffic = traffic;
        }
    }
    if let Some(seeds) = axes.get("seeds") {
        if let Json::Obj(pairs) = seeds {
            for (key, _) in pairs {
                if !matches!(key.as_str(), "base" | "runs") {
                    problems.push(
                        &format!("axes.seeds.{key}"),
                        "unknown field (expected: base, runs)",
                    );
                }
            }
            if let Some(base) = seeds.get("base") {
                match shard::u64_from_wire(base, "base") {
                    Ok(base) => out.seeds.base = base,
                    Err(e) => problems.push("axes.seeds.base", e.to_string()),
                }
            }
            if let Some(runs) = seeds.get("runs") {
                match runs.as_i64().and_then(|n| usize::try_from(n).ok()) {
                    Some(runs) => out.seeds.runs = runs,
                    None => problems.push("axes.seeds.runs", "expected a non-negative integer"),
                }
            }
        } else {
            problems.push("axes.seeds", "expected an object {base, runs}");
        }
    }
}

fn parse_exec(exec: &Json, plan: &mut SweepPlan, problems: &mut Problems) {
    let Json::Obj(pairs) = exec else {
        problems.push("exec", "expected an object");
        return;
    };
    for (key, _) in pairs {
        if !matches!(
            key.as_str(),
            "mode" | "kernel" | "timeout_secs" | "offload" | "verify"
        ) {
            problems.push(
                &format!("exec.{key}"),
                "unknown field (expected: mode, kernel, timeout_secs, offload, verify)",
            );
        }
    }
    if let Some(mode) = exec.get("mode") {
        parse_mode(mode, plan, problems);
    }
    if let Some(offload) = exec.get("offload") {
        parse_offload(offload, plan, problems);
    }
    if let Some(kernel) = exec.get("kernel") {
        match kernel.as_str().map(KernelBackend::parse) {
            Some(Ok(kernel)) => plan.kernel = kernel,
            Some(Err(e)) => problems.push("exec.kernel", e.to_string()),
            None => problems.push("exec.kernel", "expected a string"),
        }
    }
    if let Some(timeout) = exec.get("timeout_secs") {
        match timeout.as_f64() {
            Some(t) => plan.timeout_secs = t,
            None => problems.push("exec.timeout_secs", "expected a number"),
        }
    }
    if let Some(verify) = exec.get("verify") {
        match verify {
            Json::Bool(v) => plan.verify = *v,
            _ => problems.push("exec.verify", "expected true or false"),
        }
    }
}

fn parse_offload(offload: &Json, plan: &mut SweepPlan, problems: &mut Problems) {
    const GRAMMAR: &str = r#"expected "blocking" or {"async":{"in_flight":N}}"#;
    match offload {
        Json::Str(s) if s == "blocking" => plan.offload = OffloadExec::Blocking,
        Json::Obj(pairs) if pairs.len() == 1 && pairs[0].0 == "async" => {
            let value = &pairs[0].1;
            let Json::Obj(inner) = value else {
                problems.push("exec.offload.async", "expected an object {in_flight}");
                return;
            };
            for (key, _) in inner {
                if key != "in_flight" {
                    problems.push(
                        &format!("exec.offload.async.{key}"),
                        "unknown field (expected: in_flight)",
                    );
                }
            }
            match value
                .get("in_flight")
                .map(|n| n.as_i64().and_then(|n| usize::try_from(n).ok()))
            {
                Some(Some(in_flight)) => plan.offload = OffloadExec::Async { in_flight },
                Some(None) => problems.push(
                    "exec.offload.async.in_flight",
                    "expected a non-negative integer",
                ),
                None => problems.push("exec.offload.async.in_flight", "missing window size"),
            }
        }
        _ => problems.push("exec.offload", GRAMMAR),
    }
}

fn parse_mode(mode: &Json, plan: &mut SweepPlan, problems: &mut Problems) {
    const GRAMMAR: &str =
        r#"expected "serial", {"threads":N}, {"processes":N}, or {"hosts":{...}}"#;
    match mode {
        Json::Str(s) if s == "serial" => plan.mode = ExecMode::Serial,
        Json::Obj(pairs) if pairs.len() == 1 => {
            let (key, value) = &pairs[0];
            match key.as_str() {
                "threads" | "processes" => {
                    match value.as_i64().and_then(|n| usize::try_from(n).ok()) {
                        Some(n) => {
                            plan.mode = if key == "threads" {
                                ExecMode::Threads(n)
                            } else {
                                ExecMode::Processes(n)
                            };
                        }
                        None => problems.push(
                            &format!("exec.mode.{key}"),
                            "expected a non-negative integer",
                        ),
                    }
                }
                "hosts" => match HostPool::from_json(value) {
                    Ok(pool) => plan.mode = ExecMode::Hosts(pool),
                    Err(e) => problems.push("exec.mode.hosts", e.to_string()),
                },
                other => problems.push(&format!("exec.mode.{other}"), GRAMMAR),
            }
        }
        _ => problems.push("exec.mode", GRAMMAR),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_expands_exactly_like_paper_grid() {
        for (scenarios, seed) in [(6usize, 2023u64), (60, 7), (1, 0)] {
            let plan = SweepPlan::paper(scenarios, seed);
            let specs: Vec<ScenarioSpec> = plan.expand().iter().map(|p| p.spec).collect();
            assert_eq!(
                specs,
                ScenarioSpec::paper_grid(scenarios, seed),
                "paper({scenarios}, {seed}) must reproduce paper_grid"
            );
            // Stable indices are positional.
            for (i, point) in plan.expand().iter().enumerate() {
                assert_eq!(point.index, i);
                assert_eq!(plan.point_at(i).expect("in range"), *point);
            }
            assert!(plan.point_at(plan.n_specs()).is_none());
        }
    }

    #[test]
    fn multi_axis_expansion_is_cell_major_and_counts_multiply() {
        let plan = SweepPlan::paper(6, 2023)
            .with_tau_ms(vec![20.0, 25.0])
            .with_optimizers(vec![OptimizerKind::Offloading, OptimizerKind::ModelGating]);
        assert_eq!(plan.axes.n_cells(), 4);
        assert_eq!(plan.n_specs(), 4 * 6);
        let cells = plan.cells();
        assert_eq!(cells.len(), 4);
        // tau varies outermost, optimizer innermost of the two.
        assert_eq!(cells[0].0.tau_ms, 20.0);
        assert_eq!(cells[0].0.optimizer, OptimizerKind::Offloading);
        assert_eq!(cells[1].0.optimizer, OptimizerKind::ModelGating);
        assert_eq!(cells[2].0.tau_ms, 25.0);
        // Each cell owns a contiguous range; scenario stream repeats per cell.
        for (i, (_, range)) in cells.iter().enumerate() {
            assert_eq!(range.start, i * 6);
            assert_eq!(range.len(), 6);
        }
        let points = plan.expand();
        assert_eq!(points[0].spec, points[6].spec);
        assert_eq!(points[0].cell.optimizer, OptimizerKind::Offloading);
        assert_eq!(points[6].cell.optimizer, OptimizerKind::ModelGating);
    }

    #[test]
    fn validation_collects_every_problem_with_field_names() {
        let plan = SweepPlan::paper(6, 2023)
            .with_obstacles(vec![])
            .with_gating_levels(vec![1.5])
            .with_timeout_secs(0.0)
            .with_mode(ExecMode::Processes(0));
        let err = plan.validate().expect_err("invalid");
        let text = err.to_string();
        for field in [
            "axes.obstacles",
            "axes.gating_levels",
            "exec.timeout_secs",
            "exec.workers",
        ] {
            assert!(text.contains(field), "missing '{field}' in: {text}");
        }
        assert!(err.problems.len() >= 4, "collected, not first-fail: {text}");
    }

    #[test]
    fn validation_rejects_duplicates_and_oversubscription() {
        let err = SweepPlan::paper(6, 2023)
            .with_obstacles(vec![0, 2, 0])
            .validate()
            .expect_err("duplicate obstacle");
        assert!(err.to_string().contains("axes.obstacles"));
        assert!(err.to_string().contains("duplicate"));

        let err = SweepPlan::paper(6, 2023)
            .with_mode(ExecMode::Threads(7))
            .validate()
            .expect_err("7 workers over 6 specs");
        assert!(err.to_string().contains("exec.workers"));
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let pool = HostPool::parse(
            r#"{"v":1,"hosts":[{"addr":"10.0.0.1:7641","capacity":2},{"addr":"10.0.0.2:7641","capacity":1}]}"#,
        )
        .expect("valid pool");
        let plans = [
            SweepPlan::paper(60, 2023),
            SweepPlan::paper(6, 7)
                .with_mode(ExecMode::Threads(3))
                .with_kernel(KernelBackend::Blocked)
                .with_verify(true),
            SweepPlan::paper(12, 99).with_mode(ExecMode::Processes(2)),
            SweepPlan::paper(6, 1)
                .with_mode(ExecMode::Hosts(pool))
                .with_timeout_secs(2.5),
            SweepPlan::paper(6, 2023)
                .with_tau_ms(vec![20.0, 25.0])
                .with_gating_levels(vec![0.25, 0.5])
                .with_control_modes(vec![ControlMode::Filtered, ControlMode::Unfiltered])
                .with_optimizers(vec![OptimizerKind::Offloading, OptimizerKind::SensorGating])
                .with_controllers(vec![
                    ControllerKind::PotentialField,
                    ControllerKind::TightMargin,
                    ControllerKind::SeededNeural(5),
                ]),
        ];
        for plan in plans {
            for text in [plan.to_json().render(), plan.to_json().render_pretty()] {
                let back = SweepPlan::parse(&text).expect("parses");
                assert_eq!(back, plan, "round trip via {text}");
                assert_eq!(back.expand(), plan.expand(), "expansion differs");
            }
        }
    }

    #[test]
    fn offload_round_trips_and_validates() {
        // Both spellings survive the JSON round trip.
        for offload in [OffloadExec::Blocking, OffloadExec::Async { in_flight: 16 }] {
            let plan = SweepPlan::paper(6, 2023).with_offload(offload);
            let back = SweepPlan::parse(&plan.to_json().render()).expect("parses");
            assert_eq!(back.offload, offload);
            assert_eq!(back, plan);
        }
        // A zero window is a named validation problem, not a parse error.
        let err = SweepPlan::paper(6, 2023)
            .with_offload(OffloadExec::Async { in_flight: 0 })
            .validate()
            .expect_err("zero window");
        assert!(err.to_string().contains("exec.offload.async.in_flight"));
        // Unknown inner keys and malformed shapes are rejected by name.
        for (text, needle) in [
            (
                r#"{"v":1,"exec":{"offload":{"async":{"in_flight":4,"wat":1}}}}"#,
                "exec.offload.async.wat",
            ),
            (
                r#"{"v":1,"exec":{"offload":{"async":{}}}}"#,
                "exec.offload.async.in_flight",
            ),
            (r#"{"v":1,"exec":{"offload":"eager"}}"#, "exec.offload"),
        ] {
            let err = SweepPlan::parse(text).expect_err("rejected");
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn async_offload_runs_bit_identical_to_blocking() {
        let blocking =
            SweepPlan::paper(4, 2023).with_channels(vec![ChannelKind::Clean, ChannelKind::Bursty]);
        let baseline = blocking.run_serial().expect("blocking serial");
        for in_flight in [1usize, 7] {
            let plan = blocking
                .clone()
                .with_offload(OffloadExec::Async { in_flight });
            assert_eq!(
                plan.run_serial().expect("async serial"),
                baseline,
                "serial reactor, window {in_flight}"
            );
            assert_eq!(
                plan.run_threads(3).expect("async threads"),
                baseline,
                "threads reactor, window {in_flight}"
            );
        }
    }

    #[test]
    fn minimal_plan_is_the_paper_preset() {
        let plan = SweepPlan::parse(r#"{"v":1}"#).expect("minimal plan");
        assert_eq!(plan, SweepPlan::paper(60, 2023));
    }

    #[test]
    fn parse_rejects_unknown_fields_by_name() {
        let err = SweepPlan::parse(r#"{"v":1,"axes":{"obstcles":[1]},"exec":{"kernle":"scalar"}}"#)
            .expect_err("typos rejected");
        let text = err.to_string();
        assert!(text.contains("axes.obstcles"), "{text}");
        assert!(text.contains("exec.kernle"), "{text}");
    }

    #[test]
    fn parse_collects_problems_across_sections() {
        let err = SweepPlan::parse(
            r#"{"v":2,"axes":{"gating_levels":[2.0],"controllers":["warp"]},
                "exec":{"kernel":"simd","mode":{"threads":0}}}"#,
        )
        .expect_err("invalid");
        let text = err.to_string();
        for needle in [
            "v", // version mismatch
            "axes.gating_levels",
            "axes.controllers",
            "exec.kernel",
            "exec.workers",
        ] {
            assert!(text.contains(needle), "missing '{needle}' in: {text}");
        }
        assert!(text.contains("scalar, blocked"), "{text}");
    }

    #[test]
    fn controller_kind_round_trips() {
        for kind in [
            ControllerKind::PotentialField,
            ControllerKind::TightMargin,
            ControllerKind::SeededNeural(42),
        ] {
            assert_eq!(ControllerKind::parse(&kind.name()).expect("parses"), kind);
        }
        assert!(ControllerKind::parse("neural:x").is_err());
        assert!(ControllerKind::parse("pid").is_err());
    }

    #[test]
    fn serial_matches_batch_runner_on_the_paper_preset() {
        let plan = SweepPlan::paper(6, 2023);
        let config = SeoConfig::paper_defaults();
        let models = ModelSet::paper_setup(config.tau).expect("paper models");
        let runtime =
            RuntimeLoop::new(config, models, OptimizerKind::Offloading).expect("valid runtime");
        let reference = BatchRunner::new(runtime).run_serial(&ScenarioSpec::paper_grid(6, 2023));
        assert_eq!(plan.run_serial().expect("runs"), reference);
    }

    #[test]
    fn threads_and_ranges_are_bit_identical_to_serial() {
        let plan = SweepPlan::paper(3, 2023)
            .with_optimizers(vec![OptimizerKind::Offloading, OptimizerKind::ModelGating]);
        let serial = plan.run_serial().expect("serial runs");
        assert_eq!(serial.len(), 6);
        for threads in [2usize, 4] {
            assert_eq!(
                plan.run_threads(threads).expect("threads run"),
                serial,
                "{threads}-thread run diverged"
            );
        }
        // A range crossing the cell boundary reproduces the serial slice.
        let mut ranged = Vec::new();
        plan.run_range(Shard::new(2, 5), plan.kernel, |i, r| {
            ranged.push((i, r));
            true
        })
        .expect("range runs");
        assert_eq!(ranged.len(), 3);
        for (offset, (i, report)) in ranged.iter().enumerate() {
            assert_eq!(*i, 2 + offset);
            assert_eq!(*report, serial[*i]);
        }
        // Out-of-grid ranges are rejected, not clamped.
        assert!(plan
            .run_range(Shard::new(0, 7), plan.kernel, |_, _| true)
            .is_err());
    }

    #[test]
    fn channel_and_traffic_kinds_round_trip_by_name() {
        for kind in [ChannelKind::Clean, ChannelKind::Bursty] {
            assert_eq!(ChannelKind::parse(&kind.name()).expect("parses"), kind);
        }
        assert!(ChannelKind::parse("noisy").is_err());
        for kind in [
            TrafficKind::Static,
            TrafficKind::Crossing {
                count: 2,
                speed_mps: 1.5,
            },
            TrafficKind::Oncoming {
                count: 1,
                speed_mps: 6.0,
            },
        ] {
            assert_eq!(TrafficKind::parse(&kind.name()).expect("parses"), kind);
        }
        assert!(TrafficKind::parse("crossing").is_err(), "missing params");
        assert!(TrafficKind::parse("crossing:x:1.0").is_err());
        assert!(TrafficKind::parse("rush-hour:1:1.0").is_err());
    }

    #[test]
    fn channel_and_traffic_axes_round_trip_and_order_innermost() {
        let plan = SweepPlan::paper(3, 2023)
            .with_tau_ms(vec![20.0, 25.0])
            .with_channels(vec![ChannelKind::Clean, ChannelKind::Bursty])
            .with_traffic(vec![
                TrafficKind::Static,
                TrafficKind::Crossing {
                    count: 2,
                    speed_mps: 1.5,
                },
            ]);
        assert_eq!(plan.axes.n_cells(), 8);
        for text in [plan.to_json().render(), plan.to_json().render_pretty()] {
            let back = SweepPlan::parse(&text).expect("parses");
            assert_eq!(back, plan, "round trip via {text}");
        }
        // Traffic varies innermost, then channel, then tau.
        let cells = plan.cells();
        assert_eq!(cells[0].0.channel, ChannelKind::Clean);
        assert_eq!(cells[0].0.traffic, TrafficKind::Static);
        assert_eq!(
            cells[1].0.traffic,
            TrafficKind::Crossing {
                count: 2,
                speed_mps: 1.5
            }
        );
        assert_eq!(cells[2].0.channel, ChannelKind::Bursty);
        assert_eq!(cells[2].0.traffic, TrafficKind::Static);
        assert_eq!(cells[4].0.tau_ms, 25.0);
        for (i, (cell, range)) in cells.iter().enumerate() {
            assert_eq!(range.start, i * 3);
            assert_eq!(plan.cell_at(i).expect("in range"), *cell);
        }
    }

    #[test]
    fn traffic_axis_validation_names_the_field() {
        let err = SweepPlan::paper(6, 2023)
            .with_traffic(vec![TrafficKind::Crossing {
                count: 0,
                speed_mps: 1.0,
            }])
            .validate()
            .expect_err("zero movers");
        assert!(err.to_string().contains("axes.traffic"), "{}", err);

        let err = SweepPlan::paper(6, 2023)
            .with_traffic(vec![TrafficKind::Oncoming {
                count: 1,
                speed_mps: -2.0,
            }])
            .validate()
            .expect_err("negative speed");
        assert!(err.to_string().contains("axes.traffic"), "{}", err);
    }

    #[test]
    fn cardinalities_cover_every_axis_and_multiply_to_n_cells() {
        let plan = SweepPlan::paper(6, 2023)
            .with_tau_ms(vec![20.0, 25.0])
            .with_channels(vec![ChannelKind::Clean, ChannelKind::Bursty]);
        let cards = plan.axes.cardinalities();
        let product: usize = cards
            .iter()
            .filter(|(name, _)| !matches!(*name, "obstacles" | "seeds"))
            .map(|(_, n)| n)
            .product();
        assert_eq!(product, plan.axes.n_cells());
        for name in ["tau_ms", "channels", "traffic", "obstacles", "seeds"] {
            assert!(
                cards.iter().any(|(n, _)| *n == name),
                "missing {name} in {cards:?}"
            );
        }
    }

    #[test]
    fn bursty_and_traffic_cells_run_bit_identically_across_engines() {
        let plan = SweepPlan::paper(2, 2023)
            .with_channels(vec![ChannelKind::Clean, ChannelKind::Bursty])
            .with_traffic(vec![
                TrafficKind::Static,
                TrafficKind::Oncoming {
                    count: 1,
                    speed_mps: 5.0,
                },
            ]);
        let serial = plan.run_serial().expect("serial runs");
        assert_eq!(serial.len(), 12);
        assert_eq!(plan.run_threads(3).expect("threads"), serial);
        // The bursty channel actually changes outcomes relative to clean
        // (same seeds, different rate draws): cell 0 is clean/static,
        // cell 2 is bursty/static over the same specs.
        assert_ne!(
            serial[0..3],
            serial[6..9],
            "bursty channel should perturb the episode stream"
        );
    }

    #[test]
    fn display_summarizes_shape() {
        let text = SweepPlan::paper(6, 2023)
            .with_mode(ExecMode::Threads(2))
            .to_string();
        assert!(text.contains("6 spec(s)"), "{text}");
        assert!(text.contains("2 thread(s)"), "{text}");
    }
}
