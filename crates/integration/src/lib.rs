//! Integration-test host crate: the actual tests live in the workspace-level `tests/` directory.
#![forbid(unsafe_code)]
