//! Integration-test host crate: the actual tests live in the workspace-level
//! `tests/` directory. The crate itself exports the cross-suite assertion
//! helpers those tests share — most importantly
//! [`assert_all_engines_bit_identical`], the statement of the repo's
//! determinism invariant as one importable function.
#![forbid(unsafe_code)]

use seo_core::prelude::*;
use seo_core::reactor::OffloadExec;
use seo_core::shard::{parse_report_line, report_line, ShardPlanner, StreamingMerge};
use seo_core::transport::{HostPool, HostSpec, RemoteCoordinator, WorkerServer};
use std::net::SocketAddr;
use std::sync::Arc;

/// Starts an in-process `seo-sweepd`-style worker on an OS-assigned
/// loopback port and returns its address. Plan jobs ship the plan inline,
/// so the legacy runtime handed to `serve` is never consulted by them.
///
/// # Panics
///
/// Panics when the loopback socket cannot be bound or the paper runtime
/// cannot be built — both unconditional test-environment failures.
#[must_use]
pub fn spawn_loopback_worker() -> SocketAddr {
    let server = WorkerServer::bind("127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let config = SeoConfig::paper_defaults();
    let models = ModelSet::paper_setup(config.tau).expect("paper models");
    let runtime =
        Arc::new(RuntimeLoop::new(config, models, OptimizerKind::Offloading).expect("runtime"));
    std::thread::spawn(move || {
        let _ = server.serve(runtime, None);
    });
    addr
}

/// The determinism invariant as one assertion: the plan's merged NDJSON is
/// byte-identical to the **blocking serial** run in all four engines —
/// serial, in-process threads, the sharded worker/merge composition (the
/// process engine's core, with shards merged in worst-case reversed
/// order), and loopback TCP hosts. The plan is run exactly as given (in
/// particular with its `exec.offload` setting), while the baseline is the
/// same grid forced to `OffloadExec::Blocking` — so calling this with an
/// async plan asserts the reactor changes nothing but the overlap.
///
/// Returns the baseline reports so callers can chain further assertions.
///
/// # Panics
///
/// Panics when any engine fails to run or any engine's wire bytes diverge
/// from the blocking serial baseline.
pub fn assert_all_engines_bit_identical(plan: &SweepPlan) -> Vec<EpisodeReport> {
    let wire = |reports: &[EpisodeReport]| -> Vec<String> {
        reports
            .iter()
            .enumerate()
            .map(|(i, r)| report_line(i, r))
            .collect()
    };
    let baseline = plan
        .clone()
        .with_offload(OffloadExec::Blocking)
        .run_serial()
        .expect("blocking serial baseline");
    assert_eq!(baseline.len(), plan.n_specs());
    let expected = wire(&baseline);

    // Engine 1: the serial loop (a reactor when the plan is async).
    let serial = plan.run_serial().expect("serial engine");
    assert_eq!(wire(&serial), expected, "serial vs blocking baseline");

    // Engine 2: the in-process thread pool.
    let threads = plan.run_threads(3).expect("threads engine");
    assert_eq!(wire(&threads), expected, "threads vs blocking baseline");

    // Engine 3: the sharded worker path — every shard rendered to wire
    // lines, fed to the streaming merge in worst-case (reversed) order.
    let n = plan.n_specs();
    let shard_plan = ShardPlanner::new(3).plan_clamped(n).expect("shard plan");
    let mut merge = StreamingMerge::new(n);
    let mut drained = Vec::new();
    for &shard in shard_plan.shards().iter().rev() {
        let mut lines = Vec::new();
        plan.run_range(shard, plan.kernel, |i, report| {
            lines.push(report_line(i, &report));
            true
        })
        .expect("worker shard runs");
        for line in &lines {
            let (index, report) = parse_report_line(line).expect("valid wire line");
            merge.accept(index, report).expect("accepted");
            drained.extend(merge.drain_ready());
        }
    }
    drained.extend(merge.finish().expect("merge completes"));
    assert_eq!(
        wire(&drained),
        expected,
        "worker merge vs blocking baseline"
    );

    // Engine 4: loopback TCP hosts pulling plan-inline jobs.
    let pool = HostPool::new(
        (0..2)
            .map(|_| HostSpec {
                addr: spawn_loopback_worker().to_string(),
                capacity: 1,
            })
            .collect(),
    )
    .expect("valid pool");
    let (merged, stats) = RemoteCoordinator::new(pool)
        .run_plan(plan)
        .expect("hosts engine");
    assert!(stats.hosts_lost.is_empty(), "no host losses expected");
    assert_eq!(wire(&merged), expected, "hosts vs blocking baseline");

    baseline
}
