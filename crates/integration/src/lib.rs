//! Integration-test host crate: the actual tests live in the workspace-level
//! `tests/` directory. The crate itself exports the cross-suite assertion
//! helpers those tests share — most importantly
//! [`assert_all_engines_bit_identical`], the statement of the repo's
//! determinism invariant as one importable function.
#![forbid(unsafe_code)]

use seo_core::prelude::*;
use seo_core::reactor::OffloadExec;
use seo_core::shard::{
    parse_report_line, parse_summary_line, report_line, summary_line, ShardPlanner, StreamingMerge,
};
use seo_core::transport::{HostPool, HostSpec, RemoteCoordinator, WorkerServer};
use std::net::SocketAddr;
use std::sync::Arc;

/// Starts an in-process `seo-sweepd`-style worker on an OS-assigned
/// loopback port and returns its address. Plan jobs ship the plan inline,
/// so the legacy runtime handed to `serve` is never consulted by them.
///
/// # Panics
///
/// Panics when the loopback socket cannot be bound or the paper runtime
/// cannot be built — both unconditional test-environment failures.
#[must_use]
pub fn spawn_loopback_worker() -> SocketAddr {
    spawn_loopback_worker_with(None)
}

/// Like [`spawn_loopback_worker`], but every connection the worker serves
/// dies after `fail_after` fault-injector hooks — a host that reliably
/// drops mid-shard, for exercising lease re-issue and the summary-mode
/// all-or-nothing contract.
///
/// # Panics
///
/// Same conditions as [`spawn_loopback_worker`].
#[must_use]
pub fn spawn_failing_loopback_worker(fail_after: usize) -> SocketAddr {
    spawn_loopback_worker_with(Some(fail_after))
}

fn spawn_loopback_worker_with(fail_after: Option<usize>) -> SocketAddr {
    let server = WorkerServer::bind("127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let config = SeoConfig::paper_defaults();
    let models = ModelSet::paper_setup(config.tau).expect("paper models");
    let runtime =
        Arc::new(RuntimeLoop::new(config, models, OptimizerKind::Offloading).expect("runtime"));
    std::thread::spawn(move || {
        let _ = server.serve(runtime, fail_after);
    });
    addr
}

/// The determinism invariant as one assertion: the plan's merged NDJSON is
/// byte-identical to the **blocking serial** run in all four engines —
/// serial, in-process threads, the sharded worker/merge composition (the
/// process engine's core, with shards merged in worst-case reversed
/// order), and loopback TCP hosts. The plan is run exactly as given (in
/// particular with its `exec.offload` setting), while the baseline is the
/// same grid forced to `OffloadExec::Blocking` — so calling this with an
/// async plan asserts the reactor changes nothing but the overlap.
///
/// Returns the baseline reports so callers can chain further assertions.
///
/// # Panics
///
/// Panics when any engine fails to run or any engine's wire bytes diverge
/// from the blocking serial baseline.
pub fn assert_all_engines_bit_identical(plan: &SweepPlan) -> Vec<EpisodeReport> {
    let wire = |reports: &[EpisodeReport]| -> Vec<String> {
        reports
            .iter()
            .enumerate()
            .map(|(i, r)| report_line(i, r))
            .collect()
    };
    let baseline = plan
        .clone()
        .with_offload(OffloadExec::Blocking)
        .run_serial()
        .expect("blocking serial baseline");
    assert_eq!(baseline.len(), plan.n_specs());
    let expected = wire(&baseline);

    // Engine 1: the serial loop (a reactor when the plan is async).
    let serial = plan.run_serial().expect("serial engine");
    assert_eq!(wire(&serial), expected, "serial vs blocking baseline");

    // Engine 2: the in-process thread pool.
    let threads = plan.run_threads(3).expect("threads engine");
    assert_eq!(wire(&threads), expected, "threads vs blocking baseline");

    // Engine 3: the sharded worker path — every shard rendered to wire
    // lines, fed to the streaming merge in worst-case (reversed) order.
    let n = plan.n_specs();
    let shard_plan = ShardPlanner::new(3).plan_clamped(n).expect("shard plan");
    let mut merge = StreamingMerge::new(n);
    let mut drained = Vec::new();
    for &shard in shard_plan.shards().iter().rev() {
        let mut lines = Vec::new();
        plan.run_range(shard, plan.kernel, |i, report| {
            lines.push(report_line(i, &report));
            true
        })
        .expect("worker shard runs");
        for line in &lines {
            let (index, report) = parse_report_line(line).expect("valid wire line");
            merge.accept(index, report).expect("accepted");
            drained.extend(merge.drain_ready());
        }
    }
    drained.extend(merge.finish().expect("merge completes"));
    assert_eq!(
        wire(&drained),
        expected,
        "worker merge vs blocking baseline"
    );

    // Engine 4: loopback TCP hosts pulling plan-inline jobs.
    let pool = HostPool::new(
        (0..2)
            .map(|_| HostSpec {
                addr: spawn_loopback_worker().to_string(),
                capacity: 1,
            })
            .collect(),
    )
    .expect("valid pool");
    let (merged, stats) = RemoteCoordinator::new(pool)
        .run_plan(plan)
        .expect("hosts engine");
    assert!(stats.hosts_lost.is_empty(), "no host losses expected");
    assert_eq!(wire(&merged), expected, "hosts vs blocking baseline");

    baseline
}

/// The summary-mode sibling of [`assert_all_engines_bit_identical`]: folds
/// the plan's grid through all four engine compositions — serial fold,
/// threads fold, the process-engine wire composition (per-shard fragments
/// rendered to [`summary_line`] bytes, parsed back, folded in worst-case
/// reversed arrival order), and loopback TCP hosts — and asserts the
/// rendered per-cell summary lines are **byte-identical** throughout.
///
/// The hosts leg runs with one healthy worker and one that dies mid-lease
/// on *every* connection, so it also asserts the exactly-once contract: a
/// dying worker's partial fold never reaches the coordinator (summary
/// fragments are all-or-nothing per connection), and every episode of the
/// re-issued leases is folded exactly once.
///
/// Returns the serial fold's rendered lines so callers can chain further
/// assertions.
///
/// # Panics
///
/// Panics when the plan does not carry a pure-`summary` report section,
/// when any engine fails to run, or when any fold's bytes diverge.
pub fn assert_summary_bit_identical(plan: &SweepPlan) -> Vec<String> {
    let report = plan
        .report
        .as_ref()
        .expect("plan must carry a report section");
    assert!(
        !plan.emits_episodes(),
        "summary bit-identity needs pure summary report mode"
    );
    let quantiles = report.quantiles.clone();
    let render = |summary: &RunSummary| summary.lines(&quantiles);

    // Baseline: the in-process serial fold.
    let mut serial = plan.run_summary();
    plan.run_range(Shard::new(0, plan.n_specs()), plan.kernel, |i, report| {
        serial.record(i, &report);
        true
    })
    .expect("serial fold");
    assert_eq!(serial.episodes(), plan.n_specs() as u64);
    let expected = render(&serial);

    // Engine 2: the in-process thread pool, folded from its merged output.
    let mut threads = plan.run_summary();
    for (i, report) in plan
        .run_threads(3)
        .expect("threads engine")
        .into_iter()
        .enumerate()
    {
        threads.record(i, &report);
    }
    assert_eq!(render(&threads), expected, "threads fold vs serial fold");

    // Engine 3: the process-engine composition — each shard's fragment
    // crosses the summary wire line and the fragments fold in worst-case
    // (reversed) arrival order; fold_fragments re-sorts by spec index.
    let n = plan.n_specs();
    let shard_plan = ShardPlanner::new(3).plan_clamped(n).expect("shard plan");
    let mut fragments = Vec::new();
    for &shard in shard_plan.shards().iter().rev() {
        let mut fold = plan.run_summary();
        plan.run_range(shard, plan.kernel, |i, report| {
            fold.record(i, &report);
            true
        })
        .expect("worker shard runs");
        let line = summary_line(shard, &fold.fragment());
        let (parsed_shard, cells) = parse_summary_line(&line).expect("valid summary line");
        assert_eq!(parsed_shard, shard, "summary line round-trips its shard");
        fragments.push((parsed_shard, cells));
    }
    let mut processes = plan.run_summary();
    processes.fold_fragments(fragments).expect("fragments fold");
    assert_eq!(
        render(&processes),
        expected,
        "process fragments vs serial fold"
    );

    // Engine 4: loopback hosts — one healthy, one killed mid-lease on
    // every connection (the drop always lands before its summary frame,
    // so the dying worker's partial local fold must never surface).
    let pool = HostPool::new(vec![
        HostSpec {
            addr: spawn_failing_loopback_worker(1).to_string(),
            capacity: 1,
        },
        HostSpec {
            addr: spawn_loopback_worker().to_string(),
            capacity: 1,
        },
    ])
    .expect("valid pool");
    let (hosts, stats) = RemoteCoordinator::new(pool)
        .run_plan_summary(plan)
        .expect("hosts engine");
    assert_eq!(
        hosts.episodes(),
        plan.n_specs() as u64,
        "every episode folded exactly once despite the mid-lease kill"
    );
    assert_eq!(render(&hosts), expected, "hosts folds vs serial fold");
    assert!(
        stats
            .hosts_lost
            .iter()
            .all(|l| l.class == FaultClass::Transient),
        "a mid-lease kill is a transient loss, never a protocol violation: {:?}",
        stats.hosts_lost
    );

    expected
}
