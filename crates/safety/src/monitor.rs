//! Runtime bookkeeping of the binary safety state `S`.

use crate::barrier::DistanceBarrier;
use seo_sim::sensing::RelativeObservation;
use std::fmt;

/// Tracks `S` (eq. 1) over a run: violations, worst barrier value, and
/// correction counts — the evidence that "the desired safety properties are
/// preserved".
#[derive(Debug, Clone, PartialEq)]
pub struct SafetyMonitor {
    barrier: DistanceBarrier,
    steps: usize,
    unsafe_steps: usize,
    corrections: usize,
    min_barrier: f64,
    min_distance: f64,
}

impl SafetyMonitor {
    /// Creates a monitor for the given barrier.
    #[must_use]
    pub fn new(barrier: DistanceBarrier) -> Self {
        Self {
            barrier,
            steps: 0,
            unsafe_steps: 0,
            corrections: 0,
            min_barrier: f64::INFINITY,
            min_distance: f64::INFINITY,
        }
    }

    /// Records one control period; `corrected` flags whether the safety
    /// filter intervened this period. Returns the barrier value.
    pub fn record(&mut self, observation: &RelativeObservation, corrected: bool) -> f64 {
        let h = self.barrier.value(observation);
        self.steps += 1;
        if h < 0.0 {
            self.unsafe_steps += 1;
        }
        if corrected {
            self.corrections += 1;
        }
        if h < self.min_barrier {
            self.min_barrier = h;
        }
        if observation.distance < self.min_distance {
            self.min_distance = observation.distance;
        }
        h
    }

    /// Total recorded periods.
    #[must_use]
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Periods with `S = 0`.
    #[must_use]
    pub fn unsafe_steps(&self) -> usize {
        self.unsafe_steps
    }

    /// Periods in which the filter corrected the control.
    #[must_use]
    pub fn corrections(&self) -> usize {
        self.corrections
    }

    /// Worst (lowest) observed barrier value (`+inf` before any record).
    #[must_use]
    pub fn min_barrier(&self) -> f64 {
        self.min_barrier
    }

    /// Closest observed obstacle distance (`+inf` before any record).
    #[must_use]
    pub fn min_distance(&self) -> f64 {
        self.min_distance
    }

    /// Whether `S = 1` held on every recorded period.
    #[must_use]
    pub fn always_safe(&self) -> bool {
        self.unsafe_steps == 0
    }

    /// Fraction of periods spent unsafe (0 when nothing was recorded).
    #[must_use]
    pub fn unsafe_fraction(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.unsafe_steps as f64 / self.steps as f64
        }
    }
}

impl fmt::Display for SafetyMonitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} steps, {} unsafe, {} corrections, min h {:.3}",
            self.steps, self.unsafe_steps, self.corrections, self.min_barrier
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(distance: f64, speed: f64) -> RelativeObservation {
        RelativeObservation {
            distance,
            bearing: 0.0,
            speed,
        }
    }

    #[test]
    fn fresh_monitor_is_trivially_safe() {
        let m = SafetyMonitor::new(DistanceBarrier::default());
        assert!(m.always_safe());
        assert_eq!(m.steps(), 0);
        assert_eq!(m.unsafe_fraction(), 0.0);
        assert_eq!(m.min_barrier(), f64::INFINITY);
    }

    #[test]
    fn records_safe_and_unsafe_steps() {
        let mut m = SafetyMonitor::new(DistanceBarrier::default());
        let h1 = m.record(&obs(50.0, 5.0), false);
        assert!(h1 > 0.0);
        let h2 = m.record(&obs(1.0, 10.0), true);
        assert!(h2 < 0.0);
        assert_eq!(m.steps(), 2);
        assert_eq!(m.unsafe_steps(), 1);
        assert_eq!(m.corrections(), 1);
        assert!(!m.always_safe());
        assert!((m.unsafe_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tracks_minimums() {
        let mut m = SafetyMonitor::new(DistanceBarrier::default());
        m.record(&obs(30.0, 5.0), false);
        m.record(&obs(10.0, 5.0), false);
        m.record(&obs(20.0, 5.0), false);
        assert_eq!(m.min_distance(), 10.0);
        let expected_h = DistanceBarrier::default().value(&obs(10.0, 5.0));
        assert!((m.min_barrier() - expected_h).abs() < 1e-12);
    }

    #[test]
    fn display_summarizes() {
        let mut m = SafetyMonitor::new(DistanceBarrier::default());
        m.record(&obs(30.0, 5.0), false);
        assert!(m.to_string().contains("1 steps"));
    }

    #[test]
    fn clone_roundtrip() {
        let mut m = SafetyMonitor::new(DistanceBarrier::default());
        m.record(&obs(30.0, 5.0), true);
        let back = m.clone();
        assert_eq!(back, m);
    }
}
