//! # seo-safety
//!
//! Formal safety substrate for the SEO reproduction (DAC 2023,
//! arXiv:2302.12493): the safety function `h`, the controller-shielding
//! safety filter Ψ, the safe time interval Δmax = φ(x, x′, u), and the
//! runtime lookup table T(x, u).
//!
//! The paper builds on ShieldNN \[19\] (a provably-safe steering filter around
//! a barrier over distance/orientation to an obstacle) and EnergyShield \[20\]
//! (the formal mapping from vehicle state to safety expiration times). The
//! module map:
//!
//! * [`barrier`] — the real-valued safety function `h(x, u)` of eq. (1),
//!   instantiated as a distance/bearing barrier with a braking-distance
//!   term.
//! * [`filter`] — the safety filter Ψ of eq. (2): passes safe controls
//!   through, applies corrective steering/braking from the admissible set
//!   `U` otherwise.
//! * [`interval`] — Δmax = φ(x, x′, u) of eq. (3) by numerically rolling
//!   the frozen-control dynamics forward until `h` crosses zero.
//! * [`lookup`] — the low-cost proxy table T(x, u) of Section IV-C for
//!   real-time Δmax sampling.
//! * [`monitor`] — run-time bookkeeping of the binary safety state `S`.
//!
//! # Example
//!
//! ```
//! use seo_safety::barrier::DistanceBarrier;
//! use seo_safety::interval::SafeIntervalEvaluator;
//! use seo_sim::prelude::*;
//! use seo_platform::units::Seconds;
//!
//! let world = World::new(Road::default(), vec![Obstacle::new(40.0, 0.0, 1.0)]);
//! let evaluator = SafeIntervalEvaluator::default();
//! // Driving straight at the obstacle: the safe interval is finite.
//! let state = VehicleState::new(0.0, 0.0, 0.0, 10.0);
//! let delta = evaluator.safe_interval(&world, &state, Control::new(0.0, 0.5));
//! assert!(delta > Seconds::ZERO);
//! assert!(delta <= evaluator.horizon());
//! # let _ = DistanceBarrier::default();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barrier;
pub mod error;
pub mod filter;
pub mod interval;
pub mod lookup;
pub mod monitor;
pub mod ttc;

pub use barrier::DistanceBarrier;
pub use error::SafetyError;
pub use filter::{FilterDecision, SafetyFilter};
pub use interval::SafeIntervalEvaluator;
pub use lookup::DeadlineTable;
pub use monitor::SafetyMonitor;
pub use ttc::TtcEstimator;
