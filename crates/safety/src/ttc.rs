//! Time-to-collision (TTC) deadline — an ablation alternative to the
//! barrier-crossing φ.
//!
//! Section III-B's practical example suggests computing Δmax "as the
//! time-to-collision through numerical evaluations of φ". A common cheaper
//! approximation skips the dynamics rollout entirely: `TTC = d / closing
//! speed`. The ablation bench compares this closed form against the full
//! barrier-based evaluator; tests verify it is always **at least as
//! optimistic** (TTC ignores the safety margin, so using it raw would be
//! unsound — which is exactly why the paper insists on the formal φ).

use crate::barrier::DistanceBarrier;
use seo_platform::units::Seconds;
use seo_sim::sensing::RelativeObservation;

/// Closed-form time-to-collision deadline estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TtcEstimator {
    /// Cap on returned times (mirror of the φ horizon).
    pub horizon: Seconds,
    /// Conservatism divisor (mirror of the φ evaluator's κ).
    pub conservatism: f64,
}

impl Default for TtcEstimator {
    /// 80 ms horizon, κ = 10 — matching
    /// [`SafeIntervalEvaluator::default`](crate::interval::SafeIntervalEvaluator).
    fn default() -> Self {
        Self {
            horizon: Seconds::from_millis(80.0),
            conservatism: 10.0,
        }
    }
}

impl TtcEstimator {
    /// `TTC = d / (v · cos θ)`, capped at the horizon, divided by κ.
    ///
    /// Returns the horizon when no obstacle exists or the vehicle is not
    /// closing on it (`cos θ <= 0` or `v = 0`).
    #[must_use]
    pub fn deadline(&self, observation: &RelativeObservation) -> Seconds {
        if !observation.distance.is_finite() {
            return self.horizon;
        }
        let closing_speed = observation.speed * observation.bearing.cos();
        if closing_speed <= 1e-9 {
            return self.horizon;
        }
        let raw = observation.distance / closing_speed;
        Seconds::new(raw / self.conservatism).min(self.horizon)
    }

    /// TTC deadline reduced by the barrier's margin: `d` is replaced by the
    /// *barrier slack* `h(x)`, yielding a sound-but-cheap deadline that the
    /// ablation compares against the rollout-based φ.
    #[must_use]
    pub fn margin_aware_deadline(
        &self,
        observation: &RelativeObservation,
        barrier: &DistanceBarrier,
    ) -> Seconds {
        let h = barrier.value(observation);
        if !h.is_finite() {
            return self.horizon;
        }
        if h <= 0.0 {
            return Seconds::ZERO;
        }
        let closing_speed = observation.speed * observation.bearing.cos();
        if closing_speed <= 1e-9 {
            return self.horizon;
        }
        Seconds::new(h / closing_speed / self.conservatism).min(self.horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::SafeIntervalEvaluator;
    use seo_sim::vehicle::Control;

    fn obs(distance: f64, bearing: f64, speed: f64) -> RelativeObservation {
        RelativeObservation {
            distance,
            bearing,
            speed,
        }
    }

    #[test]
    fn no_obstacle_or_no_closing_returns_horizon() {
        let ttc = TtcEstimator::default();
        assert_eq!(ttc.deadline(&obs(f64::INFINITY, 0.0, 10.0)), ttc.horizon);
        assert_eq!(
            ttc.deadline(&obs(20.0, std::f64::consts::PI, 10.0)),
            ttc.horizon
        );
        assert_eq!(ttc.deadline(&obs(20.0, 0.0, 0.0)), ttc.horizon);
    }

    #[test]
    fn head_on_ttc_is_distance_over_speed() {
        let ttc = TtcEstimator {
            horizon: Seconds::new(100.0),
            conservatism: 1.0,
        };
        let d = ttc.deadline(&obs(30.0, 0.0, 10.0));
        assert!((d.as_secs() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn raw_ttc_is_more_optimistic_than_phi() {
        // TTC ignores the barrier margin, so it must never be shorter than
        // the barrier-based safe interval under the same kappa.
        let evaluator = SafeIntervalEvaluator::default();
        let ttc = TtcEstimator::default();
        for (d, v) in [(10.0, 8.0), (20.0, 12.0), (35.0, 10.0), (6.0, 5.0)] {
            let o = obs(d, 0.0, v);
            let phi = evaluator.safe_interval_relative(&o, Control::new(0.0, 0.5));
            let t = ttc.deadline(&o);
            assert!(
                t >= phi,
                "TTC {t} shorter than phi {phi} at d={d}, v={v} — it should be optimistic"
            );
        }
    }

    #[test]
    fn margin_aware_ttc_is_conservative_wrt_raw() {
        let ttc = TtcEstimator::default();
        let barrier = DistanceBarrier::default();
        for (d, v) in [(10.0, 8.0), (20.0, 12.0), (35.0, 10.0)] {
            let o = obs(d, 0.0, v);
            assert!(ttc.margin_aware_deadline(&o, &barrier) <= ttc.deadline(&o));
        }
    }

    #[test]
    fn unsafe_state_yields_zero_margin_deadline() {
        let ttc = TtcEstimator::default();
        let barrier = DistanceBarrier::default();
        let o = obs(0.5, 0.0, 10.0);
        assert_eq!(ttc.margin_aware_deadline(&o, &barrier), Seconds::ZERO);
    }

    #[test]
    fn deadline_monotone_in_distance() {
        let ttc = TtcEstimator::default();
        let near = ttc.deadline(&obs(8.0, 0.0, 10.0));
        let far = ttc.deadline(&obs(30.0, 0.0, 10.0));
        assert!(far >= near);
    }
}
