//! The safety filter Ψ of eq. (2) — a controller shield.
//!
//! Raw control predictions are confined within the boundaries of the safety
//! function while accounting for the dynamics of motion: if the proposed
//! control keeps `h >= 0` over a short look-ahead of the frozen-control
//! dynamics, it passes through untouched (`S = 1` branch). Otherwise
//! `ψ(x; U)` picks, from a finite admissible control set `U`, the correction
//! that maximizes the worst-case barrier value, tie-breaking toward the
//! original control (the ShieldNN behaviour of minimally modifying steering).

use crate::barrier::DistanceBarrier;
use seo_platform::units::Seconds;
use seo_sim::vehicle::{BicycleModel, Control, VehicleState};
use seo_sim::world::World;

/// What the filter did with the raw control.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FilterDecision {
    /// The control was already safe and passed through.
    Passed,
    /// The control was replaced by a corrective action; the original is
    /// kept for diagnostics.
    Corrected {
        /// The raw control that was rejected.
        original: Control,
    },
}

impl FilterDecision {
    /// Whether the filter intervened.
    #[must_use]
    pub fn is_correction(&self) -> bool {
        matches!(self, Self::Corrected { .. })
    }
}

/// A controller shield enforcing `h >= 0` via look-ahead and a finite
/// admissible set.
///
/// # Example
///
/// ```
/// use seo_safety::filter::SafetyFilter;
/// use seo_sim::prelude::*;
///
/// let filter = SafetyFilter::default();
/// let world = World::new(Road::default(), vec![Obstacle::new(12.0, 0.0, 1.0)]);
/// // Charging head-on at the obstacle gets corrected.
/// let state = VehicleState::new(0.0, 0.0, 0.0, 12.0);
/// let (_safe, decision) = filter.filter(&world, &state, Control::new(0.0, 1.0));
/// assert!(decision.is_correction());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SafetyFilter {
    barrier: DistanceBarrier,
    model: BicycleModel,
    /// How far ahead the frozen-control dynamics are checked.
    lookahead: Seconds,
    /// Integration step for the look-ahead.
    step: Seconds,
    /// Steering candidates per side in `U`.
    steering_candidates: usize,
}

impl Default for SafetyFilter {
    /// Default barrier/bicycle, 600 ms look-ahead at 20 ms steps, 4
    /// steering candidates per side.
    fn default() -> Self {
        Self {
            barrier: DistanceBarrier::default(),
            model: BicycleModel::default(),
            lookahead: Seconds::from_millis(600.0),
            step: Seconds::from_millis(20.0),
            steering_candidates: 4,
        }
    }
}

impl SafetyFilter {
    /// Creates a filter with an explicit barrier and dynamics model.
    #[must_use]
    pub fn new(barrier: DistanceBarrier, model: BicycleModel) -> Self {
        Self {
            barrier,
            model,
            ..Self::default()
        }
    }

    /// The barrier being enforced.
    #[must_use]
    pub fn barrier(&self) -> &DistanceBarrier {
        &self.barrier
    }

    /// Returns a copy with a different look-ahead (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `lookahead` is non-positive.
    #[must_use]
    pub fn with_lookahead(mut self, lookahead: Seconds) -> Self {
        assert!(lookahead.as_secs() > 0.0, "lookahead must be positive");
        self.lookahead = lookahead;
        self
    }

    /// Worst-case barrier value over the look-ahead under frozen `control`.
    #[must_use]
    pub fn worst_case_barrier(&self, world: &World, state: &VehicleState, control: Control) -> f64 {
        let mut worst = self.barrier.value_in_world(world, state);
        self.model
            .rollout(*state, control, self.step, self.lookahead, |_, s| {
                let h = self.barrier.value_in_world(world, &s);
                if h < worst {
                    worst = h;
                }
                worst >= 0.0 // keep rolling only while still safe (early exit)
            });
        worst
    }

    /// Ψ(x, u): returns the filtered control `u'` and what happened.
    ///
    /// Matches eq. (2): `u` when the look-ahead stays safe, otherwise the
    /// best corrective action from the admissible set.
    #[must_use]
    pub fn filter(
        &self,
        world: &World,
        state: &VehicleState,
        control: Control,
    ) -> (Control, FilterDecision) {
        if self.worst_case_barrier(world, state, control) >= 0.0 {
            return (control, FilterDecision::Passed);
        }
        let corrected = self.corrective_action(world, state, control);
        (corrected, FilterDecision::Corrected { original: control })
    }

    /// ψ(x; U): the corrective behaviour — pick from the admissible set the
    /// action with the best worst-case barrier, tie-breaking toward the
    /// original control. Candidates stream from [`Self::candidates`] so the
    /// corrective path stays allocation-free inside the control loop.
    fn corrective_action(&self, world: &World, state: &VehicleState, original: Control) -> Control {
        let mut best = Control::new(0.0, -1.0); // full brake fallback
        let mut best_score = f64::NEG_INFINITY;
        for candidate in self.candidates(original) {
            let worst = self.worst_case_barrier(world, state, candidate);
            let proximity = -((candidate.steering - original.steering).abs()
                + 0.25 * (candidate.throttle - original.throttle).abs());
            // ShieldNN-style minimal correction: among *safe* candidates,
            // prefer the one closest to the original control (keeps making
            // progress); if none is safe, fall back to the least-unsafe
            // one.
            let score = if worst >= 0.0 {
                100.0 + proximity
            } else {
                worst
            };
            if score > best_score {
                best_score = score;
                best = candidate;
            }
        }
        best
    }

    /// Streams the admissible set `U`: a steering sweep at the original
    /// throttle, at half throttle, and under full braking. The single
    /// source of candidates for both the allocation-free corrective search
    /// and the materialized [`Self::admissible_set`].
    fn candidates(&self, original: Control) -> impl Iterator<Item = Control> {
        let k = self.steering_candidates as i32;
        (-k..=k).flat_map(move |i| {
            let steering = f64::from(i) / f64::from(k);
            [original.throttle, original.throttle * 0.5, -1.0]
                .into_iter()
                .map(move |throttle| Control::new(steering, throttle))
        })
    }

    /// The finite admissible set `U`, materialized for inspection
    /// (the private `corrective_action` step iterates the same set without
    /// allocating).
    #[must_use]
    pub fn admissible_set(&self, original: Control) -> Vec<Control> {
        self.candidates(original).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seo_sim::episode::{Episode, EpisodeConfig, EpisodeStatus};
    use seo_sim::scenario::ScenarioConfig;
    use seo_sim::world::{Obstacle, Road};

    fn obstacle_world(x: f64) -> World {
        World::new(Road::new(1000.0, 40.0), vec![Obstacle::new(x, 0.0, 1.0)])
    }

    #[test]
    fn empty_world_always_passes() {
        let filter = SafetyFilter::default();
        let (u, d) = filter.filter(
            &World::empty(),
            &VehicleState::new(0.0, 0.0, 0.0, 15.0),
            Control::new(1.0, 1.0),
        );
        assert_eq!(u, Control::new(1.0, 1.0));
        assert!(!d.is_correction());
    }

    #[test]
    fn distant_obstacle_passes() {
        let filter = SafetyFilter::default();
        let state = VehicleState::new(0.0, 0.0, 0.0, 8.0);
        let (_, d) = filter.filter(&obstacle_world(80.0), &state, Control::new(0.0, 0.5));
        assert!(!d.is_correction());
    }

    #[test]
    fn imminent_collision_is_corrected() {
        let filter = SafetyFilter::default();
        let state = VehicleState::new(0.0, 0.0, 0.0, 12.0);
        let raw = Control::new(0.0, 1.0);
        let (safe, d) = filter.filter(&obstacle_world(12.0), &state, raw);
        assert!(d.is_correction());
        assert_ne!(safe, raw);
        match d {
            FilterDecision::Corrected { original } => assert_eq!(original, raw),
            FilterDecision::Passed => panic!("expected correction"),
        }
    }

    #[test]
    fn correction_improves_worst_case_barrier() {
        let filter = SafetyFilter::default();
        let world = obstacle_world(12.0);
        let state = VehicleState::new(0.0, 0.0, 0.0, 12.0);
        let raw = Control::new(0.0, 1.0);
        let (safe, _) = filter.filter(&world, &state, raw);
        let before = filter.worst_case_barrier(&world, &state, raw);
        let after = filter.worst_case_barrier(&world, &state, safe);
        assert!(
            after > before,
            "correction should improve safety: {before} -> {after}"
        );
    }

    #[test]
    fn filtered_driving_avoids_collisions() {
        // A deliberately reckless agent (full throttle, no steering) with
        // the shield in the loop must not collide on paper scenarios.
        let filter = SafetyFilter::default();
        for seed in 0..5u64 {
            let world = ScenarioConfig::new(4).with_seed(seed).generate();
            let mut ep = Episode::new(world, EpisodeConfig::default().with_max_steps(2000));
            while ep.status() == EpisodeStatus::Running {
                let raw = Control::new(0.0, 1.0);
                let (safe, _) = filter.filter(ep.world(), &ep.state(), raw);
                ep.step(safe);
            }
            assert_ne!(
                ep.status(),
                EpisodeStatus::Collided,
                "shielded agent collided (seed {seed}) at {}",
                ep.state()
            );
        }
    }

    #[test]
    fn worst_case_barrier_decreases_with_approach() {
        let filter = SafetyFilter::default();
        let far = filter.worst_case_barrier(
            &obstacle_world(60.0),
            &VehicleState::new(0.0, 0.0, 0.0, 10.0),
            Control::coast(),
        );
        let near = filter.worst_case_barrier(
            &obstacle_world(20.0),
            &VehicleState::new(0.0, 0.0, 0.0, 10.0),
            Control::coast(),
        );
        assert!(near < far);
    }

    #[test]
    fn admissible_set_includes_full_brake() {
        let filter = SafetyFilter::default();
        let set = filter.admissible_set(Control::new(0.3, 0.8));
        assert!(set.iter().any(|c| c.throttle == -1.0));
        assert!(set.iter().any(|c| c.steering == 1.0));
        assert!(set.iter().any(|c| c.steering == -1.0));
    }

    #[test]
    #[should_panic(expected = "lookahead must be positive")]
    fn zero_lookahead_panics() {
        let _ = SafetyFilter::default().with_lookahead(Seconds::ZERO);
    }
}
