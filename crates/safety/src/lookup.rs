//! The low-cost proxy lookup table T(x, u) of Section IV-C.
//!
//! "Through enough evaluations of the safety expiration function, a low-cost
//! proxy lookup table T(x, u) is constructed to enable real-time sampling of
//! Δmax values at runtime." The table is gridded over the paper's state
//! features — distance to obstacle, relative orientation angle — plus speed,
//! and stores the φ evaluation at each grid point. Runtime queries use
//! nearest-lower-cell lookup, which is conservative in distance (a query
//! between grid points returns the Δmax of the *closer* distance row).

use crate::error::SafetyError;
use crate::interval::SafeIntervalEvaluator;
use seo_platform::units::Seconds;
use seo_sim::sensing::RelativeObservation;
use seo_sim::vehicle::Control;
use std::fmt;

/// A uniform grid axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Axis {
    /// Inclusive lower bound.
    pub min: f64,
    /// Inclusive upper bound.
    pub max: f64,
    /// Number of grid points (>= 2).
    pub points: usize,
}

impl Axis {
    /// Creates an axis.
    ///
    /// # Errors
    ///
    /// Returns [`SafetyError::InvalidConfig`] if `min >= max`, either bound
    /// is non-finite, or `points < 2`.
    pub fn new(min: f64, max: f64, points: usize) -> Result<Self, SafetyError> {
        if !(min.is_finite() && max.is_finite() && min < max) {
            return Err(SafetyError::InvalidConfig {
                field: "axis bounds",
                constraint: "satisfy min < max and be finite",
            });
        }
        if points < 2 {
            return Err(SafetyError::InvalidConfig {
                field: "axis points",
                constraint: "be at least 2",
            });
        }
        Ok(Self { min, max, points })
    }

    /// The grid value at index `i` (clamped to the axis).
    #[must_use]
    pub fn value(&self, i: usize) -> f64 {
        let i = i.min(self.points - 1);
        self.min + (self.max - self.min) * i as f64 / (self.points - 1) as f64
    }

    /// Index of the grid point at or below `v` (clamped into range).
    #[must_use]
    pub fn floor_index(&self, v: f64) -> usize {
        if !v.is_finite() {
            return if v > 0.0 { self.points - 1 } else { 0 };
        }
        let t = (v - self.min) / (self.max - self.min) * (self.points - 1) as f64;
        (t.floor().max(0.0) as usize).min(self.points - 1)
    }
}

/// Offline-built table mapping (distance, bearing, speed) to Δmax.
///
/// # Example
///
/// ```
/// use seo_safety::lookup::{Axis, DeadlineTable};
/// use seo_safety::interval::SafeIntervalEvaluator;
/// use seo_sim::sensing::RelativeObservation;
/// use seo_sim::vehicle::Control;
///
/// let table = DeadlineTable::build(
///     &SafeIntervalEvaluator::default(),
///     Axis::new(0.0, 60.0, 13)?,
///     Axis::new(-3.2, 3.2, 9)?,
///     Axis::new(0.0, 15.0, 6)?,
///     Control::new(0.0, 0.5),
/// );
/// let obs = RelativeObservation { distance: 50.0, bearing: 0.0, speed: 5.0 };
/// assert!(table.query(&obs).as_secs() > 0.0);
/// # Ok::<(), seo_safety::SafetyError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeadlineTable {
    distance: Axis,
    bearing: Axis,
    speed: Axis,
    /// Row-major `[distance][bearing][speed]` Δmax values, seconds.
    values: Vec<Seconds>,
    /// The control assumption baked into the table.
    control: Control,
    horizon: Seconds,
}

impl DeadlineTable {
    /// Builds the table by evaluating φ at every grid point with the
    /// canonical relative-scene kernel
    /// ([`SafeIntervalEvaluator::safe_interval_relative`]).
    #[must_use]
    pub fn build(
        evaluator: &SafeIntervalEvaluator,
        distance: Axis,
        bearing: Axis,
        speed: Axis,
        control: Control,
    ) -> Self {
        let mut values = Vec::with_capacity(distance.points * bearing.points * speed.points);
        for di in 0..distance.points {
            for bi in 0..bearing.points {
                for si in 0..speed.points {
                    let obs = RelativeObservation {
                        distance: distance.value(di),
                        bearing: bearing.value(bi),
                        speed: speed.value(si),
                    };
                    values.push(evaluator.safe_interval_relative(&obs, control));
                }
            }
        }
        Self {
            distance,
            bearing,
            speed,
            values,
            control,
            horizon: evaluator.horizon(),
        }
    }

    /// Builds a table with the paper-scale default axes: distance 0–60 m in
    /// 2.5 m cells, bearing ±π in ~0.4 rad cells, speed 0–15 m/s in 1.5 m/s
    /// cells.
    #[must_use]
    pub fn build_default(evaluator: &SafeIntervalEvaluator) -> Self {
        let distance = Axis::new(0.0, 60.0, 25).expect("static axis is valid");
        let bearing =
            Axis::new(-std::f64::consts::PI, std::f64::consts::PI, 17).expect("static axis");
        let speed = Axis::new(0.0, 15.0, 11).expect("static axis");
        Self::build(evaluator, distance, bearing, speed, Control::new(0.0, 0.5))
    }

    /// Number of stored grid points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the table is empty (never true for built tables).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The horizon (Δmax cap) the table was built with.
    #[must_use]
    pub fn horizon(&self) -> Seconds {
        self.horizon
    }

    /// T(x, u): O(1) Δmax lookup for an observation.
    ///
    /// Out-of-range queries clamp to the grid; an infinite distance (no
    /// obstacle) returns the horizon directly.
    #[must_use]
    pub fn query(&self, observation: &RelativeObservation) -> Seconds {
        if !observation.distance.is_finite() {
            return self.horizon;
        }
        let di = self.distance.floor_index(observation.distance);
        // Bearing is safest near ±π and most dangerous at 0; nearest index
        // keeps the cell's sign symmetry, floor is fine for the monotone
        // distance axis.
        let bi = self.bearing.floor_index(observation.bearing);
        // Conservative in speed: faster is less safe, so round *up*.
        let si_floor = self.speed.floor_index(observation.speed);
        let si = if self.speed.value(si_floor) < observation.speed {
            (si_floor + 1).min(self.speed.points - 1)
        } else {
            si_floor
        };
        self.values[(di * self.bearing.points + bi) * self.speed.points + si]
    }
}

impl fmt::Display for DeadlineTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "deadline table {}x{}x{} ({} cells, horizon {})",
            self.distance.points,
            self.bearing.points,
            self.speed.points,
            self.len(),
            self.horizon
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_table() -> DeadlineTable {
        DeadlineTable::build(
            &SafeIntervalEvaluator::default(),
            Axis::new(0.0, 60.0, 13).expect("valid"),
            Axis::new(-3.2, 3.2, 9).expect("valid"),
            Axis::new(0.0, 15.0, 6).expect("valid"),
            Control::new(0.0, 0.5),
        )
    }

    #[test]
    fn axis_validation() {
        assert!(Axis::new(0.0, 1.0, 2).is_ok());
        assert!(Axis::new(1.0, 0.0, 2).is_err());
        assert!(Axis::new(0.0, 1.0, 1).is_err());
        assert!(Axis::new(f64::NAN, 1.0, 2).is_err());
    }

    #[test]
    fn axis_value_and_floor_index() {
        let a = Axis::new(0.0, 10.0, 6).expect("valid"); // 0, 2, 4, 6, 8, 10
        assert_eq!(a.value(0), 0.0);
        assert_eq!(a.value(3), 6.0);
        assert_eq!(a.value(99), 10.0, "clamped");
        assert_eq!(a.floor_index(4.9), 2);
        assert_eq!(a.floor_index(-5.0), 0);
        assert_eq!(a.floor_index(50.0), 5);
        assert_eq!(a.floor_index(f64::INFINITY), 5);
        assert_eq!(a.floor_index(f64::NEG_INFINITY), 0);
    }

    #[test]
    fn table_size_matches_axes() {
        let t = small_table();
        assert_eq!(t.len(), 13 * 9 * 6);
        assert!(!t.is_empty());
    }

    #[test]
    fn infinite_distance_returns_horizon() {
        let t = small_table();
        let obs = RelativeObservation {
            distance: f64::INFINITY,
            bearing: 0.0,
            speed: 10.0,
        };
        assert_eq!(t.query(&obs), t.horizon());
    }

    #[test]
    fn near_head_on_is_shorter_than_far() {
        let t = small_table();
        let near = t.query(&RelativeObservation {
            distance: 6.0,
            bearing: 0.0,
            speed: 12.0,
        });
        let far = t.query(&RelativeObservation {
            distance: 55.0,
            bearing: 0.0,
            speed: 12.0,
        });
        assert!(near <= far, "near {near} should be <= far {far}");
        assert_eq!(far, t.horizon(), "far away should hit the cap");
    }

    #[test]
    fn query_approximates_direct_evaluation() {
        let evaluator = SafeIntervalEvaluator::default();
        let t = DeadlineTable::build_default(&evaluator);
        // Compare on a spread of states; table is conservative-ish, so
        // allow a tolerance of one cell's worth of distance (2.5 m at
        // 12 m/s ~ 0.21 s) plus the integration step.
        for (d, b, v) in [(20.0, 0.0, 12.0), (35.0, 0.4, 8.0), (10.0, -0.2, 5.0)] {
            let obs = RelativeObservation {
                distance: d,
                bearing: b,
                speed: v,
            };
            let exact = evaluator.safe_interval_relative(&obs, Control::new(0.0, 0.5));
            let approx = t.query(&obs);
            assert!(
                (approx.as_secs() - exact.as_secs()).abs() <= 0.3,
                "query {approx} too far from exact {exact} at d={d}, b={b}, v={v}"
            );
        }
    }

    #[test]
    fn conservative_in_distance() {
        // A query strictly between two distance grid points must not return
        // more than the value at the *upper* grid point (floor on a
        // monotone-increasing axis is conservative).
        let evaluator = SafeIntervalEvaluator::default().with_horizon(Seconds::new(2.0));
        let t = DeadlineTable::build(
            &evaluator,
            Axis::new(0.0, 60.0, 25).expect("valid"),
            Axis::new(-3.2, 3.2, 9).expect("valid"),
            Axis::new(0.0, 15.0, 6).expect("valid"),
            Control::new(0.0, 0.5),
        );
        for d in [7.3, 13.9, 21.4, 30.1] {
            let query = t.query(&RelativeObservation {
                distance: d,
                bearing: 0.0,
                speed: 12.0,
            });
            let upper = evaluator.safe_interval_relative(
                &RelativeObservation {
                    distance: d + 2.5,
                    bearing: 0.0,
                    speed: 12.0,
                },
                Control::new(0.0, 0.5),
            );
            assert!(
                query.as_secs() <= upper.as_secs() + 1e-9,
                "not conservative at d={d}: {query} > {upper}"
            );
        }
    }

    #[test]
    fn clone_roundtrip() {
        let t = small_table();
        let back = t.clone();
        assert_eq!(back, t);
    }

    #[test]
    fn display_reports_shape() {
        let t = small_table();
        assert!(t.to_string().contains("13x9x6"));
    }
}
