//! The safety function `h(x, u)` of eq. (1).
//!
//! Following the ShieldNN controller shield the paper adopts (Section IV-B),
//! the barrier is evaluated on the vehicle's state relative to a fixed point
//! in the plane (the obstacle): the relative **distance** and **orientation
//! angle**. Our instantiation adds the usual braking-distance margin so the
//! safe set also accounts for speed:
//!
//! ```text
//! h(x) = d  -  r_safe  -  towardness(theta) * v^2 / (2 a_brake)
//! ```
//!
//! where `d` is the surface distance to the obstacle, `r_safe` a static
//! clearance, `towardness` weights the kinetic term by how directly the
//! vehicle is heading at the obstacle (`cos theta`, clamped at zero), and
//! `a_brake` the maximum braking deceleration. `h >= 0` defines the safe set
//! (`S = 1` in the paper).

use crate::error::SafetyError;
use seo_sim::sensing::RelativeObservation;
use seo_sim::vehicle::VehicleState;
use seo_sim::world::World;

/// Barrier over (distance, bearing, speed) relative to the nearest obstacle.
///
/// # Example
///
/// ```
/// use seo_safety::barrier::DistanceBarrier;
/// use seo_sim::sensing::RelativeObservation;
///
/// let barrier = DistanceBarrier::default();
/// // Far away and slow: safe.
/// let obs = RelativeObservation { distance: 50.0, bearing: 0.0, speed: 5.0 };
/// assert!(barrier.value(&obs) > 0.0);
/// // On top of the obstacle: unsafe.
/// let obs = RelativeObservation { distance: 0.5, bearing: 0.0, speed: 5.0 };
/// assert!(barrier.value(&obs) < 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceBarrier {
    /// Static clearance that must always be kept to the obstacle surface,
    /// meters.
    pub safe_radius: f64,
    /// Maximum braking deceleration used for the kinetic margin, m/s^2.
    pub max_braking: f64,
    /// Scale on the kinetic margin (1 = full stopping distance).
    pub kinetic_gain: f64,
}

impl Default for DistanceBarrier {
    /// 1.2 m static clearance, 8 m/s^2 braking, full kinetic margin.
    ///
    /// The clearance is sized to the evaluation road (8 m wide, obstacles
    /// up to 2 m off-center with 1 m radius): a safe corridor of at least
    /// one vehicle width must exist on one side of every obstacle.
    fn default() -> Self {
        Self {
            safe_radius: 1.2,
            max_braking: 8.0,
            kinetic_gain: 1.0,
        }
    }
}

impl DistanceBarrier {
    /// Validates the parameterization.
    ///
    /// # Errors
    ///
    /// Returns [`SafetyError::InvalidConfig`] for non-positive clearance or
    /// braking, or a negative kinetic gain.
    pub fn validate(&self) -> Result<(), SafetyError> {
        if !(self.safe_radius.is_finite() && self.safe_radius > 0.0) {
            return Err(SafetyError::InvalidConfig {
                field: "safe_radius",
                constraint: "be finite and positive",
            });
        }
        if !(self.max_braking.is_finite() && self.max_braking > 0.0) {
            return Err(SafetyError::InvalidConfig {
                field: "max_braking",
                constraint: "be finite and positive",
            });
        }
        if !(self.kinetic_gain.is_finite() && self.kinetic_gain >= 0.0) {
            return Err(SafetyError::InvalidConfig {
                field: "kinetic_gain",
                constraint: "be finite and non-negative",
            });
        }
        Ok(())
    }

    /// Evaluates `h` on a safety-state observation.
    ///
    /// Returns `f64::INFINITY` when no obstacle is in the world — there is
    /// nothing to be unsafe against.
    #[must_use]
    pub fn value(&self, observation: &RelativeObservation) -> f64 {
        if !observation.distance.is_finite() {
            return f64::INFINITY;
        }
        let towardness = observation.bearing.cos().max(0.0);
        let kinetic =
            self.kinetic_gain * towardness * observation.speed.powi(2) / (2.0 * self.max_braking);
        observation.distance - self.safe_radius - kinetic
    }

    /// Evaluates `h` directly against a world and vehicle state
    /// (ground-truth observation, as the paper does with CARLA state).
    #[must_use]
    pub fn value_in_world(&self, world: &World, state: &VehicleState) -> f64 {
        self.value(&RelativeObservation::observe(world, state))
    }

    /// The binary safety state `S` of eq. (1): `true` iff `h >= 0`.
    #[must_use]
    pub fn is_safe(&self, observation: &RelativeObservation) -> bool {
        self.value(observation) >= 0.0
    }

    /// Minimum distance at which a vehicle at `speed` heading straight at
    /// the obstacle is still safe (the `h = 0` contour at bearing 0).
    #[must_use]
    pub fn critical_distance(&self, speed: f64) -> f64 {
        self.safe_radius + self.kinetic_gain * speed.powi(2) / (2.0 * self.max_braking)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seo_sim::world::{Obstacle, Road};
    use std::f64::consts::PI;

    fn obs(distance: f64, bearing: f64, speed: f64) -> RelativeObservation {
        RelativeObservation {
            distance,
            bearing,
            speed,
        }
    }

    #[test]
    fn far_is_safe_near_is_unsafe() {
        let b = DistanceBarrier::default();
        assert!(b.is_safe(&obs(50.0, 0.0, 10.0)));
        assert!(!b.is_safe(&obs(1.0, 0.0, 10.0)));
    }

    #[test]
    fn heading_away_removes_kinetic_margin() {
        let b = DistanceBarrier::default();
        // 5 m away at high speed: unsafe head-on, safe heading away.
        let head_on = obs(5.0, 0.0, 12.0);
        let away = obs(5.0, PI, 12.0);
        assert!(b.value(&head_on) < b.value(&away));
        assert!(!b.is_safe(&head_on));
        assert!(b.is_safe(&away));
    }

    #[test]
    fn faster_is_less_safe_head_on() {
        let b = DistanceBarrier::default();
        assert!(b.value(&obs(10.0, 0.0, 4.0)) > b.value(&obs(10.0, 0.0, 12.0)));
    }

    #[test]
    fn no_obstacle_is_infinitely_safe() {
        let b = DistanceBarrier::default();
        assert_eq!(b.value(&obs(f64::INFINITY, 0.0, 10.0)), f64::INFINITY);
        assert!(b.is_safe(&obs(f64::INFINITY, 0.0, 10.0)));
        let empty = World::empty();
        assert_eq!(
            b.value_in_world(&empty, &VehicleState::route_start()),
            f64::INFINITY
        );
    }

    #[test]
    fn critical_distance_matches_zero_contour() {
        let b = DistanceBarrier::default();
        let speed = 10.0;
        let d = b.critical_distance(speed);
        assert!((b.value(&obs(d, 0.0, speed))).abs() < 1e-12);
        assert!(b.is_safe(&obs(d + 0.01, 0.0, speed)));
        assert!(!b.is_safe(&obs(d - 0.01, 0.0, speed)));
    }

    #[test]
    fn value_in_world_uses_nearest_obstacle() {
        let world = World::new(
            Road::default(),
            vec![Obstacle::new(50.0, 0.0, 1.0), Obstacle::new(20.0, 0.0, 1.0)],
        );
        let b = DistanceBarrier::default();
        let state = VehicleState::new(0.0, 0.0, 0.0, 5.0);
        // Distance to nearest surface = 19.
        let expected = b.value(&obs(19.0, 0.0, 5.0));
        assert!((b.value_in_world(&world, &state) - expected).abs() < 1e-9);
    }

    #[test]
    fn validation() {
        assert!(DistanceBarrier::default().validate().is_ok());
        assert!(DistanceBarrier {
            safe_radius: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(DistanceBarrier {
            max_braking: -1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(DistanceBarrier {
            kinetic_gain: -0.1,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(DistanceBarrier {
            kinetic_gain: 0.0,
            ..Default::default()
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn zero_kinetic_gain_reduces_to_pure_distance() {
        let b = DistanceBarrier {
            kinetic_gain: 0.0,
            ..Default::default()
        };
        assert_eq!(b.value(&obs(5.0, 0.0, 100.0)), 5.0 - b.safe_radius);
        assert_eq!(b.critical_distance(100.0), b.safe_radius);
    }
}
