//! Safe time intervals Δmax = φ(x, x′, u) — eq. (3).
//!
//! Given the system in a safe state under control `u`, Δmax is the maximum
//! time the *same* control can keep being applied before the system
//! transitions to an unsafe state (`h < 0`). Because the bicycle dynamics
//! are uniformly continuous, φ is computed by numerically integrating the
//! frozen-control dynamics and watching for the barrier's zero crossing —
//! the same construction EnergyShield \[20\] derives in closed form for the
//! ShieldNN dynamics.

use crate::barrier::DistanceBarrier;
use seo_platform::units::Seconds;
use seo_sim::sensing::RelativeObservation;
use seo_sim::vehicle::{BicycleModel, Control, VehicleState};
use seo_sim::world::World;

/// Numerically evaluates φ over the simulated dynamics.
///
/// The returned interval is capped at [`horizon`](Self::horizon): with no
/// obstacle nearby the true Δmax is unbounded, and the paper's discretized
/// δmax histograms (Fig. 6) top out at 4τ, i.e. an 80 ms cap for τ = 20 ms.
///
/// # Conservatism
///
/// A frozen-control rollout over nominal dynamics yields the *optimistic*
/// time-to-unsafe. The paper's deadlines (derived in EnergyShield \[20\] from
/// barrier decay bounds) are far more conservative: they must hold while
/// the state estimate is stale, i.e. under **any** control the pipeline
/// might produce from stale data, plus model mismatch. We fold that margin
/// into a single divisor [`conservatism`](Self::with_conservatism) `κ >= 1`:
/// the reported interval is `min(raw / κ, horizon)`. The default κ is
/// calibrated so that the δmax occurrence histograms under obstacle sweeps
/// match the paper's Fig. 6 shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SafeIntervalEvaluator {
    barrier: DistanceBarrier,
    model: BicycleModel,
    step: Seconds,
    horizon: Seconds,
    conservatism: f64,
}

impl Default for SafeIntervalEvaluator {
    /// Default barrier and bicycle, 5 ms integration step, 80 ms horizon
    /// (= 4τ at the paper's τ = 20 ms), conservatism 10.
    fn default() -> Self {
        Self {
            barrier: DistanceBarrier::default(),
            model: BicycleModel::default(),
            step: Seconds::from_millis(5.0),
            horizon: Seconds::from_millis(80.0),
            conservatism: 10.0,
        }
    }
}

impl SafeIntervalEvaluator {
    /// Creates an evaluator.
    ///
    /// # Panics
    ///
    /// Panics if `step` or `horizon` is non-positive (configuration bug).
    #[must_use]
    pub fn new(
        barrier: DistanceBarrier,
        model: BicycleModel,
        step: Seconds,
        horizon: Seconds,
    ) -> Self {
        assert!(step.as_secs() > 0.0, "integration step must be positive");
        assert!(horizon.as_secs() > 0.0, "horizon must be positive");
        Self {
            barrier,
            model,
            step,
            horizon,
            conservatism: 10.0,
        }
    }

    /// The barrier in use.
    #[must_use]
    pub fn barrier(&self) -> &DistanceBarrier {
        &self.barrier
    }

    /// The cap on returned intervals.
    #[must_use]
    pub fn horizon(&self) -> Seconds {
        self.horizon
    }

    /// Returns a copy with a different horizon (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is non-positive.
    #[must_use]
    pub fn with_horizon(mut self, horizon: Seconds) -> Self {
        assert!(horizon.as_secs() > 0.0, "horizon must be positive");
        self.horizon = horizon;
        self
    }

    /// The conservatism divisor κ (see the type-level docs).
    #[must_use]
    pub fn conservatism(&self) -> f64 {
        self.conservatism
    }

    /// Returns a copy with a different conservatism divisor (builder
    /// style). `κ = 1` yields the raw frozen-control time-to-unsafe.
    ///
    /// # Panics
    ///
    /// Panics if `conservatism < 1`.
    #[must_use]
    pub fn with_conservatism(mut self, conservatism: f64) -> Self {
        assert!(
            conservatism.is_finite() && conservatism >= 1.0,
            "conservatism must be at least 1"
        );
        self.conservatism = conservatism;
        self
    }

    /// Δmax = φ(x, x′, u): the time until `h` first goes negative when the
    /// control `u` is frozen, starting from `state` in `world`; capped at
    /// the horizon.
    ///
    /// If the state is *already* unsafe, returns [`Seconds::ZERO`] — the
    /// paper's Algorithm 1 then forces every Λ′ model to run at full
    /// capacity (`δ_i >= δmax` branch).
    #[must_use]
    pub fn safe_interval(&self, world: &World, state: &VehicleState, control: Control) -> Seconds {
        if self.barrier.value_in_world(world, state) < 0.0 {
            return Seconds::ZERO;
        }
        // Roll out far enough that, after dividing by kappa, the horizon is
        // still reachable.
        let raw_horizon = self.horizon * self.conservatism;
        let mut crossing: Option<Seconds> = None;
        self.model
            .rollout(*state, control, self.step, raw_horizon, |t, s| {
                if self.barrier.value_in_world(world, &s) < 0.0 {
                    crossing = Some(t);
                    false
                } else {
                    true
                }
            });
        match crossing {
            // The state was safe at t - step and unsafe at t: the crossing
            // lies in between; report the last provably-safe instant,
            // shrunk by the conservatism margin.
            Some(t) => ((t - self.step).max(Seconds::ZERO) / self.conservatism).min(self.horizon),
            None => self.horizon,
        }
    }

    /// Δmax against a **dynamic** world: both the vehicle (frozen control)
    /// and the obstacles (constant velocities) are rolled forward, so the
    /// returned interval accounts for closing traffic — the full
    /// φ(x, x′, u) of eq. (3) with a moving x′.
    ///
    /// `now` is the absolute time of `state` within the dynamic world's
    /// timeline.
    #[must_use]
    pub fn safe_interval_dynamic(
        &self,
        world: &seo_sim::dynamics::DynamicWorld,
        now: Seconds,
        state: &VehicleState,
        control: Control,
    ) -> Seconds {
        if self.barrier.value_in_world(&world.snapshot(now), state) < 0.0 {
            return Seconds::ZERO;
        }
        let raw_horizon = self.horizon * self.conservatism;
        let mut crossing: Option<Seconds> = None;
        self.model
            .rollout(*state, control, self.step, raw_horizon, |t, s| {
                if self.barrier.value_in_world(&world.snapshot(now + t), &s) < 0.0 {
                    crossing = Some(t);
                    false
                } else {
                    true
                }
            });
        match crossing {
            Some(t) => ((t - self.step).max(Seconds::ZERO) / self.conservatism).min(self.horizon),
            None => self.horizon,
        }
    }

    /// Same as [`Self::safe_interval`] but against a *virtual* obstacle
    /// described by a relative observation instead of a world — this is the
    /// kernel used to build the offline lookup table, where the table axes
    /// are exactly the paper's state features (distance, orientation angle,
    /// speed).
    #[must_use]
    pub fn safe_interval_relative(
        &self,
        observation: &RelativeObservation,
        control: Control,
    ) -> Seconds {
        if !observation.distance.is_finite() {
            return self.horizon;
        }
        // Reconstruct a canonical scene: vehicle at origin facing +x, one
        // point obstacle placed at the observed distance/bearing.
        let state = VehicleState::new(0.0, 0.0, 0.0, observation.speed);
        let d = observation.distance;
        let world = seo_sim::world::World::new(
            seo_sim::world::Road::new(1e6, 1e6),
            vec![seo_sim::world::Obstacle::new(
                d * observation.bearing.cos(),
                d * observation.bearing.sin(),
                0.0,
            )],
        );
        self.safe_interval(&world, &state, control)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seo_sim::world::{Obstacle, Road, World};

    fn world_at(x: f64) -> World {
        World::new(Road::new(1000.0, 100.0), vec![Obstacle::new(x, 0.0, 1.0)])
    }

    #[test]
    fn empty_world_returns_horizon() {
        let eval = SafeIntervalEvaluator::default();
        let d = eval.safe_interval(
            &World::empty(),
            &VehicleState::route_start(),
            Control::coast(),
        );
        assert_eq!(d, eval.horizon());
    }

    #[test]
    fn already_unsafe_returns_zero() {
        let eval = SafeIntervalEvaluator::default();
        let world = world_at(3.0); // surface at 2 m, barrier radius 2 m, speed > 0
        let state = VehicleState::new(0.0, 0.0, 0.0, 10.0);
        assert_eq!(
            eval.safe_interval(&world, &state, Control::coast()),
            Seconds::ZERO
        );
    }

    #[test]
    fn closer_obstacle_shrinks_interval() {
        let eval = SafeIntervalEvaluator::default().with_horizon(Seconds::new(5.0));
        let state = VehicleState::new(0.0, 0.0, 0.0, 12.0);
        let far = eval.safe_interval(&world_at(60.0), &state, Control::new(0.0, 0.5));
        let near = eval.safe_interval(&world_at(25.0), &state, Control::new(0.0, 0.5));
        assert!(near < far, "near {near} should be < far {far}");
        assert!(near > Seconds::ZERO);
    }

    #[test]
    fn interval_is_capped_at_horizon() {
        let eval = SafeIntervalEvaluator::default();
        let state = VehicleState::new(0.0, 0.0, 0.0, 5.0);
        let d = eval.safe_interval(&world_at(500.0), &state, Control::coast());
        assert_eq!(d, eval.horizon());
    }

    #[test]
    fn interval_approximates_time_to_unsafe() {
        // Vehicle at 10 m/s (with drag), obstacle surface 31 m out, barrier
        // needs 1.2 m clearance + v^2/16 kinetic margin (~6.25 m): it
        // becomes unsafe after roughly (31 - 7.5) / 10 ~ 2.4 s. Use kappa=1
        // to check the raw physics.
        let eval = SafeIntervalEvaluator::default()
            .with_horizon(Seconds::new(10.0))
            .with_conservatism(1.0);
        let state = VehicleState::new(0.0, 0.0, 0.0, 10.0);
        let d = eval.safe_interval(&world_at(32.0), &state, Control::new(0.0, 0.28));
        assert!(
            (1.5..3.5).contains(&d.as_secs()),
            "expected roughly 2.4 s, got {d}"
        );
    }

    #[test]
    fn steering_away_extends_interval() {
        let eval = SafeIntervalEvaluator::default().with_horizon(Seconds::new(5.0));
        let state = VehicleState::new(0.0, 0.0, 0.0, 12.0);
        let world = world_at(25.0);
        let straight = eval.safe_interval(&world, &state, Control::new(0.0, 0.5));
        let swerving = eval.safe_interval(&world, &state, Control::new(1.0, 0.5));
        assert!(
            swerving >= straight,
            "swerving {swerving} should not be shorter than straight {straight}"
        );
    }

    #[test]
    fn braking_extends_interval() {
        let eval = SafeIntervalEvaluator::default().with_horizon(Seconds::new(5.0));
        let state = VehicleState::new(0.0, 0.0, 0.0, 12.0);
        let world = world_at(30.0);
        let accel = eval.safe_interval(&world, &state, Control::new(0.0, 1.0));
        let brake = eval.safe_interval(&world, &state, Control::new(0.0, -1.0));
        assert!(
            brake > accel,
            "braking {brake} should beat accelerating {accel}"
        );
    }

    #[test]
    fn relative_evaluation_matches_world_evaluation() {
        let eval = SafeIntervalEvaluator::default();
        // Point obstacle 20 m ahead; radius 0 for exact equivalence.
        let world = World::new(Road::new(1e6, 1e6), vec![Obstacle::new(20.0, 0.0, 0.0)]);
        let state = VehicleState::new(0.0, 0.0, 0.0, 10.0);
        let via_world = eval.safe_interval(&world, &state, Control::coast());
        let obs = RelativeObservation {
            distance: 20.0,
            bearing: 0.0,
            speed: 10.0,
        };
        let via_relative = eval.safe_interval_relative(&obs, Control::coast());
        assert!(
            (via_world.as_secs() - via_relative.as_secs()).abs() < 1e-9,
            "{via_world} vs {via_relative}"
        );
    }

    #[test]
    fn relative_no_obstacle_returns_horizon() {
        let eval = SafeIntervalEvaluator::default();
        let obs = RelativeObservation {
            distance: f64::INFINITY,
            bearing: 0.0,
            speed: 10.0,
        };
        assert_eq!(
            eval.safe_interval_relative(&obs, Control::coast()),
            eval.horizon()
        );
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn zero_horizon_panics() {
        let _ = SafeIntervalEvaluator::default().with_horizon(Seconds::ZERO);
    }

    #[test]
    fn dynamic_interval_matches_static_for_parked_obstacles() {
        use seo_sim::dynamics::DynamicWorld;
        let eval = SafeIntervalEvaluator::default();
        let world = world_at(30.0);
        let dynamic = DynamicWorld::from_static(&world);
        let state = VehicleState::new(0.0, 0.0, 0.0, 10.0);
        let control = Control::new(0.0, 0.5);
        let s = eval.safe_interval(&world, &state, control);
        let d = eval.safe_interval_dynamic(&dynamic, Seconds::ZERO, &state, control);
        assert!((s.as_secs() - d.as_secs()).abs() < 1e-9, "{s} vs {d}");
    }

    #[test]
    fn oncoming_obstacle_shortens_interval() {
        use seo_sim::dynamics::{DynamicWorld, MovingObstacle};
        use seo_sim::world::Road;
        let eval = SafeIntervalEvaluator::default().with_horizon(Seconds::new(5.0));
        let state = VehicleState::new(0.0, 0.0, 0.0, 10.0);
        let control = Control::new(0.0, 0.5);
        let parked = DynamicWorld::new(
            Road::new(1000.0, 100.0),
            vec![MovingObstacle::parked(Obstacle::new(40.0, 0.0, 1.0))],
        );
        let oncoming = DynamicWorld::new(
            Road::new(1000.0, 100.0),
            vec![MovingObstacle::new(
                Obstacle::new(40.0, 0.0, 1.0),
                -8.0,
                0.0,
            )],
        );
        let t_parked = eval.safe_interval_dynamic(&parked, Seconds::ZERO, &state, control);
        let t_oncoming = eval.safe_interval_dynamic(&oncoming, Seconds::ZERO, &state, control);
        assert!(
            t_oncoming < t_parked,
            "oncoming traffic must shorten the deadline: {t_oncoming} vs {t_parked}"
        );
    }

    #[test]
    fn receding_obstacle_extends_interval() {
        use seo_sim::dynamics::{DynamicWorld, MovingObstacle};
        use seo_sim::world::Road;
        let eval = SafeIntervalEvaluator::default().with_horizon(Seconds::new(5.0));
        let state = VehicleState::new(0.0, 0.0, 0.0, 10.0);
        let control = Control::new(0.0, 0.5);
        let parked = DynamicWorld::new(
            Road::new(1000.0, 100.0),
            vec![MovingObstacle::parked(Obstacle::new(30.0, 0.0, 1.0))],
        );
        let receding = DynamicWorld::new(
            Road::new(1000.0, 100.0),
            vec![MovingObstacle::new(Obstacle::new(30.0, 0.0, 1.0), 8.0, 0.0)],
        );
        let t_parked = eval.safe_interval_dynamic(&parked, Seconds::ZERO, &state, control);
        let t_receding = eval.safe_interval_dynamic(&receding, Seconds::ZERO, &state, control);
        assert!(t_receding >= t_parked);
    }
}
