//! Error type for the safety substrate.

use std::error::Error;
use std::fmt;

/// Errors raised while building safety components.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SafetyError {
    /// A configuration field was out of range.
    InvalidConfig {
        /// Offending field.
        field: &'static str,
        /// Constraint description.
        constraint: &'static str,
    },
    /// A lookup table was built with an empty axis.
    EmptyTableAxis {
        /// Which axis was empty.
        axis: &'static str,
    },
}

impl fmt::Display for SafetyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig { field, constraint } => {
                write!(f, "invalid safety config: {field} must {constraint}")
            }
            Self::EmptyTableAxis { axis } => {
                write!(
                    f,
                    "deadline table axis {axis} must have at least two grid points"
                )
            }
        }
    }
}

impl Error for SafetyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SafetyError::InvalidConfig {
            field: "alpha",
            constraint: "be positive",
        };
        assert!(e.to_string().contains("alpha"));
        assert!(SafetyError::EmptyTableAxis { axis: "distance" }
            .to_string()
            .contains("distance"));
    }
}
