//! Property-based tests for the safety-layer invariants, driven by a
//! seeded generator loop.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seo_platform::units::Seconds;
use seo_safety::barrier::DistanceBarrier;
use seo_safety::filter::SafetyFilter;
use seo_safety::interval::SafeIntervalEvaluator;
use seo_safety::lookup::{Axis, DeadlineTable};
use seo_safety::ttc::TtcEstimator;
use seo_sim::sensing::RelativeObservation;
use seo_sim::vehicle::{Control, VehicleState};
use seo_sim::world::{Obstacle, Road, World};

const CASES: usize = 300;

fn observation(rng: &mut StdRng) -> RelativeObservation {
    RelativeObservation {
        distance: rng.gen_range(0.1..80.0),
        bearing: rng.gen_range(-3.1..3.1),
        speed: rng.gen_range(0.0..15.0),
    }
}

#[test]
fn barrier_is_monotone_in_distance() {
    let mut rng = StdRng::seed_from_u64(20);
    let b = DistanceBarrier::default();
    for _ in 0..CASES {
        let obs = observation(&mut rng);
        let gap = rng.gen_range(0.1..20.0);
        let farther = RelativeObservation {
            distance: obs.distance + gap,
            ..obs
        };
        assert!(b.value(&farther) >= b.value(&obs));
    }
}

#[test]
fn barrier_is_antitone_in_speed_head_on() {
    let mut rng = StdRng::seed_from_u64(21);
    let b = DistanceBarrier::default();
    for _ in 0..CASES {
        let d = rng.gen_range(1.0..50.0);
        let v = rng.gen_range(0.0..14.0);
        let dv = rng.gen_range(0.1..5.0);
        let slow = RelativeObservation {
            distance: d,
            bearing: 0.0,
            speed: v,
        };
        let fast = RelativeObservation {
            distance: d,
            bearing: 0.0,
            speed: v + dv,
        };
        assert!(b.value(&fast) <= b.value(&slow));
    }
}

#[test]
fn filter_output_is_always_actuatable() {
    let mut rng = StdRng::seed_from_u64(22);
    let filter = SafetyFilter::default();
    for _ in 0..CASES {
        let world = World::new(
            Road::default(),
            vec![Obstacle::new(rng.gen_range(0.0..100.0), 0.0, 1.0)],
        );
        let state = VehicleState::new(
            rng.gen_range(0.0..100.0),
            rng.gen_range(-4.0..4.0),
            0.0,
            rng.gen_range(0.0..15.0),
        );
        let raw = Control::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
        let (u, _) = filter.filter(&world, &state, raw);
        assert!(u.steering.abs() <= 1.0);
        assert!(u.throttle.abs() <= 1.0);
    }
}

#[test]
fn filter_never_worsens_worst_case_barrier() {
    let mut rng = StdRng::seed_from_u64(23);
    let filter = SafetyFilter::default();
    for _ in 0..CASES {
        let v = rng.gen_range(4.0..14.0);
        let obstacle_x = rng.gen_range(10.0..60.0);
        let steer = rng.gen_range(-1.0..1.0);
        let world = World::new(
            Road::new(1000.0, 100.0),
            vec![Obstacle::new(obstacle_x, 0.0, 1.0)],
        );
        let state = VehicleState::new(0.0, 0.0, 0.0, v);
        let raw = Control::new(steer, 1.0);
        let (u, decision) = filter.filter(&world, &state, raw);
        if decision.is_correction() {
            let before = filter.worst_case_barrier(&world, &state, raw);
            let after = filter.worst_case_barrier(&world, &state, u);
            assert!(
                after >= before - 1e-9,
                "correction worsened the barrier: {before} -> {after}"
            );
        }
    }
}

#[test]
fn safe_interval_is_never_negative_and_capped() {
    let mut rng = StdRng::seed_from_u64(24);
    let eval = SafeIntervalEvaluator::default();
    for _ in 0..CASES {
        let obs = observation(&mut rng);
        let t = eval.safe_interval_relative(&obs, Control::new(0.0, 0.5));
        assert!(t >= Seconds::ZERO);
        assert!(t <= eval.horizon());
    }
}

#[test]
fn higher_conservatism_never_extends_deadlines() {
    let mut rng = StdRng::seed_from_u64(25);
    for _ in 0..CASES {
        let obs = observation(&mut rng);
        let kappa = rng.gen_range(1.0..20.0);
        let base = SafeIntervalEvaluator::default().with_conservatism(kappa);
        let stricter = SafeIntervalEvaluator::default().with_conservatism(kappa * 2.0);
        let control = Control::new(0.0, 0.5);
        assert!(
            stricter.safe_interval_relative(&obs, control)
                <= base.safe_interval_relative(&obs, control)
        );
    }
}

#[test]
fn table_query_is_always_in_range() {
    let mut rng = StdRng::seed_from_u64(26);
    let eval = SafeIntervalEvaluator::default();
    let table = DeadlineTable::build(
        &eval,
        Axis::new(0.0, 60.0, 9).expect("valid"),
        Axis::new(-3.2, 3.2, 5).expect("valid"),
        Axis::new(0.0, 15.0, 4).expect("valid"),
        Control::new(0.0, 0.5),
    );
    for _ in 0..CASES {
        let obs = observation(&mut rng);
        let t = table.query(&obs);
        assert!(t >= Seconds::ZERO);
        assert!(t <= table.horizon());
    }
}

#[test]
fn ttc_is_at_least_as_optimistic_as_phi() {
    let mut rng = StdRng::seed_from_u64(27);
    let eval = SafeIntervalEvaluator::default();
    let ttc = TtcEstimator::default();
    for _ in 0..CASES {
        let d = rng.gen_range(2.0..60.0);
        let v = rng.gen_range(1.0..14.0);
        let obs = RelativeObservation {
            distance: d,
            bearing: 0.0,
            speed: v,
        };
        assert!(ttc.deadline(&obs) >= eval.safe_interval_relative(&obs, Control::new(0.0, 0.5)));
    }
}

#[test]
fn critical_distance_is_exact_zero_contour() {
    let mut rng = StdRng::seed_from_u64(28);
    let b = DistanceBarrier::default();
    for _ in 0..CASES {
        let v = rng.gen_range(0.0..15.0);
        let d = b.critical_distance(v);
        let at = RelativeObservation {
            distance: d,
            bearing: 0.0,
            speed: v,
        };
        assert!(b.value(&at).abs() < 1e-9);
    }
}
