//! Property-based tests for the safety-layer invariants.

use proptest::prelude::*;
use seo_platform::units::Seconds;
use seo_safety::barrier::DistanceBarrier;
use seo_safety::filter::SafetyFilter;
use seo_safety::interval::SafeIntervalEvaluator;
use seo_safety::lookup::{Axis, DeadlineTable};
use seo_safety::ttc::TtcEstimator;
use seo_sim::sensing::RelativeObservation;
use seo_sim::vehicle::{Control, VehicleState};
use seo_sim::world::{Obstacle, Road, World};

fn observation_strategy() -> impl Strategy<Value = RelativeObservation> {
    (0.1..80.0f64, -3.1..3.1f64, 0.0..15.0f64)
        .prop_map(|(distance, bearing, speed)| RelativeObservation { distance, bearing, speed })
}

proptest! {
    #[test]
    fn barrier_is_monotone_in_distance(obs in observation_strategy(), gap in 0.1..20.0f64) {
        let b = DistanceBarrier::default();
        let farther = RelativeObservation { distance: obs.distance + gap, ..obs };
        prop_assert!(b.value(&farther) >= b.value(&obs));
    }

    #[test]
    fn barrier_is_antitone_in_speed_head_on(d in 1.0..50.0f64, v in 0.0..14.0f64, dv in 0.1..5.0f64) {
        let b = DistanceBarrier::default();
        let slow = RelativeObservation { distance: d, bearing: 0.0, speed: v };
        let fast = RelativeObservation { distance: d, bearing: 0.0, speed: v + dv };
        prop_assert!(b.value(&fast) <= b.value(&slow));
    }

    #[test]
    fn filter_output_is_always_actuatable(
        x in 0.0..100.0f64,
        y in -4.0..4.0f64,
        v in 0.0..15.0f64,
        steer in -1.0..1.0f64,
        throttle in -1.0..1.0f64,
        obstacle_x in 0.0..100.0f64,
    ) {
        let filter = SafetyFilter::default();
        let world = World::new(Road::default(), vec![Obstacle::new(obstacle_x, 0.0, 1.0)]);
        let state = VehicleState::new(x, y, 0.0, v);
        let (u, _) = filter.filter(&world, &state, Control::new(steer, throttle));
        prop_assert!(u.steering.abs() <= 1.0);
        prop_assert!(u.throttle.abs() <= 1.0);
    }

    #[test]
    fn filter_never_worsens_worst_case_barrier(
        v in 4.0..14.0f64,
        obstacle_x in 10.0..60.0f64,
        steer in -1.0..1.0f64,
    ) {
        let filter = SafetyFilter::default();
        let world = World::new(Road::new(1000.0, 100.0), vec![Obstacle::new(obstacle_x, 0.0, 1.0)]);
        let state = VehicleState::new(0.0, 0.0, 0.0, v);
        let raw = Control::new(steer, 1.0);
        let (u, decision) = filter.filter(&world, &state, raw);
        if decision.is_correction() {
            let before = filter.worst_case_barrier(&world, &state, raw);
            let after = filter.worst_case_barrier(&world, &state, u);
            prop_assert!(
                after >= before - 1e-9,
                "correction worsened the barrier: {before} -> {after}"
            );
        }
    }

    #[test]
    fn safe_interval_is_never_negative_and_capped(obs in observation_strategy()) {
        let eval = SafeIntervalEvaluator::default();
        let t = eval.safe_interval_relative(&obs, Control::new(0.0, 0.5));
        prop_assert!(t >= Seconds::ZERO);
        prop_assert!(t <= eval.horizon());
    }

    #[test]
    fn higher_conservatism_never_extends_deadlines(
        obs in observation_strategy(),
        kappa in 1.0..20.0f64,
    ) {
        let base = SafeIntervalEvaluator::default().with_conservatism(kappa);
        let stricter = SafeIntervalEvaluator::default().with_conservatism(kappa * 2.0);
        let control = Control::new(0.0, 0.5);
        prop_assert!(
            stricter.safe_interval_relative(&obs, control)
                <= base.safe_interval_relative(&obs, control)
        );
    }

    #[test]
    fn table_query_is_always_in_range(obs in observation_strategy()) {
        let eval = SafeIntervalEvaluator::default();
        let table = DeadlineTable::build(
            &eval,
            Axis::new(0.0, 60.0, 9).expect("valid"),
            Axis::new(-3.2, 3.2, 5).expect("valid"),
            Axis::new(0.0, 15.0, 4).expect("valid"),
            Control::new(0.0, 0.5),
        );
        let t = table.query(&obs);
        prop_assert!(t >= Seconds::ZERO);
        prop_assert!(t <= table.horizon());
    }

    #[test]
    fn ttc_is_at_least_as_optimistic_as_phi(
        d in 2.0..60.0f64,
        v in 1.0..14.0f64,
    ) {
        let eval = SafeIntervalEvaluator::default();
        let ttc = TtcEstimator::default();
        let obs = RelativeObservation { distance: d, bearing: 0.0, speed: v };
        prop_assert!(
            ttc.deadline(&obs) >= eval.safe_interval_relative(&obs, Control::new(0.0, 0.5))
        );
    }

    #[test]
    fn critical_distance_is_exact_zero_contour(v in 0.0..15.0f64) {
        let b = DistanceBarrier::default();
        let d = b.critical_distance(v);
        let at = RelativeObservation { distance: d, bearing: 0.0, speed: v };
        prop_assert!(b.value(&at).abs() < 1e-9);
    }
}
