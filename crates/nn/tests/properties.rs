//! Property-based tests for the neural network substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use seo_nn::layer::Activation;
use seo_nn::mlp::Mlp;
use seo_nn::policy::{DrivingPolicy, PolicyFeatures};
use seo_nn::tensor::{dot, Matrix};

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-3.0..3.0f64, len)
}

proptest! {
    #[test]
    fn matvec_is_linear(
        a in small_vec(6),
        b in small_vec(6),
        alpha in -2.0..2.0f64,
    ) {
        // M(alpha a + b) == alpha M a + M b for a fixed matrix.
        let m = Matrix::from_flat(3, 6, (0..18).map(|i| (i as f64) * 0.1 - 0.9).collect());
        let combined: Vec<f64> =
            a.iter().zip(&b).map(|(x, y)| alpha * x + y).collect();
        let left = m.matvec(&combined);
        let ma = m.matvec(&a);
        let mb = m.matvec(&b);
        for i in 0..3 {
            let right = alpha * ma[i] + mb[i];
            prop_assert!((left[i] - right).abs() < 1e-9, "{} vs {right}", left[i]);
        }
    }

    #[test]
    fn matvec_transposed_is_adjoint(x in small_vec(4), y in small_vec(3)) {
        // <Mx, y> == <x, M^T y>.
        let m = Matrix::from_flat(3, 4, (0..12).map(|i| ((i * 7) % 5) as f64 - 2.0).collect());
        let lhs = dot(&m.matvec(&x), &y);
        let rhs = dot(&x, &m.matvec_transposed(&y));
        prop_assert!((lhs - rhs).abs() < 1e-9, "adjoint mismatch {lhs} vs {rhs}");
    }

    #[test]
    fn activations_are_monotone(x in -10.0..10.0f64, dx in 0.0..5.0f64) {
        for act in [Activation::Identity, Activation::Relu, Activation::Tanh, Activation::Sigmoid] {
            prop_assert!(act.apply(x + dx) >= act.apply(x) - 1e-12, "{act:?} not monotone");
        }
    }

    #[test]
    fn activation_derivatives_are_nonnegative(x in -10.0..10.0f64) {
        for act in [Activation::Identity, Activation::Relu, Activation::Tanh, Activation::Sigmoid] {
            let y = act.apply(x);
            prop_assert!(act.derivative_from_output(y) >= 0.0);
        }
    }

    #[test]
    fn mlp_params_roundtrip_exactly(seed in 0u64..1000, input in small_vec(5)) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Mlp::new(&[5, 9, 3], Activation::Tanh, Activation::Identity, &mut rng)
            .expect("valid topology");
        let mut rng2 = StdRng::seed_from_u64(seed.wrapping_add(1));
        let mut other = Mlp::new(&[5, 9, 3], Activation::Tanh, Activation::Identity, &mut rng2)
            .expect("valid topology");
        other.set_params(&net.to_params()).expect("matching shapes");
        prop_assert_eq!(net.forward(&input), other.forward(&input));
    }

    #[test]
    fn mlp_outputs_are_finite(seed in 0u64..200, input in small_vec(4)) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Mlp::new(&[4, 8, 8, 2], Activation::Relu, Activation::Tanh, &mut rng)
            .expect("valid topology");
        let out = net.forward(&input);
        prop_assert!(out.iter().all(|v| v.is_finite()));
        prop_assert!(out.iter().all(|v| v.abs() <= 1.0), "tanh head bounds outputs");
    }

    #[test]
    fn sgd_step_moves_toward_target(seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Mlp::new(&[2, 6, 1], Activation::Tanh, Activation::Identity, &mut rng)
            .expect("valid topology");
        let input = [0.4, -0.2];
        let target = [0.7];
        let before = (net.forward(&input)[0] - target[0]).powi(2);
        for _ in 0..20 {
            net.train_step(&input, &target, 0.1);
        }
        let after = (net.forward(&input)[0] - target[0]).powi(2);
        prop_assert!(after <= before + 1e-12, "loss must not grow: {before} -> {after}");
    }

    #[test]
    fn policy_actions_always_actuatable(
        seed in 0u64..100,
        lateral in -1.5..1.5f64,
        heading in -1.5..1.5f64,
        speed in 0.0..1.0f64,
        proximity in 0.0..1.0f64,
        bearing in -3.0..3.0f64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let policy = DrivingPolicy::new(&mut rng).expect("fixed topology");
        let f = PolicyFeatures {
            lateral,
            heading,
            speed,
            obstacle_proximity: proximity,
            obstacle_bearing: bearing,
            obstacle_lateral: lateral * 0.5,
            progress: 0.3,
        };
        let u = policy.act(&f);
        prop_assert!(u.steering.abs() <= 1.0);
        prop_assert!(u.throttle.abs() <= 1.0);
    }
}
